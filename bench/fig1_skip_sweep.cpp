// Reproduces Fig. 1 (right): the skip-connection investigation.
//
// A single-block architecture with 4 convolution layers is trained on the
// CIFAR-10-DVS stand-in while sweeping the number of skip connections
// n_skip in {0..3} for both connection types (DSC concatenation, ASC
// addition). For each point we report test accuracy, average firing rate
// and MACs — the three series the figure plots.
//
// Expected shape (paper): accuracy rises with n_skip for both types; the
// baseline firing rate is low (~11%); ASC raises the firing rate more than
// DSC (summing spike trains), while DSC raises MACs (wider inputs).
//
// Output: stdout table + fig1_skip_sweep.csv.

#include <cstdio>

#include "bench_common.h"
#include "graph/mac_counter.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const SyntheticConfig data_cfg = benchcfg::data_config(args);
  TrainConfig train_cfg = benchcfg::train_config(args, 8);
  // Slightly conservative LR: the sweep compares convergence speed across
  // topologies, so run-to-run stability matters more than raw speed.
  if (!args.has("lr")) train_cfg.lr = 0.1f;
  const int n_seeds = benchcfg::seeds(args, 3);

  const DatasetBundle data = make_datasets("cifar10-dvs", data_cfg);

  ModelConfig model_cfg;
  model_cfg.in_channels = 2;
  model_cfg.num_classes = 10;
  model_cfg.max_timesteps = data_cfg.timesteps;
  model_cfg.width = benchcfg::width(args, 6);

  std::printf("=== Fig. 1 (right): skip-connection sweep on single-block "
              "SNN, CIFAR-10-DVS stand-in ===\n");
  std::printf("budget: %zu train samples, %lld epochs, %d seeds\n\n",
              data_cfg.train_size,
              static_cast<long long>(train_cfg.epochs), n_seeds);

  TextTable table({"type", "n_skip", "test acc", "firing rate", "MACs/step"});
  CsvWriter csv("fig1_skip_sweep.csv",
                {"type", "n_skip", "acc_mean", "acc_std", "rate_mean",
                 "rate_std", "macs"});

  Timer timer;
  for (const SkipType type : {SkipType::DSC, SkipType::ASC}) {
    for (int n_skip = 0; n_skip <= 3; ++n_skip) {
      RunningStat acc_stat, rate_stat;
      std::int64_t macs = 0;
      for (int seed = 0; seed < n_seeds; ++seed) {
        ModelConfig mc = model_cfg;
        mc.seed = 100 + static_cast<std::uint64_t>(seed);
        TrainConfig tc = train_cfg;
        tc.seed = 200 + static_cast<std::uint64_t>(seed);
        Network net = build_model(
            "single_block", mc, {Adjacency::uniform(4, type, n_skip)});
        fit(net, NeuronMode::Spiking, data.train, nullptr, tc);
        FiringRateRecorder recorder;
        const EvalResult res = evaluate(net, NeuronMode::Spiking, *data.test,
                                        tc, &recorder);
        acc_stat.add(res.accuracy);
        rate_stat.add(res.firing_rate);
        macs = count_macs(net, Shape{1, 2, data_cfg.height, data_cfg.width})
                   .total;
      }
      table.add_row({to_string(type), std::to_string(n_skip),
                     pct_with_std(acc_stat.mean(), acc_stat.stddev()),
                     pct_with_std(rate_stat.mean(), rate_stat.stddev()),
                     std::to_string(macs)});
      csv.row({to_string(type), std::to_string(n_skip),
               CsvWriter::num(acc_stat.mean()), CsvWriter::num(acc_stat.stddev()),
               CsvWriter::num(rate_stat.mean()),
               CsvWriter::num(rate_stat.stddev()),
               CsvWriter::num(static_cast<std::size_t>(macs))});
      std::printf("done: type=%s n_skip=%d (%.1fs elapsed)\n",
                  to_string(type).c_str(), n_skip, timer.elapsed_s());
    }
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("series written to fig1_skip_sweep.csv\n");
  std::printf("paper shape check: accuracy should rise with n_skip for both "
              "types; n_skip=0 firing rate is the low baseline (~11%% in the "
              "paper); ASC firing rate >= DSC firing rate; DSC MACs grow "
              "with n_skip, ASC MACs stay flat.\n");
  return 0;
}
