// ctest smoke for the telemetry subsystem: train a small single_block
// model for 2 epochs with telemetry on, export the Chrome trace, validate
// it with the shared validator, and check the span coverage invariants.
//
//   ./bench/telemetry_smoke --out trace.json [--epochs E]
//
// Exit code 0 only when the trace is well-formed, the training spans are
// present, and the fit span covers (almost) the whole measured wall-clock.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "data/synthetic_dvs_cifar.h"
#include "models/zoo.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "util/cli.h"

using namespace snnskip;

namespace {

int fail(const char* what, const std::string& detail = "") {
  std::fprintf(stderr, "telemetry_smoke FAILED: %s %s\n", what,
               detail.c_str());
  return 1;
}

const telemetry::SpanStat* find_span(const telemetry::Snapshot& snap,
                                     const std::string& cat,
                                     const std::string& name) {
  for (const auto& s : snap.spans) {
    if (s.cat == cat && s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out = args.get("out", "BENCH_telemetry_trace.json");

  Telemetry::set_enabled(true);
  Telemetry::reset();

  SyntheticConfig data_cfg;
  data_cfg.height = 8;
  data_cfg.width = 8;
  data_cfg.timesteps = 4;
  data_cfg.train_size = 40;
  data_cfg.val_size = 20;
  data_cfg.test_size = 20;
  auto train_ds = std::make_shared<SyntheticDvsCifar>(data_cfg, Split::Train);
  auto val_ds = std::make_shared<SyntheticDvsCifar>(data_cfg, Split::Val);

  ModelConfig model_cfg;
  model_cfg.mode = NeuronMode::Spiking;
  model_cfg.in_channels = 2;
  model_cfg.num_classes = 10;
  model_cfg.max_timesteps = 4;
  model_cfg.width = 4;
  Network net = build_model("single_block", model_cfg,
                            default_adjacencies("single_block", model_cfg));

  TrainConfig train_cfg;
  train_cfg.epochs = args.get_int("epochs", 2);
  train_cfg.batch_size = 10;
  train_cfg.lr = 0.05f;
  train_cfg.timesteps = 4;
  TelemetryObserver observer;
  train_cfg.observers.push_back(&observer);

  const auto t0 = std::chrono::steady_clock::now();
  const FitResult fr =
      fit(net, NeuronMode::Spiking, train_ds, val_ds, train_cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  if (fr.epochs.size() != static_cast<std::size_t>(train_cfg.epochs)) {
    return fail("fit epoch history has wrong length");
  }

  // 1. The trace file must exist and parse as a chrome trace.
  if (!write_chrome_trace(out)) return fail("could not write", out);
  std::string error;
  if (!validate_chrome_trace(out, &error)) {
    return fail("trace validation:", error);
  }

  // 2. The span table must contain the training phases, the per-layer
  //    work, and the epoch markers the observer emitted.
  const telemetry::Snapshot snap = telemetry::snapshot();
  const telemetry::SpanStat* fit_span = find_span(snap, "train", "fit");
  const telemetry::SpanStat* epoch = find_span(snap, "train", "epoch");
  const telemetry::SpanStat* fwd = find_span(snap, "train", "batch.forward");
  const telemetry::SpanStat* bwd = find_span(snap, "train", "batch.backward");
  if (fit_span == nullptr || fit_span->count != 1) {
    return fail("missing train/fit span");
  }
  if (epoch == nullptr ||
      epoch->count != static_cast<std::uint64_t>(train_cfg.epochs)) {
    return fail("missing or miscounted train/epoch spans");
  }
  if (fwd == nullptr || bwd == nullptr) {
    return fail("missing batch.forward / batch.backward spans");
  }
  bool have_layer_span = false;
  for (const auto& s : snap.spans) {
    if (s.cat.rfind("conv.fwd", 0) == 0 || s.cat.rfind("lif.fwd", 0) == 0) {
      have_layer_span = true;
      break;
    }
  }
  if (!have_layer_span) return fail("no per-layer forward spans recorded");
  if (snap.counters.find("train.batches") == snap.counters.end() ||
      snap.counters.find("train.timesteps") == snap.counters.end()) {
    return fail("TelemetryObserver counters missing");
  }

  // 3. Coverage: the fit span must account for >=90% of the measured
  //    wall-clock around the fit() call.
  const double covered_s = static_cast<double>(fit_span->total_ns) * 1e-9;
  if (covered_s < 0.9 * wall_s) {
    return fail("fit span covers <90% of wall-clock");
  }

  std::printf("%s", telemetry_summary(wall_s).c_str());
  std::printf("telemetry_smoke OK: %s valid, fit covers %.1f%% of %.2fs\n",
              out.c_str(), 100.0 * covered_s / wall_s, wall_s);
  return 0;
}
