// Ablation: the energy-aware trade-off objective (paper contribution 2:
// "selects the best number of skip connections to optimize the trade-off
// between accuracy drop and energy efficiency").
//
// Runs the BO adaptation with the scalarized objective
//   -accuracy + lambda * energy / energy(vanilla)
// for a sweep of lambda. Expectation: lambda = 0 maximizes accuracy
// regardless of cost; growing lambda trades accuracy for lower estimated
// inference energy (fewer MACs via fewer DSC edges and/or lower firing
// rates via fewer ASC edges).

#include <cstdio>

#include "bench_common.h"
#include "core/adapter.h"
#include "graph/mac_counter.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "train/evaluate.h"
#include "util/csv.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::printf("=== Ablation: accuracy/energy trade-off objective ===\n\n");

  TextTable table({"lambda", "test acc", "firing rate", "MACs/step",
                   "energy (nJ)"});
  CsvWriter csv("ablation_energy_objective.csv",
                {"lambda", "test_acc", "rate", "macs", "energy_pj"});

  for (const double lambda : {0.0, 0.5, 2.0}) {
    EvaluatorConfig ecfg;
    ecfg.model = args.get("model", "single_block");
    ecfg.model_cfg.width = benchcfg::width(args, 6);
    ecfg.finetune = benchcfg::train_config(args, 1);
    ecfg.finetune.epochs = 1;
    ecfg.scratch = benchcfg::train_config(args, 6);
    ecfg.seed = 301;
    ecfg.energy_weight = lambda;

    SyntheticConfig dc = benchcfg::data_config(args);
    CandidateEvaluator evaluator(ecfg, make_datasets("cifar10-dvs", dc));

    // Vanilla baseline: seeds the store AND defines the energy reference.
    const EncodingVec base_code = evaluator.space().encode(
        default_adjacencies(ecfg.model, evaluator.model_config()));
    Network base = evaluator.build(base_code);
    fit(base, NeuronMode::Spiking, evaluator.data().train, nullptr,
        ecfg.scratch);
    evaluator.store().store_from(base);
    FiringRateRecorder base_rec;
    const EvalResult base_eval =
        evaluate(base, NeuronMode::Spiking, *evaluator.data().val,
                 ecfg.scratch, &base_rec);
    evaluator.set_energy_reference(evaluator.candidate_energy_pj(
        evaluator.candidate_macs(base_code), base_eval.firing_rate));

    BoConfig bo;
    bo.initial_design = 3;
    bo.iterations = args.get_int("iterations", 3);
    bo.batch_k = 2;
    bo.candidate_pool = 64;
    bo.noise = 1e-2;
    bo.seed = 311;
    const SearchTrace trace = bo_trace(evaluator, bo);

    Network best = evaluator.build(trace.best);
    evaluator.store().load_into(best);
    fit(best, NeuronMode::Spiking, evaluator.data().train, nullptr,
        ecfg.scratch);
    FiringRateRecorder rec;
    const EvalResult test =
        evaluate(best, NeuronMode::Spiking, *evaluator.data().test,
                 ecfg.scratch, &rec);
    const std::int64_t macs = evaluator.candidate_macs(trace.best);
    const double energy = evaluator.candidate_energy_pj(macs, test.firing_rate);

    table.add_row({CsvWriter::num(lambda), pct(test.accuracy),
                   pct(test.firing_rate), std::to_string(macs),
                   CsvWriter::num(energy / 1e3)});
    csv.row({CsvWriter::num(lambda), CsvWriter::num(test.accuracy),
             CsvWriter::num(test.firing_rate),
             CsvWriter::num(static_cast<std::size_t>(macs)),
             CsvWriter::num(energy)});
    std::printf("lambda=%.1f done\n", lambda);
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("rows written to ablation_energy_objective.csv\n");
  std::printf("reading: larger lambda should push the search toward "
              "cheaper architectures (lower MACs x rate product), trading "
              "some accuracy.\n");
  return 0;
}
