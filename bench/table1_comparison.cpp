// Reproduces Table I: for every (dataset, model) pair —
//   ANN accuracy (CIFAR-10 stand-in only; DVS data has no ANN counterpart),
//   vanilla SNN accuracy (the architecture's native skip layout),
//   BO-optimized SNN accuracy (the paper's adaptation pipeline),
//   vanilla and optimized average firing rates —
// plus the per-dataset average accuracy gains reported in §IV-A.
//
// Expected shape (paper): optimized SNN beats vanilla SNN everywhere (the
// paper averages +11.3 / +9.3 / +10.2 points per dataset); optimized firing
// rates are moderately higher than vanilla; on CIFAR-10 the optimized SNN
// approaches the ANN reference.
//
// Output: stdout table + table1_comparison.csv.
// Runtime: ~9 adaptation pipelines; use --models / --datasets to subset or
// --scale to grow budgets.

#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "core/adapter.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace snnskip;

namespace {

std::vector<std::string> split_csv_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto datasets = split_csv_list(
      args.get("datasets", "cifar10,cifar10-dvs,dvs128-gesture"));
  const auto models = split_csv_list(
      args.get("models", "resnet18s,densenet121s,mobilenetv2s"));
  // The paper reports mean +/- std over repeated runs; default to a single
  // run so the full table regenerates in minutes (pass --repeats 3+ for
  // the paper's presentation).
  const int repeats = args.get_int("repeats", 1);

  TextTable table({"dataset", "model", "ANN acc", "SNN acc", "optimized acc",
                   "SNN rate", "opt rate"});
  CsvWriter csv("table1_comparison.csv",
                {"dataset", "model", "ann_acc", "ann_std", "snn_acc",
                 "snn_std", "opt_acc", "opt_std", "snn_rate", "opt_rate",
                 "snn_macs", "opt_macs", "search_seconds"});

  Timer total;
  std::printf("=== Table I: skip-connection optimization across datasets and "
              "models (%d repeat%s) ===\n\n",
              repeats, repeats == 1 ? "" : "s");

  for (const auto& dataset : datasets) {
    RunningStat gain;
    for (const auto& model : models) {
      RunningStat ann_acc, snn_acc, opt_acc, snn_rate, opt_rate, seconds;
      std::int64_t snn_macs = 0, opt_macs = 0;
      bool has_ann = false;
      for (int rep = 0; rep < repeats; ++rep) {
        AdapterConfig cfg;
        cfg.model = model;
        cfg.dataset = dataset;
        cfg.data_cfg = benchcfg::data_config(args);
        if (dataset == "dvs128-gesture") cfg.data_cfg.timesteps = 8;

        cfg.model_cfg.width = benchcfg::width(args, 6);
        cfg.model_cfg.dsc_fraction = 0.5;

        cfg.base_train = benchcfg::train_config(args, 6);
        if (dataset == "dvs128-gesture") {
          // Paper recipe: Adam for the gesture dataset (§IV).
          cfg.base_train.opt = OptKind::Adam;
          cfg.base_train.lr = 0.005f;
        }
        cfg.base_train.seed ^= static_cast<std::uint64_t>(rep) << 8;
        cfg.finetune = cfg.base_train;
        cfg.finetune.epochs = 1;

        // Analog twins train best with a gentler recipe than the SNNs.
        cfg.ann_train = cfg.base_train;
        cfg.ann_train.lr = 0.02f;
        cfg.ann_train.epochs = cfg.base_train.epochs * 2;

        cfg.bo.initial_design = 3;
        cfg.bo.iterations = args.get_int("bo-iterations", 3);
        cfg.bo.batch_k = 2;
        cfg.bo.candidate_pool = 64;
        cfg.bo.noise = 1e-2;
        cfg.bo.seed = 71 + static_cast<std::uint64_t>(rep);
        cfg.seed = 73 + static_cast<std::uint64_t>(rep);

        Timer t;
        const AdaptationReport r = run_adaptation(cfg);
        std::printf("finished %s / %s rep %d in %.1fs (total %.1fs)\n",
                    dataset.c_str(), model.c_str(), rep, t.elapsed_s(),
                    total.elapsed_s());

        gain.add(r.optimized_test_acc - r.snn_base_test_acc);
        has_ann = r.has_ann;
        if (r.has_ann) ann_acc.add(r.ann_test_acc);
        snn_acc.add(r.snn_base_test_acc);
        opt_acc.add(r.optimized_test_acc);
        snn_rate.add(r.snn_base_firing_rate);
        opt_rate.add(r.optimized_firing_rate);
        snn_macs = r.snn_base_macs;
        opt_macs = r.optimized_macs;
        seconds.add(r.search_seconds);
      }
      table.add_row(
          {dataset, model,
           has_ann ? pct_with_std(ann_acc.mean(), ann_acc.stddev()) : "-",
           pct_with_std(snn_acc.mean(), snn_acc.stddev()),
           pct_with_std(opt_acc.mean(), opt_acc.stddev()),
           pct(snn_rate.mean()), pct(opt_rate.mean())});
      csv.row({dataset, model,
               has_ann ? CsvWriter::num(ann_acc.mean()) : "",
               has_ann ? CsvWriter::num(ann_acc.stddev()) : "",
               CsvWriter::num(snn_acc.mean()), CsvWriter::num(snn_acc.stddev()),
               CsvWriter::num(opt_acc.mean()), CsvWriter::num(opt_acc.stddev()),
               CsvWriter::num(snn_rate.mean()), CsvWriter::num(opt_rate.mean()),
               CsvWriter::num(static_cast<std::size_t>(snn_macs)),
               CsvWriter::num(static_cast<std::size_t>(opt_macs)),
               CsvWriter::num(seconds.mean())});
    }
    std::printf("  -> average optimized-vs-vanilla gain on %s: %+.1f points "
                "(paper: +11.3 / +9.3 / +10.2)\n\n",
                dataset.c_str(), gain.mean() * 100.0);
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("rows written to table1_comparison.csv\n");
  std::printf("paper shape check: optimized > vanilla SNN on every row; "
              "optimized firing rate >= vanilla; CIFAR-10 optimized "
              "approaches the ANN reference.\n");
  return 0;
}
