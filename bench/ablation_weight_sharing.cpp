// Ablation: supernet weight sharing (the paper's §III-B cost saver).
//
// Evaluates the SAME set of candidate topologies two ways:
//   shared  — load supernet weights, fine-tune 1 epoch (paper's method);
//   scratch — fresh weights, full training budget (RS baseline regime).
// Reports per-candidate validation accuracy and wall time. The claim being
// validated: shared evaluation reaches comparable candidate quality at a
// fraction of the training cost, which is what makes BO's per-iteration
// training affordable ("~5 minutes" end-to-end in the paper).

#include <cstdio>

#include "bench_common.h"
#include "core/evaluator.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "train/evaluate.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int n_candidates = args.get_int("candidates", 4);

  EvaluatorConfig ecfg;
  ecfg.model = args.get("model", "single_block");
  ecfg.model_cfg.width = benchcfg::width(args, 6);
  ecfg.finetune = benchcfg::train_config(args, 1);
  ecfg.finetune.epochs = args.get_int("finetune-epochs", 2);
  ecfg.scratch = benchcfg::train_config(args, 6);
  ecfg.seed = 91;
  CandidateEvaluator evaluator(
      ecfg, make_datasets("cifar10-dvs", benchcfg::data_config(args)));

  std::printf("=== Ablation: shared-weights fine-tuning vs from-scratch "
              "candidate evaluation (%s) ===\n\n", ecfg.model.c_str());

  // Warm the store with the default topology, as the adapter pipeline does.
  {
    Network base = evaluator.build(evaluator.space().encode(
        default_adjacencies(ecfg.model, evaluator.model_config())));
    fit(base, NeuronMode::Spiking, evaluator.data().train, nullptr,
        ecfg.scratch);
    evaluator.store().store_from(base);
  }

  Rng rng(97);
  TextTable table({"candidate", "shared acc", "shared time", "scratch acc",
                   "scratch time"});
  CsvWriter csv("ablation_weight_sharing.csv",
                {"candidate", "shared_acc", "shared_seconds", "scratch_acc",
                 "scratch_seconds"});

  RunningStat shared_acc, scratch_acc, shared_time, scratch_time;
  for (int c = 0; c < n_candidates; ++c) {
    const EncodingVec code = evaluator.space().sample(rng);

    Timer ts;
    const CandidateResult shared = evaluator.evaluate_shared(code);
    const double t_shared = ts.elapsed_s();

    Timer tf;
    const CandidateResult scratch = evaluator.evaluate_scratch(code);
    const double t_scratch = tf.elapsed_s();

    shared_acc.add(shared.val_accuracy);
    scratch_acc.add(scratch.val_accuracy);
    shared_time.add(t_shared);
    scratch_time.add(t_scratch);

    table.add_row({std::to_string(c), pct(shared.val_accuracy),
                   format_duration(t_shared), pct(scratch.val_accuracy),
                   format_duration(t_scratch)});
    csv.row({CsvWriter::num(static_cast<std::size_t>(c)),
             CsvWriter::num(shared.val_accuracy), CsvWriter::num(t_shared),
             CsvWriter::num(scratch.val_accuracy),
             CsvWriter::num(t_scratch)});
    std::printf("candidate %d done\n", c);
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("mean: shared %.1f%% in %.1fs vs scratch %.1f%% in %.1fs "
              "(speedup %.1fx)\n",
              shared_acc.mean() * 100.0, shared_time.mean(),
              scratch_acc.mean() * 100.0, scratch_time.mean(),
              scratch_time.mean() / std::max(1e-9, shared_time.mean()));
  std::printf("rows written to ablation_weight_sharing.csv\n");
  return 0;
}
