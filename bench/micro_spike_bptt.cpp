// Micro-benchmark for the event-driven sparse BPTT backward (ISSUE 4).
//
// Sweeps firing rate x channel count over ResNet-18S-shaped 3x3 convs and
// times a combined train-mode forward + backward pass with the sparse
// path on vs forced dense, emitting BENCH_spike_bptt.json (mean ns/step
// per mode, speedup, achieved input/gradient density, and the retained
// BPTT context bytes for each mode).
//
// The gradient fed to backward is a bernoulli mask times normal noise at
// the same rate as the input — the shape of a surrogate active set (with
// Boxcar, sigma' is exactly zero outside its window, so dL/dx arrives
// mostly hard zeros).
//
// Unlike the forward-path bench (1e-4 tolerance), the backward kernels
// promise BIT-FOR-BIT equality with the dense gemm path, so every
// configuration cross-checks dW and dX with max_abs_diff == 0. The ctest
// smoke variant (--smoke 1) keeps one tiny config so tier-1 runs exercise
// this exactness check without paying for the timing sweep.
//
// Usage: micro_spike_bptt [--smoke 1] [--out BENCH_spike_bptt.json]
//                         [--min-ms 50]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "nn/conv2d.h"
#include "telemetry/retained.h"
#include "tensor/spike_kernels.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace snnskip {
namespace {

struct ConvShape {
  std::int64_t channels;
  std::int64_t hw;  // square spatial size
};

// Bernoulli(rate) mask times N(0,1): a surrogate-style sparse gradient.
Tensor sparse_grad(const Shape& shape, Rng& rng, double rate) {
  Tensor mask = Tensor::bernoulli(shape, rng, static_cast<float>(rate));
  Tensor noise = Tensor::randn(shape, rng);
  float* m = mask.data();
  const float* z = noise.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) m[i] *= z[i];
  return mask;
}

// One train-mode step: zero grads, forward, backward. Returns dX.
Tensor step(Conv2d& conv, const Tensor& x, const Tensor& g) {
  conv.weight().zero_grad();
  (void)conv.forward(x, /*train=*/true);
  return conv.backward(g);
}

// Mean ns per combined fwd+bwd step, timing until `min_ms` of work.
double time_step_ns(Conv2d& conv, const Tensor& x, const Tensor& g,
                    double min_ms) {
  for (int i = 0; i < 3; ++i) (void)step(conv, x, g);  // warm up arena
  std::int64_t reps = 0;
  Timer t;
  do {
    (void)step(conv, x, g);
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(reps);
}

// Retained context bytes right after a train-mode forward.
std::int64_t retained_after_forward(Conv2d& conv, const Tensor& x,
                                    const Tensor& g) {
  const std::int64_t before = RetainedActivations::current();
  (void)conv.forward(x, /*train=*/true);
  const std::int64_t held = RetainedActivations::current() - before;
  (void)conv.backward(g);  // pop the context again
  return held;
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 2.0 : 50.0);
  const std::string out_path = args.get("out", "BENCH_spike_bptt.json");

  std::vector<ConvShape> shapes;
  std::vector<double> rates;
  if (smoke) {
    shapes = {{16, 8}};
    rates = {0.05, 0.50};
  } else {
    shapes = {{64, 32}, {128, 16}, {256, 8}};
    rates = {0.01, 0.05, 0.10, 0.15, 0.25, 0.50};
  }

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%8s %6s %6s %12s %12s %9s %9s %12s %12s\n", "channels", "hw",
              "rate", "sparse_ns", "dense_ns", "speedup", "density",
              "held_sparse", "held_dense");

  const bool fwd_was = SparseExec::enabled();
  const bool bwd_was = SparseExec::bwd_enabled();
  bool all_equal = true;
  for (const ConvShape& sh : shapes) {
    Rng rng(42);
    Conv2d conv(sh.channels, sh.channels, 3, 1, 1, /*bias=*/false, rng,
                "bench_conv");
    for (double rate : rates) {
      const Shape in_shape{1, sh.channels, sh.hw, sh.hw};
      Tensor x = Tensor::bernoulli(in_shape, rng, static_cast<float>(rate));
      Tensor g = sparse_grad(conv.output_shape(in_shape), rng, rate);
      const double in_density = x.nonzero_fraction();
      const double grad_density = g.nonzero_fraction();

      SparseExec::set_enabled(true);
      SparseExec::set_bwd_enabled(true);
      Tensor dx_sparse = step(conv, x, g);
      Tensor dw_sparse = conv.weight().grad;
      const std::int64_t held_sparse = retained_after_forward(conv, x, g);
      const double sparse_ns = time_step_ns(conv, x, g, min_ms);

      SparseExec::set_enabled(false);
      Tensor dx_dense = step(conv, x, g);
      Tensor dw_dense = conv.weight().grad;
      const std::int64_t held_dense = retained_after_forward(conv, x, g);
      const double dense_ns = time_step_ns(conv, x, g, min_ms);

      // The backward contract is bitwise, not approximate.
      const float dw_diff = Tensor::max_abs_diff(dw_sparse, dw_dense);
      const float dx_diff = Tensor::max_abs_diff(dx_sparse, dx_dense);
      if (dw_diff != 0.f || dx_diff != 0.f) {
        std::fprintf(stderr,
                     "FAIL: sparse/dense gradient mismatch dW=%.3g dX=%.3g "
                     "(C=%lld rate=%.2f)\n",
                     static_cast<double>(dw_diff),
                     static_cast<double>(dx_diff),
                     static_cast<long long>(sh.channels), rate);
        all_equal = false;
      }

      const double speedup = sparse_ns > 0.0 ? dense_ns / sparse_ns : 0.0;
      std::printf(
          "%8lld %6lld %6.2f %12.0f %12.0f %8.2fx %9.3f %12lld %12lld\n",
          static_cast<long long>(sh.channels),
          static_cast<long long>(sh.hw), rate, sparse_ns, dense_ns, speedup,
          in_density, static_cast<long long>(held_sparse),
          static_cast<long long>(held_dense));

      json.begin_row();
      json.field("channels", static_cast<double>(sh.channels));
      json.field("hw", static_cast<double>(sh.hw));
      json.field("firing_rate", rate);
      json.field("achieved_density", in_density);
      json.field("grad_density", grad_density);
      json.field("sparse_ns_per_step", sparse_ns);
      json.field("dense_ns_per_step", dense_ns);
      json.field("speedup_vs_dense", speedup);
      json.field("retained_bytes_sparse", static_cast<double>(held_sparse));
      json.field("retained_bytes_dense", static_cast<double>(held_dense));
      benchcfg::provenance_fields(json);
      json.end_row();
    }
  }
  SparseExec::set_enabled(fwd_was);
  SparseExec::set_bwd_enabled(bwd_was);

  if (!all_equal) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
