// Micro-benchmark for the compiled inference engine (ISSUE 6).
//
// Freezes a ResNet-18S-shaped spiking network into an infer::Plan (BN
// folded into per-timestep weights, LIF fused into the conv epilogues,
// all buffers preplanned) and times Engine::step against the training
// graph's eval-mode forward — the event-driven SpikeCsr path the repo
// already ships — over a theta x input-rate sweep. Raising the LIF
// threshold theta lowers every layer's firing rate, so the sweep covers
// the packed bit-kernel regime (low density), the near-threshold band,
// and the dense fallback (high density), emitting BENCH_infer.json with
// the achieved density measured from the engine's exact popcounts.
//
// Every configuration also cross-checks the compiled plan's per-step
// outputs against the training eval forward (1e-4, the documented BN-fold
// reassociation tolerance), so the ctest smoke variant (--smoke 1,
// registered in bench/CMakeLists) runs compile + execute end-to-end under
// the sanitizer job on every tier-1 run.
//
// Models are loaded through serve::ModelRegistry (ISSUE 7) — the same
// build -> warm -> compile -> engine-pool path the serving daemon uses —
// and engines carry per-engine infer::ExecOptions (overridable with
// --packed / --dispatch-threshold) instead of mutating process globals.
//
// The int8 leg (ISSUE 10): --precision int8 (or the default `both`)
// additionally sweeps an int8-compiled twin of every configuration —
// loaded through the registry's self-calibrating int8 path — and checks
// the two acceptance gates inline: per-plan weight memory at most 0.30x
// of the fp32 plan, and top-1 drift vs the fp32 engine on a Bernoulli
// classification workload (strict >= 15/16 agreement at the stable smoke
// geometry; chance-floor agreement plus a zero-confident-flip bar at the
// chaotic full geometry — see the agree_min comment in run()). Int8 rows
// carry `precision`/`weight_bytes`/`top1_agreement` provenance so the
// regression gate keys fp32 and int8 rows separately.
//
// Usage: micro_infer [--smoke 1] [--out BENCH_infer.json] [--min-ms 50]
//                    [--width 16] [--packed 0|1] [--dispatch-threshold T]
//                    [--precision fp32|int8|both]

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "infer/compile.h"
#include "infer/engine.h"
#include "models/zoo.h"
#include "serve/model_registry.h"
#include "tensor/spike_kernels.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

// One sweep point: LIF threshold (scales every layer's firing rate down
// as it rises) x Bernoulli input rate.
struct SweepPoint {
  float theta;
  double rate;
};

std::vector<Tensor> spike_inputs(const Shape& s, std::int64_t steps,
                                 double p, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> xs;
  for (std::int64_t t = 0; t < steps; ++t) {
    xs.push_back(Tensor::bernoulli(s, rng, static_cast<float>(p)));
  }
  return xs;
}

// Train-mode steps so BNTT accumulates per-timestep running stats
// (otherwise folding is a near-identity), then clear state for eval.
void warm_bn_stats(Network& net, const Shape& in_shape, std::int64_t steps) {
  Rng rng(99);
  net.reset_state();
  for (std::int64_t t = 0; t < steps; ++t) {
    net.forward(Tensor::bernoulli(in_shape, rng, 0.3f), /*train=*/true);
  }
  net.reset_state();
}

// Mean ns per timestep for the engine, whole sequences at a time (reset()
// at each sequence boundary, like the training loop resets state).
double time_engine_ns(infer::Engine& eng, const std::vector<Tensor>& xs,
                      Tensor* out, double min_ms) {
  for (int i = 0; i < 3; ++i) {  // warm up caches / branch history
    eng.reset();
    for (const Tensor& x : xs) eng.step(x, out);
  }
  std::int64_t steps = 0;
  Timer t;
  do {
    eng.reset();
    for (const Tensor& x : xs) eng.step(x, out);
    steps += static_cast<std::int64_t>(xs.size());
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(steps);
}

// Summed logits over a sequence (rate-accumulated head output).
std::vector<double> summed_logits(infer::Engine& eng,
                                  const std::vector<Tensor>& xs) {
  eng.reset();
  Tensor out;
  std::vector<double> acc;
  for (const Tensor& x : xs) {
    eng.step(x, &out);
    if (acc.empty()) acc.assign(static_cast<std::size_t>(out.numel()), 0.0);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      acc[static_cast<std::size_t>(i)] += static_cast<double>(out.data()[i]);
    }
  }
  return acc;
}

// Mean ns per timestep for the training graph's eval forward (its own
// dispatch — the event-driven CSR path below SparseExec::threshold).
double time_training_ns(Network& net, const std::vector<Tensor>& xs,
                        double min_ms) {
  for (int i = 0; i < 3; ++i) {
    net.reset_state();
    for (const Tensor& x : xs) (void)net.forward(x, /*train=*/false);
  }
  std::int64_t steps = 0;
  Timer t;
  do {
    net.reset_state();
    for (const Tensor& x : xs) (void)net.forward(x, /*train=*/false);
    steps += static_cast<std::int64_t>(xs.size());
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(steps);
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 2.0 : 50.0);
  const std::string out_path = args.get("out", "BENCH_infer.json");
  const std::int64_t width = args.get_int("width", smoke ? 8 : 16);
  const std::int64_t hw = smoke ? 8 : 16;
  const std::int64_t steps = 6;

  // Thetas span quiet (packed regime) to saturated (dense fallback);
  // the achieved density is measured, not assumed, and lands in the
  // committed JSON so the regression gate keys on the configuration
  // while humans read the density column.
  std::vector<SweepPoint> sweep;
  if (smoke) {
    sweep = {{1.0f, 0.15}};
  } else {
    sweep = {{2.0f, 0.05}, {2.0f, 0.15}, {1.0f, 0.05}, {1.0f, 0.15},
             {0.5f, 0.15}, {0.5f, 0.50}, {0.25f, 0.50}};
  }

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%5s %6s %6s %6s %6s %9s %12s %12s %9s\n", "prec", "width",
              "hw", "theta", "rate", "density", "infer_ns", "train_ns",
              "speedup");

  const double hardware_threads =
      static_cast<double>(std::thread::hardware_concurrency());
  const Shape in_shape{1, 2, hw, hw};
  bool all_equal = true;

  // Per-engine execution options for every engine the registry pools;
  // env vars still seed the process defaults, CLI flags override both.
  infer::ExecOptions exec = infer::ExecOptions::defaults();
  exec.packed = args.get_int("packed", exec.packed ? 1 : 0) != 0;
  exec.threshold = static_cast<float>(
      args.get_double("dispatch-threshold", static_cast<double>(exec.threshold)));

  serve::ModelRegistry registry;

  const std::string prec_arg = args.get("precision", "both");
  std::vector<infer::Precision> precisions;
  if (prec_arg == "fp32") {
    precisions = {infer::Precision::Fp32};
  } else if (prec_arg == "int8") {
    precisions = {infer::Precision::Int8};
  } else if (prec_arg == "both") {
    precisions = {infer::Precision::Fp32, infer::Precision::Int8};
  } else {
    std::fprintf(stderr, "FAIL: --precision must be fp32|int8|both\n");
    return 1;
  }
  // Top-1 drift workload for the int8 leg (the fp32 engine is the
  // reference). Two regimes: the smoke geometry (width 8) has stable
  // decisions and keeps a strict near-unanimous bar. The full geometry
  // (width 16) is CHAOTIC for these untrained synthetic nets — fp32
  // packed-vs-dense accumulation-order rounding (~1e-6) alone amplifies
  // to ~15% relative logit deviation through near-threshold spike flips
  // — so raw agreement cannot reach trained-model levels there and the
  // gate instead fails on (a) agreement below 0.5, far above the
  // 1/num_classes chance floor any real kernel or scale bug collapses
  // to, and (b) ANY confident flip: an argmax move on a sequence whose
  // fp32 decision margin exceeds twice the int8 logit deviation, which
  // chaos cannot explain.
  const std::int64_t agree_seqs = smoke ? 16 : 100;
  const std::int64_t agree_min = smoke ? 15 : 50;

  for (const infer::Precision prec : precisions) {
    const bool i8 = prec == infer::Precision::Int8;
    float last_theta = -1.f;
    // Training-graph twin rebuilt per theta (shared across input rates);
    // warm_bn_stats matches the registry's warmup stream (Rng(99),
    // Bernoulli 0.3, batch-1), so the twin's weights are bitwise
    // identical to the registry-compiled plan's.
    Network net;
    serve::ModelHandle model, fp32_model;
    for (const SweepPoint& pt : sweep) {
      if (pt.theta != last_theta) {
        serve::ModelSpec spec;
        spec.name = "resnet18s-t" + std::to_string(pt.theta);
        spec.config.width = width;
        spec.config.in_channels = 2;
        spec.config.max_timesteps = steps;
        spec.config.seed = 7;
        spec.config.lif.threshold = pt.theta;
        spec.warm_bn_steps = steps;
        spec.batch = 1;
        spec.in_h = hw;
        spec.in_w = hw;
        spec.exec = exec;
        fp32_model = registry.load(spec);  // reference + weight baseline
        if (i8) {
          spec.name += "-int8";
          spec.compile.precision = infer::Precision::Int8;
          model = registry.load(spec);
        } else {
          model = fp32_model;
        }

        net = build_model("resnet18s", spec.config,
                          default_adjacencies("resnet18s", spec.config));
        warm_bn_stats(net, in_shape, steps);
        last_theta = pt.theta;
      }
      const infer::PlanPtr& plan = model->plan();
      serve::LoadedModel::Lease lease = model->lease();
      infer::Engine& eng = *lease;
      const std::vector<Tensor> xs =
          spike_inputs(in_shape, steps, pt.rate, 17);

      double weight_ratio = 1.0;
      double agreement = 1.0;
      if (!i8) {
        // Cross-check: compiled plan vs training eval, every timestep.
        // 1e-4 covers the BN-fold reassociation (DESIGN.md §5g); any
        // dispatch bug (wrong chrow map, stale packed mask, ...) trips
        // this far earlier.
        net.reset_state();
        eng.reset();
        float worst = 0.f;
        for (const Tensor& x : xs) {
          const Tensor ref = net.forward(x, /*train=*/false);
          const Tensor got = eng.step(x);
          worst = std::max(worst, Tensor::max_abs_diff(ref, got));
        }
        if (worst > 1e-4f) {
          std::fprintf(
              stderr,
              "FAIL: engine/training mismatch %.3g (theta=%.2f rate=%.2f)\n",
              static_cast<double>(worst), static_cast<double>(pt.theta),
              pt.rate);
          all_equal = false;
        }
      } else {
        // Acceptance gate 1: per-plan weight memory <= 0.30x of fp32.
        weight_ratio =
            static_cast<double>(plan->weight_bytes()) /
            static_cast<double>(fp32_model->plan()->weight_bytes());
        if (weight_ratio > 0.30) {
          std::fprintf(stderr,
                       "FAIL: int8 weight memory %.3fx of fp32 (limit 0.30x, "
                       "theta=%.2f)\n",
                       weight_ratio, static_cast<double>(pt.theta));
          all_equal = false;
        }
        // Acceptance gate 2: top-1 drift vs the fp32 engine (regimes
        // documented at agree_min above).
        serve::LoadedModel::Lease fref = fp32_model->lease();
        std::int64_t agree = 0, confident_flips = 0;
        for (std::int64_t s = 0; s < agree_seqs; ++s) {
          const std::vector<Tensor> seq =
              spike_inputs(in_shape, steps, pt.rate,
                           1000 + static_cast<std::uint64_t>(s));
          const std::vector<double> a = summed_logits(*fref, seq);
          const std::vector<double> b = summed_logits(eng, seq);
          std::size_t ia = 0, ib = 0;
          double deviation = 0.0;
          for (std::size_t i = 0; i < a.size(); ++i) {
            deviation = std::max(deviation, std::fabs(a[i] - b[i]));
            if (a[i] > a[ia]) ia = i;
            if (b[i] > b[ib]) ib = i;
          }
          double runner_up = -std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < a.size(); ++i) {
            if (i != ia && a[i] > runner_up) runner_up = a[i];
          }
          const double margin = a[ia] - runner_up;
          if (ia == ib) {
            ++agree;
          } else if (margin > 2.0 * deviation) {
            ++confident_flips;
            std::fprintf(stderr,
                         "FAIL: int8 confident top-1 flip (fp32 margin "
                         "%.4f > 2x logit deviation %.4f, seq %lld, "
                         "theta=%.2f rate=%.2f)\n",
                         margin, deviation, static_cast<long long>(s),
                         static_cast<double>(pt.theta), pt.rate);
          }
        }
        agreement = static_cast<double>(agree) /
                    static_cast<double>(agree_seqs);
        if (agree < agree_min || confident_flips > 0) {
          std::fprintf(stderr,
                       "FAIL: int8 top-1 drift: agreement %lld/%lld "
                       "(need %lld) with %lld confident flip(s) (need 0, "
                       "theta=%.2f rate=%.2f)\n",
                       static_cast<long long>(agree),
                       static_cast<long long>(agree_seqs),
                       static_cast<long long>(agree_min),
                       static_cast<long long>(confident_flips),
                       static_cast<double>(pt.theta), pt.rate);
          all_equal = false;
        }
      }

      // Achieved density over every spiking value (network input
      // included), from the engine's exact popcounts — the quantity
      // dispatch gates on.
      eng.reset();
      eng.reset_stats();
      std::int64_t input_nnz = 0;
      for (const Tensor& x : xs) {
        (void)eng.step(x);
        input_nnz += count_nonzero(x.data(), x.numel());
      }
      std::int64_t spiking_floats = 0;
      for (const infer::ValuePlan& v : plan->values) {
        if (v.spiking) spiking_floats += v.floats;
      }
      const double density =
          static_cast<double>(eng.stats().spikes + input_nnz) /
          static_cast<double>(steps * spiking_floats);
      const infer::ExecStats stats = eng.stats();

      Tensor out;
      const double infer_ns = time_engine_ns(eng, xs, &out, min_ms);
      const double train_ns = time_training_ns(net, xs, min_ms);
      const double speedup = infer_ns > 0.0 ? train_ns / infer_ns : 0.0;

      std::printf("%5s %6lld %6lld %6.2f %6.2f %9.3f %12.0f %12.0f %8.2fx\n",
                  infer::precision_name(prec), static_cast<long long>(width),
                  static_cast<long long>(hw), static_cast<double>(pt.theta),
                  pt.rate, density, infer_ns, train_ns, speedup);

      json.begin_row();
      json.field("width", static_cast<double>(width));
      json.field("hw", static_cast<double>(hw));
      json.field("theta", static_cast<double>(pt.theta));
      json.field("firing_rate", pt.rate);
      json.field("precision", infer::precision_name(prec));
      json.field("achieved_density", density);
      json.field("infer_ns_per_step", infer_ns);
      json.field("train_ns_per_step", train_ns);
      json.field("speedup_vs_training", speedup);
      json.field("packed_dispatches",
                 static_cast<double>(stats.packed_dispatches));
      json.field("dense_dispatches",
                 static_cast<double>(stats.dense_dispatches));
      json.field("energy_pj_per_step",
                 stats.energy_pj() / static_cast<double>(steps));
      json.field("weight_bytes", static_cast<double>(plan->weight_bytes()));
      if (i8) {
        json.field("weight_ratio_vs_fp32", weight_ratio);
        json.field("top1_agreement", agreement);
      }
      json.field("hardware_threads", hardware_threads);
      benchcfg::provenance_fields(json);
      json.end_row();
    }
  }

  if (!all_equal) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
