// Microbenchmarks for the Bayesian-optimization substrate: GP fit/predict
// scaling with observation count and acquisition evaluation over a
// candidate pool (the per-iteration cost of the paper's search).

#include <benchmark/benchmark.h>

#include "opt/acquisition.h"
#include "opt/encoding.h"
#include "opt/gp.h"
#include "util/rng.h"

namespace snnskip {
namespace {

std::vector<std::vector<double>> random_points(int n, int slots,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EncodingVec code(static_cast<std::size_t>(slots));
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    xs.push_back(one_hot_features(code));
  }
  return xs;
}

void BM_GpFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto xs = random_points(n, 18, 1);
  Rng rng(2);
  std::vector<double> ys;
  for (int i = 0; i < n; ++i) ys.push_back(rng.normal());
  for (auto _ : state) {
    GaussianProcess gp(std::make_shared<RbfKernel>(2.0, 1.0), 1e-3);
    gp.fit(xs, ys);
    benchmark::DoNotOptimize(gp.num_observations());
  }
}
BENCHMARK(BM_GpFit)->Arg(8)->Arg(32)->Arg(128);

void BM_GpPredict(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto xs = random_points(n, 18, 3);
  Rng rng(4);
  std::vector<double> ys;
  for (int i = 0; i < n; ++i) ys.push_back(rng.normal());
  GaussianProcess gp(std::make_shared<RbfKernel>(2.0, 1.0), 1e-3);
  gp.fit(xs, ys);
  const auto probe = random_points(1, 18, 5)[0];
  for (auto _ : state) {
    const GpPrediction p = gp.predict(probe);
    benchmark::DoNotOptimize(p.mean);
  }
}
BENCHMARK(BM_GpPredict)->Arg(8)->Arg(32)->Arg(128);

void BM_AcquisitionSweep(benchmark::State& state) {
  // Score a 256-candidate pool — one BO proposal round.
  const auto xs = random_points(32, 18, 6);
  Rng rng(7);
  std::vector<double> ys;
  for (int i = 0; i < 32; ++i) ys.push_back(rng.normal());
  GaussianProcess gp(std::make_shared<RbfKernel>(2.0, 1.0), 1e-3);
  gp.fit(xs, ys);
  const auto pool = random_points(256, 18, 8);
  for (auto _ : state) {
    double best = -1e18;
    for (const auto& cand : pool) {
      const GpPrediction p = gp.predict(cand);
      best = std::max(best, acquisition_score(AcquisitionKind::Ucb, p, 0.0,
                                              2.0));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_AcquisitionSweep);

void BM_OneHotFeaturize(benchmark::State& state) {
  Rng rng(9);
  EncodingVec code(24);
  for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
  for (auto _ : state) {
    auto f = one_hot_features(code);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_OneHotFeaturize);

}  // namespace
}  // namespace snnskip

BENCHMARK_MAIN();
