// Micro-benchmark for the deterministic data-parallel engine (ISSUE 5).
//
// Sweeps shard count x worker count over a small spiking block and times
// one sharded train_batch step against the legacy serial step, emitting
// BENCH_data_parallel.json (ns/batch per config, speedup vs serial, and
// the host's hardware_threads so the regression gate can tell a real
// slowdown from a box that simply lacks the cores to go faster).
//
// The engine's contract is bitwise worker invariance: before timing, each
// worker count takes one step from an identical initial state and the
// resulting parameters are memcmp'd against the 1-worker reference. Any
// mismatch fails the binary with exit code 1 — the ctest smoke variant
// (--smoke 1) keeps one tiny config so tier-1 runs exercise this check
// without paying for the timing sweep.
//
// Usage: micro_data_parallel [--smoke 1] [--out BENCH_data_parallel.json]
//                            [--min-ms 50]

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synthetic_dvs_cifar.h"
#include "models/zoo.h"
#include "train/data_parallel.h"
#include "train/trainer.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace snnskip {
namespace {

struct BenchSetup {
  SyntheticConfig data;
  ModelConfig model;
  std::int64_t batch_size;
  std::int64_t timesteps;
};

BenchSetup make_setup(bool smoke) {
  BenchSetup s;
  s.data.height = smoke ? 8 : 12;
  s.data.width = smoke ? 8 : 12;
  s.data.timesteps = 4;
  s.data.train_size = 64;
  s.data.seed = 31;
  s.model.mode = NeuronMode::Spiking;
  s.model.in_channels = 2;
  s.model.num_classes = 10;
  s.model.max_timesteps = 4;
  s.model.width = smoke ? 4 : 8;
  s.model.seed = 5;
  s.batch_size = smoke ? 16 : 32;
  s.timesteps = 4;
  return s;
}

Network make_net(const BenchSetup& s) {
  return build_model("single_block", s.model,
                     default_adjacencies("single_block", s.model));
}

Batch load_batch(const BenchSetup& s) {
  SyntheticDvsCifar ds(s.data, Split::Train);
  DataLoader loader(ds, s.batch_size, /*shuffle=*/false, 0);
  loader.start_epoch(0);
  Batch batch;
  if (!loader.next(batch)) std::abort();
  return batch;
}

/// One sharded step from a fresh net; fills `params` with the post-step
/// parameter bytes for the bitwise cross-check.
void dp_step_params(const BenchSetup& s, const Batch& batch,
                    std::int64_t shards, std::int64_t workers,
                    std::vector<std::vector<float>>& params) {
  Network net = make_net(s);
  EventEncoder enc(s.timesteps, s.model.in_channels);
  DataParallelConfig cfg;
  cfg.workers = workers;
  cfg.shards = shards;
  cfg.replica_factory = [&s] { return make_net(s); };
  DataParallelEngine engine(net, cfg, enc, s.timesteps,
                            LossKind::MeanLogitCE);
  auto ps = net.parameters();
  Sgd opt(ps, 0.01f, 0.9f, 0.f);
  engine.train_batch(batch, opt, 5.f);
  params.clear();
  for (const Parameter* p : ps) {
    params.emplace_back(p->value.data(),
                        p->value.data() + p->value.numel());
  }
}

/// Mean ns per sharded train_batch, timing until `min_ms` of work. The
/// weights drift across reps (each rep is a real SGD step), which is fine
/// for timing — the determinism check above uses single fresh steps.
double time_dp_ns(const BenchSetup& s, const Batch& batch,
                  std::int64_t shards, std::int64_t workers, double min_ms) {
  Network net = make_net(s);
  EventEncoder enc(s.timesteps, s.model.in_channels);
  DataParallelConfig cfg;
  cfg.workers = workers;
  cfg.shards = shards;
  cfg.replica_factory = [&s] { return make_net(s); };
  DataParallelEngine engine(net, cfg, enc, s.timesteps,
                            LossKind::MeanLogitCE);
  auto ps = net.parameters();
  Sgd opt(ps, 0.01f, 0.9f, 0.f);
  engine.train_batch(batch, opt, 5.f);  // warm up the workspace arena
  std::int64_t reps = 0;
  Timer t;
  do {
    engine.train_batch(batch, opt, 5.f);
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(reps);
}

/// Mean ns per legacy (unsharded) train_batch on the same problem.
double time_serial_ns(const BenchSetup& s, const Batch& batch,
                      double min_ms) {
  Network net = make_net(s);
  EventEncoder enc(s.timesteps, s.model.in_channels);
  auto ps = net.parameters();
  Sgd opt(ps, 0.01f, 0.9f, 0.f);
  train_batch(net, enc, batch, s.timesteps, opt, 5.f);
  std::int64_t reps = 0;
  Timer t;
  do {
    train_batch(net, enc, batch, s.timesteps, opt, 5.f);
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(reps);
}

bool params_equal(const std::vector<std::vector<float>>& a,
                  const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 2.0 : 50.0);
  const std::string out_path = args.get("out", "BENCH_data_parallel.json");

  std::vector<std::int64_t> shard_counts;
  std::vector<std::int64_t> worker_counts;
  if (smoke) {
    shard_counts = {4};
    worker_counts = {1, 4};
  } else {
    shard_counts = {4, 8};
    worker_counts = {1, 2, 4, 8};
  }
  const double hardware_threads =
      static_cast<double>(std::thread::hardware_concurrency());

  const BenchSetup setup = make_setup(smoke);
  const Batch batch = load_batch(setup);

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%8s %8s %14s %14s %9s %10s %9s\n", "shards", "workers",
              "dp_ns", "serial_ns", "speedup", "bitwise", "hw_thr");

  bool all_identical = true;
  const double serial_ns = time_serial_ns(setup, batch, min_ms);
  for (std::int64_t shards : shard_counts) {
    std::vector<std::vector<float>> reference;
    dp_step_params(setup, batch, shards, /*workers=*/1, reference);
    for (std::int64_t workers : worker_counts) {
      std::vector<std::vector<float>> got;
      dp_step_params(setup, batch, shards, workers, got);
      const bool identical = params_equal(reference, got);
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: worker-invariance violated (shards=%lld "
                     "workers=%lld differs from workers=1)\n",
                     static_cast<long long>(shards),
                     static_cast<long long>(workers));
        all_identical = false;
      }
      const double dp_ns = time_dp_ns(setup, batch, shards, workers, min_ms);
      const double speedup = dp_ns > 0.0 ? serial_ns / dp_ns : 0.0;
      std::printf("%8lld %8lld %14.0f %14.0f %8.2fx %10s %9.0f\n",
                  static_cast<long long>(shards),
                  static_cast<long long>(workers), dp_ns, serial_ns, speedup,
                  identical ? "ok" : "MISMATCH", hardware_threads);

      json.begin_row();
      json.field("shards", static_cast<double>(shards));
      json.field("workers", static_cast<double>(workers));
      json.field("dp_ns_per_batch", dp_ns);
      json.field("serial_ns_per_batch", serial_ns);
      json.field("speedup_vs_serial", speedup);
      json.field("bitwise_identical", identical ? 1.0 : 0.0);
      json.field("hardware_threads", hardware_threads);
      benchcfg::provenance_fields(json);
      json.end_row();
    }
  }

  if (!all_identical) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
