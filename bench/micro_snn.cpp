// Microbenchmarks for the spiking runtime: LIF step throughput, surrogate
// backward, encoder throughput, and a full block timestep.

#include <benchmark/benchmark.h>

#include "graph/block.h"
#include "snn/encoders.h"
#include "snn/lif.h"

namespace snnskip {
namespace {

void BM_LifForward(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Lif lif(LifConfig{});
  Rng rng(1);
  Tensor x = Tensor::randn(Shape{n}, rng, 0.5f, 0.5f);
  for (auto _ : state) {
    Tensor s = lif.forward(x, false);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LifForward)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_LifTrainStep(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Lif lif(LifConfig{});
  Rng rng(2);
  Tensor x = Tensor::randn(Shape{n}, rng, 0.5f, 0.5f);
  Tensor g = Tensor::randn(Shape{n}, rng);
  for (auto _ : state) {
    Tensor s = lif.forward(x, true);
    Tensor gx = lif.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LifTrainStep)->Arg(16384);

void BM_SurrogateGrad(benchmark::State& state) {
  const Surrogate s{static_cast<SurrogateKind>(state.range(0)), 5.f};
  float u = -1.f;
  for (auto _ : state) {
    float acc = 0.f;
    for (int i = 0; i < 1024; ++i) {
      acc += s.grad(u);
      u += 0.001f;
      if (u > 1.f) u = -1.f;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SurrogateGrad)->Arg(0)->Arg(1)->Arg(2);

void BM_PoissonEncode(benchmark::State& state) {
  PoissonEncoder enc(3);
  Rng rng(4);
  Tensor x = Tensor::rand(Shape{8, 3, 16, 16}, rng);
  for (auto _ : state) {
    Tensor s = enc.encode(x, 0);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_PoissonEncode);

void BM_BlockTimestep(benchmark::State& state) {
  // One forward timestep of the Fig. 1 probe block with mixed skips.
  Rng rng(5);
  BlockSpec spec;
  spec.name = "bench";
  spec.in_channels = 8;
  for (int i = 0; i < 4; ++i) {
    spec.nodes.push_back(NodePlan{NodeOp::Conv3x3, 8, 1, true});
  }
  Adjacency adj(4);
  adj.set(0, 2, SkipType::DSC);
  adj.set(1, 3, SkipType::ASC);
  adj.set(0, 4, SkipType::DSC);
  BlockConfig cfg;
  cfg.max_timesteps = 8;
  Block block(spec, adj, cfg, rng);
  Tensor x = Tensor::randn(Shape{8, 8, 12, 12}, rng, 0.5f, 0.5f);
  for (auto _ : state) {
    Tensor y = block.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BlockTimestep);

}  // namespace
}  // namespace snnskip

BENCHMARK_MAIN();
