// Future-work extension (paper §V): "we plan to further improve the
// performance of SNNs by incorporating backward connections into our
// hyperparameter optimization."
//
// This harness runs the same BO pipeline twice on the gesture task (the
// most temporal of the three benchmarks): once over the paper's forward-
// only skip space, once over the extended space that also contains
// one-step-delayed backward (recurrent) edges. Reported: best validation
// accuracy found, plus the test accuracy / firing rate / MACs of each
// winner. Expectation: on a task where the label is carried by motion,
// the recurrent space should match or beat the forward-only space.

#include <cstdio>

#include "bench_common.h"
#include "core/adapter.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "train/evaluate.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace snnskip;

namespace {

struct Outcome {
  double best_val = 0.0;
  double test_acc = 0.0;
  double rate = 0.0;
  std::int64_t macs = 0;
  std::size_t slots = 0;
  double seconds = 0.0;
};

Outcome run_search(const CliArgs& args, bool include_recurrent) {
  EvaluatorConfig ecfg;
  ecfg.model = args.get("model", "single_block");
  ecfg.model_cfg.width = benchcfg::width(args, 6);
  ecfg.finetune = benchcfg::train_config(args, 1);
  ecfg.finetune.epochs = 1;
  ecfg.scratch = benchcfg::train_config(args, 6);
  ecfg.seed = 201;
  ecfg.include_recurrent = include_recurrent;

  SyntheticConfig dc = benchcfg::data_config(args);
  dc.timesteps = 8;  // gestures are temporal
  CandidateEvaluator evaluator(ecfg, make_datasets("dvs128-gesture", dc));

  Timer timer;
  // Warm start with the default topology, as the pipeline does.
  Network base = evaluator.build(evaluator.space().encode(
      default_adjacencies(ecfg.model, evaluator.model_config())));
  fit(base, NeuronMode::Spiking, evaluator.data().train, nullptr,
      ecfg.scratch);
  evaluator.store().store_from(base);

  BoConfig bo;
  bo.initial_design = 3;
  bo.iterations = args.get_int("iterations", 3);
  bo.batch_k = 2;
  bo.candidate_pool = 64;
  bo.noise = 1e-2;
  bo.seed = 211;
  const SearchTrace trace = bo_trace(evaluator, bo);

  // Final training of the winner.
  Network best = evaluator.build(trace.best);
  evaluator.store().load_into(best);
  fit(best, NeuronMode::Spiking, evaluator.data().train, nullptr,
      ecfg.scratch);
  FiringRateRecorder rec;
  const EvalResult test = evaluate(best, NeuronMode::Spiking,
                                   *evaluator.data().test, ecfg.scratch, &rec);

  Outcome out;
  out.best_val = -trace.best_value;
  out.test_acc = test.accuracy;
  out.rate = test.firing_rate;
  out.macs = evaluator.candidate_macs(trace.best);
  out.slots = evaluator.space().num_slots();
  out.seconds = timer.elapsed_s();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  std::printf("=== Extension: backward (one-step-delayed) connections in "
              "the search space (paper future work, DVS gesture task) "
              "===\n\n");

  const Outcome fwd = run_search(args, false);
  std::printf("forward-only space done (%.1fs)\n", fwd.seconds);
  const Outcome rec = run_search(args, true);
  std::printf("recurrent-extended space done (%.1fs)\n\n", rec.seconds);

  TextTable table({"search space", "slots", "best val acc", "test acc",
                   "firing rate", "MACs/step"});
  CsvWriter csv("ext_backward_connections.csv",
                {"space", "slots", "best_val", "test_acc", "rate", "macs"});
  auto emit = [&](const char* label, const Outcome& o) {
    table.add_row({label, std::to_string(o.slots), pct(o.best_val),
                   pct(o.test_acc), pct(o.rate),
                   std::to_string(o.macs)});
    csv.row({label, CsvWriter::num(o.slots), CsvWriter::num(o.best_val),
             CsvWriter::num(o.test_acc), CsvWriter::num(o.rate),
             CsvWriter::num(static_cast<std::size_t>(o.macs))});
  };
  emit("forward-only", fwd);
  emit("with-backward", rec);

  std::printf("%s\n", table.str().c_str());
  std::printf("rows written to ext_backward_connections.csv\n");
  std::printf("reading: the extended space contains the forward-only space, "
              "so with enough search budget it can only help; at small "
              "budgets the larger space costs exploration.\n");
  return 0;
}
