// Micro-benchmark for the runtime-dispatched GEMM microkernels (ISSUE 9).
//
// Sweeps L2-resident square shapes (plus the thin spike-panel shapes the
// conv path produces) across the dispatch levels — scalar, AVX2, AVX2+FMA
// when the host has them — and emits BENCH_gemm.json (GFLOP/s and ns per
// call, one row per shape x level). Each sweep also times a reference
// microkernel compiled with compiler vectorization DISABLED ("scalar_ref"
// rows): the dispatch-level "scalar" table is deliberately left eligible
// for compiler auto-vectorization (it is the fallback real non-AVX2 hosts
// run), so the honest "hand-SIMD vs the scalar microkernel" comparison —
// the ISSUE 9 >=3x acceptance line — is speedup_vs_scalar_ref on the
// avx2/avx2fma rows.
//
// The scalar-vs-AVX2 outputs are cross-checked bitwise on every
// configuration (the dispatch contract, DESIGN.md §5j), so the ctest
// smoke variant verifies the equivalence on every tier-1 run.
//
// Usage: micro_gemm [--smoke 1] [--out BENCH_gemm.json] [--min-ms 50]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tensor/gemm.h"
#include "tensor/simd_ops.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

struct GemmShape {
  std::int64_t m, n, k;
  const char* tag;
};

// True-scalar reference: the same row-major C += A*B kernel, with the
// compiler's auto-vectorizer switched off so it executes one float at a
// time — what "the scalar microkernel" means before any SIMD, compiler-
// or hand-written.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#endif
void ref_gemm_novec(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) ci[j] = 0.f;
    for (std::int64_t p = 0; p < k; ++p) {
      const float ap = a[i * k + p];
      const float* bp = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += ap * bp[j];
    }
  }
}

template <class F>
double time_ns(double min_ms, F&& body) {
  for (int i = 0; i < 3; ++i) body();
  std::int64_t reps = 0;
  Timer t;
  do {
    body();
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(reps);
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 2.0 : 50.0);
  const std::string out_path = args.get("out", "BENCH_gemm.json");

  std::vector<GemmShape> shapes;
  if (smoke) {
    shapes = {{48, 48, 48, "square"}, {33, 47, 65, "odd"}};
  } else {
    // Squares up to ~L2 residency plus the tall-thin panel shapes the
    // im2col'd conv layers actually run (O x HoWo x CKK).
    shapes = {{64, 64, 64, "square"},    {128, 128, 128, "square"},
              {192, 192, 192, "square"}, {256, 256, 256, "square"},
              {64, 1024, 576, "conv_panel"}, {128, 256, 1152, "conv_panel"},
              {33, 47, 131, "odd"}};
  }

  std::vector<SimdLevel> levels = {SimdLevel::Scalar};
  if (simd_avx2_compiled() && cpu_has_avx2()) {
    levels.push_back(SimdLevel::Avx2);
    if (max_simd_level() >= SimdLevel::Avx2Fma) {
      levels.push_back(SimdLevel::Avx2Fma);
    }
  }

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }

  const SimdLevel entry_level = active_simd();
  std::printf("%12s %6s %6s %6s %12s %12s %10s %9s\n", "shape", "m", "n",
              "k", "simd", "ns_per_call", "gflops", "vs_ref");

  auto emit = [&](const GemmShape& sh, const char* level_tag, double ns,
                  double ref_ns) {
    const double flops = 2.0 * static_cast<double>(sh.m) *
                         static_cast<double>(sh.n) *
                         static_cast<double>(sh.k);
    const double gflops = flops / ns;  // flops per ns == GFLOP/s
    const double vs_ref = ref_ns > 0.0 ? ref_ns / ns : 1.0;
    std::printf("%12s %6lld %6lld %6lld %12s %12.0f %10.2f %8.2fx\n",
                sh.tag, static_cast<long long>(sh.m),
                static_cast<long long>(sh.n), static_cast<long long>(sh.k),
                level_tag, ns, gflops, vs_ref);
    json.begin_row();
    json.field("shape", sh.tag);
    json.field("m", static_cast<double>(sh.m));
    json.field("n", static_cast<double>(sh.n));
    json.field("k", static_cast<double>(sh.k));
    json.field("ns_per_call", ns);
    json.field("gflops", gflops);
    json.field("speedup_vs_scalar_ref", vs_ref);
    // Provenance by hand (not benchcfg::provenance_fields): the scalar_ref
    // row is not a dispatch level, so "simd" carries the row's own tag.
    json.field("simd", level_tag);
    json.field("cpu", cpu_signature());
    json.field("tune_profile", kernel_config_profile_id());
    json.end_row();
  };

  bool all_equal = true;
  for (const GemmShape& sh : shapes) {
    Rng rng(91);
    std::vector<float> a(static_cast<std::size_t>(sh.m * sh.k));
    std::vector<float> b(static_cast<std::size_t>(sh.k * sh.n));
    std::vector<float> c(static_cast<std::size_t>(sh.m * sh.n), 0.f);
    for (float& x : a) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (float& x : b) x = static_cast<float>(rng.uniform(-1.0, 1.0));

    const double ref_ns = time_ns(min_ms, [&] {
      ref_gemm_novec(sh.m, sh.n, sh.k, a.data(), b.data(), c.data());
    });
    emit(sh, "scalar_ref", ref_ns, ref_ns);

    // Bitwise cross-check: the scalar and (unfused) AVX2 tables must
    // agree exactly; Avx2Fma is exempt (explicitly reassociated).
    std::vector<float> c_scalar;
    for (SimdLevel lvl : levels) {
      if (set_active_simd(lvl) != lvl) continue;
      const double ns = time_ns(min_ms, [&] {
        gemm(sh.m, sh.n, sh.k, 1.f, a.data(), b.data(), 0.f, c.data());
      });
      if (lvl == SimdLevel::Scalar) {
        c_scalar = c;
      } else if (lvl == SimdLevel::Avx2 &&
                 std::memcmp(c_scalar.data(), c.data(),
                             c.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL: scalar/avx2 gemm mismatch at %lldx%lldx%lld\n",
                     static_cast<long long>(sh.m),
                     static_cast<long long>(sh.n),
                     static_cast<long long>(sh.k));
        all_equal = false;
      }
      emit(sh, to_string(lvl), ns, ref_ns);
    }
  }
  set_active_simd(entry_level);

  if (!all_equal) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
