// Closed-loop load generator for the snnskip-serve core (ISSUE 7).
//
// Sweeps model count x client concurrency against a Server with dynamic
// batching and compares sustained throughput to a serial
// request-at-a-time baseline: one thread driving a batch-1 compiled
// Engine directly, one sequence after another — the pre-serve deployment
// model. The served configuration wins on two axes the baseline lacks:
// concurrent batch execution on the worker pool and batched kernels
// amortizing per-step dispatch/im2col overhead.
//
// Every served response is cross-checked against a precomputed direct
// Engine reference for the same request at 1e-4 (the documented BN-fold
// tolerance); any mismatch fails the binary. The smoke variant
// (--smoke 1) runs in ctest, so the full submit -> batch -> lease ->
// execute -> future path is exercised under the sanitizer jobs on every
// tier-1 run.
//
// --transport socket (ISSUE 8) routes every request over the loopback TCP
// transport instead of in-process submit(): each client thread owns a
// serve::Client speaking the CRC-framed wire protocol against a
// SocketServer on an ephemeral port, with the full retry/backoff policy
// live. The same 1e-4 cross-check applies to every over-the-wire result,
// so encode -> frame -> decode -> batch -> encode -> decode is proven
// bit-faithful under load, not just in unit tests.
//
// Emitted rows (BENCH_serve.json) are keyed on (models, clients) with
// metric throughput_vs_serial; `workers` is the gate's threads_field so
// smaller machines skip rows they cannot reproduce. Socket-mode rows only
// appear when --transport socket is passed (separate --out), so the
// default bench output gates unchanged.
//
// Usage: serve_load [--smoke 1] [--out BENCH_serve.json] [--min-ms 400]
//                   [--workers N] [--transport inproc|socket]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "infer/engine.h"
#include "serve/client.h"
#include "serve/model_registry.h"
#include "serve/options.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip {
namespace {

using serve::LoadedModel;
using serve::ModelHandle;
using serve::ModelRegistry;
using serve::ModelSpec;
using serve::ServeOptions;
using serve::Server;

constexpr std::int64_t kTimesteps = 6;
constexpr std::int64_t kBatch = 8;
constexpr std::size_t kRequestsPerModel = 16;

struct SweepPoint {
  int models;
  int clients;
};

ModelSpec make_spec(int idx, std::int64_t batch) {
  ModelSpec spec;
  spec.name = "m" + std::to_string(idx) + (batch == 1 ? ".serial" : "");
  spec.config.width = 8;
  spec.config.in_channels = 2;
  spec.config.max_timesteps = kTimesteps;
  spec.config.seed = 7;  // same seed both batch shapes -> same weights
  spec.config.lif.threshold = idx % 2 == 0 ? 1.0f : 2.0f;
  spec.warm_bn_steps = kTimesteps;
  spec.batch = batch;
  spec.in_h = 12;
  spec.in_w = 12;
  return spec;
}

struct RequestSet {
  std::string model;
  std::vector<std::vector<Tensor>> frames;  // per request: T x (C,H,W)
  std::vector<Tensor> reference;            // rate-accumulated head output
};

// Precompute requests + references with a batch-1 engine: slot 0 is the
// whole batch, so the reference IS the request-at-a-time answer.
RequestSet build_requests(const ModelHandle& serial_model, int model_idx) {
  RequestSet rs;
  rs.model = "m" + std::to_string(model_idx);
  const infer::Plan& plan = *serial_model->plan();
  const Shape frame{plan.input_shape[1], plan.input_shape[2],
                    plan.input_shape[3]};
  const std::int64_t classes = plan.output_shape.numel();
  Rng rng(500 + static_cast<std::uint64_t>(model_idx));
  LoadedModel::Lease lease = serial_model->lease();
  Tensor out;
  for (std::size_t r = 0; r < kRequestsPerModel; ++r) {
    std::vector<Tensor> frames;
    for (std::int64_t t = 0; t < kTimesteps; ++t) {
      frames.push_back(Tensor::bernoulli(frame, rng, 0.4f));
    }
    Tensor ref(Shape{classes});
    ref.fill(0.f);
    lease->reset();
    for (const Tensor& x : frames) {
      lease->step(x.reshape(plan.input_shape), &out);
      for (std::int64_t c = 0; c < classes; ++c) {
        ref.data()[c] += out.data()[c];
      }
    }
    rs.frames.push_back(std::move(frames));
    rs.reference.push_back(std::move(ref));
  }
  return rs;
}

// Serial baseline: one thread, one batch-1 engine per model, requests
// executed to completion one at a time round-robin across models.
double serial_throughput(const std::vector<ModelHandle>& serial_models,
                         const std::vector<RequestSet>& sets, double min_ms) {
  std::vector<LoadedModel::Lease> leases;
  leases.reserve(serial_models.size());
  for (const ModelHandle& m : serial_models) leases.push_back(m->lease());
  Tensor out;
  std::int64_t done = 0;
  Timer t;
  do {
    const std::size_t m = static_cast<std::size_t>(done) % sets.size();
    const auto& frames =
        sets[m].frames[static_cast<std::size_t>(done) % kRequestsPerModel];
    const Shape& in = serial_models[m]->plan()->input_shape;
    leases[m]->reset();
    for (const Tensor& x : frames) leases[m]->step(x.reshape(in), &out);
    ++done;
  } while (t.elapsed_ms() < min_ms);
  return static_cast<double>(done) / t.elapsed_s();
}

struct LoadResult {
  double throughput = 0.0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  double mean_occupancy = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool ok = true;
};

// Closed-loop clients: each waits for its response before submitting the
// next request, checking every response against the precomputed
// reference.
LoadResult served_throughput(Server& server,
                             const std::vector<RequestSet>& sets, int clients,
                             double min_ms) {
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<bool> bad{false};
  std::atomic<bool> stop{false};
  Timer t;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t i = static_cast<std::uint64_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t m = i % sets.size();
        const std::size_t r = (i / sets.size()) % kRequestsPerModel;
        ++i;
        Server::Ticket ticket =
            server.submit(sets[m].model, sets[m].frames[r]);
        if (!ticket.accepted) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::microseconds(ticket.retry_after_us));
          continue;
        }
        const Tensor got = ticket.result.get();
        if (Tensor::max_abs_diff(got, sets[m].reference[r]) > 1e-4f) {
          bad.store(true, std::memory_order_relaxed);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (t.elapsed_ms() < min_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  const double elapsed_s = t.elapsed_s();

  LoadResult res;
  const serve::ServeStats stats = server.stats();
  res.completed = completed.load();
  res.rejected = rejected.load();
  res.throughput = static_cast<double>(res.completed) / elapsed_s;
  res.mean_occupancy = stats.mean_batch_occupancy;
  res.p50_ms = stats.p50_ms;
  res.p99_ms = stats.p99_ms;
  res.ok = !bad.load() && stats.failed == 0;
  return res;
}

// Same closed loop, but over the wire: each client thread owns one
// serve::Client connected to `port`, so every request pays encode +
// loopback TCP + decode and exercises the retry/backoff policy for real
// (admission rejections surface as client-side retries, not bench
// sleeps).
LoadResult socket_throughput(Server& server, int port,
                             const std::vector<RequestSet>& sets, int clients,
                             double min_ms) {
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<bool> bad{false};
  std::atomic<bool> stop{false};
  Timer t;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::ClientOptions copts;
      copts.port = port;
      copts.jitter_seed = 42 + static_cast<std::uint64_t>(c);
      serve::Client client(std::move(copts));
      std::uint64_t i = static_cast<std::uint64_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t m = i % sets.size();
        const std::size_t r = (i / sets.size()) % kRequestsPerModel;
        ++i;
        const serve::Client::Result res =
            client.infer(sets[m].model, sets[m].frames[r]);
        rejected.fetch_add(res.retries, std::memory_order_relaxed);
        if (!res.ok) {
          // Backpressure surviving all retries is load, not corruption;
          // anything else over loopback is a real failure.
          if (res.status != serve::wire::Status::Rejected) {
            std::fprintf(stderr, "socket client %d: %s (%s)\n", c,
                         res.error.c_str(),
                         serve::wire::status_name(res.status));
            bad.store(true, std::memory_order_relaxed);
            return;
          }
          continue;
        }
        if (Tensor::max_abs_diff(res.value, sets[m].reference[r]) > 1e-4f) {
          bad.store(true, std::memory_order_relaxed);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (t.elapsed_ms() < min_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : threads) th.join();
  const double elapsed_s = t.elapsed_s();

  LoadResult res;
  const serve::ServeStats stats = server.stats();
  res.completed = completed.load();
  res.rejected = rejected.load();
  res.throughput = static_cast<double>(res.completed) / elapsed_s;
  res.mean_occupancy = stats.mean_batch_occupancy;
  res.p50_ms = stats.p50_ms;
  res.p99_ms = stats.p99_ms;
  res.ok = !bad.load() && stats.failed == 0;
  return res;
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 60.0 : 400.0);
  const std::string out_path = args.get("out", "BENCH_serve.json");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int workers =
      args.get_int("workers", static_cast<int>(std::min(4u, hw)));
  const std::string transport = args.get("transport", "inproc");
  if (transport != "inproc" && transport != "socket") {
    std::fprintf(stderr, "FAIL: unknown --transport '%s'\n",
                 transport.c_str());
    return 1;
  }
  const bool socket_mode = transport == "socket";

  std::vector<SweepPoint> sweep;
  if (smoke) {
    sweep = {{1, 2}, {2, 8}};
  } else {
    sweep = {{1, 1}, {1, 4}, {1, 8}, {2, 8}, {4, 8}};
  }
  const int max_models =
      std::max_element(sweep.begin(), sweep.end(), [](auto a, auto b) {
        return a.models < b.models;
      })->models;

  // One registry for the whole run: batch-8 served models plus batch-1
  // serial twins (same seed + warmup => identical weights).
  ModelRegistry registry(static_cast<std::size_t>(2 * max_models));
  std::vector<ModelHandle> serial_models;
  std::vector<RequestSet> all_sets;
  for (int m = 0; m < max_models; ++m) {
    serial_models.push_back(registry.load(make_spec(m, 1)));
    all_sets.push_back(build_requests(serial_models.back(), m));
  }

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%7s %8s %8s %11s %11s %7s %7s %8s %8s\n", "models", "clients",
              "workers", "serial_rps", "served_rps", "vs", "occ", "p50ms",
              "p99ms");

  bool all_ok = true;
  for (const SweepPoint& pt : sweep) {
    std::vector<ModelHandle> serial(serial_models.begin(),
                                    serial_models.begin() + pt.models);
    std::vector<RequestSet> sets(all_sets.begin(),
                                 all_sets.begin() + pt.models);
    const double serial_rps = serial_throughput(serial, sets, min_ms);

    ServeOptions opts;
    opts.max_batch = kBatch;
    opts.latency_budget_us = 2000;
    opts.queue_capacity = 256;
    opts.workers = workers;
    Server server(registry, opts);
    for (int m = 0; m < pt.models; ++m) {
      server.add_model(make_spec(m, kBatch));
    }
    LoadResult res;
    if (socket_mode) {
      serve::SocketServer sock(server, opts);  // opts.port 0 -> ephemeral
      res = socket_throughput(server, sock.port(), sets, pt.clients, min_ms);
      sock.shutdown();
    } else {
      res = served_throughput(server, sets, pt.clients, min_ms);
    }
    server.drain();
    if (!res.ok) {
      std::fprintf(stderr,
                   "FAIL: served/reference mismatch or failed requests "
                   "(models=%d clients=%d)\n",
                   pt.models, pt.clients);
      all_ok = false;
    }

    const double vs = serial_rps > 0.0 ? res.throughput / serial_rps : 0.0;
    std::printf("%7d %8d %8d %11.0f %11.0f %6.2fx %7.2f %8.2f %8.2f\n",
                pt.models, pt.clients, workers, serial_rps, res.throughput,
                vs, res.mean_occupancy, res.p50_ms, res.p99_ms);

    json.begin_row();
    json.field("transport", transport);
    json.field("models", static_cast<double>(pt.models));
    json.field("clients", static_cast<double>(pt.clients));
    json.field("workers", static_cast<double>(workers));
    json.field("serial_rps", serial_rps);
    json.field("served_rps", res.throughput);
    json.field("throughput_vs_serial", vs);
    json.field("mean_batch_occupancy", res.mean_occupancy);
    json.field("rejected", static_cast<double>(res.rejected));
    json.field("p50_ms", res.p50_ms);
    json.field("p99_ms", res.p99_ms);
    json.field("hardware_threads", static_cast<double>(hw));
    benchcfg::provenance_fields(json);
    json.end_row();
  }

  if (!all_ok) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
