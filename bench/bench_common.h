#pragma once
// Shared configuration for the experiment harnesses.
//
// Every experiment binary accepts:
//   --scale S   multiply the default budgets (data sizes, epochs) by S
//   --epochs E  override the training epoch count
//   --seeds N   override the number of repeated runs
//   --width W   override the model width
// Defaults are sized to finish on a single CPU core in tens of seconds per
// binary; --scale 4 and up approaches paper-like budgets on bigger irons.

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "tensor/cpu_features.h"
#include "tensor/kernel_config.h"
#include "train/trainer.h"
#include "util/cli.h"
#include "util/json_writer.h"

namespace snnskip::benchcfg {

// JSON emission for BENCH_*.json artifacts lives in util/json_writer.h
// (shared with the telemetry trace exporter); binaries that emit rows
// include it and use `snnskip::JsonArrayWriter` directly.

/// Host/dispatch provenance, stamped into every benchmark row: the active
/// SIMD level and tuning profile change what the numbers mean, so
/// scripts/check_bench_regression.py keys rows on "simd" and refuses to
/// compare across different "tune_profile" ids.
inline void provenance_fields(JsonArrayWriter& json) {
  json.field("simd", to_string(active_simd()));
  json.field("cpu", cpu_signature());
  json.field("tune_profile", kernel_config_profile_id());
}

inline std::size_t scaled(std::size_t base, double scale) {
  const long long v = std::llround(static_cast<double>(base) * scale);
  return static_cast<std::size_t>(std::max(1LL, v));
}

inline SyntheticConfig data_config(const CliArgs& args,
                                   std::uint64_t seed = 42) {
  const double scale = args.get_double("scale", 1.0);
  SyntheticConfig cfg;
  cfg.height = 12;
  cfg.width = 12;
  cfg.timesteps = 6;
  cfg.train_size = scaled(200, scale);
  cfg.val_size = scaled(50, scale);
  cfg.test_size = scaled(50, scale);
  cfg.seed = args.get_u64("data-seed", seed);
  return cfg;
}

inline TrainConfig train_config(const CliArgs& args, std::int64_t epochs) {
  const double scale = args.get_double("scale", 1.0);
  TrainConfig cfg;
  cfg.epochs = args.get_int(
      "epochs", static_cast<int>(scaled(static_cast<std::size_t>(epochs),
                                        std::sqrt(scale))));
  cfg.batch_size = 25;
  cfg.lr = static_cast<float>(
      args.get_double("lr", 0.15));  // tuned for the CPU-scale tasks
  cfg.timesteps = 6;
  cfg.grad_clip = 5.f;
  return cfg;
}

inline int seeds(const CliArgs& args, int def) {
  return args.get_int("seeds", def);
}

inline int width(const CliArgs& args, int def) {
  return args.get_int("width", def);
}

}  // namespace snnskip::benchcfg
