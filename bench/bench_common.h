#pragma once
// Shared configuration for the experiment harnesses.
//
// Every experiment binary accepts:
//   --scale S   multiply the default budgets (data sizes, epochs) by S
//   --epochs E  override the training epoch count
//   --seeds N   override the number of repeated runs
//   --width W   override the model width
// Defaults are sized to finish on a single CPU core in tens of seconds per
// binary; --scale 4 and up approaches paper-like budgets on bigger irons.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "train/trainer.h"
#include "util/cli.h"

namespace snnskip::benchcfg {

// --- JSON emission for benchmark artifacts -------------------------------
// Minimal array-of-objects writer for BENCH_*.json files: numbers and
// strings only, comma bookkeeping handled internally. Usage:
//
//   JsonArrayWriter json("BENCH_foo.json");
//   json.begin_row();
//   json.field("channels", 128.0);
//   json.field("mode", "sparse");
//   json.end_row();
//   // destructor closes the array and the file
class JsonArrayWriter {
 public:
  explicit JsonArrayWriter(const std::string& path)
      : f_(std::fopen(path.c_str(), "w")) {
    if (f_ != nullptr) std::fputs("[\n", f_);
  }
  ~JsonArrayWriter() {
    if (f_ != nullptr) {
      std::fputs("\n]\n", f_);
      std::fclose(f_);
    }
  }
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  bool ok() const { return f_ != nullptr; }

  void begin_row() {
    if (f_ == nullptr) return;
    if (!first_row_) std::fputs(",\n", f_);
    first_row_ = false;
    first_field_ = true;
    std::fputs("  {", f_);
  }
  void field(const char* key, double v) {
    if (f_ == nullptr) return;
    sep();
    std::fprintf(f_, "\"%s\": %.6g", key, v);
  }
  void field(const char* key, const std::string& v) {
    if (f_ == nullptr) return;
    sep();
    std::fprintf(f_, "\"%s\": \"%s\"", key, v.c_str());
  }
  void end_row() {
    if (f_ != nullptr) std::fputs("}", f_);
  }

 private:
  void sep() {
    if (!first_field_) std::fputs(", ", f_);
    first_field_ = false;
  }

  std::FILE* f_ = nullptr;
  bool first_row_ = true;
  bool first_field_ = true;
};

inline std::size_t scaled(std::size_t base, double scale) {
  const long long v = std::llround(static_cast<double>(base) * scale);
  return static_cast<std::size_t>(std::max(1LL, v));
}

inline SyntheticConfig data_config(const CliArgs& args,
                                   std::uint64_t seed = 42) {
  const double scale = args.get_double("scale", 1.0);
  SyntheticConfig cfg;
  cfg.height = 12;
  cfg.width = 12;
  cfg.timesteps = 6;
  cfg.train_size = scaled(200, scale);
  cfg.val_size = scaled(50, scale);
  cfg.test_size = scaled(50, scale);
  cfg.seed = args.get_u64("data-seed", seed);
  return cfg;
}

inline TrainConfig train_config(const CliArgs& args, std::int64_t epochs) {
  const double scale = args.get_double("scale", 1.0);
  TrainConfig cfg;
  cfg.epochs = args.get_int(
      "epochs", static_cast<int>(scaled(static_cast<std::size_t>(epochs),
                                        std::sqrt(scale))));
  cfg.batch_size = 25;
  cfg.lr = static_cast<float>(
      args.get_double("lr", 0.15));  // tuned for the CPU-scale tasks
  cfg.timesteps = 6;
  cfg.grad_clip = 5.f;
  return cfg;
}

inline int seeds(const CliArgs& args, int def) {
  return args.get_int("seeds", def);
}

inline int width(const CliArgs& args, int def) {
  return args.get_int("width", def);
}

}  // namespace snnskip::benchcfg
