// Ablation: search-strategy comparison on a deterministic synthetic
// objective over adjacency-style encodings. Exhaustive enumeration gives
// the exact optimum; BO (the paper's method), regularized evolution and
// random search get matched evaluation budgets. Fast (< 1 s): the
// objective is arithmetic, not training — this isolates the optimizer
// quality from training noise.

#include <cstdio>

#include "metrics/metrics.h"
#include "metrics/report.h"
#include "opt/bayes_opt.h"
#include "opt/evolution.h"
#include "opt/exhaustive.h"
#include "opt/random_search.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace snnskip;

namespace {

// A rugged-but-structured objective over 8 ternary slots: additive
// per-slot preferences plus pairwise interaction terms (neighboring slots
// prefer matching values) — the kind of structure real adjacency spaces
// have (an edge's value matters AND interacts with nearby edges).
double objective(const EncodingVec& code) {
  double v = 0.0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    v += std::abs(code[i] - static_cast<int>((i % 3)));
  }
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i] != code[i + 1]) v += 0.25;
  }
  return v;
}

BoProblem make_problem(int slots) {
  BoProblem p;
  p.sample = [slots](Rng& rng) {
    EncodingVec code(static_cast<std::size_t>(slots));
    for (auto& v : code) v = static_cast<int>(rng.uniform_int(3ULL));
    return code;
  };
  p.featurize = [](const EncodingVec& c) { return one_hot_features(c); };
  p.objective = objective;
  return p;
}

EncodingVec flip_mutate(const EncodingVec& code, Rng& rng) {
  EncodingVec out = code;
  const std::size_t k = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::uint64_t>(code.size())));
  out[k] = (out[k] + 1 + static_cast<int>(rng.uniform_int(2ULL))) % 3;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int slots = args.get_int("slots", 8);
  const int budget = args.get_int("budget", 24);
  const int seeds = args.get_int("seeds", 10);

  std::printf("=== Ablation: search strategies on a synthetic adjacency "
              "objective (%d slots, budget %d, %d seeds) ===\n\n",
              slots, budget, seeds);

  // Ground truth.
  const SearchTrace truth = run_exhaustive(
      static_cast<std::size_t>(slots), [](std::size_t, int) { return true; },
      objective, ExhaustiveConfig{1u << 20});
  std::printf("exhaustive optimum over %zu points: %.2f\n\n",
              truth.observations.size(), truth.best_value);

  RunningStat bo_stat, rs_stat, evo_stat;
  int bo_hits = 0, rs_hits = 0, evo_hits = 0;
  const BoProblem problem = make_problem(slots);

  for (int s = 0; s < seeds; ++s) {
    BoConfig bo;
    bo.initial_design = 4;
    bo.iterations = (budget - bo.initial_design + 1) / 2;
    bo.batch_k = 2;
    bo.candidate_pool = 128;
    bo.auto_lengthscale = true;
    bo.seed = 1000 + static_cast<std::uint64_t>(s);
    const double bo_best = run_bayes_opt(problem, bo).best_value;
    bo_stat.add(bo_best);
    if (bo_best <= truth.best_value + 1e-12) ++bo_hits;

    RsConfig rs;
    rs.evaluations = budget;
    rs.seed = 2000 + static_cast<std::uint64_t>(s);
    const double rs_best = run_random_search(problem, rs).best_value;
    rs_stat.add(rs_best);
    if (rs_best <= truth.best_value + 1e-12) ++rs_hits;

    EvolutionConfig evo;
    evo.evaluations = budget;
    evo.population = 8;
    evo.seed = 3000 + static_cast<std::uint64_t>(s);
    const double evo_best =
        run_evolution(problem, flip_mutate, evo).best_value;
    evo_stat.add(evo_best);
    if (evo_best <= truth.best_value + 1e-12) ++evo_hits;
  }

  TextTable table({"strategy", "best value (mean +/- std)", "optimum hits"});
  CsvWriter csv("ablation_search_strategies.csv",
                {"strategy", "mean", "std", "hits", "seeds"});
  auto emit = [&](const char* label, const RunningStat& st, int hits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f +/- %.3f", st.mean(), st.stddev());
    table.add_row({label, buf,
                   std::to_string(hits) + "/" + std::to_string(seeds)});
    csv.row({label, CsvWriter::num(st.mean()), CsvWriter::num(st.stddev()),
             CsvWriter::num(static_cast<std::size_t>(hits)),
             CsvWriter::num(static_cast<std::size_t>(seeds))});
  };
  emit("bayes-opt (paper)", bo_stat, bo_hits);
  emit("evolution", evo_stat, evo_hits);
  emit("random", rs_stat, rs_hits);

  std::printf("%s\n", table.str().c_str());
  std::printf("rows written to ablation_search_strategies.csv\n");
  std::printf("expected ordering: bayes-opt <= evolution <= random (lower "
              "is better; exhaustive optimum = %.2f).\n", truth.best_value);
  return 0;
}
