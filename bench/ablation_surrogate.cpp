// Ablation: surrogate-gradient family (supports the paper's §II discussion
// of surrogate-gradient training — the approximation choice matters).
//
// Trains the Fig. 1 probe network with each surrogate derivative
// (fast-sigmoid / atan / boxcar) at two sharpness settings and reports test
// accuracy and firing rate. Not a paper figure; an ablation DESIGN.md
// schedules to validate that the library's default (fast-sigmoid, the
// SuperSpike choice) is a reasonable one.

#include <cstdio>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "util/csv.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const SyntheticConfig data_cfg = benchcfg::data_config(args);
  const TrainConfig train_cfg = benchcfg::train_config(args, 6);
  const DatasetBundle data = make_datasets("cifar10-dvs", data_cfg);

  std::printf("=== Ablation: surrogate gradient family on the single-block "
              "probe ===\n\n");

  TextTable table({"surrogate", "scale", "test acc", "firing rate"});
  CsvWriter csv("ablation_surrogate.csv",
                {"surrogate", "scale", "acc", "rate"});

  for (const SurrogateKind kind :
       {SurrogateKind::FastSigmoid, SurrogateKind::Atan,
        SurrogateKind::Boxcar}) {
    for (const float scale : {2.f, 5.f}) {
      ModelConfig mc;
      mc.in_channels = 2;
      mc.num_classes = 10;
      mc.max_timesteps = data_cfg.timesteps;
      mc.width = benchcfg::width(args, 6);
      mc.lif.surrogate.kind = kind;
      mc.lif.surrogate.scale = scale;
      Network net = build_model(
          "single_block", mc, {Adjacency::uniform(4, SkipType::ASC, 2)});
      fit(net, NeuronMode::Spiking, data.train, nullptr, train_cfg);
      FiringRateRecorder rec;
      const EvalResult res =
          evaluate(net, NeuronMode::Spiking, *data.test, train_cfg, &rec);
      table.add_row({to_string(kind),
                     CsvWriter::num(static_cast<double>(scale)),
                     pct(res.accuracy), pct(res.firing_rate)});
      csv.row({to_string(kind), CsvWriter::num(static_cast<double>(scale)),
               CsvWriter::num(res.accuracy), CsvWriter::num(res.firing_rate)});
      std::printf("done: %s scale=%.0f\n", to_string(kind).c_str(), scale);
    }
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("rows written to ablation_surrogate.csv\n");
  return 0;
}
