// Reproduces Fig. 3: Bayesian optimization vs. random search.
//
// Both searches run over the same adjacency space. BO follows the paper's
// method — GP surrogate + UCB, candidates fine-tuned for n epochs from the
// shared supernet weights. RS trains every sampled architecture from
// scratch (the paper's baseline regime). For each search we emit the
// best-so-far validation accuracy per iteration, mean +/- std over seeds —
// exactly the curves with shaded bands the figure plots.
//
// Expected shape (paper): BO dominates RS at every iteration count and its
// band is narrower (more stable across runs).
//
// Output: stdout table + fig3_bo_vs_rs.csv (one row per iteration).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/adapter.h"
#include "metrics/metrics.h"
#include "metrics/report.h"
#include "util/csv.h"
#include "util/timer.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  // single_block by default so the whole figure regenerates in minutes on
  // one core; pass --model resnet18s / densenet121s / mobilenetv2s for the
  // paper's full per-model comparison.
  const std::string model = args.get("model", "single_block");
  const int n_seeds = benchcfg::seeds(args, 3);
  const int evaluations = args.get_int("evaluations", 8);

  std::printf("=== Fig. 3: BO vs random search on %s (%d seeds, %d "
              "evaluations each) ===\n\n",
              model.c_str(), n_seeds, evaluations);

  // best-so-far objective (= -val accuracy) per evaluation, per seed.
  std::vector<std::vector<double>> bo_curves, rs_curves;
  std::vector<double> bo_times, rs_times;

  for (int seed = 0; seed < n_seeds; ++seed) {
    EvaluatorConfig ecfg;
    ecfg.model = model;
    ecfg.model_cfg.width = benchcfg::width(args, 4);
    ecfg.model_cfg.seed = 300 + static_cast<std::uint64_t>(seed);
    ecfg.finetune = benchcfg::train_config(args, 1);
    ecfg.finetune.epochs = args.get_int("finetune-epochs", 2);
    ecfg.scratch = benchcfg::train_config(args, 6);
    ecfg.seed = 400 + static_cast<std::uint64_t>(seed);
    SyntheticConfig dc = benchcfg::data_config(args);

    // Seed the shared weights with the default topology, as the pipeline
    // does, so BO fine-tuning starts warm.
    {
      CandidateEvaluator warm(ecfg, make_datasets("cifar10-dvs", dc));
      Network base = warm.build(
          warm.space().encode(default_adjacencies(model, warm.model_config())));
      fit(base, NeuronMode::Spiking, warm.data().train, nullptr,
          ecfg.scratch);
      warm.store().store_from(base);

      BoConfig bo;
      bo.initial_design = 2;
      bo.iterations = (evaluations - bo.initial_design + 1) / 2;
      bo.batch_k = 2;
      bo.candidate_pool = 64;
      bo.noise = 1e-2;
      bo.seed = 500 + static_cast<std::uint64_t>(seed);
      Timer t;
      const SearchTrace trace = bo_trace(warm, bo);
      bo_times.push_back(t.elapsed_s());
      bo_curves.push_back(trace.best_so_far);
    }
    {
      CandidateEvaluator fresh(ecfg, make_datasets("cifar10-dvs", dc));
      RsConfig rs;
      rs.evaluations = evaluations;
      rs.seed = 600 + static_cast<std::uint64_t>(seed);
      Timer t;
      const SearchTrace trace = rs_trace(fresh, rs);
      rs_times.push_back(t.elapsed_s());
      rs_curves.push_back(trace.best_so_far);
    }
    std::printf("seed %d done (BO %.1fs, RS %.1fs)\n", seed,
                bo_times.back(), rs_times.back());
  }

  // Aggregate per-iteration (convert minimized objective back to accuracy).
  const std::size_t iters =
      std::min(bo_curves[0].size(), rs_curves[0].size());
  TextTable table({"iteration", "BO best acc", "RS best acc"});
  CsvWriter csv("fig3_bo_vs_rs.csv",
                {"iteration", "bo_mean", "bo_std", "rs_mean", "rs_std"});
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<double> bo_vals, rs_vals;
    for (int s = 0; s < n_seeds; ++s) {
      bo_vals.push_back(-bo_curves[static_cast<std::size_t>(s)][i]);
      rs_vals.push_back(-rs_curves[static_cast<std::size_t>(s)][i]);
    }
    table.add_row({std::to_string(i + 1),
                   pct_with_std(mean_of(bo_vals), stddev_of(bo_vals)),
                   pct_with_std(mean_of(rs_vals), stddev_of(rs_vals))});
    csv.row({CsvWriter::num(i + 1), CsvWriter::num(mean_of(bo_vals)),
             CsvWriter::num(stddev_of(bo_vals)),
             CsvWriter::num(mean_of(rs_vals)),
             CsvWriter::num(stddev_of(rs_vals))});
  }

  std::printf("\n%s\n", table.str().c_str());
  std::printf("mean search time: BO %.1fs vs RS %.1fs (weight sharing is "
              "the paper's cost saver)\n",
              mean_of(bo_times), mean_of(rs_times));
  std::printf("curves written to fig3_bo_vs_rs.csv\n");
  std::printf("paper shape check: BO curve at or above RS at matching "
              "iterations, with a narrower std band and lower wall time.\n");
  return 0;
}
