// Microbenchmarks for the tensor substrate: GEMM variants, im2col, the
// channel operations behind the DSC/ASC joins, and a full conv layer pass.

#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace snnskip {
namespace {

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmSparseA(benchmark::State& state) {
  // Spike matrices are mostly zero; the row-kernel skips zero multipliers.
  const std::int64_t n = 128;
  Rng rng(2);
  Tensor a = Tensor::bernoulli(Shape{n, n}, rng,
                               static_cast<float>(state.range(0)) / 100.f);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmSparseA)->Arg(10)->Arg(50)->Arg(100);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  Tensor b = Tensor::randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_nt(n, n, n, 1.f, a.data(), b.data(), 0.f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(64);

void BM_Im2Col(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  const ConvGeometry g{c, 16, 16, 3, 1, 1};
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{c, 16, 16}, rng);
  Tensor cols(Shape{g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    im2col(g, x.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(4)->Arg(16)->Arg(64);

void BM_ConcatChannels(benchmark::State& state) {
  Rng rng(5);
  Tensor a = Tensor::randn(Shape{8, 16, 12, 12}, rng);
  Tensor b = Tensor::randn(Shape{8, 8, 12, 12}, rng);
  for (auto _ : state) {
    Tensor c = concat_channels({&a, &b});
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_ConcatChannels);

void BM_GatherChannels(benchmark::State& state) {
  Rng rng(6);
  Tensor x = Tensor::randn(Shape{8, 32, 12, 12}, rng);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < 32; i += 2) idx.push_back(i);
  for (auto _ : state) {
    Tensor g = gather_channels(x, idx);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_GatherChannels);

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(7);
  Conv2d conv(c, c, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn(Shape{8, c, 12, 12}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dTrainStep(benchmark::State& state) {
  Rng rng(8);
  Conv2d conv(16, 16, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn(Shape{8, 16, 12, 12}, rng);
  Tensor g = Tensor::randn(Shape{8, 16, 12, 12}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dTrainStep);

}  // namespace
}  // namespace snnskip

BENCHMARK_MAIN();
