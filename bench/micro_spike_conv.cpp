// Micro-benchmark for the event-driven spike convolution path (ISSUE 1).
//
// Sweeps firing rate x channel count over ResNet-18S-shaped 3x3 convs and
// times eval-mode forward passes with the sparse path on vs forced dense,
// emitting BENCH_spike_conv.json (mean ns/timestep per mode, speedup, and
// the achieved input density — same definition as FiringRateRecorder).
//
// Every configuration also cross-checks sparse vs dense outputs to 1e-4,
// so the ctest smoke variant (--smoke 1, registered in bench/CMakeLists)
// exercises kernel correctness on every tier-1 run without paying for the
// full timing sweep.
//
// Usage: micro_spike_conv [--smoke 1] [--out BENCH_spike_conv.json]
//                         [--min-ms 50]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "nn/conv2d.h"
#include "tensor/spike_kernels.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace snnskip {
namespace {

struct ConvShape {
  std::int64_t channels;
  std::int64_t hw;  // square spatial size
};

// Mean ns per forward call, timing repeatedly until `min_ms` of work.
double time_forward_ns(Conv2d& conv, const Tensor& x, double min_ms) {
  // Warm up: stabilizes the workspace arena high-water mark and caches.
  for (int i = 0; i < 3; ++i) (void)conv.forward(x, /*train=*/false);
  std::int64_t reps = 0;
  Timer t;
  do {
    (void)conv.forward(x, /*train=*/false);
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  return t.elapsed_s() * 1e9 / static_cast<double>(reps);
}

}  // namespace

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool smoke = args.get_int("smoke", 0) != 0;
  const double min_ms = args.get_double("min-ms", smoke ? 2.0 : 50.0);
  const std::string out_path = args.get("out", "BENCH_spike_conv.json");

  // ResNet-18S stage shapes on 32x32 inputs; the smoke variant keeps one
  // tiny config so it finishes in well under a second.
  std::vector<ConvShape> shapes;
  std::vector<double> rates;
  if (smoke) {
    shapes = {{16, 8}};
    rates = {0.05, 1.0};
  } else {
    shapes = {{64, 32}, {128, 16}, {256, 8}};
    rates = {0.01, 0.05, 0.10, 0.15, 0.25, 0.50, 1.0};
  }

  JsonArrayWriter json(out_path);
  if (!json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%8s %6s %6s %12s %12s %9s %9s\n", "channels", "hw", "rate",
              "sparse_ns", "dense_ns", "speedup", "density");

  const bool was_enabled = SparseExec::enabled();
  bool all_equal = true;
  for (const ConvShape& sh : shapes) {
    Rng rng(42);
    Conv2d conv(sh.channels, sh.channels, 3, 1, 1, /*bias=*/false, rng,
                "bench_conv");
    for (double rate : rates) {
      Tensor x = Tensor::bernoulli(
          Shape{1, sh.channels, sh.hw, sh.hw}, rng, static_cast<float>(rate));
      const double density = x.nonzero_fraction();

      SparseExec::set_enabled(true);
      Tensor y_sparse = conv.forward(x, /*train=*/false);
      const double sparse_ns = time_forward_ns(conv, x, min_ms);

      SparseExec::set_enabled(false);
      Tensor y_dense = conv.forward(x, /*train=*/false);
      const double dense_ns = time_forward_ns(conv, x, min_ms);

      const float diff = Tensor::max_abs_diff(y_sparse, y_dense);
      if (diff > 1e-4f) {
        std::fprintf(stderr,
                     "FAIL: sparse/dense mismatch %.3g (C=%lld rate=%.2f)\n",
                     static_cast<double>(diff),
                     static_cast<long long>(sh.channels), rate);
        all_equal = false;
      }

      const double speedup = sparse_ns > 0.0 ? dense_ns / sparse_ns : 0.0;
      std::printf("%8lld %6lld %6.2f %12.0f %12.0f %8.2fx %9.3f\n",
                  static_cast<long long>(sh.channels),
                  static_cast<long long>(sh.hw), rate, sparse_ns, dense_ns,
                  speedup, density);

      json.begin_row();
      json.field("channels", static_cast<double>(sh.channels));
      json.field("hw", static_cast<double>(sh.hw));
      json.field("firing_rate", rate);
      json.field("achieved_density", density);
      json.field("sparse_ns_per_timestep", sparse_ns);
      json.field("dense_ns_per_timestep", dense_ns);
      json.field("speedup_vs_dense", speedup);
      benchcfg::provenance_fields(json);
      json.end_row();
    }
  }
  SparseExec::set_enabled(was_enabled);

  if (!all_equal) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace snnskip

int main(int argc, char** argv) { return snnskip::run(argc, argv); }
