// Quickstart: build a spiking network, train it on a synthetic event
// dataset, and inspect accuracy / firing rate / MACs.
//
//   ./examples/quickstart [--epochs N] [--width W] [--timesteps T]
//                         [--trace-out trace.json]
//
// This walks the library's main public API surface in ~60 lines:
//   make_datasets -> build_model -> fit -> evaluate -> count_macs.
// With --trace-out, telemetry is enabled for the run and a Chrome
// trace_event file (chrome://tracing, Perfetto) plus an aggregate span
// summary are produced at the end.

#include <cstdio>

#include "graph/mac_counter.h"
#include "metrics/energy.h"
#include "models/zoo.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "train/checkpoint.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "util/cli.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) Telemetry::set_enabled(true);

  // 1. A synthetic CIFAR-10-DVS-like event dataset (no files needed; every
  //    sample is generated deterministically from the seed).
  SyntheticConfig data_cfg;
  data_cfg.height = 12;
  data_cfg.width = 12;
  data_cfg.timesteps = args.get_int("timesteps", 6);
  data_cfg.train_size = 200;
  data_cfg.val_size = 60;
  data_cfg.test_size = 60;
  const DatasetBundle data = make_datasets("cifar10-dvs", data_cfg);

  // 2. A spiking ResNet-18-style model with its native residual skips.
  ModelConfig model_cfg;
  model_cfg.mode = NeuronMode::Spiking;
  model_cfg.in_channels = 2;  // DVS polarity channels
  model_cfg.num_classes = 10;
  model_cfg.max_timesteps = data_cfg.timesteps;
  model_cfg.width = args.get_int("width", 6);
  Network net = build_model("resnet18s", model_cfg,
                            default_adjacencies("resnet18s", model_cfg));
  std::printf("model: resnet18s, %zu parameters, %zu searchable blocks\n",
              net.parameter_count(), net.blocks().size());

  // 3. Train with surrogate-gradient BPTT.
  TrainConfig train_cfg;
  train_cfg.epochs = args.get_int("epochs", 3);
  train_cfg.batch_size = 20;
  train_cfg.lr = 0.15f;
  train_cfg.verbose = true;
  TelemetryObserver telemetry_observer;
  if (!trace_out.empty()) train_cfg.observers.push_back(&telemetry_observer);
  const FitResult fr =
      fit(net, NeuronMode::Spiking, data.train, data.val, train_cfg);
  std::printf("best val accuracy: %.1f%%\n", fr.best_val_acc * 100.0);

  // 4. Evaluate on the test split with firing-rate instrumentation.
  FiringRateRecorder recorder;
  const EvalResult test =
      evaluate(net, NeuronMode::Spiking, *data.test, train_cfg, &recorder);
  const MacReport macs = count_macs(net, Shape{1, 2, 12, 12});
  const EnergyModel energy;

  std::printf("test accuracy : %.1f%%\n", test.accuracy * 100.0);
  std::printf("firing rate   : %.2f%%\n", test.firing_rate * 100.0);
  std::printf("MACs per step : %lld\n",
              static_cast<long long>(macs.total));
  std::printf("energy proxy  : %.1f nJ (SNN) vs %.1f nJ (equivalent ANN)\n",
              energy.snn_energy_pj(macs.total, test.firing_rate,
                                   data_cfg.timesteps) / 1e3,
              energy.ann_energy_pj(macs.total) / 1e3);

  // 5. Checkpoint the trained weights and prove a fresh network restores
  //    to the same test accuracy.
  const std::string ckpt = "quickstart_model.ckpt";
  if (save_network(ckpt, net)) {
    model_cfg.seed ^= 0xFFULL;  // different random init
    Network restored = build_model("resnet18s", model_cfg,
                                   default_adjacencies("resnet18s", model_cfg));
    load_network(ckpt, restored);
    const EvalResult again =
        evaluate(restored, NeuronMode::Spiking, *data.test, train_cfg);
    std::printf("checkpoint    : saved to %s, restored model scores %.1f%%\n",
                ckpt.c_str(), again.accuracy * 100.0);
  }

  // 6. Export the profiling trace + aggregate summary when requested.
  if (!trace_out.empty()) {
    if (write_chrome_trace(trace_out)) {
      std::printf("trace         : wrote %s (load in chrome://tracing)\n",
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "trace         : failed to write %s\n",
                   trace_out.c_str());
    }
    std::printf("%s", telemetry_summary().c_str());
  }
  return 0;
}
