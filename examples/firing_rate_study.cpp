// Firing-rate anatomy: how the two skip-connection types shift spiking
// activity layer by layer (the mechanism behind the paper's §III-A
// efficiency discussion — ASC sums spike trains and raises activity, DSC
// re-routes existing spikes into wider inputs and raises MACs instead).
//
//   ./examples/firing_rate_study [--epochs N]

#include <cstdio>

#include "graph/mac_counter.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "util/cli.h"

using namespace snnskip;

namespace {

struct Variant {
  const char* label;
  Adjacency adjacency;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  SyntheticConfig data_cfg;
  data_cfg.height = 12;
  data_cfg.width = 12;
  data_cfg.timesteps = 6;
  data_cfg.train_size = 200;
  data_cfg.val_size = 50;
  data_cfg.test_size = 50;
  const DatasetBundle data = make_datasets("cifar10-dvs", data_cfg);

  ModelConfig model_cfg;
  model_cfg.in_channels = 2;
  model_cfg.num_classes = 10;
  model_cfg.max_timesteps = data_cfg.timesteps;
  model_cfg.width = args.get_int("width", 6);

  TrainConfig train_cfg;
  train_cfg.epochs = args.get_int("epochs", 8);
  train_cfg.batch_size = 25;
  train_cfg.lr = 0.15f;

  const std::vector<Variant> variants = {
      {"chain (n_skip=0)", Adjacency::chain(4)},
      {"ASC all-to-all", Adjacency::all(4, SkipType::ASC)},
      {"DSC all-to-all", Adjacency::all(4, SkipType::DSC)},
  };

  std::printf("%-18s %9s %9s %12s  per-layer firing rates\n", "variant",
              "test acc", "rate", "MACs/step");
  for (const Variant& variant : variants) {
    Network net = build_model("single_block", model_cfg,
                              {variant.adjacency});
    fit(net, NeuronMode::Spiking, data.train, nullptr, train_cfg);
    FiringRateRecorder recorder;
    const EvalResult res = evaluate(net, NeuronMode::Spiking, *data.test,
                                    train_cfg, &recorder);
    const MacReport macs = count_macs(net, Shape{1, 2, 12, 12});
    std::printf("%-18s %8.1f%% %8.2f%% %12lld  ", variant.label,
                res.accuracy * 100.0, res.firing_rate * 100.0,
                static_cast<long long>(macs.total));
    for (const auto& [layer, rate] : recorder.per_layer_rates()) {
      std::printf("%s=%.1f%% ", layer.c_str(), rate * 100.0);
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: ASC raises firing rates (spike trains are summed), DSC\n"
      "raises MACs (inputs widen) — the trade-off the paper's optimizer\n"
      "navigates per connection.\n");
  return 0;
}
