// The paper's headline pipeline as a library call: adapt an ANN topology to
// an SNN by Bayesian-optimizing its skip connections (number, position,
// type), with supernet weight sharing and n-epoch fine-tuning per
// candidate (paper Fig. 2).
//
//   ./examples/skip_search [--model resnet18s] [--dataset cifar10-dvs]
//                          [--iterations N] [--batch-k K] [--epochs E]

#include <cstdio>

#include "core/adapter.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  AdapterConfig cfg;
  // mobilenetv2s: the family the paper found benefits most from skip
  // optimization, and the fastest to train — a good default showcase.
  cfg.model = args.get("model", "mobilenetv2s");
  cfg.dataset = args.get("dataset", "cifar10-dvs");

  cfg.data_cfg.height = 12;
  cfg.data_cfg.width = 12;
  cfg.data_cfg.timesteps = 6;
  cfg.data_cfg.train_size = 200;
  cfg.data_cfg.val_size = 50;
  cfg.data_cfg.test_size = 50;

  cfg.model_cfg.width = args.get_int("width", 6);

  cfg.base_train.epochs = args.get_int("epochs", 6);
  cfg.base_train.batch_size = 25;
  cfg.base_train.lr = 0.15f;
  cfg.base_train.timesteps = 6;

  cfg.finetune = cfg.base_train;
  cfg.finetune.epochs = 1;  // the paper's "fine-tune for n epochs"

  cfg.bo.initial_design = 3;
  cfg.bo.iterations = args.get_int("iterations", 4);
  cfg.bo.batch_k = args.get_int("batch-k", 2);
  cfg.bo.candidate_pool = 64;
  cfg.bo.noise = 1e-2;

  std::printf("adapting %s for %s ...\n", cfg.model.c_str(),
              cfg.dataset.c_str());
  const AdaptationReport report = run_adaptation(cfg);

  std::printf("\n=== adaptation report ===\n");
  if (report.has_ann) {
    std::printf("ANN reference accuracy : %.1f%%\n",
                report.ann_test_acc * 100.0);
  }
  std::printf("vanilla SNN accuracy   : %.1f%%  (rate %.2f%%, %lld MACs)\n",
              report.snn_base_test_acc * 100.0,
              report.snn_base_firing_rate * 100.0,
              static_cast<long long>(report.snn_base_macs));
  std::printf("optimized SNN accuracy : %.1f%%  (rate %.2f%%, %lld MACs)\n",
              report.optimized_test_acc * 100.0,
              report.optimized_firing_rate * 100.0,
              static_cast<long long>(report.optimized_macs));
  std::printf("accuracy change        : %+.1f points\n",
              (report.optimized_test_acc - report.snn_base_test_acc) * 100.0);
  std::printf("candidates evaluated   : %zu\n",
              report.trace.observations.size());
  std::printf("search wall time       : %s\n",
              format_duration(report.search_seconds).c_str());

  std::printf("\nbest skip configuration (0=none 1=DSC 2=ASC per slot):\n  ");
  for (int v : report.best_code) std::printf("%d ", v);
  std::printf("\n");
  return 0;
}
