// Spike-activity anatomy: record per-layer firing rates at every timestep
// of inference and render an ASCII raster plus a CSV — the view
// neuromorphic engineers use to see WHERE and WHEN a network spends its
// spikes, and how skip connections move that activity around.
//
//   ./examples/spike_raster [--type none|asc|dsc] [--timesteps T]

#include <cstdio>
#include <map>
#include <vector>

#include "data/dataloader.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "util/cli.h"
#include "util/csv.h"

using namespace snnskip;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string type = args.get("type", "dsc");
  const std::int64_t timesteps = args.get_int("timesteps", 8);

  SyntheticConfig data_cfg;
  data_cfg.height = 12;
  data_cfg.width = 12;
  data_cfg.timesteps = timesteps;
  data_cfg.train_size = 200;
  data_cfg.val_size = 50;
  data_cfg.test_size = 50;
  const DatasetBundle data = make_datasets("cifar10-dvs", data_cfg);

  Adjacency adj = Adjacency::chain(4);
  if (type == "asc") adj = Adjacency::all(4, SkipType::ASC);
  if (type == "dsc") adj = Adjacency::all(4, SkipType::DSC);

  ModelConfig model_cfg;
  model_cfg.in_channels = 2;
  model_cfg.num_classes = 10;
  model_cfg.max_timesteps = timesteps;
  model_cfg.width = args.get_int("width", 6);
  Network net = build_model("single_block", model_cfg, {adj});

  TrainConfig train_cfg;
  train_cfg.epochs = args.get_int("epochs", 6);
  train_cfg.batch_size = 25;
  train_cfg.lr = 0.15f;
  std::printf("training single_block (%s skips) for %lld epochs...\n",
              type.c_str(), static_cast<long long>(train_cfg.epochs));
  fit(net, NeuronMode::Spiking, data.train, nullptr, train_cfg);

  // Per-timestep recording: fresh recorder each step over the test set.
  DataLoader loader(*data.test, 50, false, 0);
  loader.start_epoch(0);
  Batch batch;
  loader.next(batch);
  EventEncoder enc(timesteps, 2);

  std::vector<std::map<std::string, double>> per_step;
  net.reset_state();
  for (std::int64_t t = 0; t < timesteps; ++t) {
    FiringRateRecorder rec;
    net.set_recorder(&rec);
    net.forward(enc.encode(batch.x, t), false);
    per_step.push_back(rec.per_layer_rates());
    net.set_recorder(nullptr);
  }
  net.reset_state();

  // Collect the layer names (stable order).
  std::vector<std::string> layers;
  for (const auto& [name, rate] : per_step[0]) layers.push_back(name);

  // ASCII raster: one row per layer, one column per timestep; glyph height
  // encodes the firing rate.
  const char* glyphs = " .:-=+*#%@";
  std::printf("\nfiring-rate raster (rows = layers, cols = timesteps; "
              "' '=0%% ... '@'=45%%+)\n\n");
  CsvWriter csv("spike_raster.csv", [&] {
    std::vector<std::string> header{"layer"};
    for (std::int64_t t = 0; t < timesteps; ++t) {
      header.push_back("t" + std::to_string(t));
    }
    return header;
  }());
  for (const auto& layer : layers) {
    std::printf("%-14s |", layer.c_str());
    std::vector<std::string> row{layer};
    for (std::int64_t t = 0; t < timesteps; ++t) {
      const double rate = per_step[static_cast<std::size_t>(t)][layer];
      const int level =
          std::min(9, static_cast<int>(rate / 0.05));
      std::printf("%c", glyphs[level]);
      row.push_back(CsvWriter::num(rate));
    }
    std::printf("|\n");
    csv.row(row);
  }
  std::printf("\nper-step rates written to spike_raster.csv\n");
  std::printf("try --type none vs --type asc: addition skips visibly pump "
              "later layers' activity up over time.\n");
  return 0;
}
