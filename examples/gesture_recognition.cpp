// Gesture recognition on the synthetic DVS128-Gesture stand-in — the edge
// workload the paper's introduction motivates (low-power event cameras).
//
// Trains a spiking MobileNetV2-style model (the family the paper found to
// benefit most from skip optimization, +24% on DVS128 Gesture) and prints
// the per-class confusion breakdown plus efficiency numbers.
//
//   ./examples/gesture_recognition [--epochs N] [--width W]

#include <cstdio>
#include <vector>

#include "data/dataloader.h"
#include "graph/mac_counter.h"
#include "metrics/confusion.h"
#include "models/zoo.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "util/cli.h"

using namespace snnskip;

namespace {

const char* kGestureNames[11] = {
    "circle-cw", "circle-ccw", "wave-right", "wave-left",  "wave-up",
    "wave-down", "zoom-in",    "zoom-out",   "diag-tlbr",  "diag-brtl",
    "other"};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  SyntheticConfig data_cfg;
  data_cfg.height = 12;
  data_cfg.width = 12;
  data_cfg.timesteps = 8;  // gestures need temporal integration
  data_cfg.train_size = 220;
  data_cfg.val_size = 66;
  data_cfg.test_size = 66;
  const DatasetBundle data = make_datasets("dvs128-gesture", data_cfg);

  ModelConfig model_cfg;
  model_cfg.in_channels = 2;
  model_cfg.num_classes = 11;
  model_cfg.max_timesteps = data_cfg.timesteps;
  model_cfg.width = args.get_int("width", 6);
  Network net = build_model("mobilenetv2s", model_cfg,
                            default_adjacencies("mobilenetv2s", model_cfg));

  // The paper's DVS128-Gesture recipe uses Adam (§IV).
  TrainConfig train_cfg;
  train_cfg.opt = OptKind::Adam;
  train_cfg.lr = 0.005f;
  train_cfg.epochs = args.get_int("epochs", 5);
  train_cfg.batch_size = 22;
  train_cfg.verbose = true;
  fit(net, NeuronMode::Spiking, data.train, data.val, train_cfg);

  // Evaluate and print a per-class breakdown.
  FiringRateRecorder recorder;
  const EvalResult test =
      evaluate(net, NeuronMode::Spiking, *data.test, train_cfg, &recorder);

  // Per-class breakdown via the confusion matrix.
  ConfusionMatrix confusion(11);
  DataLoader loader(*data.test, 22, false, 0);
  loader.start_epoch(0);
  Batch batch;
  EventEncoder enc(data_cfg.timesteps, 2);
  while (loader.next(batch)) {
    net.reset_state();
    Tensor logits;
    for (std::int64_t t = 0; t < data_cfg.timesteps; ++t) {
      Tensor out = net.forward(enc.encode(batch.x, t), false);
      if (t == 0) logits = std::move(out);
      else logits.add_(out);
    }
    confusion.add_batch(batch.y, argmax_rows(logits));
  }
  net.reset_state();

  std::printf("\noverall test accuracy: %.1f%%  macro-F1: %.3f  firing "
              "rate: %.2f%%\n\n",
              test.accuracy * 100.0, confusion.macro_f1(),
              test.firing_rate * 100.0);
  std::printf("%-12s %8s %10s\n", "gesture", "recall", "precision");
  for (std::int64_t c = 0; c < 11; ++c) {
    std::printf("%-12s %7.1f%% %9.1f%%\n", kGestureNames[c],
                confusion.recall(c) * 100.0, confusion.precision(c) * 100.0);
  }

  const MacReport macs = count_macs(net, Shape{1, 2, 12, 12});
  std::printf("\nMACs per timestep: %lld (x %lld steps, %.2f%% active)\n",
              static_cast<long long>(macs.total),
              static_cast<long long>(data_cfg.timesteps),
              test.firing_rate * 100.0);
  return 0;
}
