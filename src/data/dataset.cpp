#include "data/dataset.h"

namespace snnskip {

std::string to_string(Split s) {
  switch (s) {
    case Split::Train: return "train";
    case Split::Val: return "val";
    case Split::Test: return "test";
  }
  return "?";
}

}  // namespace snnskip
