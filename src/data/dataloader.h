#pragma once
// Batching iterator over a Dataset with optional per-epoch shuffling.

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace snnskip {

struct Batch {
  Tensor x;                         ///< (N, ...) stacked samples
  std::vector<std::int64_t> y;      ///< N labels

  std::int64_t size() const { return x.shape()[0]; }
};

class DataLoader {
 public:
  /// Non-owning: `dataset` must outlive the loader.
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
             std::uint64_t seed);

  /// Number of batches per epoch (last partial batch included).
  std::size_t batches_per_epoch() const;

  /// Reshuffle (if enabled) and reset the cursor. Deterministic in
  /// (seed, epoch) so runs are reproducible.
  void start_epoch(std::uint64_t epoch);

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out);

  /// Materialize the whole dataset as one batch (evaluation helper).
  Batch full_batch() const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  std::uint64_t seed_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Stack sample tensors (identical shapes) into (N, ...).
Tensor stack_samples(const std::vector<Tensor>& xs);

}  // namespace snnskip
