#pragma once
// SyntheticCifar10 — stand-in for CIFAR-10 (DESIGN.md §2).
//
// Ten classes of parametric RGB textures: each class fixes an oriented
// sinusoid (angle + frequency), a radial component, and a color mixing
// vector; each sample jitters phase, blob position and adds pixel noise.
// Classes overlap enough that a linear model cannot separate them but a
// small conv net can — reproducing the regime where ANN accuracy is high
// and naive SNN conversion loses accuracy.

#include "data/dataset.h"

namespace snnskip {

class SyntheticCifar10 final : public Dataset {
 public:
  SyntheticCifar10(SyntheticConfig cfg, Split split);

  std::size_t size() const override { return cfg_.split_size(split_); }
  Sample get(std::size_t i) const override;
  Shape sample_shape() const override {
    return Shape{3, cfg_.height, cfg_.width};
  }
  std::int64_t num_classes() const override { return 10; }
  std::int64_t step_channels() const override { return 3; }
  std::string name() const override { return "synthetic-cifar10"; }

 private:
  SyntheticConfig cfg_;
  Split split_;
};

}  // namespace snnskip
