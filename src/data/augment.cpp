#include "data/augment.h"

#include <cassert>

namespace snnskip {

Tensor hflip(const Tensor& x) {
  const Shape& s = x.shape();
  assert(s.ndim() == 3);  // (C, H, W) — batchless sample layout
  const std::int64_t c = s[0], h = s[1], w = s[2];
  Tensor out(s);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t row = 0; row < h; ++row) {
      const float* src = x.data() + (ch * h + row) * w;
      float* dst = out.data() + (ch * h + row) * w;
      for (std::int64_t col = 0; col < w; ++col) {
        dst[col] = src[w - 1 - col];
      }
    }
  }
  return out;
}

Tensor shift2d(const Tensor& x, std::int64_t dy, std::int64_t dx) {
  const Shape& s = x.shape();
  assert(s.ndim() == 3);
  const std::int64_t c = s[0], h = s[1], w = s[2];
  Tensor out(s);  // zero-filled
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t row = 0; row < h; ++row) {
      const std::int64_t src_row = row - dy;
      if (src_row < 0 || src_row >= h) continue;
      for (std::int64_t col = 0; col < w; ++col) {
        const std::int64_t src_col = col - dx;
        if (src_col < 0 || src_col >= w) continue;
        out.at({ch, row, col}) = x.at({ch, src_row, src_col});
      }
    }
  }
  return out;
}

Tensor drop_events(const Tensor& x, float p, Rng& rng) {
  Tensor out = x;
  if (p <= 0.f) return out;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    if (out[static_cast<std::size_t>(i)] != 0.f && rng.bernoulli(p)) {
      out[static_cast<std::size_t>(i)] = 0.f;
    }
  }
  return out;
}

Sample AugmentingDataset::get(std::size_t i) const {
  Sample s = base_->get(i);
  Rng rng = Rng(cfg_.seed).split(i);

  if (cfg_.hflip && rng.bernoulli(0.5)) {
    s.x = hflip(s.x);
  }
  if (cfg_.max_shift > 0) {
    const std::int64_t dy =
        rng.uniform_int(-cfg_.max_shift, cfg_.max_shift);
    const std::int64_t dx =
        rng.uniform_int(-cfg_.max_shift, cfg_.max_shift);
    if (dy != 0 || dx != 0) s.x = shift2d(s.x, dy, dx);
  }
  if (cfg_.event_dropout > 0.f) {
    s.x = drop_events(s.x, cfg_.event_dropout, rng);
  }
  return s;
}

}  // namespace snnskip
