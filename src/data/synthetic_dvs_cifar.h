#pragma once
// SyntheticDvsCifar — stand-in for CIFAR-10-DVS (DESIGN.md §2).
//
// CIFAR-10-DVS shows static images to a DVS128 sensor on a moving stage;
// the recorded events are dominated by the image's edges sweeping across
// pixels. The generator reproduces that statistic directly: a class-keyed
// texture (same family as SyntheticCifar10, collapsed to luminance) drifts
// along a per-sample direction; ON events fire where brightness rises
// between steps, OFF events where it falls, plus sensor noise. Output is a
// (T*2, H, W) binary event tensor (polarity channels packed per step).

#include "data/dataset.h"

namespace snnskip {

class SyntheticDvsCifar final : public Dataset {
 public:
  SyntheticDvsCifar(SyntheticConfig cfg, Split split);

  std::size_t size() const override { return cfg_.split_size(split_); }
  Sample get(std::size_t i) const override;
  Shape sample_shape() const override {
    return Shape{cfg_.timesteps * 2, cfg_.height, cfg_.width};
  }
  std::int64_t num_classes() const override { return 10; }
  std::int64_t timesteps() const override { return cfg_.timesteps; }
  std::int64_t step_channels() const override { return 2; }
  std::string name() const override { return "synthetic-cifar10-dvs"; }

 private:
  SyntheticConfig cfg_;
  Split split_;
};

}  // namespace snnskip
