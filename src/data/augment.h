#pragma once
// Training-time augmentation for event tensors and static images.
//
// The standard DVS augmentations (horizontal flip, small spatial shifts,
// event dropout) operate identically on every timestep of a (T*C, H, W)
// event tensor — flips/shifts must be temporally consistent or they would
// fabricate motion. AugmentingDataset wraps any Dataset and applies a
// seeded per-(epoch-independent) index transform, preserving determinism:
// sample i always receives the same augmentation for a given seed.

#include "data/dataset.h"
#include "util/rng.h"

namespace snnskip {

struct AugmentConfig {
  bool hflip = true;           ///< mirror left-right with p=0.5
  std::int64_t max_shift = 1;  ///< uniform spatial shift in [-s, s] pixels
  float event_dropout = 0.05f; ///< drop this fraction of active events
  std::uint64_t seed = 97;
};

/// Mirror the W axis of every channel/timestep plane.
Tensor hflip(const Tensor& x);

/// Shift all planes by (dy, dx), zero-filling exposed borders.
Tensor shift2d(const Tensor& x, std::int64_t dy, std::int64_t dx);

/// Zero out each non-zero element with probability p (event dropout).
Tensor drop_events(const Tensor& x, float p, Rng& rng);

/// Dataset view applying the configured augmentations to the base
/// dataset's training samples. Deterministic per (seed, index).
class AugmentingDataset final : public Dataset {
 public:
  AugmentingDataset(DatasetPtr base, AugmentConfig cfg)
      : base_(std::move(base)), cfg_(cfg) {}

  std::size_t size() const override { return base_->size(); }
  Sample get(std::size_t i) const override;
  Shape sample_shape() const override { return base_->sample_shape(); }
  std::int64_t num_classes() const override { return base_->num_classes(); }
  std::int64_t timesteps() const override { return base_->timesteps(); }
  std::int64_t step_channels() const override {
    return base_->step_channels();
  }
  std::string name() const override { return base_->name() + "+aug"; }

 private:
  DatasetPtr base_;
  AugmentConfig cfg_;
};

}  // namespace snnskip
