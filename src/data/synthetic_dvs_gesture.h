#pragma once
// SyntheticDvsGesture — stand-in for DVS128 Gesture (DESIGN.md §2).
//
// Eleven motion programs mirror the 11 gestures (hand claps, rotations,
// waves, ...): a bright blob follows a class-specific trajectory (circle
// CW/CCW, horizontal/vertical waves, diagonals, zoom in/out, taps, random
// jitter for "other"). Per-sample "subject" variation jitters the radius,
// speed, starting phase and blob size. Events are generated from frame
// brightness differences with ON/OFF polarity channels, like the DVS
// pipeline, producing (T*2, H, W) binary tensors. Motion — not appearance —
// carries the label, so the task genuinely requires temporal integration.

#include "data/dataset.h"

namespace snnskip {

class SyntheticDvsGesture final : public Dataset {
 public:
  SyntheticDvsGesture(SyntheticConfig cfg, Split split);

  std::size_t size() const override { return cfg_.split_size(split_); }
  Sample get(std::size_t i) const override;
  Shape sample_shape() const override {
    return Shape{cfg_.timesteps * 2, cfg_.height, cfg_.width};
  }
  std::int64_t num_classes() const override { return 11; }
  std::int64_t timesteps() const override { return cfg_.timesteps; }
  std::int64_t step_channels() const override { return 2; }
  std::string name() const override { return "synthetic-dvs128-gesture"; }

 private:
  SyntheticConfig cfg_;
  Split split_;
};

}  // namespace snnskip
