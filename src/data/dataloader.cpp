#include "data/dataloader.h"

#include <cassert>
#include <cstring>

namespace snnskip {

Tensor stack_samples(const std::vector<Tensor>& xs) {
  assert(!xs.empty());
  const Shape& s = xs[0].shape();
  std::vector<std::int64_t> dims;
  dims.push_back(static_cast<std::int64_t>(xs.size()));
  for (std::size_t d = 0; d < s.ndim(); ++d) dims.push_back(s[d]);
  Tensor out{Shape(std::move(dims))};
  const std::size_t per = static_cast<std::size_t>(s.numel());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i].shape() == s);
    std::memcpy(out.data() + i * per, xs[i].data(), sizeof(float) * per);
  }
  return out;
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      seed_(seed) {
  assert(batch_size_ > 0);
  order_.resize(dataset_->size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
}

std::size_t DataLoader::batches_per_epoch() const {
  const std::size_t n = dataset_->size();
  return (n + static_cast<std::size_t>(batch_size_) - 1) /
         static_cast<std::size_t>(batch_size_);
}

void DataLoader::start_epoch(std::uint64_t epoch) {
  cursor_ = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (shuffle_) {
    Rng rng = Rng(seed_).split(epoch);
    rng.shuffle(order_);
  }
}

bool DataLoader::next(Batch& out) {
  const std::size_t n = order_.size();
  if (cursor_ >= n) return false;
  const std::size_t end =
      std::min(n, cursor_ + static_cast<std::size_t>(batch_size_));
  std::vector<Tensor> xs;
  xs.reserve(end - cursor_);
  out.y.clear();
  out.y.reserve(end - cursor_);
  for (std::size_t i = cursor_; i < end; ++i) {
    Sample s = dataset_->get(order_[i]);
    xs.push_back(std::move(s.x));
    out.y.push_back(s.y);
  }
  cursor_ = end;
  out.x = stack_samples(xs);
  return true;
}

Batch DataLoader::full_batch() const {
  Batch b;
  std::vector<Tensor> xs;
  xs.reserve(dataset_->size());
  b.y.reserve(dataset_->size());
  for (std::size_t i = 0; i < dataset_->size(); ++i) {
    Sample s = dataset_->get(i);
    xs.push_back(std::move(s.x));
    b.y.push_back(s.y);
  }
  b.x = stack_samples(xs);
  return b;
}

}  // namespace snnskip
