#pragma once
// Dataset interface and split plumbing.
//
// Samples are generated procedurally and deterministically: get(i) is a
// pure function of (dataset seed, split, i), so epochs, runs and machines
// see identical data without any files on disk. Static-image datasets
// return x of shape (C, H, W); event datasets return (T*C, H, W) with the
// time dimension packed into dim 0 (unpacked per step by EventEncoder).

#include <cstdint>
#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace snnskip {

struct Sample {
  Tensor x;
  std::int64_t y = 0;
};

enum class Split { Train, Val, Test };

std::string to_string(Split s);

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;
  /// Deterministic sample for index i in [0, size()).
  virtual Sample get(std::size_t i) const = 0;
  /// Shape of one sample's x.
  virtual Shape sample_shape() const = 0;
  virtual std::int64_t num_classes() const = 0;
  /// 0 for static images; the event-stream length T otherwise.
  virtual std::int64_t timesteps() const { return 0; }
  /// Channels presented to the network per step (3 RGB / 2 polarity).
  virtual std::int64_t step_channels() const = 0;
  virtual std::string name() const = 0;
};

using DatasetPtr = std::shared_ptr<Dataset>;

/// Common sizing knobs for the synthetic generators.
struct SyntheticConfig {
  std::int64_t height = 16;
  std::int64_t width = 16;
  std::int64_t timesteps = 8;   ///< ignored by static datasets
  std::size_t train_size = 256;
  std::size_t val_size = 64;
  std::size_t test_size = 64;
  std::uint64_t seed = 42;
  float noise = 0.15f;          ///< per-dataset noise level

  std::size_t split_size(Split s) const {
    switch (s) {
      case Split::Train: return train_size;
      case Split::Val: return val_size;
      case Split::Test: return test_size;
    }
    return 0;
  }
  /// Disjoint global index ranges per split keep splits non-overlapping.
  std::size_t split_offset(Split s) const {
    switch (s) {
      case Split::Train: return 0;
      case Split::Val: return train_size;
      case Split::Test: return train_size + val_size;
    }
    return 0;
  }
};

}  // namespace snnskip
