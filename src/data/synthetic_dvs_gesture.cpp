#include "data/synthetic_dvs_gesture.h"

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace snnskip {

SyntheticDvsGesture::SyntheticDvsGesture(SyntheticConfig cfg, Split split)
    : cfg_(cfg), split_(split) {}

namespace {

struct BlobState {
  double x, y, r;
};

/// Class-specific trajectory at normalized time s in [0, 1].
BlobState trajectory(std::int64_t cls, double s, double speed, double radius,
                     double phase, Rng& jitter_rng) {
  const double tau = 2.0 * M_PI;
  BlobState b{0.5, 0.5, 0.12};
  switch (cls) {
    case 0:  // circle clockwise
      b.x = 0.5 + radius * std::cos(phase + tau * speed * s);
      b.y = 0.5 + radius * std::sin(phase + tau * speed * s);
      break;
    case 1:  // circle counter-clockwise
      b.x = 0.5 + radius * std::cos(phase - tau * speed * s);
      b.y = 0.5 + radius * std::sin(phase - tau * speed * s);
      break;
    case 2:  // horizontal wave left-to-right
      b.x = 0.2 + 0.6 * s;
      b.y = 0.5 + 0.15 * std::sin(phase + tau * 2.0 * s);
      break;
    case 3:  // horizontal wave right-to-left
      b.x = 0.8 - 0.6 * s;
      b.y = 0.5 + 0.15 * std::sin(phase + tau * 2.0 * s);
      break;
    case 4:  // vertical wave upward
      b.y = 0.8 - 0.6 * s;
      b.x = 0.5 + 0.15 * std::sin(phase + tau * 2.0 * s);
      break;
    case 5:  // vertical wave downward
      b.y = 0.2 + 0.6 * s;
      b.x = 0.5 + 0.15 * std::sin(phase + tau * 2.0 * s);
      break;
    case 6:  // zoom in (expanding ring)
      b.r = 0.05 + 0.3 * s;
      break;
    case 7:  // zoom out (contracting ring)
      b.r = 0.35 - 0.3 * s;
      break;
    case 8:  // diagonal top-left to bottom-right
      b.x = 0.2 + 0.6 * s;
      b.y = 0.2 + 0.6 * s;
      break;
    case 9:  // diagonal bottom-right to top-left
      b.x = 0.8 - 0.6 * s;
      b.y = 0.8 - 0.6 * s;
      break;
    default:  // 10: "other" — stationary blob with random tap jitter
      b.x = 0.5 + 0.08 * jitter_rng.normal();
      b.y = 0.5 + 0.08 * jitter_rng.normal();
      break;
  }
  return b;
}

}  // namespace

Sample SyntheticDvsGesture::get(std::size_t i) const {
  const std::size_t global = cfg_.split_offset(split_) + i;
  Rng rng = Rng(cfg_.seed ^ 0x6E576E57ULL).split(global);

  const std::int64_t cls = static_cast<std::int64_t>(global % 11);
  const std::int64_t h = cfg_.height, w = cfg_.width, t_steps = cfg_.timesteps;

  // "Subject" variation.
  const double speed = rng.uniform(0.8, 1.4);
  const double radius = rng.uniform(0.2, 0.3);
  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  const double blob_sigma = rng.uniform(0.06, 0.1);
  const double event_threshold = 0.08;
  const float noise_p = cfg_.noise * 0.04f;

  Tensor x(Shape{t_steps * 2, h, w});
  std::vector<double> prev(static_cast<std::size_t>(h * w));
  for (std::int64_t t = 0; t <= t_steps; ++t) {
    const double s =
        static_cast<double>(t) / static_cast<double>(std::max<std::int64_t>(
                                     1, t_steps));
    const BlobState blob = trajectory(cls, s, speed, radius, phase, rng);
    for (std::int64_t row = 0; row < h; ++row) {
      for (std::int64_t col = 0; col < w; ++col) {
        const double u = static_cast<double>(col) / static_cast<double>(w - 1);
        const double v = static_cast<double>(row) / static_cast<double>(h - 1);
        double b;
        if (cls == 6 || cls == 7) {
          // Ring brightness for the zoom gestures.
          const double d = std::hypot(u - blob.x, v - blob.y);
          const double ring = d - blob.r;
          b = std::exp(-ring * ring / (2.0 * blob_sigma * blob_sigma));
        } else {
          const double d2 = (u - blob.x) * (u - blob.x) +
                            (v - blob.y) * (v - blob.y);
          b = std::exp(-d2 / (2.0 * blob_sigma * blob_sigma));
        }
        const std::size_t p = static_cast<std::size_t>(row * w + col);
        if (t > 0) {
          const double diff = b - prev[p];
          const std::int64_t on_ch = (t - 1) * 2;
          if (diff > event_threshold) {
            x.at({on_ch, row, col}) = 1.f;
          } else if (diff < -event_threshold) {
            x.at({on_ch + 1, row, col}) = 1.f;
          }
          if (rng.bernoulli(noise_p)) x.at({on_ch, row, col}) = 1.f;
          if (rng.bernoulli(noise_p)) x.at({on_ch + 1, row, col}) = 1.f;
        }
        prev[p] = b;
      }
    }
  }
  return Sample{std::move(x), cls};
}

}  // namespace snnskip
