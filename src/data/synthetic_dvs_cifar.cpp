#include "data/synthetic_dvs_cifar.h"

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace snnskip {

SyntheticDvsCifar::SyntheticDvsCifar(SyntheticConfig cfg, Split split)
    : cfg_(cfg), split_(split) {}

namespace {

/// Class-keyed luminance texture at texture coordinates (u, v).
double texture(std::int64_t cls, double u, double v, double phase) {
  const double angle = M_PI * static_cast<double>(cls) / 10.0;
  const double freq = 1.5 + 0.7 * static_cast<double>(cls % 5);
  const double ca = std::cos(angle), sa = std::sin(angle);
  double base;
  if (cls >= 5) {
    const double r = std::hypot(u - 0.5, v - 0.5);
    base = std::sin(2.0 * M_PI * freq * r + phase);
  } else {
    base = std::sin(2.0 * M_PI * freq * (u * ca + v * sa) + phase);
  }
  return 0.5 + 0.5 * base;
}

}  // namespace

Sample SyntheticDvsCifar::get(std::size_t i) const {
  const std::size_t global = cfg_.split_offset(split_) + i;
  Rng rng = Rng(cfg_.seed ^ 0xD5D5D5D5ULL).split(global);

  const std::int64_t cls = static_cast<std::int64_t>(global % 10);
  const std::int64_t h = cfg_.height, w = cfg_.width, t_steps = cfg_.timesteps;

  // Recording conditions: CIFAR-10-DVS moves the *stage*, not the image,
  // so the drift trajectory is (nearly) the same for every recording —
  // only small mechanical jitter differs. Class identity lives in the
  // texture; per-sample randomness lives in phase/speed jitter and noise.
  const double drift_angle =
      M_PI / 4.0 + rng.uniform(-0.2, 0.2);  // fixed stage direction + jitter
  const double speed = rng.uniform(0.05, 0.08);  // texture units per step
  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  const double dx = speed * std::cos(drift_angle);
  const double dy = speed * std::sin(drift_angle);
  const double event_threshold = 0.04;
  const float noise_p = cfg_.noise * 0.05f;  // sparse sensor noise

  Tensor x(Shape{t_steps * 2, h, w});
  std::vector<double> prev(static_cast<std::size_t>(h * w));
  for (std::int64_t t = 0; t <= t_steps; ++t) {
    const double ox = dx * static_cast<double>(t);
    const double oy = dy * static_cast<double>(t);
    for (std::int64_t row = 0; row < h; ++row) {
      for (std::int64_t col = 0; col < w; ++col) {
        const double u =
            static_cast<double>(col) / static_cast<double>(w - 1) + ox;
        const double v =
            static_cast<double>(row) / static_cast<double>(h - 1) + oy;
        const double b = texture(cls, u, v, phase);
        const std::size_t p = static_cast<std::size_t>(row * w + col);
        if (t > 0) {
          const double diff = b - prev[p];
          const std::int64_t on_ch = (t - 1) * 2;
          if (diff > event_threshold) {
            x.at({on_ch, row, col}) = 1.f;
          } else if (diff < -event_threshold) {
            x.at({on_ch + 1, row, col}) = 1.f;
          }
          // Sensor noise: spurious events on both polarities.
          if (rng.bernoulli(noise_p)) x.at({on_ch, row, col}) = 1.f;
          if (rng.bernoulli(noise_p)) x.at({on_ch + 1, row, col}) = 1.f;
        }
        prev[p] = b;
      }
    }
  }
  return Sample{std::move(x), cls};
}

}  // namespace snnskip
