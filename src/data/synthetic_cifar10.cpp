#include "data/synthetic_cifar10.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace snnskip {

SyntheticCifar10::SyntheticCifar10(SyntheticConfig cfg, Split split)
    : cfg_(cfg), split_(split) {}

Sample SyntheticCifar10::get(std::size_t i) const {
  const std::size_t global = cfg_.split_offset(split_) + i;
  Rng rng = Rng(cfg_.seed).split(global);

  const std::int64_t cls = static_cast<std::int64_t>(global % 10);
  const std::int64_t h = cfg_.height, w = cfg_.width;

  // Class-determined structure.
  const double angle = M_PI * static_cast<double>(cls) / 10.0;
  const double freq = 1.5 + 0.7 * static_cast<double>(cls % 5);
  const bool radial = cls >= 5;
  // Per-sample jitter.
  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  const double cx = rng.uniform(0.3, 0.7);
  const double cy = rng.uniform(0.3, 0.7);
  const double blob_r = rng.uniform(0.12, 0.22);

  Tensor x(Shape{3, h, w});
  const double ca = std::cos(angle), sa = std::sin(angle);
  for (std::int64_t row = 0; row < h; ++row) {
    for (std::int64_t col = 0; col < w; ++col) {
      const double u = static_cast<double>(col) / static_cast<double>(w - 1);
      const double v = static_cast<double>(row) / static_cast<double>(h - 1);
      double base;
      if (radial) {
        const double r = std::hypot(u - cx, v - cy);
        base = std::sin(2.0 * M_PI * freq * r + phase);
      } else {
        base = std::sin(2.0 * M_PI * freq * (u * ca + v * sa) + phase);
      }
      // Class-keyed blob adds a localized feature.
      const double d = std::hypot(u - cx, v - cy);
      const double blob = std::exp(-d * d / (2.0 * blob_r * blob_r)) *
                          ((cls % 2 == 0) ? 1.0 : -1.0);
      const double val = 0.5 + 0.35 * base + 0.3 * blob;
      for (std::int64_t ch = 0; ch < 3; ++ch) {
        // Color mixing is class-specific but overlapping across classes.
        const double mix =
            0.6 + 0.4 * std::sin(static_cast<double>(cls) * 0.7 +
                                 static_cast<double>(ch) * 2.1);
        const double noise = rng.normal(0.0, cfg_.noise);
        x.at({ch, row, col}) = static_cast<float>(
            std::clamp(val * mix + noise, 0.0, 1.0));
      }
    }
  }
  return Sample{std::move(x), cls};
}

}  // namespace snnskip
