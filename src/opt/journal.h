#pragma once
// Append-only search journal (crash-safe resume for BO / random search).
//
// Every completed candidate evaluation is appended as one JSON Lines row
//
//   {"idx": 7, "code": [0, 2, 1], "value": 0.4375, "failed": 0}
//
// and flushed before the search continues, so a killed process loses at
// most the evaluation that was in flight. On restart the search replays
// the journal in place of the first N objective calls: because proposal
// randomness is reseeded per evaluation index (util/rng.h split streams),
// the replayed run walks the exact same trajectory — identical
// best_so_far — and then continues live from evaluation N.
//
// Values are printed with %.17g so the replayed doubles are bit-exact.
// A torn final line (kill mid-write) is detected by the parser and
// dropped; rows after the first unparsable line are ignored, keeping the
// replayed prefix contiguous.

#include <string>
#include <vector>

#include "opt/encoding.h"
#include "util/json_writer.h"

namespace snnskip {

struct JournalEntry {
  std::size_t idx = 0;     ///< global evaluation index within the search
  EncodingVec code;
  double value = 0.0;
  bool failed = false;     ///< candidate was penalized, not measured
};

class SearchJournal {
 public:
  /// Empty path constructs a disabled journal (append is a no-op).
  explicit SearchJournal(const std::string& path) : writer_(path) {}

  bool enabled() const { return writer_.ok(); }

  /// Append one evaluation and flush it to the OS.
  void append(std::size_t idx, const EncodingVec& code, double value,
              bool failed);

  /// Parse a journal file into its contiguous valid prefix. Lines that
  /// fail to parse (torn tail) or whose idx breaks the 0,1,2,... sequence
  /// end the replayable prefix — and the file is truncated back to that
  /// prefix, so the resumed search appends onto a valid last line instead
  /// of concatenating into the torn fragment. A missing file yields an
  /// empty vector.
  static std::vector<JournalEntry> replay(const std::string& path);

 private:
  JsonLinesWriter writer_;
};

}  // namespace snnskip
