#pragma once
// Acquisition functions (paper §III-B: UCB chosen for the search; EI and PI
// provided for completeness / ablation). The optimizer MINIMIZES, so the
// confidence-bound rule is the lower confidence bound and EI/PI measure
// improvement below the incumbent.

#include <string>

#include "opt/gp.h"

namespace snnskip {

enum class AcquisitionKind { Ucb, Ei, Pi };

AcquisitionKind acquisition_from_string(const std::string& s);
std::string to_string(AcquisitionKind k);

/// Lower confidence bound: mean - beta * std (smaller = more attractive).
double lcb(const GpPrediction& p, double beta);

/// Expected improvement below `best` (larger = more attractive).
double expected_improvement(const GpPrediction& p, double best);

/// Probability of improvement below `best` (larger = more attractive).
double probability_of_improvement(const GpPrediction& p, double best);

/// Unified score: LARGER is better for every kind (LCB is negated).
double acquisition_score(AcquisitionKind kind, const GpPrediction& p,
                         double best, double beta);

}  // namespace snnskip
