#pragma once
// Gaussian-process regression surrogate (paper §III-B, prior choice).
//
// Standard exact GP: K = k(X,X) + noise*I, alpha = K^{-1} y via Cholesky.
// Targets are standardized internally so kernel variance ~1 is a sensible
// default regardless of the objective's scale. Observation count in this
// application is tens, so O(n^3) fits are trivially cheap.

#include <memory>
#include <optional>
#include <vector>

#include "linalg/cholesky.h"
#include "opt/kernel.h"

namespace snnskip {

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< predictive variance (>= 0)
};

class GaussianProcess {
 public:
  GaussianProcess(std::shared_ptr<Kernel> kernel, double noise);

  /// Fit to observations. A non-PD kernel matrix is retried with
  /// escalating diagonal jitter (1e-8 .. 1e-4, counted as
  /// gp.jitter_retries); if that still fails the GP stays unfitted and
  /// predict() serves the prior — never throws, so one degenerate round
  /// cannot abort a long search.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  bool fitted() const { return fitted_; }
  std::size_t num_observations() const { return x_.size(); }

  GpPrediction predict(const std::vector<double>& x) const;

  /// Log marginal likelihood of the fitted data (model-selection metric).
  double log_marginal_likelihood() const;

 public:
  /// Pick the RBF lengthscale from `grid` maximizing the log marginal
  /// likelihood on (x, y) and return a GP fitted with it — lightweight
  /// hyperparameter selection for the BO surrogate.
  static GaussianProcess fit_best_lengthscale(
      const std::vector<std::vector<double>>& x, const std::vector<double>& y,
      const std::vector<double>& grid, double variance, double noise);

 private:
  std::shared_ptr<Kernel> kernel_;
  double noise_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_raw_;
  double y_mean_ = 0.0, y_std_ = 1.0;
  Matrix chol_;                 // lower Cholesky factor of K
  std::vector<double> alpha_;   // K^{-1} (y - mean)/std
  bool fitted_ = false;
};

}  // namespace snnskip
