#pragma once
// Random-search baseline (paper §IV-B): samples adjacency configurations
// without replacement and evaluates each; the paper's comparison trains
// every RS candidate from scratch (the evaluator decides that).
//
// Like BO, each evaluation draws from its own split stream and is
// journaled (opt/journal.h), so a killed baseline run resumes with the
// identical trajectory.

#include "opt/bayes_opt.h"

namespace snnskip {

struct RsConfig {
  int evaluations = 16;
  /// Candidates proposed and evaluated per round. Proposals are value-
  /// independent (pure split streams), so batching never changes WHICH
  /// codes are evaluated — only that each round's non-replayed suffix
  /// goes through BoProblem::observe_batch (concurrent training) when
  /// that hook is set. 1 reproduces the serial loop exactly.
  int batch_k = 1;
  std::uint64_t seed = 13;
  /// Journal file for crash-safe resume; empty falls back to
  /// $SNNSKIP_JOURNAL, and empty again disables.
  std::string journal_path;
  /// Substitute for a non-finite objective value.
  double nonfinite_penalty = 2.0;
};

SearchTrace run_random_search(const BoProblem& problem, const RsConfig& cfg);

}  // namespace snnskip
