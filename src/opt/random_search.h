#pragma once
// Random-search baseline (paper §IV-B): samples adjacency configurations
// without replacement and evaluates each; the paper's comparison trains
// every RS candidate from scratch (the evaluator decides that).

#include "opt/bayes_opt.h"

namespace snnskip {

struct RsConfig {
  int evaluations = 16;
  std::uint64_t seed = 13;
};

SearchTrace run_random_search(const BoProblem& problem, const RsConfig& cfg);

}  // namespace snnskip
