#pragma once
// Covariance kernels for the GP surrogate (paper §III-B: Gaussian process
// prior over the objective across adjacency matrices).

#include <vector>

namespace snnskip {

class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual double operator()(const std::vector<double>& a,
                            const std::vector<double>& b) const = 0;
};

/// k(a,b) = variance * exp(-||a-b||^2 / (2*lengthscale^2)).
/// On one-hot encodings ||a-b||^2 = 2 * hamming, so this is an exponential-
/// decay function of slot disagreement.
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double lengthscale, double variance)
      : lengthscale_(lengthscale), variance_(variance) {}
  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const override;

  double lengthscale() const { return lengthscale_; }
  double variance() const { return variance_; }

 private:
  double lengthscale_, variance_;
};

/// Matern-5/2, a rougher prior sometimes preferred for NAS objectives.
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double lengthscale, double variance)
      : lengthscale_(lengthscale), variance_(variance) {}
  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const override;

 private:
  double lengthscale_, variance_;
};

}  // namespace snnskip
