#include "opt/journal.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/logging.h"

namespace snnskip {

namespace {

// Minimal field extraction for the fixed journal row shape. The rows are
// machine-written by JsonLinesWriter, so this only needs to be strict
// enough to reject a torn tail, not to parse arbitrary JSON.

bool find_key(const std::string& line, const char* key, std::size_t& pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  pos = at + needle.size();
  return true;
}

bool parse_number(const std::string& line, std::size_t pos, double& out) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool parse_int_array(const std::string& line, std::size_t pos,
                     std::vector<int>& out) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size() || line[pos] != '[') return false;
  ++pos;
  out.clear();
  while (pos < line.size()) {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == ',')) {
      ++pos;
    }
    if (pos >= line.size()) return false;
    if (line[pos] == ']') return true;
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    const long v = std::strtol(start, &end, 10);
    if (end == start) return false;
    out.push_back(static_cast<int>(v));
    pos = static_cast<std::size_t>(end - line.c_str());
  }
  return false;
}

bool parse_entry(const std::string& line, JournalEntry& e) {
  std::size_t pos = 0;
  double num = 0.0;
  if (!find_key(line, "idx", pos) || !parse_number(line, pos, num) ||
      num < 0) {
    return false;
  }
  e.idx = static_cast<std::size_t>(num);
  if (!find_key(line, "code", pos) || !parse_int_array(line, pos, e.code)) {
    return false;
  }
  if (!find_key(line, "value", pos) || !parse_number(line, pos, e.value)) {
    return false;
  }
  if (!find_key(line, "failed", pos) || !parse_number(line, pos, num)) {
    return false;
  }
  e.failed = num != 0.0;
  // A torn line can still parse if the cut landed after "failed"; require
  // the closing brace as an end-of-row marker.
  return line.find('}') != std::string::npos;
}

}  // namespace

void SearchJournal::append(std::size_t idx, const EncodingVec& code,
                           double value, bool failed) {
  if (!writer_.ok()) return;
  writer_.begin_row();
  writer_.field("idx", static_cast<std::int64_t>(idx));
  writer_.field("code", code);
  writer_.field("value", value);
  writer_.field("failed", static_cast<std::int64_t>(failed ? 1 : 0));
  writer_.end_row();
}

std::vector<JournalEntry> SearchJournal::replay(const std::string& path) {
  std::vector<JournalEntry> entries;
  if (path.empty()) return entries;
  std::uintmax_t valid_bytes = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return entries;
    std::string line;
    while (std::getline(in, line)) {
      JournalEntry e;
      if (!parse_entry(line, e) || e.idx != entries.size()) {
        SNNSKIP_LOG(Warn) << "journal: stopping replay of " << path
                          << " at line " << entries.size() + 1
                          << " (torn or out-of-sequence row)";
        break;
      }
      // Every writer-produced line ends in '\n', so the consumed bytes of
      // a good row are exactly line + newline.
      valid_bytes += line.size() + 1;
      entries.push_back(std::move(e));
    }
  }
  // Drop any trailing junk so the resumed search appends after the last
  // GOOD line rather than concatenating onto a torn fragment (which would
  // poison the row written now for the NEXT restart).
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (!ec && size > valid_bytes) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (!ec) {
      SNNSKIP_LOG(Warn) << "journal: truncated " << size - valid_bytes
                        << " torn trailing bytes from " << path;
    }
  }
  if (!entries.empty()) {
    SNNSKIP_LOG(Info) << "journal: replaying " << entries.size()
                      << " evaluations from " << path;
  }
  return entries;
}

}  // namespace snnskip
