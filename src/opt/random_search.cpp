#include "opt/random_search.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "opt/journal.h"
#include "util/logging.h"

namespace snnskip {

namespace {

void append_observation(SearchTrace& trace, Observation obs) {
  const double v = obs.value;
  trace.observations.push_back(std::move(obs));
  const double prev_best = trace.best_so_far.empty()
                               ? std::numeric_limits<double>::infinity()
                               : trace.best_so_far.back();
  if (v < prev_best) {
    trace.best = trace.observations.back().code;
    trace.best_value = v;
    trace.best_so_far.push_back(v);
  } else {
    trace.best_so_far.push_back(prev_best);
  }
}

}  // namespace

SearchTrace run_random_search(const BoProblem& problem, const RsConfig& cfg) {
  SearchTrace trace;
  std::unordered_set<std::uint64_t> seen;
  const Rng root(cfg.seed);

  const std::string journal_path = resolve_journal_path(cfg.journal_path);
  std::vector<JournalEntry> replay = SearchJournal::replay(journal_path);
  SearchJournal journal(journal_path);

  // Proposal for global evaluation index i — its own split stream plus
  // rejection against `seen`, so the code sequence is identical whether
  // evaluations run one at a time or batch_k at a time.
  auto propose = [&](int i) -> EncodingVec {
    Rng rng = root.split(static_cast<std::uint64_t>(i));
    EncodingVec code;
    for (int tries = 0; tries < 256; ++tries) {
      code = problem.sample(rng);
      if (seen.count(encoding_hash(code)) == 0) break;
    }
    seen.insert(encoding_hash(code));
    return code;
  };

  // One journal-replayed or live serial evaluation (the reference path).
  auto evaluate = [&](const EncodingVec& code) {
    const std::size_t idx = trace.observations.size();
    Observation obs;
    if (idx < replay.size() && replay[idx].code == code) {
      obs = Observation{code, replay[idx].value, replay[idx].failed};
      ++trace.replayed;
    } else {
      if (idx < replay.size()) {
        SNNSKIP_LOG(Warn) << "journal: proposal mismatch at evaluation "
                          << idx << ", discarding the remaining journal";
        replay.resize(idx);
      }
      obs = evaluate_candidate(problem, code, cfg.nonfinite_penalty);
      journal.append(idx, code, obs.value, obs.failed);
    }
    append_observation(trace, std::move(obs));
  };

  const int batch_k = std::max(1, cfg.batch_k);
  for (int i = 0; i < cfg.evaluations; i += batch_k) {
    const int k = std::min(batch_k, cfg.evaluations - i);
    std::vector<EncodingVec> codes;
    codes.reserve(static_cast<std::size_t>(k));
    for (int j = 0; j < k; ++j) codes.push_back(propose(i + j));

    // Journal-replayable prefix runs through the serial path; the live
    // suffix goes to observe_batch in one call when the hook is set
    // (parallel candidate training, core/parallel_evaluator.h).
    std::size_t c = 0;
    while (c < codes.size() && trace.observations.size() < replay.size() &&
           replay[trace.observations.size()].code == codes[c]) {
      evaluate(codes[c]);
      ++c;
    }
    if (c == codes.size()) continue;
    if (!problem.observe_batch || codes.size() - c == 1) {
      for (; c < codes.size(); ++c) evaluate(codes[c]);
      continue;
    }
    const std::size_t start = trace.observations.size();
    if (start < replay.size()) {
      SNNSKIP_LOG(Warn) << "journal: proposal mismatch at evaluation "
                        << start << ", discarding the remaining journal";
      replay.resize(start);
    }
    std::vector<EncodingVec> suffix(
        codes.begin() + static_cast<std::ptrdiff_t>(c), codes.end());
    std::vector<Observation> observed = problem.observe_batch(start, suffix);
    for (std::size_t j = 0; j < suffix.size(); ++j) {
      Observation obs =
          j < observed.size() ? std::move(observed[j]) : Observation{};
      obs.code = suffix[j];
      obs = guard_nonfinite(std::move(obs), cfg.nonfinite_penalty);
      journal.append(start + j, obs.code, obs.value, obs.failed);
      append_observation(trace, std::move(obs));
    }
  }
  return trace;
}

}  // namespace snnskip
