#include "opt/random_search.h"

#include <limits>
#include <unordered_set>

#include "opt/journal.h"
#include "util/logging.h"

namespace snnskip {

SearchTrace run_random_search(const BoProblem& problem, const RsConfig& cfg) {
  SearchTrace trace;
  std::unordered_set<std::uint64_t> seen;
  const Rng root(cfg.seed);

  const std::string journal_path = resolve_journal_path(cfg.journal_path);
  std::vector<JournalEntry> replay = SearchJournal::replay(journal_path);
  SearchJournal journal(journal_path);

  for (int i = 0; i < cfg.evaluations; ++i) {
    Rng rng = root.split(static_cast<std::uint64_t>(i));
    EncodingVec code;
    for (int tries = 0; tries < 256; ++tries) {
      code = problem.sample(rng);
      if (seen.count(encoding_hash(code)) == 0) break;
    }
    seen.insert(encoding_hash(code));

    const std::size_t idx = trace.observations.size();
    Observation obs;
    if (idx < replay.size() && replay[idx].code == code) {
      obs = Observation{code, replay[idx].value, replay[idx].failed};
      ++trace.replayed;
    } else {
      if (idx < replay.size()) {
        SNNSKIP_LOG(Warn) << "journal: proposal mismatch at evaluation "
                          << idx << ", discarding the remaining journal";
        replay.resize(idx);
      }
      obs = evaluate_candidate(problem, code, cfg.nonfinite_penalty);
      journal.append(idx, code, obs.value, obs.failed);
    }

    const double v = obs.value;
    trace.observations.push_back(std::move(obs));
    const double prev_best = trace.best_so_far.empty()
                                 ? std::numeric_limits<double>::infinity()
                                 : trace.best_so_far.back();
    if (v < prev_best) {
      trace.best = trace.observations.back().code;
      trace.best_value = v;
      trace.best_so_far.push_back(v);
    } else {
      trace.best_so_far.push_back(prev_best);
    }
  }
  return trace;
}

}  // namespace snnskip
