#include "opt/random_search.h"

#include <limits>
#include <unordered_set>

namespace snnskip {

SearchTrace run_random_search(const BoProblem& problem, const RsConfig& cfg) {
  Rng rng(cfg.seed);
  SearchTrace trace;
  std::unordered_set<std::uint64_t> seen;

  for (int i = 0; i < cfg.evaluations; ++i) {
    EncodingVec code;
    for (int tries = 0; tries < 256; ++tries) {
      code = problem.sample(rng);
      if (seen.count(encoding_hash(code)) == 0) break;
    }
    seen.insert(encoding_hash(code));

    Observation obs{code, problem.objective(code)};
    const double v = obs.value;
    trace.observations.push_back(std::move(obs));
    const double prev_best = trace.best_so_far.empty()
                                 ? std::numeric_limits<double>::infinity()
                                 : trace.best_so_far.back();
    if (v < prev_best) {
      trace.best = trace.observations.back().code;
      trace.best_value = v;
      trace.best_so_far.push_back(v);
    } else {
      trace.best_so_far.push_back(prev_best);
    }
  }
  return trace;
}

}  // namespace snnskip
