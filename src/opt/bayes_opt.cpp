#include "opt/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "opt/journal.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

void append_observation(SearchTrace& trace, Observation obs) {
  const double v = obs.value;
  trace.observations.push_back(std::move(obs));
  const double prev_best = trace.best_so_far.empty()
                               ? std::numeric_limits<double>::infinity()
                               : trace.best_so_far.back();
  if (v < prev_best) {
    trace.best = trace.observations.back().code;
    trace.best_value = v;
    trace.best_so_far.push_back(v);
  } else {
    trace.best_so_far.push_back(prev_best);
  }
}

}  // namespace

std::string resolve_journal_path(const std::string& configured) {
  return configured.empty() ? env::get_string("SNNSKIP_JOURNAL", "")
                            : configured;
}

Observation guard_nonfinite(Observation obs, double nonfinite_penalty) {
  if (!std::isfinite(obs.value)) {
    // Last-resort guard: the GP's Cholesky cannot digest NaN/Inf targets,
    // and one poisoned row would invalidate every later proposal.
    SNNSKIP_LOG(Warn) << "search: non-finite objective penalized to "
                      << nonfinite_penalty;
    Telemetry::count("bo.nonfinite_values");
    obs.value = nonfinite_penalty;
    obs.failed = true;
  }
  return obs;
}

Observation evaluate_candidate(const BoProblem& problem,
                               const EncodingVec& code,
                               double nonfinite_penalty) {
  Observation obs;
  if (problem.observe) {
    obs = problem.observe(code);
  } else {
    obs.value = problem.objective(code);
  }
  obs.code = code;
  return guard_nonfinite(std::move(obs), nonfinite_penalty);
}

SearchTrace run_bayes_opt(const BoProblem& problem, const BoConfig& cfg) {
  SearchTrace trace;
  std::unordered_set<std::uint64_t> seen;
  const Rng root(cfg.seed);

  const std::string journal_path = resolve_journal_path(cfg.journal_path);
  std::vector<JournalEntry> replay = SearchJournal::replay(journal_path);
  SearchJournal journal(journal_path);

  auto sample_unseen = [&](Rng& r) -> EncodingVec {
    // Rejection-sample a point not yet evaluated; give up after a bounded
    // number of tries (tiny spaces can be exhausted).
    for (int tries = 0; tries < 256; ++tries) {
      EncodingVec code = problem.sample(r);
      if (seen.count(encoding_hash(code)) == 0) return code;
    }
    return problem.sample(r);
  };

  auto evaluate = [&](const EncodingVec& code) {
    const std::size_t idx = trace.observations.size();
    seen.insert(encoding_hash(code));
    if (idx < replay.size()) {
      if (replay[idx].code == code) {
        Observation obs{code, replay[idx].value, replay[idx].failed};
        ++trace.replayed;
        append_observation(trace, std::move(obs));
        return;
      }
      // The journal came from a different problem/config; proposals have
      // diverged, so the remainder cannot be trusted.
      SNNSKIP_LOG(Warn) << "journal: proposal mismatch at evaluation " << idx
                        << ", discarding the remaining journal";
      replay.resize(idx);
    }
    Observation obs = evaluate_candidate(problem, code, cfg.nonfinite_penalty);
    SNNSKIP_LOG(Debug) << "bo: observed value " << obs.value;
    journal.append(idx, code, obs.value, obs.failed);
    append_observation(trace, std::move(obs));
  };

  // Batched evaluation: satisfy the replayable prefix from the journal
  // one-by-one (identical to the serial path), then hand the remaining
  // suffix to observe_batch in one call so its candidates train
  // concurrently. The suffix's start index is the journal index of its
  // first live evaluation — batched evaluators key replay-stable
  // per-candidate seeds off it.
  auto evaluate_batch = [&](const std::vector<EncodingVec>& codes) {
    std::size_t i = 0;
    while (i < codes.size() && trace.observations.size() < replay.size() &&
           replay[trace.observations.size()].code == codes[i]) {
      evaluate(codes[i]);
      ++i;
    }
    if (i == codes.size()) return;
    if (!problem.observe_batch || codes.size() - i == 1) {
      for (; i < codes.size(); ++i) evaluate(codes[i]);
      return;
    }
    const std::size_t start = trace.observations.size();
    if (start < replay.size()) {
      SNNSKIP_LOG(Warn) << "journal: proposal mismatch at evaluation "
                        << start << ", discarding the remaining journal";
      replay.resize(start);
    }
    std::vector<EncodingVec> suffix(codes.begin() + static_cast<std::ptrdiff_t>(i),
                                    codes.end());
    for (const EncodingVec& code : suffix) seen.insert(encoding_hash(code));
    std::vector<Observation> observed = problem.observe_batch(start, suffix);
    for (std::size_t j = 0; j < suffix.size(); ++j) {
      Observation obs = j < observed.size() ? std::move(observed[j])
                                            : Observation{};
      obs.code = suffix[j];
      obs = guard_nonfinite(std::move(obs), cfg.nonfinite_penalty);
      SNNSKIP_LOG(Debug) << "bo: observed value " << obs.value << " (batch)";
      journal.append(start + j, obs.code, obs.value, obs.failed);
      append_observation(trace, std::move(obs));
    }
  };

  // Initial design: pure random. Each step draws from its own split
  // stream so the proposal sequence is independent of how many previous
  // steps were replayed versus evaluated — which also makes the whole
  // design batchable (no proposal depends on an earlier design value).
  {
    std::vector<EncodingVec> design;
    design.reserve(static_cast<std::size_t>(cfg.initial_design));
    for (int i = 0; i < cfg.initial_design; ++i) {
      Rng step_rng = root.split(static_cast<std::uint64_t>(i));
      EncodingVec code = sample_unseen(step_rng);
      // Marked seen immediately so the next design point rejects against
      // it, exactly as the serial evaluate-as-you-go loop did.
      seen.insert(encoding_hash(code));
      design.push_back(std::move(code));
    }
    evaluate_batch(design);
  }

  for (int round = 0; round < cfg.iterations; ++round) {
    Rng round_rng = root.split(
        static_cast<std::uint64_t>(cfg.initial_design + round));
    const double beta = cfg.beta * std::pow(cfg.beta_decay, round);

    // Fit the surrogate on everything observed so far.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    xs.reserve(trace.observations.size());
    for (const auto& obs : trace.observations) {
      xs.push_back(problem.featurize(obs.code));
      ys.push_back(obs.value);
    }

    // Constant-liar batch selection: each picked candidate is hallucinated
    // at the incumbent value so subsequent picks explore elsewhere.
    std::vector<EncodingVec> batch;
    std::unordered_set<std::uint64_t> batch_seen;
    for (int k = 0; k < cfg.batch_k; ++k) {
      GaussianProcess gp = [&] {
        if (cfg.auto_lengthscale) {
          return GaussianProcess::fit_best_lengthscale(
              xs, ys, {0.5, 1.0, 2.0, 4.0, 8.0}, cfg.kernel_variance,
              cfg.noise);
        }
        GaussianProcess fixed(
            std::make_shared<RbfKernel>(cfg.lengthscale, cfg.kernel_variance),
            cfg.noise);
        fixed.fit(xs, ys);
        return fixed;
      }();

      double best_score = -std::numeric_limits<double>::infinity();
      EncodingVec best_code;
      for (int c = 0; c < cfg.candidate_pool; ++c) {
        EncodingVec code = sample_unseen(round_rng);
        if (batch_seen.count(encoding_hash(code)) != 0) continue;
        const GpPrediction pred = gp.predict(problem.featurize(code));
        const double score =
            acquisition_score(cfg.acquisition, pred, trace.best_value, beta);
        if (score > best_score) {
          best_score = score;
          best_code = std::move(code);
        }
      }
      if (best_code.empty()) break;
      batch_seen.insert(encoding_hash(best_code));
      // Hallucinate the liar observation for the next in-batch pick.
      xs.push_back(problem.featurize(best_code));
      ys.push_back(trace.best_value);
      batch.push_back(std::move(best_code));
    }

    // Evaluate the batch for real (the paper trains the k architectures in
    // parallel; evaluation order within the batch does not affect the GP).
    evaluate_batch(batch);
  }
  return trace;
}

}  // namespace snnskip
