#pragma once
// Regularized evolution (Real et al., AAAI 2019) — the strongest common
// NAS baseline besides BO. Maintains a fixed-size population; each step
// tournament-selects a parent, mutates one slot, evaluates the child and
// retires the OLDEST member (aging regularization). Provided as a third
// search strategy to triangulate the paper's BO-vs-RS comparison.

#include <functional>

#include "opt/bayes_opt.h"

namespace snnskip {

struct EvolutionConfig {
  int evaluations = 16;     ///< total objective evaluations
  int population = 8;       ///< live population size
  int tournament = 3;       ///< parents sampled per selection
  std::uint64_t seed = 17;
};

/// `mutate` must return a valid neighbor of its argument (one-slot flip).
SearchTrace run_evolution(
    const BoProblem& problem,
    const std::function<EncodingVec(const EncodingVec&, Rng&)>& mutate,
    const EvolutionConfig& cfg);

}  // namespace snnskip
