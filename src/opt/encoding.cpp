#include "opt/encoding.h"

#include <cassert>

namespace snnskip {

std::vector<double> one_hot_features(const EncodingVec& code) {
  std::vector<double> f(code.size() * 3, 0.0);
  for (std::size_t i = 0; i < code.size(); ++i) {
    assert(code[i] >= 0 && code[i] <= 2);
    f[i * 3 + static_cast<std::size_t>(code[i])] = 1.0;
  }
  return f;
}

int hamming_distance(const EncodingVec& a, const EncodingVec& b) {
  assert(a.size() == b.size());
  int d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

std::uint64_t encoding_hash(const EncodingVec& code) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int v : code) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace snnskip
