#pragma once
// Encodings of adjacency configurations for the optimizer.
//
// A candidate is the concatenation of every block's slot values (0/1/2 =
// none/DSC/ASC) in canonical slot order. For the GP it is featurized as a
// one-hot vector (3 dims per slot), under which the RBF kernel becomes a
// smooth function of the Hamming distance between configurations.

#include <cstdint>
#include <vector>

namespace snnskip {

using EncodingVec = std::vector<int>;

/// One-hot featurization: 3 doubles per slot.
std::vector<double> one_hot_features(const EncodingVec& code);

/// Hamming distance between two encodings (number of differing slots).
int hamming_distance(const EncodingVec& a, const EncodingVec& b);

/// Stable hash for dedup bookkeeping.
std::uint64_t encoding_hash(const EncodingVec& code);

}  // namespace snnskip
