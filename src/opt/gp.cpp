#include "opt/gp.h"

#include <cassert>
#include <cmath>

#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snnskip {

GaussianProcess::GaussianProcess(std::shared_ptr<Kernel> kernel, double noise)
    : kernel_(std::move(kernel)), noise_(noise) {
  assert(kernel_ != nullptr);
}

void GaussianProcess::fit(std::vector<std::vector<double>> x,
                          std::vector<double> y) {
  assert(x.size() == y.size() && !x.empty());
  x_ = std::move(x);
  y_raw_ = std::move(y);

  const std::size_t n = x_.size();
  // Standardize targets.
  double mean = 0.0;
  for (double v : y_raw_) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y_raw_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;

  Matrix k(static_cast<std::int64_t>(n), static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = (*kernel_)(x_[i], x_[j]);
      k(static_cast<std::int64_t>(i), static_cast<std::int64_t>(j)) = v;
      k(static_cast<std::int64_t>(j), static_cast<std::int64_t>(i)) = v;
    }
  }
  k.add_diagonal(noise_);

  // Escalating-jitter Cholesky: retry from 1e-8 up to 1e-4 total added
  // diagonal. If even that fails (duplicate rows with zero noise, or
  // non-finite features), fall back to the unfitted prior instead of
  // aborting the search — one bad surrogate round must not kill a
  // multi-hour run.
  std::optional<Matrix> chol = cholesky(k);
  double jitter = 1e-8;
  while (!chol && jitter <= 1e-4) {
    Telemetry::count("gp.jitter_retries");
    Matrix k_jittered = k;
    k_jittered.add_diagonal(jitter);
    chol = cholesky(k_jittered);
    jitter *= 10.0;
  }
  if (!chol) {
    Telemetry::count("gp.fit_failures");
    SNNSKIP_LOG(Warn) << "gp: kernel matrix not PD after jitter escalation; "
                         "falling back to the prior";
    fitted_ = false;
    return;
  }
  chol_ = std::move(*chol);

  std::vector<double> y_std_vec(n);
  for (std::size_t i = 0; i < n; ++i) {
    y_std_vec[i] = (y_raw_[i] - y_mean_) / y_std_;
  }
  alpha_ = cholesky_solve(chol_, y_std_vec);
  fitted_ = true;
}

GpPrediction GaussianProcess::predict(const std::vector<double>& x) const {
  GpPrediction pred;
  if (!fitted_) {
    pred.variance = 1.0;
    return pred;
  }
  const std::size_t n = x_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = (*kernel_)(x_[i], x);

  double mu = 0.0;
  for (std::size_t i = 0; i < n; ++i) mu += k_star[i] * alpha_[i];

  const std::vector<double> v = solve_lower(chol_, k_star);
  double var = (*kernel_)(x, x);
  for (double vi : v) var -= vi * vi;
  var = std::max(var, 0.0);

  pred.mean = mu * y_std_ + y_mean_;
  pred.variance = var * y_std_ * y_std_;
  return pred;
}

GaussianProcess GaussianProcess::fit_best_lengthscale(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    const std::vector<double>& grid, double variance, double noise) {
  assert(!grid.empty());
  std::optional<GaussianProcess> best;
  double best_lml = -std::numeric_limits<double>::infinity();
  for (double ls : grid) {
    GaussianProcess gp(std::make_shared<RbfKernel>(ls, variance), noise);
    gp.fit(x, y);
    if (!gp.fitted()) continue;  // fit fell back to the prior
    const double lml = gp.log_marginal_likelihood();
    if (lml > best_lml) {
      best_lml = lml;
      best = std::move(gp);
    }
  }
  if (!best) {
    // Every grid point failed; return an unfitted GP (prior predictions).
    return GaussianProcess(std::make_shared<RbfKernel>(grid.front(), variance),
                           noise);
  }
  return std::move(*best);
}

double GaussianProcess::log_marginal_likelihood() const {
  if (!fitted_) return -std::numeric_limits<double>::infinity();
  const std::size_t n = x_.size();
  double fit_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fit_term += ((y_raw_[i] - y_mean_) / y_std_) * alpha_[i];
  }
  return -0.5 * fit_term - 0.5 * cholesky_logdet(chol_) -
         0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
}

}  // namespace snnskip
