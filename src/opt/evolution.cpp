#include "opt/evolution.h"

#include <deque>
#include <limits>

namespace snnskip {

namespace {

void record(SearchTrace& trace, EncodingVec code, double value) {
  trace.observations.push_back(Observation{std::move(code), value});
  const double prev_best = trace.best_so_far.empty()
                               ? std::numeric_limits<double>::infinity()
                               : trace.best_so_far.back();
  if (value < prev_best) {
    trace.best = trace.observations.back().code;
    trace.best_value = value;
    trace.best_so_far.push_back(value);
  } else {
    trace.best_so_far.push_back(prev_best);
  }
}

}  // namespace

SearchTrace run_evolution(
    const BoProblem& problem,
    const std::function<EncodingVec(const EncodingVec&, Rng&)>& mutate,
    const EvolutionConfig& cfg) {
  Rng rng(cfg.seed);
  SearchTrace trace;
  std::deque<Observation> population;  // front = oldest

  // Seed the population randomly.
  const int seed_count = std::min(cfg.population, cfg.evaluations);
  for (int i = 0; i < seed_count; ++i) {
    EncodingVec code = problem.sample(rng);
    const double value = problem.objective(code);
    record(trace, code, value);
    population.push_back(Observation{std::move(code), value});
  }

  // Evolve: tournament-select, mutate, evaluate, age out the oldest.
  for (int e = seed_count; e < cfg.evaluations; ++e) {
    const Observation* parent = nullptr;
    for (int t = 0; t < cfg.tournament; ++t) {
      const auto& cand = population[static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(population.size())))];
      if (parent == nullptr || cand.value < parent->value) parent = &cand;
    }
    EncodingVec child = mutate(parent->code, rng);
    const double value = problem.objective(child);
    record(trace, child, value);
    population.push_back(Observation{std::move(child), value});
    if (static_cast<int>(population.size()) > cfg.population) {
      population.pop_front();
    }
  }
  return trace;
}

}  // namespace snnskip
