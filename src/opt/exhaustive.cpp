#include "opt/exhaustive.h"

#include <limits>

namespace snnskip {

namespace {

void record(SearchTrace& trace, EncodingVec code, double value) {
  trace.observations.push_back(Observation{std::move(code), value});
  const double prev_best = trace.best_so_far.empty()
                               ? std::numeric_limits<double>::infinity()
                               : trace.best_so_far.back();
  if (value < prev_best) {
    trace.best = trace.observations.back().code;
    trace.best_value = value;
    trace.best_so_far.push_back(value);
  } else {
    trace.best_so_far.push_back(prev_best);
  }
}

}  // namespace

std::size_t exhaustive_count(
    std::size_t slots,
    const std::function<bool(std::size_t, int)>& value_allowed,
    std::size_t max) {
  std::size_t count = 1;
  for (std::size_t k = 0; k < slots; ++k) {
    std::size_t options = 0;
    for (int v = 0; v <= 2; ++v) {
      if (value_allowed(k, v)) ++options;
    }
    if (options == 0) return 0;
    if (count > max / options) return max;  // saturate
    count *= options;
  }
  return count;
}

SearchTrace run_exhaustive(
    std::size_t slots,
    const std::function<bool(std::size_t, int)>& value_allowed,
    const std::function<double(const EncodingVec&)>& objective,
    const ExhaustiveConfig& cfg) {
  SearchTrace trace;
  EncodingVec code(slots, 0);

  // Start from the smallest admissible value in every slot.
  auto first_allowed = [&](std::size_t k, int from) -> int {
    for (int v = from; v <= 2; ++v) {
      if (value_allowed(k, v)) return v;
    }
    return -1;
  };
  for (std::size_t k = 0; k < slots; ++k) {
    const int v = first_allowed(k, 0);
    if (v < 0) return trace;  // dead slot: empty space
    code[k] = v;
  }

  std::size_t evaluations = 0;
  for (;;) {
    record(trace, code, objective(code));
    if (++evaluations >= cfg.max_evaluations) break;
    // Odometer increment over admissible values, last slot fastest.
    std::size_t k = slots;
    bool advanced = false;
    while (k-- > 0) {
      const int next = first_allowed(k, code[k] + 1);
      if (next >= 0) {
        code[k] = next;
        for (std::size_t j = k + 1; j < slots; ++j) {
          code[j] = first_allowed(j, 0);
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // rolled over: done
  }
  return trace;
}

}  // namespace snnskip
