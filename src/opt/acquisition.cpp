#include "opt/acquisition.h"

#include <cmath>
#include <stdexcept>

namespace snnskip {

namespace {
double norm_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}
double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

AcquisitionKind acquisition_from_string(const std::string& s) {
  if (s == "ucb" || s == "lcb") return AcquisitionKind::Ucb;
  if (s == "ei") return AcquisitionKind::Ei;
  if (s == "pi") return AcquisitionKind::Pi;
  throw std::invalid_argument("unknown acquisition: " + s);
}

std::string to_string(AcquisitionKind k) {
  switch (k) {
    case AcquisitionKind::Ucb: return "ucb";
    case AcquisitionKind::Ei: return "ei";
    case AcquisitionKind::Pi: return "pi";
  }
  return "?";
}

double lcb(const GpPrediction& p, double beta) {
  return p.mean - beta * std::sqrt(p.variance);
}

double expected_improvement(const GpPrediction& p, double best) {
  const double sd = std::sqrt(p.variance);
  if (sd < 1e-12) return std::max(0.0, best - p.mean);
  const double z = (best - p.mean) / sd;
  return (best - p.mean) * norm_cdf(z) + sd * norm_pdf(z);
}

double probability_of_improvement(const GpPrediction& p, double best) {
  const double sd = std::sqrt(p.variance);
  if (sd < 1e-12) return p.mean < best ? 1.0 : 0.0;
  return norm_cdf((best - p.mean) / sd);
}

double acquisition_score(AcquisitionKind kind, const GpPrediction& p,
                         double best, double beta) {
  switch (kind) {
    case AcquisitionKind::Ucb: return -lcb(p, beta);
    case AcquisitionKind::Ei: return expected_improvement(p, best);
    case AcquisitionKind::Pi: return probability_of_improvement(p, best);
  }
  return 0.0;
}

}  // namespace snnskip
