#include "opt/kernel.h"

#include <cassert>
#include <cmath>

namespace snnskip {

namespace {
double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}
}  // namespace

double RbfKernel::operator()(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  return variance_ *
         std::exp(-sq_dist(a, b) / (2.0 * lengthscale_ * lengthscale_));
}

double Matern52Kernel::operator()(const std::vector<double>& a,
                                  const std::vector<double>& b) const {
  const double r = std::sqrt(sq_dist(a, b)) / lengthscale_;
  const double s5r = std::sqrt(5.0) * r;
  return variance_ * (1.0 + s5r + 5.0 * r * r / 3.0) * std::exp(-s5r);
}

}  // namespace snnskip
