#pragma once
// Bayesian optimization over discrete adjacency encodings (paper §III-B).
//
// Loop: fit GP on all observations -> score a random candidate pool with
// the acquisition -> take the top-k batch ("parallel BO": the paper's
// strategy proposes k architectures per iteration, hallucinating pending
// results with the constant-liar value so batch members diversify) ->
// evaluate the batch -> append observations. Evaluated points are never
// re-proposed.
//
// Fault tolerance: proposal randomness is reseeded per step from split
// streams of the config seed, so the trajectory is a pure function of
// (config, observation values). Combined with the append-only journal
// (opt/journal.h) this makes a killed search resumable: on restart the
// journaled values replace the first N objective calls, the proposals are
// recomputed identically, and evaluation N continues live. Candidates
// whose evaluation failed report a finite penalized objective (observe /
// the non-finite guard below), so the GP never ingests NaN.

#include <functional>
#include <string>
#include <vector>

#include "opt/acquisition.h"
#include "opt/encoding.h"
#include "util/rng.h"

namespace snnskip {

struct Observation {
  EncodingVec code;
  double value = 0.0;
  bool failed = false;  ///< penalized (diverged / non-finite), not measured
};

/// The problem is abstract: how to sample a random point, featurize it for
/// the GP, and (expensively) evaluate it. The optimizer MINIMIZES.
struct BoProblem {
  std::function<EncodingVec(Rng&)> sample;
  std::function<std::vector<double>(const EncodingVec&)> featurize;
  std::function<double(const EncodingVec&)> objective;
  /// Optional richer evaluation carrying the failed flag (code is filled
  /// in by the optimizer). When set it is used instead of `objective`.
  std::function<Observation(const EncodingVec&)> observe;
  /// Optional batched evaluation (parallel candidate training, see
  /// core/parallel_evaluator.h): evaluate all codes concurrently, return
  /// one Observation per code in order. `start_idx` is the global
  /// evaluation index of codes[0] — the journal index the search loop
  /// will record, which batched evaluators use to derive replay-stable
  /// per-candidate seeds. When set it is preferred over observe/objective
  /// for the non-replayed suffix of each proposed batch.
  std::function<std::vector<Observation>(std::size_t start_idx,
                                         const std::vector<EncodingVec>&)>
      observe_batch;
};

struct BoConfig {
  int iterations = 8;       ///< BO rounds after the initial design
  int batch_k = 2;          ///< candidates proposed per round (parallel BO)
  int initial_design = 4;   ///< random points before the GP takes over
  int candidate_pool = 128; ///< pool scored by the acquisition per pick
  AcquisitionKind acquisition = AcquisitionKind::Ucb;
  double beta = 2.0;        ///< UCB exploration weight
  double beta_decay = 0.95; ///< per-round multiplicative decay
  double lengthscale = 2.0;
  double kernel_variance = 1.0;
  double noise = 1e-4;
  /// Select the lengthscale per round by log-marginal-likelihood over a
  /// small grid instead of using the fixed value above.
  bool auto_lengthscale = false;
  std::uint64_t seed = 11;

  /// Journal file for crash-safe resume; every evaluation is appended and
  /// flushed, and existing rows are replayed before evaluating live.
  /// Empty falls back to $SNNSKIP_JOURNAL, and empty again disables.
  std::string journal_path;
  /// Substitute for a non-finite objective value (guard of last resort —
  /// the evaluator already penalizes failed candidates upstream).
  double nonfinite_penalty = 2.0;
};

struct SearchTrace {
  std::vector<Observation> observations;   ///< in evaluation order
  std::vector<double> best_so_far;         ///< running minimum per evaluation
  EncodingVec best;
  double best_value = 0.0;
  std::size_t replayed = 0;  ///< evaluations satisfied from the journal
};

SearchTrace run_bayes_opt(const BoProblem& problem, const BoConfig& cfg);

/// Journal path resolution shared by BO and random search: the configured
/// path wins, else $SNNSKIP_JOURNAL, else disabled (empty).
std::string resolve_journal_path(const std::string& configured);

/// One live evaluation via observe()/objective() with the non-finite
/// guard applied (penalized + marked failed). Shared by BO and RS.
Observation evaluate_candidate(const BoProblem& problem,
                               const EncodingVec& code,
                               double nonfinite_penalty);

/// The non-finite guard alone (for observations produced by
/// observe_batch): penalize and mark failed when value is NaN/Inf.
Observation guard_nonfinite(Observation obs, double nonfinite_penalty);

}  // namespace snnskip
