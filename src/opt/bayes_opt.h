#pragma once
// Bayesian optimization over discrete adjacency encodings (paper §III-B).
//
// Loop: fit GP on all observations -> score a random candidate pool with
// the acquisition -> take the top-k batch ("parallel BO": the paper's
// strategy proposes k architectures per iteration, hallucinating pending
// results with the constant-liar value so batch members diversify) ->
// evaluate the batch -> append observations. Evaluated points are never
// re-proposed.

#include <functional>
#include <vector>

#include "opt/acquisition.h"
#include "opt/encoding.h"
#include "util/rng.h"

namespace snnskip {

/// The problem is abstract: how to sample a random point, featurize it for
/// the GP, and (expensively) evaluate it. The optimizer MINIMIZES.
struct BoProblem {
  std::function<EncodingVec(Rng&)> sample;
  std::function<std::vector<double>(const EncodingVec&)> featurize;
  std::function<double(const EncodingVec&)> objective;
};

struct BoConfig {
  int iterations = 8;       ///< BO rounds after the initial design
  int batch_k = 2;          ///< candidates proposed per round (parallel BO)
  int initial_design = 4;   ///< random points before the GP takes over
  int candidate_pool = 128; ///< pool scored by the acquisition per pick
  AcquisitionKind acquisition = AcquisitionKind::Ucb;
  double beta = 2.0;        ///< UCB exploration weight
  double beta_decay = 0.95; ///< per-round multiplicative decay
  double lengthscale = 2.0;
  double kernel_variance = 1.0;
  double noise = 1e-4;
  /// Select the lengthscale per round by log-marginal-likelihood over a
  /// small grid instead of using the fixed value above.
  bool auto_lengthscale = false;
  std::uint64_t seed = 11;
};

struct Observation {
  EncodingVec code;
  double value = 0.0;
};

struct SearchTrace {
  std::vector<Observation> observations;   ///< in evaluation order
  std::vector<double> best_so_far;         ///< running minimum per evaluation
  EncodingVec best;
  double best_value = 0.0;
};

SearchTrace run_bayes_opt(const BoProblem& problem, const BoConfig& cfg);

}  // namespace snnskip
