#pragma once
// Exhaustive enumeration for small search spaces — ground truth for
// validating that BO / evolution / RS actually find good optima, and
// usable directly when a block's space is tiny (a depth-2 block has only
// 3 options).

#include <functional>

#include "opt/bayes_opt.h"

namespace snnskip {

struct ExhaustiveConfig {
  /// Safety cap: enumeration aborts (returns what it has) after this many
  /// evaluations. The objective is usually a training run; enumerating a
  /// 3^18 space by accident must not be possible.
  std::size_t max_evaluations = 4096;
};

/// Enumerate every assignment over `slots` positions where slot k admits
/// the values for which `value_allowed(k, v)` holds (v in 0..2), calling
/// `objective` on each. Lexicographic order, deterministic.
SearchTrace run_exhaustive(
    std::size_t slots,
    const std::function<bool(std::size_t, int)>& value_allowed,
    const std::function<double(const EncodingVec&)>& objective,
    const ExhaustiveConfig& cfg = {});

/// Number of admissible assignments (capped at max to avoid overflow).
std::size_t exhaustive_count(
    std::size_t slots,
    const std::function<bool(std::size_t, int)>& value_allowed,
    std::size_t max = 1u << 30);

}  // namespace snnskip
