#pragma once
// Data-parallel loop helper over the global ThreadPool.
//
// parallel_for(0, n, body) partitions [0, n) into contiguous chunks, one
// task per worker (OpenMP "static schedule" style — the tensor kernels it
// backs have uniform per-index cost). The calling thread participates, so
// a single-core machine runs the body inline with zero task overhead.
//
// The body must be safe to run concurrently on disjoint index ranges; the
// reduction variant merges per-chunk partials in chunk order so results are
// deterministic regardless of thread count.

#include <cstddef>
#include <functional>
#include <vector>

namespace snnskip {

/// Grain control: ranges smaller than this run inline on the caller.
inline constexpr std::size_t kParallelForMinGrain = 1024;

/// Test/tuning override: when nonzero, parallel_for partitions every range
/// into exactly min(k, n) chunks, bypassing the grain and pool-size
/// heuristics. The sparse/dense gradient-equivalence tests use this to
/// exercise 1/2/4-way partitions on any machine (the kernels' bit-for-bit
/// guarantee must hold for every partition, not just the one this host's
/// core count happens to produce). 0 restores the default policy.
void set_parallel_chunk_override(std::size_t k);
std::size_t parallel_chunk_override();

/// Invoke `body(begin, end)` over a partition of [begin, end).
void parallel_for_range(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Element-wise convenience: calls f(i) for every i in [begin, end).
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f) {
  parallel_for_range(begin, end, [&f](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) f(i);
  });
}

/// Deterministic parallel sum-reduction of f(i) over [begin, end).
double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& f);

}  // namespace snnskip
