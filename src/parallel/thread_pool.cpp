#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/runtime_env.h"

namespace snnskip {

namespace {
// Set for the lifetime of every pool worker thread (any pool instance);
// queried by ThreadPool::on_worker_thread / parallel_for's nesting guard.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task already captures exceptions into the future
  }
}

std::size_t ThreadPool::threads_from_env() {
  // SNNSKIP_THREADS pins the worker count; 0 / unset / invalid means
  // hardware_concurrency (min 1). Read via runtime_env like every other
  // toggle — the only getenv site.
  const std::int64_t pinned =
      std::max<std::int64_t>(0, env::get_int("SNNSKIP_THREADS", 0));
  if (pinned > 0) return static_cast<std::size_t>(pinned);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(threads_from_env());
  return pool;
}

}  // namespace snnskip
