#include "parallel/thread_pool.h"

#include <algorithm>

#include "util/runtime_env.h"

namespace snnskip {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task already captures exceptions into the future
  }
}

ThreadPool& ThreadPool::global() {
  // SNNSKIP_THREADS pins the worker count; 0 / unset / invalid means
  // hardware_concurrency (the ThreadPool ctor's 0 convention). Read via
  // runtime_env like every other toggle — the only getenv site.
  static ThreadPool pool(static_cast<std::size_t>(
      std::max<std::int64_t>(0, env::get_int("SNNSKIP_THREADS", 0))));
  return pool;
}

}  // namespace snnskip
