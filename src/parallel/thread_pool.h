#pragma once
// RAII thread pool following the C++ Core Guidelines concurrency rules:
// threads are joined on destruction (CP.23/25: a joining thread is a scoped
// container; never detach), work is expressed as tasks not threads (CP.4),
// and shared state is confined to the internal queue behind one mutex with
// condition-variable waits (CP.42: don't wait without a condition).
//
// The pool is the single parallel substrate for the whole library: tensor
// kernels partition loops across it via parallel_for, and the Bayesian-
// optimization driver schedules candidate evaluations on it ("parallel BO"
// in the paper, §III-B).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snnskip {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True on a thread owned by ANY ThreadPool (thread-local flag). The
  /// parallel_for helpers consult this to run nested parallel regions
  /// inline: a pool task that submitted sub-tasks and blocked on their
  /// futures could starve the queue of runnable threads (classic nested-
  /// submit deadlock), so nesting degrades to serial execution instead.
  static bool on_worker_thread();

  /// Enqueue a task; the returned future reports its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Process-wide default pool (lazily constructed; sized to hardware).
  static ThreadPool& global();

  /// The thread count global() uses: SNNSKIP_THREADS when set to a positive
  /// value, else hardware concurrency (min 1). Exposed separately so tests
  /// can verify the env contract without constructing the (process-wide,
  /// construct-once) global pool under a modified environment.
  static std::size_t threads_from_env();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace snnskip
