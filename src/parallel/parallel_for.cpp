#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "parallel/thread_pool.h"

namespace snnskip {

namespace {
std::atomic<std::size_t> g_chunk_override{0};
}  // namespace

void set_parallel_chunk_override(std::size_t k) {
  g_chunk_override.store(k, std::memory_order_relaxed);
}
std::size_t parallel_chunk_override() {
  return g_chunk_override.load(std::memory_order_relaxed);
}

void parallel_for_range(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t workers = pool.size();
  const std::size_t forced = parallel_chunk_override();
  if (forced == 0 && (n < kParallelForMinGrain || workers <= 1)) {
    body(begin, end);
    return;
  }
  const std::size_t chunks =
      forced != 0 ? std::min(forced, n) : std::min(workers, n);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;

  if (ThreadPool::on_worker_thread()) {
    // Nested parallel region (e.g. a tensor kernel inside a data-parallel
    // shard or candidate task already running ON a pool thread). Submitting
    // sub-chunks here could deadlock: every pool thread may be blocked in
    // this same f.get() with the sub-chunks stuck behind them in the queue.
    // Run the identical chunk decomposition inline instead — same
    // partition boundaries (the bit-for-bit guarantees of chunked kernels
    // are partition-determined), zero extra threads.
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t b = begin + c * chunk;
      const std::size_t e = std::min(end, b + chunk);
      if (b >= e) break;
      body(b, e);
    }
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  // Chunks 1..k-1 go to the pool; chunk 0 runs on the caller.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t b = begin + c * chunk;
    const std::size_t e = std::min(end, b + chunk);
    if (b >= e) break;
    futures.push_back(pool.submit([&body, b, e] { body(b, e); }));
  }
  body(begin, std::min(end, begin + chunk));
  for (auto& f : futures) f.get();  // rethrows worker exceptions
}

double parallel_reduce_sum(std::size_t begin, std::size_t end,
                           const std::function<double(std::size_t)>& f) {
  if (begin >= end) return 0.0;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t workers = pool.size();
  const std::size_t forced = parallel_chunk_override();
  if (forced == 0 && (n < kParallelForMinGrain || workers <= 1)) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += f(i);
    return acc;
  }
  const std::size_t chunks =
      forced != 0 ? std::min(forced, n) : std::min(workers, n);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<double> partial(chunks, 0.0);

  auto run_chunk = [&](std::size_t c) {
    const std::size_t b = begin + c * chunk;
    const std::size_t e = std::min(end, b + chunk);
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += f(i);
    partial[c] = acc;
  };

  if (ThreadPool::on_worker_thread()) {
    // Nested-submit guard (see parallel_for_range): same chunked partials,
    // computed serially — the chunk-ordered merge below keeps the result
    // bitwise identical to the pooled execution.
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(chunks - 1);
    for (std::size_t c = 1; c < chunks; ++c) {
      futures.push_back(pool.submit([&run_chunk, c] { run_chunk(c); }));
    }
    run_chunk(0);
    for (auto& fut : futures) fut.get();
  }

  // Merge in fixed chunk order => bitwise-deterministic result.
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace snnskip
