#pragma once
// GEMM driver + microkernel templates, instantiated once per SIMD level
// (ISSUE 9). gemm.cpp builds the scalar table from these; gemm_avx2.cpp
// re-instantiates them with UseAvx2=true under -mavx2 -mfma
// -ffp-contract=off.
//
// Bit-identity argument (extends DESIGN.md §5e): for a fixed (Mr, Nr)
// register tile, every output element accumulates exactly the products the
// scalar kernel forms, in the same ascending-p order — the AVX2 microkernel
// merely evaluates Nr independent per-element chains per instruction, and
// with fp-contract off each lane performs the identical unfused
// multiply-then-add. The K panel length (kc) only moves panel boundaries;
// each element's product sequence is unchanged, so every kc is bit-equal.
// The Fused variants use FMA (one rounding per a*b+c) and are therefore
// NOT bit-identical to scalar — they back the opt-in Avx2Fma level only.
//
// Tile choice caveat: the all-zero spike-skip tests Mr rows at a time, so
// changing Mr regroups which zero terms are skipped. Skipping a zero term
// is exact whenever the accumulator cannot hold -0 — true for every
// beta=0 call and for the training paths' +0-initialized accumulators
// (DESIGN.md §5e) — so all legal tiles agree bitwise there; scalar-vs-AVX2
// toggles always compare equal because both sides share one tile config.

#include <algorithm>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "parallel/parallel_for.h"

namespace snnskip::gemm_impl {

// C-tile [i0, i0+Mr) x [j0, j0+Nr) += alpha * A-panel * B-panel; the A
// value for logical row i at depth p comes from arow(p, i). C already
// holds beta-scaled values. The all-Mr-zero test keeps the historic
// spike-skip: when every A operand in the column block is zero (common
// for spike matrices) the B row is never touched.
template <int Mr, int Nr, typename ARow>
inline void micro_scalar(std::int64_t n, std::int64_t j0, float alpha,
                         ARow&& arow, const float* b, std::int64_t kk,
                         std::int64_t kend, float* c, std::int64_t i0) {
  float acc[Mr][Nr];
  for (int r = 0; r < Mr; ++r) {
    const float* crow = c + (i0 + r) * n + j0;
    for (int j = 0; j < Nr; ++j) acc[r][j] = crow[j];
  }
  for (std::int64_t p = kk; p < kend; ++p) {
    float a[Mr];
    bool all_zero = true;
    for (int r = 0; r < Mr; ++r) {
      a[r] = alpha * arow(p, i0 + r);
      all_zero = all_zero && a[r] == 0.f;
    }
    if (all_zero) continue;
    const float* brow = b + p * n + j0;
    for (int j = 0; j < Nr; ++j) {
      const float bv = brow[j];
      for (int r = 0; r < Mr; ++r) acc[r][j] += a[r] * bv;
    }
  }
  for (int r = 0; r < Mr; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    for (int j = 0; j < Nr; ++j) crow[j] = acc[r][j];
  }
}

#if defined(__AVX2__)

// AVX2 twin: Mr rows x (Nr/8) YMM column vectors of per-element chains.
// Fused=false issues mul+add (bit-identical to micro_scalar under
// -ffp-contract=off); Fused=true single-rounds via vfmadd.
template <int Mr, int NrVec, bool Fused, typename ARow>
inline void micro_avx2(std::int64_t n, std::int64_t j0, float alpha,
                       ARow&& arow, const float* b, std::int64_t kk,
                       std::int64_t kend, float* c, std::int64_t i0) {
  __m256 acc[Mr][NrVec];
  for (int r = 0; r < Mr; ++r) {
    const float* crow = c + (i0 + r) * n + j0;
    for (int v = 0; v < NrVec; ++v) acc[r][v] = _mm256_loadu_ps(crow + 8 * v);
  }
  for (std::int64_t p = kk; p < kend; ++p) {
    float a[Mr];
    bool all_zero = true;
    for (int r = 0; r < Mr; ++r) {
      a[r] = alpha * arow(p, i0 + r);
      all_zero = all_zero && a[r] == 0.f;
    }
    if (all_zero) continue;
    const float* brow = b + p * n + j0;
    __m256 bv[NrVec];
    for (int v = 0; v < NrVec; ++v) bv[v] = _mm256_loadu_ps(brow + 8 * v);
    for (int r = 0; r < Mr; ++r) {
      const __m256 av = _mm256_set1_ps(a[r]);
      for (int v = 0; v < NrVec; ++v) {
        if constexpr (Fused) {
          acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
        } else {
          acc[r][v] =
              _mm256_add_ps(acc[r][v], _mm256_mul_ps(av, bv[v]));
        }
      }
    }
  }
  for (int r = 0; r < Mr; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    for (int v = 0; v < NrVec; ++v) _mm256_storeu_ps(crow + 8 * v, acc[r][v]);
  }
}

#endif  // __AVX2__

// Edge tile (fewer than Mr rows or Nr cols): plain loops, per-row skip.
template <typename ARow>
inline void micro_edge(std::int64_t n, std::int64_t j0, std::int64_t nr,
                       float alpha, ARow&& arow, const float* b,
                       std::int64_t kk, std::int64_t kend, float* c,
                       std::int64_t i0, std::int64_t mr) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    for (std::int64_t p = kk; p < kend; ++p) {
      const float av = alpha * arow(p, i0 + r);
      if (av == 0.f) continue;
      const float* brow = b + p * n + j0;
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

inline void scale_rows(std::int64_t n, float beta, float* c, std::int64_t i0,
                       std::int64_t mr) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + (i0 + r) * n;
    if (beta == 0.f) {
      std::fill(crow, crow + n, 0.f);
    } else if (beta != 1.f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

// Shared driver for gemm / gemm_tn: parallelize over Mr-row blocks, then
// sweep kc-length K panels x Nr-column tiles with the register microkernel.
template <int Mr, int Nr, bool UseAvx2, bool Fused, typename ARow>
void drive(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
           ARow&& arow, const float* b, float beta, float* c,
           std::int64_t kc) {
  const std::int64_t row_blocks = (m + Mr - 1) / Mr;
  parallel_for_range(0, static_cast<std::size_t>(row_blocks),
                     [&](std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::int64_t i0 = static_cast<std::int64_t>(blk) * Mr;
      const std::int64_t mr = std::min<std::int64_t>(Mr, m - i0);
      scale_rows(n, beta, c, i0, mr);
      for (std::int64_t kk = 0; kk < k; kk += kc) {
        const std::int64_t kend = std::min(k, kk + kc);
        std::int64_t j0 = 0;
        if (mr == Mr) {
          for (; j0 + Nr <= n; j0 += Nr) {
#if defined(__AVX2__)
            if constexpr (UseAvx2) {
              micro_avx2<Mr, Nr / 8, Fused>(n, j0, alpha, arow, b, kk, kend,
                                            c, i0);
            } else {
              micro_scalar<Mr, Nr>(n, j0, alpha, arow, b, kk, kend, c, i0);
            }
#else
            static_assert(!UseAvx2,
                          "AVX2 instantiation in a non-AVX2 translation unit");
            micro_scalar<Mr, Nr>(n, j0, alpha, arow, b, kk, kend, c, i0);
#endif
          }
        }
        if (j0 < n || mr < Mr) {
          micro_edge(n, j0, n - j0, alpha, arow, b, kk, kend, c, i0, mr);
        }
      }
    }
  });
}

// Table entry points: bind the A-access lambdas so the dispatch tables
// hold plain function pointers.
template <int Mr, int Nr, bool UseAvx2, bool Fused>
void gemm_nn_entry(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const float* b, float beta,
                   float* c, std::int64_t kc) {
  drive<Mr, Nr, UseAvx2, Fused>(
      m, n, k, alpha,
      [a, k](std::int64_t p, std::int64_t i) { return a[i * k + p]; }, b,
      beta, c, kc);
}

template <int Mr, int Nr, bool UseAvx2, bool Fused>
void gemm_tn_entry(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const float* b, float beta,
                   float* c, std::int64_t kc) {
  // A is stored (K, M); logical op is A^T(M,K) * B(K,N).
  drive<Mr, Nr, UseAvx2, Fused>(
      m, n, k, alpha,
      [a, m](std::int64_t p, std::int64_t i) { return a[p * m + i]; }, b,
      beta, c, kc);
}

// gemm_nt: row-times-row dot products, both operands contiguous in K.
// Fixed 4x4 tile (B is strided across columns; a wide tile would gather).
// The AVX2 variant vectorizes the 4 B lanes per depth step — per-lane op
// sequence identical to scalar, so unfused stays bit-equal.
template <bool UseAvx2, bool Fused>
void gemm_nt_entry(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const float* b, float beta,
                   float* c) {
  const bool accumulate = (beta != 0.f);
  constexpr std::int64_t kMr = 4;
  constexpr std::int64_t kJr = 4;
  const std::int64_t row_blocks = (m + kMr - 1) / kMr;
  parallel_for_range(0, static_cast<std::size_t>(row_blocks),
                     [&](std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::int64_t i0 = static_cast<std::int64_t>(blk) * kMr;
      const std::int64_t mr = std::min<std::int64_t>(kMr, m - i0);
      for (std::int64_t j0 = 0; j0 < n; j0 += kJr) {
        const std::int64_t jr = std::min<std::int64_t>(kJr, n - j0);
        if (mr == kMr && jr == kJr) {
          const float* a0 = a + (i0 + 0) * k;
          const float* a1 = a + (i0 + 1) * k;
          const float* a2 = a + (i0 + 2) * k;
          const float* a3 = a + (i0 + 3) * k;
          const float* bb0 = b + (j0 + 0) * k;
          const float* bb1 = b + (j0 + 1) * k;
          const float* bb2 = b + (j0 + 2) * k;
          const float* bb3 = b + (j0 + 3) * k;
          float acc[kMr][kJr] = {};
#if defined(__AVX2__)
          if constexpr (UseAvx2) {
            __m128 vacc[kMr];
            for (int r = 0; r < kMr; ++r) vacc[r] = _mm_setzero_ps();
            for (std::int64_t p = 0; p < k; ++p) {
              const __m128 bv =
                  _mm_set_ps(bb3[p], bb2[p], bb1[p], bb0[p]);
              const __m128 av0 = _mm_set1_ps(a0[p]);
              const __m128 av1 = _mm_set1_ps(a1[p]);
              const __m128 av2 = _mm_set1_ps(a2[p]);
              const __m128 av3 = _mm_set1_ps(a3[p]);
              if constexpr (Fused) {
                vacc[0] = _mm_fmadd_ps(av0, bv, vacc[0]);
                vacc[1] = _mm_fmadd_ps(av1, bv, vacc[1]);
                vacc[2] = _mm_fmadd_ps(av2, bv, vacc[2]);
                vacc[3] = _mm_fmadd_ps(av3, bv, vacc[3]);
              } else {
                vacc[0] = _mm_add_ps(vacc[0], _mm_mul_ps(av0, bv));
                vacc[1] = _mm_add_ps(vacc[1], _mm_mul_ps(av1, bv));
                vacc[2] = _mm_add_ps(vacc[2], _mm_mul_ps(av2, bv));
                vacc[3] = _mm_add_ps(vacc[3], _mm_mul_ps(av3, bv));
              }
            }
            for (int r = 0; r < kMr; ++r) {
              _mm_storeu_ps(&acc[r][0], vacc[r]);
            }
          } else  // NOLINT(readability/braces) — falls through to scalar
#endif
          {
            for (std::int64_t p = 0; p < k; ++p) {
              const float b0v = bb0[p], b1v = bb1[p], b2v = bb2[p],
                          b3v = bb3[p];
              const float a0v = a0[p], a1v = a1[p], a2v = a2[p],
                          a3v = a3[p];
              acc[0][0] += a0v * b0v;
              acc[0][1] += a0v * b1v;
              acc[0][2] += a0v * b2v;
              acc[0][3] += a0v * b3v;
              acc[1][0] += a1v * b0v;
              acc[1][1] += a1v * b1v;
              acc[1][2] += a1v * b2v;
              acc[1][3] += a1v * b3v;
              acc[2][0] += a2v * b0v;
              acc[2][1] += a2v * b1v;
              acc[2][2] += a2v * b2v;
              acc[2][3] += a2v * b3v;
              acc[3][0] += a3v * b0v;
              acc[3][1] += a3v * b1v;
              acc[3][2] += a3v * b2v;
              acc[3][3] += a3v * b3v;
            }
          }
          // beta handling hoisted out of the accumulation loop entirely:
          // one branch per tile, branch-free stores.
          for (std::int64_t r = 0; r < kMr; ++r) {
            float* crow = c + (i0 + r) * n + j0;
            if (accumulate) {
              for (std::int64_t j = 0; j < kJr; ++j) {
                crow[j] = alpha * acc[r][j] + beta * crow[j];
              }
            } else {
              for (std::int64_t j = 0; j < kJr; ++j) {
                crow[j] = alpha * acc[r][j];
              }
            }
          }
        } else {
          for (std::int64_t r = 0; r < mr; ++r) {
            const float* arow = a + (i0 + r) * k;
            float* crow = c + (i0 + r) * n;
            for (std::int64_t j = j0; j < j0 + jr; ++j) {
              const float* brow = b + j * k;
              float acc = 0.f;
              for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
              crow[j] = accumulate ? alpha * acc + beta * crow[j]
                                   : alpha * acc;
            }
          }
        }
      }
    }
  });
}

}  // namespace snnskip::gemm_impl
