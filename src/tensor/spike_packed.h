#pragma once
// Bit-packed spike maps and popcount-guided accumulation kernels (ISSUE 6).
//
// The compiled inference engine represents every binary spike tensor as a
// packed bit mask — 64 spikes per word, bits in NCHW flat order — next to
// a dense float mirror written by the same fused epilogue. The mask makes
// the density measurement exact and O(words) (one popcount sweep instead
// of a float scan), lets skip joins operate on source masks directly (conv
// is linear, so an ADD join is just "accumulate each source term into the
// same output panel"), and drives the event kernels below: whole
// all-zero words are skipped with a single compare, and set bits are
// walked with count-trailing-zeros, so cost scales with the spike count.
//
// Bit order contract: words are filled from flat index 0 upward, bit k of
// word w is flat index w*64 + k, and the term kernels visit set bits in
// ascending flat order — the exact event order SpikeCsr::build produces.
// Since both paths accumulate the same weight rows in the same order into
// the same (Ho*Wo, O) transposed panel layout, the packed and CSR paths
// agree bit-for-bit on single-source layers (see tests/infer_test.cpp).
//
// A "term" is one input source of a consuming conv: the sequential
// predecessor, an ADD-skip source, or a concat-skip channel subset.
// `chrow` maps a source channel to the consumer's input-channel row
// (identity when null, -1 to skip a channel), which is how DSC subsets
// select weight rows without materializing a gathered tensor.

#include <cstdint>

#include "tensor/im2col.h"

namespace snnskip {

/// Words needed to pack `numel` spikes at 64 per word.
inline std::int64_t packed_words(std::int64_t numel) {
  return (numel + 63) >> 6;
}

/// Pack `n` floats into bits (bit set where src != 0). Tail bits of the
/// last word are zeroed. Returns the nonzero count, or -1 if any entry is
/// not exactly 0.f or 1.f (caller falls back to the dense representation —
/// encoder outputs are binary, but arbitrary user input need not be).
std::int64_t spike_pack(const float* src, std::int64_t n,
                        std::uint64_t* words);

/// Total set bits across `nwords` words.
std::int64_t popcount_words(const std::uint64_t* words, std::int64_t nwords);

/// Accumulate one packed input term of a conv layer into the transposed
/// output panel `outt` (Ho*Wo rows of `out_c` contiguous floats) for a
/// single image. `g` is the CONSUMER's geometry (g.in_c = its total input
/// channels; g.in_h/in_w are shared with the source). `words` packs the
/// source image's (src_c, H, W) spikes; `chrow` (size src_c, or null for
/// identity) maps source channels to consumer input-channel rows of the
/// transposed weight `wt` ((c,ky,kx), o layout), -1 dropping the channel.
/// Returns the number of accumulates performed (exact synaptic-operation
/// count for the energy model).
std::int64_t spike_packed_conv2d_term(const ConvGeometry& g,
                                      std::int64_t src_c,
                                      const std::uint64_t* words,
                                      const std::int32_t* chrow,
                                      const float* wt, std::int64_t out_c,
                                      float* outt);

/// Depthwise twin of spike_packed_conv2d_term: accumulate into the
/// (C, Ho, Wo) accumulator `acc` for one image; `weight` is the layer's
/// (C, 1, K, K) kernel bank. Returns the accumulate count.
std::int64_t spike_packed_depthwise_term(const ConvGeometry& g,
                                         std::int64_t src_c,
                                         const std::uint64_t* words,
                                         const std::int32_t* chrow,
                                         const float* weight, float* acc);

}  // namespace snnskip
