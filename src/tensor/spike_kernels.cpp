#include "tensor/spike_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "telemetry/telemetry.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

std::atomic<bool> g_enabled{env::get_bool("SNNSKIP_SPARSE", true)};

std::atomic<float> g_threshold{static_cast<float>(env::get_double(
    "SNNSKIP_SPARSE_THRESHOLD", 0.25, /*lo=*/1e-9, /*hi=*/1.0))};

std::mutex g_stats_mutex;
SparseExec::Stats g_stats;

}  // namespace

bool SparseExec::enabled() { return g_enabled.load(std::memory_order_relaxed); }
float SparseExec::threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void SparseExec::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
void SparseExec::set_threshold(float t) {
  g_threshold.store(t, std::memory_order_relaxed);
}

SparseExec::Stats SparseExec::stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  return g_stats;
}

void SparseExec::reset_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats = Stats{};
}

void SparseExec::note(double nnz, double elements, bool took_sparse_path) {
  // Mirror every dispatch decision into the telemetry counters (no-ops
  // while telemetry is off) so traces carry sparse-vs-dense counts next to
  // the per-layer spans.
  Telemetry::count(took_sparse_path ? "dispatch.sparse" : "dispatch.dense");
  Telemetry::count("dispatch.nnz", nnz);
  Telemetry::count("dispatch.elements", elements);
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats.nnz += nnz;
  g_stats.elements += elements;
  if (took_sparse_path) {
    ++g_stats.sparse_calls;
  } else {
    ++g_stats.dense_calls;
  }
}

std::int64_t count_nonzero(const float* data, std::int64_t n) {
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < n; ++i) nnz += (data[i] != 0.f);
  return nnz;
}

namespace {

// Cache-blocked transpose: dst(c, r) = src(r, c) for src of (rows, cols).
// The naive loop strides one full row per write and misses on every store
// once the panel outgrows L2 (e.g. a 512x2304 conv weight); 32x32 tiles
// keep both sides inside a handful of cache lines.
void transpose_panel(const float* src, std::int64_t rows, std::int64_t cols,
                     float* dst) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::int64_t r1 = std::min(rows, r0 + kTile);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::int64_t c1 = std::min(cols, c0 + kTile);
      for (std::int64_t r = r0; r < r1; ++r) {
        const float* s = src + r * cols;
        for (std::int64_t c = c0; c < c1; ++c) dst[c * rows + r] = s[c];
      }
    }
  }
}

}  // namespace

void spike_conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                          const float* weight, const float* bias,
                          std::int64_t out_c, float* out, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t o_c = out_c;

  auto scope = ws.scope();
  // Weight transposed to ((c,ky,kx), o) so the per-spike accumulation is a
  // unit-stride axpy of length O. Rebuilt per call: O(O*CKK) — negligible
  // next to the conv itself and immune to weight-update staleness.
  float* wt = scope.floats(static_cast<std::size_t>(ckk * o_c));
  transpose_panel(weight, o_c, ckk, wt);
  // Output accumulated transposed as (HoWo, O), then flipped back once.
  float* outt = scope.floats(static_cast<std::size_t>(howo * o_c));

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    std::memset(outt, 0, static_cast<std::size_t>(howo * o_c) * sizeof(float));
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      // Every kernel tap (ky,kx) that maps this input pixel onto a valid
      // output position receives one weight-row accumulation.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const float* wrow = wt + ((c * k + ky) * k + kx) * o_c;
          float* orow = outt + (oy * wo + ox) * o_c;
          for (std::int64_t o = 0; o < o_c; ++o) orow[o] += v * wrow[o];
        }
      }
    }
    float* oimg = out + img * o_c * howo;
    for (std::int64_t o = 0; o < o_c; ++o) {
      const float b = bias != nullptr ? bias[o] : 0.f;
      float* orow = oimg + o * howo;
      for (std::int64_t j = 0; j < howo; ++j) orow[j] = outt[j * o_c + o] + b;
    }
  }
}

void spike_linear_forward(const SpikeCsr& csr, const float* weight,
                          const float* bias, std::int64_t out_f, float* out,
                          Workspace& ws) {
  const std::int64_t in_f = csr.row_len();
  auto scope = ws.scope();
  float* wt = scope.floats(static_cast<std::size_t>(in_f * out_f));
  transpose_panel(weight, out_f, in_f, wt);
  for (std::int64_t i = 0; i < csr.rows(); ++i) {
    float* orow = out + i * out_f;
    if (bias != nullptr) {
      std::memcpy(orow, bias, static_cast<std::size_t>(out_f) * sizeof(float));
    } else {
      std::memset(orow, 0, static_cast<std::size_t>(out_f) * sizeof(float));
    }
    const std::int32_t* idx = csr.row_indices(i);
    const float* val = csr.row_values(i);
    const std::int64_t cnt = csr.row_nnz(i);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const float* wrow = wt + static_cast<std::int64_t>(idx[e]) * out_f;
      const float v = val[e];
      for (std::int64_t o = 0; o < out_f; ++o) orow[o] += v * wrow[o];
    }
  }
}

void spike_depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                             const float* weight, const float* bias,
                             float* out) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t c_ = g.in_c;

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    float* oimg = out + img * c_ * howo;
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float b = bias != nullptr ? bias[ch] : 0.f;
      float* plane = oimg + ch * howo;
      for (std::int64_t j = 0; j < howo; ++j) plane[j] = b;
    }
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      const float* ker = weight + c * k * k;
      float* oplane = oimg + c * howo;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += v * ker[ky * k + kx];
        }
      }
    }
  }
}

}  // namespace snnskip
