#include "tensor/spike_kernels.h"

#include <atomic>
#include <mutex>

#include "telemetry/telemetry.h"
#include "tensor/epilogue.h"
#include "tensor/kernel_config.h"
#include "tensor/simd_ops.h"
#include "tensor/spike_kernels_impl.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

std::atomic<bool> g_enabled{env::get_bool("SNNSKIP_SPARSE", true)};

std::atomic<bool> g_bwd_enabled{env::get_bool("SNNSKIP_SPARSE_BWD", true)};

// -1 = "not explicitly set": threshold() then reads the resolved kernel
// config (defaults <- tuning profile <- SNNSKIP_SPARSE_THRESHOLD), lazily
// so static init never races the config load. set_threshold() pins an
// explicit value that wins over the config from then on.
std::atomic<float> g_threshold{-1.f};

std::mutex g_stats_mutex;
SparseExec::Stats g_stats;
SparseExec::Stats g_bwd_stats;

struct HintSlot {
  const float* ptr = nullptr;
  std::int64_t numel = 0;
  std::int64_t nnz = 0;
  bool valid = false;
};
thread_local HintSlot g_hint;

}  // namespace

bool SparseExec::enabled() { return g_enabled.load(std::memory_order_relaxed); }
float SparseExec::threshold() {
  const float t = g_threshold.load(std::memory_order_relaxed);
  return t >= 0.f ? t : kernel_config().sparse_threshold;
}
void SparseExec::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
void SparseExec::set_threshold(float t) {
  g_threshold.store(t, std::memory_order_relaxed);
}

bool SparseExec::bwd_enabled() {
  return enabled() && g_bwd_enabled.load(std::memory_order_relaxed);
}
void SparseExec::set_bwd_enabled(bool on) {
  g_bwd_enabled.store(on, std::memory_order_relaxed);
}

SparseExec::Stats SparseExec::stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  return g_stats;
}

void SparseExec::reset_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats = Stats{};
  g_bwd_stats = Stats{};
}

SparseExec::Stats SparseExec::bwd_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  return g_bwd_stats;
}

void SparseExec::note_bwd(double nnz, double elements, bool took_sparse_path) {
  Telemetry::count(took_sparse_path ? "dispatch.bwd.sparse"
                                    : "dispatch.bwd.dense");
  Telemetry::count("dispatch.bwd.nnz", nnz);
  Telemetry::count("dispatch.bwd.elements", elements);
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_bwd_stats.nnz += nnz;
  g_bwd_stats.elements += elements;
  if (took_sparse_path) {
    ++g_bwd_stats.sparse_calls;
  } else {
    ++g_bwd_stats.dense_calls;
  }
}

void GradDensityHint::publish(const float* data, std::int64_t numel,
                              std::int64_t nnz) {
  g_hint = HintSlot{data, numel, nnz, true};
}

std::int64_t GradDensityHint::take(const float* data, std::int64_t numel) {
  if (!g_hint.valid || g_hint.ptr != data || g_hint.numel != numel) return -1;
  g_hint.valid = false;
  return g_hint.nnz;
}

void GradDensityHint::clear() { g_hint.valid = false; }

void SparseExec::note(double nnz, double elements, bool took_sparse_path) {
  // Mirror every dispatch decision into the telemetry counters (no-ops
  // while telemetry is off) so traces carry sparse-vs-dense counts next to
  // the per-layer spans.
  Telemetry::count(took_sparse_path ? "dispatch.sparse" : "dispatch.dense");
  Telemetry::count("dispatch.nnz", nnz);
  Telemetry::count("dispatch.elements", elements);
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats.nnz += nnz;
  g_stats.elements += elements;
  if (took_sparse_path) {
    ++g_stats.sparse_calls;
  } else {
    ++g_stats.dense_calls;
  }
}

// ---- Dispatch tables -------------------------------------------------------

namespace simd {

const SpikeKernels* spike_kernels_scalar() {
  static const SpikeKernels k = spike_impl::make_spike_table<false, false>();
  return &k;
}

#if !defined(SNNSKIP_HAVE_AVX2)
// AVX2 translation units not built (non-x86 target or the toolchain lacks
// -mavx2): alias the scalar table so dispatch never branches on a null.
const SpikeKernels* spike_kernels_avx2() { return spike_kernels_scalar(); }
const SpikeKernels* spike_kernels_avx2fma() { return spike_kernels_scalar(); }
#endif

}  // namespace simd

// ---- Public entry points (resolve table + schedule constants per call) -----

std::int64_t count_nonzero(const float* data, std::int64_t n) {
  return simd::spike_ops().count_nonzero(data, n);
}

void transpose_panel(const float* src, std::int64_t rows, std::int64_t cols,
                     float* dst) {
  simd::spike_ops().transpose(src, rows, cols, dst,
                              kernel_config().transpose_tile);
}

void transpose_add_panel(const float* src, std::int64_t rows,
                         std::int64_t cols, float* dst) {
  simd::spike_ops().transpose_add(src, rows, cols, dst,
                                  kernel_config().transpose_tile);
}

void spike_conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                          const float* weight, const float* bias,
                          std::int64_t out_c, float* out, Workspace& ws) {
  simd::spike_ops().conv2d_forward(g, csr, weight, bias, out_c, out, ws);
}

void spike_linear_forward(const SpikeCsr& csr, const float* weight,
                          const float* bias, std::int64_t out_f, float* out,
                          Workspace& ws) {
  simd::spike_ops().linear_forward(csr, weight, bias, out_f, out, ws);
}

void spike_depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                             const float* weight, const float* bias,
                             float* out) {
  simd::spike_ops().depthwise_forward(g, csr, weight, bias, out);
}

void spike_conv2d_backward_weight(const ConvGeometry& g, const SpikeCsr& csr,
                                  const float* grad_out, std::int64_t out_c,
                                  float* grad_weight, Workspace& ws) {
  simd::spike_ops().conv2d_backward_weight(g, csr, grad_out, out_c,
                                           grad_weight, ws);
}

void spike_conv2d_backward_input(const ConvGeometry& g, const SpikeCsr& gcsr,
                                 const float* weight, std::int64_t out_c,
                                 float* grad_in, Workspace& ws) {
  simd::spike_ops().conv2d_backward_input(g, gcsr, weight, out_c, grad_in, ws);
}

void spike_linear_backward_weight(const SpikeCsr& csr, const float* grad_out,
                                  std::int64_t out_f, float* grad_weight,
                                  Workspace& ws) {
  simd::spike_ops().linear_backward_weight(csr, grad_out, out_f, grad_weight,
                                           ws);
}

void spike_linear_backward_input(const SpikeCsr& gcsr, const float* weight,
                                 std::int64_t in_f, float* grad_in) {
  simd::spike_ops().linear_backward_input(gcsr, weight, in_f, grad_in);
}

void spike_depthwise_backward_weight(const ConvGeometry& g,
                                     const SpikeCsr& csr,
                                     const float* grad_out,
                                     float* grad_weight) {
  simd::spike_ops().depthwise_backward_weight(g, csr, grad_out, grad_weight);
}

std::int64_t lif_epilogue_row(std::int64_t p, const float* acc, int use_scale,
                              float scale, float bias, float beta, float theta,
                              float* m, float* dst, std::uint64_t* wbits,
                              std::int64_t bit0) {
  return simd::spike_ops().lif_row(p, acc, use_scale, scale, bias, beta,
                                   theta, m, dst, wbits, bit0);
}

void affine_epilogue_row(std::int64_t p, const float* acc, int use_scale,
                         float scale, float bias, int relu, float* dst) {
  simd::spike_ops().affine_row(p, acc, use_scale, scale, bias, relu, dst);
}

}  // namespace snnskip
