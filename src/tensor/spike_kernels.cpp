#include "tensor/spike_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "parallel/parallel_for.h"
#include "telemetry/telemetry.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

std::atomic<bool> g_enabled{env::get_bool("SNNSKIP_SPARSE", true)};

std::atomic<bool> g_bwd_enabled{env::get_bool("SNNSKIP_SPARSE_BWD", true)};

std::atomic<float> g_threshold{static_cast<float>(env::get_double(
    "SNNSKIP_SPARSE_THRESHOLD", 0.25, /*lo=*/1e-9, /*hi=*/1.0))};

std::mutex g_stats_mutex;
SparseExec::Stats g_stats;
SparseExec::Stats g_bwd_stats;

struct HintSlot {
  const float* ptr = nullptr;
  std::int64_t numel = 0;
  std::int64_t nnz = 0;
  bool valid = false;
};
thread_local HintSlot g_hint;

}  // namespace

bool SparseExec::enabled() { return g_enabled.load(std::memory_order_relaxed); }
float SparseExec::threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void SparseExec::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
void SparseExec::set_threshold(float t) {
  g_threshold.store(t, std::memory_order_relaxed);
}

bool SparseExec::bwd_enabled() {
  return enabled() && g_bwd_enabled.load(std::memory_order_relaxed);
}
void SparseExec::set_bwd_enabled(bool on) {
  g_bwd_enabled.store(on, std::memory_order_relaxed);
}

SparseExec::Stats SparseExec::stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  return g_stats;
}

void SparseExec::reset_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats = Stats{};
  g_bwd_stats = Stats{};
}

SparseExec::Stats SparseExec::bwd_stats() {
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  return g_bwd_stats;
}

void SparseExec::note_bwd(double nnz, double elements, bool took_sparse_path) {
  Telemetry::count(took_sparse_path ? "dispatch.bwd.sparse"
                                    : "dispatch.bwd.dense");
  Telemetry::count("dispatch.bwd.nnz", nnz);
  Telemetry::count("dispatch.bwd.elements", elements);
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_bwd_stats.nnz += nnz;
  g_bwd_stats.elements += elements;
  if (took_sparse_path) {
    ++g_bwd_stats.sparse_calls;
  } else {
    ++g_bwd_stats.dense_calls;
  }
}

void GradDensityHint::publish(const float* data, std::int64_t numel,
                              std::int64_t nnz) {
  g_hint = HintSlot{data, numel, nnz, true};
}

std::int64_t GradDensityHint::take(const float* data, std::int64_t numel) {
  if (!g_hint.valid || g_hint.ptr != data || g_hint.numel != numel) return -1;
  g_hint.valid = false;
  return g_hint.nnz;
}

void GradDensityHint::clear() { g_hint.valid = false; }

void SparseExec::note(double nnz, double elements, bool took_sparse_path) {
  // Mirror every dispatch decision into the telemetry counters (no-ops
  // while telemetry is off) so traces carry sparse-vs-dense counts next to
  // the per-layer spans.
  Telemetry::count(took_sparse_path ? "dispatch.sparse" : "dispatch.dense");
  Telemetry::count("dispatch.nnz", nnz);
  Telemetry::count("dispatch.elements", elements);
  std::lock_guard<std::mutex> lock(g_stats_mutex);
  g_stats.nnz += nnz;
  g_stats.elements += elements;
  if (took_sparse_path) {
    ++g_stats.sparse_calls;
  } else {
    ++g_stats.dense_calls;
  }
}

std::int64_t count_nonzero(const float* data, std::int64_t n) {
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < n; ++i) nnz += (data[i] != 0.f);
  return nnz;
}

namespace {

// Cache-blocked transpose: dst(c, r) = src(r, c) for src of (rows, cols).
// The naive loop strides one full row per write and misses on every store
// once the panel outgrows L2 (e.g. a 512x2304 conv weight); 32x32 tiles
// keep both sides inside a handful of cache lines.
void transpose_panel(const float* src, std::int64_t rows, std::int64_t cols,
                     float* dst) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::int64_t r1 = std::min(rows, r0 + kTile);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::int64_t c1 = std::min(cols, c0 + kTile);
      for (std::int64_t r = r0; r < r1; ++r) {
        const float* s = src + r * cols;
        for (std::int64_t c = c0; c < c1; ++c) dst[c * rows + r] = s[c];
      }
    }
  }
}

}  // namespace

void spike_conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                          const float* weight, const float* bias,
                          std::int64_t out_c, float* out, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t o_c = out_c;

  auto scope = ws.scope();
  // Weight transposed to ((c,ky,kx), o) so the per-spike accumulation is a
  // unit-stride axpy of length O. Rebuilt per call: O(O*CKK) — negligible
  // next to the conv itself and immune to weight-update staleness.
  float* wt = scope.floats(static_cast<std::size_t>(ckk * o_c));
  transpose_panel(weight, o_c, ckk, wt);
  // Output accumulated transposed as (HoWo, O), then flipped back once.
  float* outt = scope.floats(static_cast<std::size_t>(howo * o_c));

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    std::memset(outt, 0, static_cast<std::size_t>(howo * o_c) * sizeof(float));
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      // Every kernel tap (ky,kx) that maps this input pixel onto a valid
      // output position receives one weight-row accumulation.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const float* wrow = wt + ((c * k + ky) * k + kx) * o_c;
          float* orow = outt + (oy * wo + ox) * o_c;
          for (std::int64_t o = 0; o < o_c; ++o) orow[o] += v * wrow[o];
        }
      }
    }
    float* oimg = out + img * o_c * howo;
    for (std::int64_t o = 0; o < o_c; ++o) {
      const float b = bias != nullptr ? bias[o] : 0.f;
      float* orow = oimg + o * howo;
      for (std::int64_t j = 0; j < howo; ++j) orow[j] = outt[j * o_c + o] + b;
    }
  }
}

void spike_linear_forward(const SpikeCsr& csr, const float* weight,
                          const float* bias, std::int64_t out_f, float* out,
                          Workspace& ws) {
  const std::int64_t in_f = csr.row_len();
  auto scope = ws.scope();
  float* wt = scope.floats(static_cast<std::size_t>(in_f * out_f));
  transpose_panel(weight, out_f, in_f, wt);
  for (std::int64_t i = 0; i < csr.rows(); ++i) {
    float* orow = out + i * out_f;
    if (bias != nullptr) {
      std::memcpy(orow, bias, static_cast<std::size_t>(out_f) * sizeof(float));
    } else {
      std::memset(orow, 0, static_cast<std::size_t>(out_f) * sizeof(float));
    }
    const std::int32_t* idx = csr.row_indices(i);
    const float* val = csr.row_values(i);
    const std::int64_t cnt = csr.row_nnz(i);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const float* wrow = wt + static_cast<std::int64_t>(idx[e]) * out_f;
      const float v = val[e];
      for (std::int64_t o = 0; o < out_f; ++o) orow[o] += v * wrow[o];
    }
  }
}

void spike_depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                             const float* weight, const float* bias,
                             float* out) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t c_ = g.in_c;

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    float* oimg = out + img * c_ * howo;
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float b = bias != nullptr ? bias[ch] : 0.f;
      float* plane = oimg + ch * howo;
      for (std::int64_t j = 0; j < howo; ++j) plane[j] = b;
    }
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      const float* ker = weight + c * k * k;
      float* oplane = oimg + c * howo;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += v * ker[ky * k + kx];
        }
      }
    }
  }
}

// ---- BPTT backward (ISSUE 4) ----------------------------------------------
//
// Bit-for-bit contract with the dense path (see the header): every kernel
// below accumulates each output element's nonzero terms in exactly the
// order the dense GEMM uses (increasing image, then increasing reduction
// index), forms products with the same operand values (float multiply is
// commutative bitwise), and parallelizes by partitioning OUTPUT elements,
// never the reduction. Dense accumulators start at +0 and only ever add
// products, so they can never hold -0 (x + (-x) rounds to +0, and
// +0 + (-0) == +0); skipping the dense path's zero terms is therefore an
// exact no-op.

namespace {

// dst(c, r) += src(r, c); same tiling as transpose_panel. Each element is
// touched exactly once, so this is order-free and exact.
void transpose_add_panel(const float* src, std::int64_t rows,
                         std::int64_t cols, float* dst) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::int64_t r1 = std::min(rows, r0 + kTile);
    for (std::int64_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::int64_t c1 = std::min(cols, c0 + kTile);
      for (std::int64_t r = r0; r < r1; ++r) {
        const float* s = src + r * cols;
        for (std::int64_t c = c0; c < c1; ++c) dst[c * rows + r] += s[c];
      }
    }
  }
}

}  // namespace

void spike_conv2d_backward_weight(const ConvGeometry& g, const SpikeCsr& csr,
                                  const float* grad_out, std::int64_t out_c,
                                  float* grad_weight, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t o_c = out_c;

  auto scope = ws.scope();
  // grad_out transposed to (HoWo, O) once per image so the per-event tap
  // loop reads a unit-stride O-slice, mirroring the forward kernel.
  float* got = scope.floats(static_cast<std::size_t>(howo * o_c));

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    transpose_panel(grad_out + img * o_c * howo, o_c, howo, got);
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    // Each chunk owns an O-slice [ob, oe): it accumulates a private
    // (CKK, oe-ob) per-image partial from the events, then adds it into
    // its own grad_weight rows. gemm_nt computes the same per-image
    // partial (acc from +0, p ascending) before its single add, so the
    // result matches the dense path bit-for-bit for any partition.
    parallel_for_range(
        0, static_cast<std::size_t>(o_c), [&](std::size_t b, std::size_t e) {
          const std::int64_t ob = static_cast<std::int64_t>(b);
          const std::int64_t ow = static_cast<std::int64_t>(e) - ob;
          auto chunk_scope = Workspace::tls().scope();
          float* dwt =
              chunk_scope.floats(static_cast<std::size_t>(ckk * ow));
          std::memset(dwt, 0,
                      static_cast<std::size_t>(ckk * ow) * sizeof(float));
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            const std::int64_t flat = idx[ev];
            const float v = val[ev];
            const std::int64_t c = flat / hw;
            const std::int64_t rem = flat - c * hw;
            const std::int64_t iy = rem / g.in_w;
            const std::int64_t ix = rem - iy * g.in_w;
            for (std::int64_t ky = 0; ky < k; ++ky) {
              const std::int64_t ty = iy + pad - ky;
              if (ty < 0 || ty % s != 0) continue;
              const std::int64_t oy = ty / s;
              if (oy >= ho) continue;
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t tx = ix + pad - kx;
                if (tx < 0 || tx % s != 0) continue;
                const std::int64_t ox = tx / s;
                if (ox >= wo) continue;
                float* drow = dwt + ((c * k + ky) * k + kx) * ow;
                const float* grow = got + (oy * wo + ox) * o_c + ob;
                for (std::int64_t o = 0; o < ow; ++o) {
                  drow[o] += grow[o] * v;
                }
              }
            }
          }
          transpose_add_panel(dwt, ckk, ow, grad_weight + ob * ckk);
        });
  }
}

void spike_conv2d_backward_input(const ConvGeometry& g, const SpikeCsr& gcsr,
                                 const float* weight, std::int64_t out_c,
                                 float* grad_in, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t in_c = g.in_c;
  (void)out_c;

  auto scope = ws.scope();
  // Integer scratch is carved from the float arena (same size/alignment).
  std::int32_t* cnts =
      reinterpret_cast<std::int32_t*>(scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* pos =
      reinterpret_cast<std::int32_t*>(scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* active =
      reinterpret_cast<std::int32_t*>(scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* astart = reinterpret_cast<std::int32_t*>(
      scope.floats(static_cast<std::size_t>(howo)));

  for (std::int64_t img = 0; img < gcsr.rows(); ++img) {
    const std::int32_t* idx = gcsr.row_indices(img);
    const float* val = gcsr.row_values(img);
    const std::int64_t cnt = gcsr.row_nnz(img);
    if (cnt == 0) continue;  // dense would add only exact zeros here
    auto img_scope = ws.scope();
    // Bucket the gradient events by output column p (counting sort keeps
    // the within-column order ascending in o — gemm_tn's reduction order).
    std::memset(cnts, 0, static_cast<std::size_t>(howo) * sizeof(std::int32_t));
    for (std::int64_t ev = 0; ev < cnt; ++ev) ++cnts[idx[ev] % howo];
    std::int64_t na = 0;
    std::int32_t run = 0;
    for (std::int64_t p = 0; p < howo; ++p) {
      if (cnts[p] == 0) continue;
      active[na] = static_cast<std::int32_t>(p);
      astart[na] = run;
      pos[p] = run;
      run += cnts[p];
      ++na;
    }
    std::int32_t* bo = reinterpret_cast<std::int32_t*>(
        img_scope.floats(static_cast<std::size_t>(cnt)));
    float* bg = img_scope.floats(static_cast<std::size_t>(cnt));
    for (std::int64_t ev = 0; ev < cnt; ++ev) {
      const std::int64_t flat = idx[ev];
      const std::int64_t p = flat % howo;
      const std::int32_t at = pos[p]++;
      bo[at] = static_cast<std::int32_t>(flat / howo);
      bg[at] = val[ev];
    }
    // Phase 1: materialize only the active columns of the (CKK, HoWo)
    // gradient-column matrix, compacted to (na, CKK). Each column is an
    // independent output — safe to parallelize.
    float* dcols = img_scope.floats(static_cast<std::size_t>(na * ckk));
    parallel_for_range(
        0, static_cast<std::size_t>(na), [&](std::size_t jb, std::size_t je) {
          for (std::size_t j = jb; j < je; ++j) {
            float* buf = dcols + static_cast<std::int64_t>(j) * ckk;
            std::memset(buf, 0, static_cast<std::size_t>(ckk) * sizeof(float));
            const std::int32_t b0 = astart[j];
            const std::int32_t b1 = b0 + cnts[active[j]];
            for (std::int32_t t = b0; t < b1; ++t) {
              const float* wrow = weight + static_cast<std::int64_t>(bo[t]) * ckk;
              const float gv = bg[t];
              for (std::int64_t r = 0; r < ckk; ++r) buf[r] += wrow[r] * gv;
            }
          }
        });
    // Phase 2: scatter in col2im's exact order — kernel row r ascending,
    // then column p ascending — restricted to the active columns (the
    // inactive ones hold exact +0 in the dense path). Channels own
    // disjoint planes, so the channel partition is deterministic.
    float* gimg = grad_in + img * in_c * hw;
    parallel_for_range(
        0, static_cast<std::size_t>(in_c), [&](std::size_t cb, std::size_t ce) {
          for (std::size_t c = cb; c < ce; ++c) {
            float* plane = gimg + static_cast<std::int64_t>(c) * hw;
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t r =
                    (static_cast<std::int64_t>(c) * k + ky) * k + kx;
                for (std::int64_t j = 0; j < na; ++j) {
                  const std::int64_t p = active[j];
                  const std::int64_t oy = p / wo, ox = p % wo;
                  const std::int64_t iy = oy * s - pad + ky;
                  if (iy < 0 || iy >= g.in_h) continue;
                  const std::int64_t ix = ox * s - pad + kx;
                  if (ix < 0 || ix >= g.in_w) continue;
                  plane[iy * g.in_w + ix] += dcols[j * ckk + r];
                }
              }
            }
          }
        });
  }
}

void spike_linear_backward_weight(const SpikeCsr& csr, const float* grad_out,
                                  std::int64_t out_f, float* grad_weight,
                                  Workspace& ws) {
  const std::int64_t in_f = csr.row_len();
  auto scope = ws.scope();
  // Accumulate through a transposed (in_f, out_f) view so each event is a
  // unit-stride axpy of length O. gemm_tn accumulates directly onto C in
  // ascending batch-row order; the transposes are element-exact copies, so
  // accumulating onto the transposed copy in the same row order matches.
  float* wgt = scope.floats(static_cast<std::size_t>(in_f * out_f));
  transpose_panel(grad_weight, out_f, in_f, wgt);
  const std::int64_t rows = csr.rows();
  parallel_for_range(
      0, static_cast<std::size_t>(out_f), [&](std::size_t b, std::size_t e) {
        const std::int64_t ob = static_cast<std::int64_t>(b);
        const std::int64_t oe = static_cast<std::int64_t>(e);
        for (std::int64_t row = 0; row < rows; ++row) {
          const float* gorow = grad_out + row * out_f;
          const std::int32_t* idx = csr.row_indices(row);
          const float* val = csr.row_values(row);
          const std::int64_t cnt = csr.row_nnz(row);
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            float* wrow = wgt + static_cast<std::int64_t>(idx[ev]) * out_f;
            const float v = val[ev];
            for (std::int64_t o = ob; o < oe; ++o) wrow[o] += gorow[o] * v;
          }
        }
      });
  transpose_panel(wgt, in_f, out_f, grad_weight);
}

void spike_linear_backward_input(const SpikeCsr& gcsr, const float* weight,
                                 std::int64_t in_f, float* grad_in) {
  const std::int64_t out_f = gcsr.row_len();
  (void)out_f;
  parallel_for_range(
      0, static_cast<std::size_t>(gcsr.rows()),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t row = b; row < e; ++row) {
          float* girow = grad_in + static_cast<std::int64_t>(row) * in_f;
          const std::int32_t* idx =
              gcsr.row_indices(static_cast<std::int64_t>(row));
          const float* val = gcsr.row_values(static_cast<std::int64_t>(row));
          const std::int64_t cnt =
              gcsr.row_nnz(static_cast<std::int64_t>(row));
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            const float* wrow =
                weight + static_cast<std::int64_t>(idx[ev]) * in_f;
            const float gv = val[ev];
            for (std::int64_t i = 0; i < in_f; ++i) girow[i] += gv * wrow[i];
          }
        }
      });
}

void spike_depthwise_backward_weight(const ConvGeometry& g,
                                     const SpikeCsr& csr,
                                     const float* grad_out,
                                     float* grad_weight) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t c_ = g.in_c;

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      const float* gop = grad_out + (img * c_ + c) * howo;
      float* gw = grad_weight + c * k * k;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          gw[ky * k + kx] += gop[oy * wo + ox] * v;
        }
      }
    }
  }
}

}  // namespace snnskip
