#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace snnskip {

Tensor add(const Tensor& a, const Tensor& b) {
  assert(a.shape() == b.shape());
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor concat_channels(const std::vector<const Tensor*>& inputs) {
  assert(!inputs.empty());
  const Shape& s0 = inputs[0]->shape();
  assert(s0.ndim() == 4);
  const std::int64_t n = s0[0], h = s0[2], w = s0[3];
  std::int64_t c_total = 0;
  for (const Tensor* t : inputs) {
    assert(t->shape().ndim() == 4);
    assert(t->shape()[0] == n && t->shape()[2] == h && t->shape()[3] == w);
    c_total += t->shape()[1];
  }
  Tensor out(Shape{n, c_total, h, w});
  const std::int64_t plane = h * w;
  for (std::int64_t img = 0; img < n; ++img) {
    std::int64_t c_off = 0;
    for (const Tensor* t : inputs) {
      const std::int64_t c = t->shape()[1];
      const float* src = t->data() + img * c * plane;
      float* dst = out.data() + (img * c_total + c_off) * plane;
      std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(c * plane));
      c_off += c;
    }
  }
  return out;
}

Tensor slice_channels(const Tensor& x, std::int64_t c0, std::int64_t c1) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  assert(0 <= c0 && c0 <= c1 && c1 <= s[1]);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t cs = c1 - c0;
  Tensor out(Shape{n, cs, h, w});
  const std::int64_t plane = h * w;
  for (std::int64_t img = 0; img < n; ++img) {
    const float* src = x.data() + (img * c + c0) * plane;
    float* dst = out.data() + img * cs * plane;
    std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(cs * plane));
  }
  return out;
}

Tensor gather_channels(const Tensor& x, const std::vector<std::int64_t>& idx) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t cs = static_cast<std::int64_t>(idx.size());
  Tensor out(Shape{n, cs, h, w});
  const std::int64_t plane = h * w;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t k = 0; k < cs; ++k) {
      assert(idx[static_cast<std::size_t>(k)] >= 0 &&
             idx[static_cast<std::size_t>(k)] < c);
      const float* src =
          x.data() + (img * c + idx[static_cast<std::size_t>(k)]) * plane;
      float* dst = out.data() + (img * cs + k) * plane;
      std::memcpy(dst, src, sizeof(float) * static_cast<std::size_t>(plane));
    }
  }
  return out;
}

void scatter_add_channels(Tensor& acc, const Tensor& grad,
                          const std::vector<std::int64_t>& idx) {
  const Shape& s = acc.shape();
  assert(s.ndim() == 4 && grad.shape().ndim() == 4);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  assert(grad.shape()[0] == n && grad.shape()[2] == h && grad.shape()[3] == w);
  assert(grad.shape()[1] == static_cast<std::int64_t>(idx.size()));
  const std::int64_t plane = h * w;
  const std::int64_t cs = grad.shape()[1];
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t k = 0; k < cs; ++k) {
      const float* src = grad.data() + (img * cs + k) * plane;
      float* dst =
          acc.data() + (img * c + idx[static_cast<std::size_t>(k)]) * plane;
      for (std::int64_t p = 0; p < plane; ++p) dst[p] += src[p];
    }
  }
}

Tensor softmax(const Tensor& logits) {
  const Shape& s = logits.shape();
  assert(s.ndim() == 2);
  const std::int64_t n = s[0], c = s[1];
  Tensor out(s);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float m = row[0];
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, row[j]);
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - m);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  const Shape& s = logits.shape();
  assert(s.ndim() == 2);
  const std::int64_t n = s[0], c = s[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor pad2d(const Tensor& x, std::int64_t pad) {
  if (pad == 0) return x;
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  Tensor out(Shape{n, c, h + 2 * pad, w + 2 * pad});
  const std::int64_t wo = w + 2 * pad;
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (img * c + ch) * h * w;
      float* dst = out.data() + (img * c + ch) * (h + 2 * pad) * wo;
      for (std::int64_t row = 0; row < h; ++row) {
        std::memcpy(dst + (row + pad) * wo + pad, src + row * w,
                    sizeof(float) * static_cast<std::size_t>(w));
      }
    }
  }
  return out;
}

Tensor unpad2d(const Tensor& x, std::int64_t pad) {
  if (pad == 0) return x;
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  const std::int64_t n = s[0], c = s[1], hp = s[2], wp = s[3];
  const std::int64_t h = hp - 2 * pad, w = wp - 2 * pad;
  assert(h > 0 && w > 0);
  Tensor out(Shape{n, c, h, w});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (img * c + ch) * hp * wp;
      float* dst = out.data() + (img * c + ch) * h * w;
      for (std::int64_t row = 0; row < h; ++row) {
        std::memcpy(dst + row * w, src + (row + pad) * wp + pad,
                    sizeof(float) * static_cast<std::size_t>(w));
      }
    }
  }
  return out;
}

}  // namespace snnskip
