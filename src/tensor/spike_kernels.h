#pragma once
// Event-driven forward kernels for spiking activations.
//
// Rationale (ISSUE 1 / DESIGN.md "Performance: event-driven execution"):
// SNN forward passes convolve binary, mostly-zero tensors T times per
// sample. Instead of lowering to im2col + GEMM and multiplying by zeros,
// these kernels walk the packed spike events (SpikeCsr) and accumulate
// the corresponding weight rows directly — cost scales with the number of
// spikes, not the tensor volume. Work per spike:
//
//   conv2d     K*K taps, each an O-length contiguous axpy into a
//              (HoWo, O)-transposed output panel (transposed once at the
//              end, so the inner loop is unit-stride in both operands)
//   linear     one O-length axpy from a transposed weight panel
//   depthwise  K*K scalar taps into the channel's own output plane
//
// Dispatch: layers scan the input with SpikeCsr and take this path only
// when SparseExec::enabled() and density < SparseExec::threshold();
// everything else (first encoder layer, BN outputs, gradients) falls back
// to the dense GEMM path unchanged. Scratch comes from the Workspace
// arena — steady-state timesteps allocate nothing.

#include <cstdint>

#include "tensor/im2col.h"
#include "tensor/spike_csr.h"
#include "tensor/workspace.h"

namespace snnskip {

/// Runtime switches for the sparse path. Defaults come from the
/// environment once at startup: SNNSKIP_SPARSE=0 disables it,
/// SNNSKIP_SPARSE_THRESHOLD=<frac> moves the density cutoff (default
/// 0.25). Setters exist for tests and benchmarks.
class SparseExec {
 public:
  static bool enabled();
  static float threshold();
  static void set_enabled(bool on);
  static void set_threshold(float t);

  /// Aggregate sparsity actually observed at sparse-eligible layer inputs.
  /// density() here is the same spikes-per-element definition used by
  /// FiringRateRecorder and EnergyModel::snn_energy_pj.
  struct Stats {
    double nnz = 0.0;
    double elements = 0.0;
    std::uint64_t sparse_calls = 0;
    std::uint64_t dense_calls = 0;
    double density() const { return elements > 0.0 ? nnz / elements : 0.0; }
  };
  static Stats stats();
  static void reset_stats();
  /// Called by the layers on every eligible forward.
  static void note(double nnz, double elements, bool took_sparse_path);
};

/// Full-tensor nonzero count — the cheap sparsity scan behind the
/// sparse-vs-dense dispatch (one streaming pass, negligible next to any
/// kernel it gates).
std::int64_t count_nonzero(const float* data, std::int64_t n);

/// True when the packed input should take the event-driven path.
inline bool use_sparse_path(const SpikeCsr& csr) {
  return SparseExec::enabled() &&
         csr.density() < static_cast<double>(SparseExec::threshold());
}

/// Event-driven Conv2d forward. `csr` packs the input as (N images,
/// C*H*W); `weight` is OIHW; `bias` may be null; `out` is (N, O, Ho, Wo).
void spike_conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                          const float* weight, const float* bias,
                          std::int64_t out_c, float* out, Workspace& ws);

/// Event-driven Linear forward. `csr` packs the input as (N, in_f);
/// `weight` is (out_f, in_f); `out` is (N, out_f).
void spike_linear_forward(const SpikeCsr& csr, const float* weight,
                          const float* bias, std::int64_t out_f, float* out,
                          Workspace& ws);

/// Event-driven depthwise conv forward. `csr` packs the input as
/// (N images, C*H*W); `weight` is (C, 1, K, K); `out` is (N, C, Ho, Wo).
void spike_depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                             const float* weight, const float* bias,
                             float* out);

}  // namespace snnskip
