#pragma once
// Event-driven forward AND backward kernels for spiking activations.
//
// Rationale (ISSUE 1 / ISSUE 4, DESIGN.md "Performance: event-driven
// execution"): SNN passes convolve binary, mostly-zero tensors T times per
// sample. Instead of lowering to im2col + GEMM and multiplying by zeros,
// these kernels walk the packed spike events (SpikeCsr) and accumulate
// the corresponding weight rows directly — cost scales with the number of
// spikes, not the tensor volume. Work per spike:
//
//   conv2d     K*K taps, each an O-length contiguous axpy into a
//              (HoWo, O)-transposed output panel (transposed once at the
//              end, so the inner loop is unit-stride in both operands)
//   linear     one O-length axpy from a transposed weight panel
//   depthwise  K*K scalar taps into the channel's own output plane
//
// The BPTT backward uses the same event lists twice:
//   dW         the forward input's SpikeCsr (saved in the layer Ctx, which
//              also replaces the dense retained input) drives the weight
//              gradient — work ∝ nnz * K*K * O instead of O * CKK * HoWo
//   dX         the surrogate active set: Boxcar sigma' is exactly zero
//              outside its window, so LIF/PLIF gradients are themselves
//              sparse; a value-carrying gradient CSR drives an
//              event-driven scatter instead of gemm_tn + col2im
//
// Every backward kernel reproduces the dense path's per-output-element
// accumulation order exactly (increasing image, then increasing reduction
// index, products formed the same way), and parallel variants partition
// by OUTPUT ownership, so sparse and dense gradients agree bit-for-bit at
// any thread count. Skipped zero terms are IEEE no-ops: accumulators
// start at +0 and +0 + (-0) == +0 under round-to-nearest, so a signed
// zero can never propagate a difference.
//
// Dispatch: layers scan the input with SpikeCsr and take this path only
// when SparseExec::enabled() and density < SparseExec::threshold();
// the backward side is additionally gated by SparseExec::bwd_enabled()
// (SNNSKIP_SPARSE_BWD). Everything else (first encoder layer, BN outputs,
// dense gradients) falls back to the dense GEMM path unchanged. Scratch
// comes from the Workspace arena — steady-state timesteps allocate
// nothing.

#include <cstdint>

#include "tensor/im2col.h"
#include "tensor/spike_csr.h"
#include "tensor/workspace.h"

namespace snnskip {

/// Runtime switches for the sparse path. Defaults come from the
/// environment once at startup: SNNSKIP_SPARSE=0 disables it,
/// SNNSKIP_SPARSE_THRESHOLD=<frac> moves the density cutoff (default
/// 0.25). Setters exist for tests and benchmarks.
class SparseExec {
 public:
  static bool enabled();
  static float threshold();
  static void set_enabled(bool on);
  static void set_threshold(float t);

  /// Backward-pass gate: true when both the master switch and the
  /// SNNSKIP_SPARSE_BWD escape hatch (default on) allow the event-driven
  /// dW/dX kernels. Layers only save CSR contexts while this holds.
  static bool bwd_enabled();
  static void set_bwd_enabled(bool on);

  /// Aggregate sparsity actually observed at sparse-eligible layer inputs.
  /// density() here is the same spikes-per-element definition used by
  /// FiringRateRecorder and EnergyModel::snn_energy_pj.
  struct Stats {
    double nnz = 0.0;
    double elements = 0.0;
    std::uint64_t sparse_calls = 0;
    std::uint64_t dense_calls = 0;
    double density() const { return elements > 0.0 ? nnz / elements : 0.0; }
  };
  static Stats stats();
  static void reset_stats();
  /// Called by the layers on every eligible forward.
  static void note(double nnz, double elements, bool took_sparse_path);

  /// Backward-dispatch twin of stats()/note(): achieved gradient density
  /// and sparse-vs-dense dX dispatch counts (reset by reset_stats()).
  static Stats bwd_stats();
  static void note_bwd(double nnz, double elements, bool took_sparse_path);
};

/// Handoff of the surrogate active set from a neuron backward to the layer
/// below it. LIF/PLIF count the nonzeros of the dL/dx tensor they emit
/// (the Boxcar window makes most entries exactly zero) and publish
/// (data pointer, numel, nnz); the consuming layer's backward takes the
/// hint instead of re-scanning. The hint is advisory: consumers verify
/// pointer AND numel, fall back to count_nonzero on mismatch, and always
/// rebuild the value CSR from the actual gradient tensor — a stale hint
/// (the producer's tensor was freed and its address recycled) can at worst
/// mis-estimate density and pick the slower dispatch, never corrupt a
/// gradient. Thread-local, so pool workers training candidates in
/// parallel never cross wires.
class GradDensityHint {
 public:
  static void publish(const float* data, std::int64_t numel, std::int64_t nnz);
  /// Consume the hint if it matches this tensor; -1 when absent/mismatched.
  static std::int64_t take(const float* data, std::int64_t numel);
  static void clear();
};

/// Full-tensor nonzero count — the cheap sparsity scan behind the
/// sparse-vs-dense dispatch (one streaming pass, negligible next to any
/// kernel it gates).
std::int64_t count_nonzero(const float* data, std::int64_t n);

/// Cache-blocked transpose: dst(c, r) = src(r, c) for src of (rows, cols).
/// Tile edge comes from the kernel config (SNNSKIP_TUNE_PROFILE); the 8x8
/// AVX2 block kernel engages per the active SIMD level. Exact copies —
/// bit-identical across tile sizes and SIMD levels.
void transpose_panel(const float* src, std::int64_t rows, std::int64_t cols,
                     float* dst);

/// dst(c, r) += src(r, c); same tiling. Each element is touched exactly
/// once, so this too is order-free and exact.
void transpose_add_panel(const float* src, std::int64_t rows,
                         std::int64_t cols, float* dst);

/// True when the packed input should take the event-driven path.
inline bool use_sparse_path(const SpikeCsr& csr) {
  return SparseExec::enabled() &&
         csr.density() < static_cast<double>(SparseExec::threshold());
}

/// Event-driven Conv2d forward. `csr` packs the input as (N images,
/// C*H*W); `weight` is OIHW; `bias` may be null; `out` is (N, O, Ho, Wo).
void spike_conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                          const float* weight, const float* bias,
                          std::int64_t out_c, float* out, Workspace& ws);

/// Event-driven Linear forward. `csr` packs the input as (N, in_f);
/// `weight` is (out_f, in_f); `out` is (N, out_f).
void spike_linear_forward(const SpikeCsr& csr, const float* weight,
                          const float* bias, std::int64_t out_f, float* out,
                          Workspace& ws);

/// Event-driven depthwise conv forward. `csr` packs the input as
/// (N images, C*H*W); `weight` is (C, 1, K, K); `out` is (N, C, Ho, Wo).
void spike_depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                             const float* weight, const float* bias,
                             float* out);

// ---- BPTT backward (ISSUE 4) ----------------------------------------------

/// Conv2d weight gradient from the forward input's events. `csr` packs the
/// saved input as (N, C*H*W); `grad_out` is (N, O, Ho, Wo); ACCUMULATES
/// into `grad_weight` (O, C, K, K). Matches gemm_nt's per-image
/// partial-then-add accumulation bit-for-bit.
void spike_conv2d_backward_weight(const ConvGeometry& g, const SpikeCsr& csr,
                                  const float* grad_out, std::int64_t out_c,
                                  float* grad_weight, Workspace& ws);

/// Conv2d input gradient from packed OUTPUT-gradient events. `gcsr` packs
/// grad_out as (N, O*Ho*Wo) with values; `weight` is (O, C, K, K); writes
/// into zero-initialized `grad_in` (N, C, H, W). Two phases per image:
/// build the active output columns (per column, events in increasing-o
/// order — gemm_tn's reduction order), then scatter them in col2im's
/// (kernel-row, ascending-column) order, so the result matches the dense
/// gemm_tn + col2im path bit-for-bit.
void spike_conv2d_backward_input(const ConvGeometry& g, const SpikeCsr& gcsr,
                                 const float* weight, std::int64_t out_c,
                                 float* grad_in, Workspace& ws);

/// Linear weight gradient from the forward input's events. `csr` packs the
/// saved input as (N, in_f); `grad_out` is (N, out_f); ACCUMULATES into
/// `grad_weight` (out_f, in_f) in gemm_tn's direct-onto-C order.
void spike_linear_backward_weight(const SpikeCsr& csr, const float* grad_out,
                                  std::int64_t out_f, float* grad_weight,
                                  Workspace& ws);

/// Linear input gradient from packed output-gradient events. `gcsr` packs
/// grad_out as (N, out_f); `weight` is (out_f, in_f); writes into
/// zero-initialized `grad_in` (N, in_f).
void spike_linear_backward_input(const SpikeCsr& gcsr, const float* weight,
                                 std::int64_t in_f, float* grad_in);

/// Depthwise weight gradient from the forward input's events. `csr` packs
/// the saved input as (N, C*H*W); `grad_out` is (N, C, Ho, Wo);
/// ACCUMULATES into `grad_weight` (C, 1, K, K).
void spike_depthwise_backward_weight(const ConvGeometry& g,
                                     const SpikeCsr& csr,
                                     const float* grad_out,
                                     float* grad_weight);

}  // namespace snnskip
