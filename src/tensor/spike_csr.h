#pragma once
// Event-list (CSR) packing of spike activations.
//
// Spiking layers exchange binary, mostly-zero tensors; the event-driven
// kernels in spike_kernels.h want the nonzero coordinates, not the dense
// grid. SpikeCsr scans a (rows, row_len) view — rows are batch images for
// convolutions, batch rows for Linear — and packs each row's nonzero
// positions and values into one contiguous index/value array with a CSR
// row-pointer table. The scan doubles as the sparsity detector: density()
// and binary() drive the sparse-vs-dense dispatch decision.
//
// All storage is member-owned and cleared without shrinking, so rebuilding
// every timestep reuses capacity instead of reallocating.

#include <cstdint>
#include <vector>

namespace snnskip {

class SpikeCsr {
 public:
  /// Scan `data` viewed as (rows, row_len) and pack nonzero events.
  void build(const float* data, std::int64_t rows, std::int64_t row_len);

  std::int64_t rows() const {
    return static_cast<std::int64_t>(row_ptr_.empty() ? 0
                                                      : row_ptr_.size() - 1);
  }
  std::int64_t row_len() const { return row_len_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(idx_.size()); }
  /// Fraction of nonzero entries — identical definition to
  /// Tensor::nonzero_fraction() and FiringRateRecorder densities.
  double density() const {
    const double total =
        static_cast<double>(rows()) * static_cast<double>(row_len_);
    return total > 0.0 ? static_cast<double>(nnz()) / total : 0.0;
  }
  /// True when every packed value is exactly 1.f (a pure spike tensor).
  bool binary() const { return binary_; }

  /// Bytes a backward Ctx holding this packing keeps alive (indices +
  /// values + row pointers) — the number the BPTT retained-activation
  /// telemetry reports instead of the dense rows*row_len*4.
  std::int64_t retained_bytes() const {
    return static_cast<std::int64_t>(idx_.size() * sizeof(std::int32_t) +
                                     val_.size() * sizeof(float) +
                                     row_ptr_.size() * sizeof(std::int32_t));
  }

  std::int64_t row_nnz(std::int64_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }
  /// Positions (offsets within the row) of row r's nonzeros.
  const std::int32_t* row_indices(std::int64_t r) const {
    return idx_.data() + row_ptr_[static_cast<std::size_t>(r)];
  }
  /// Values aligned with row_indices(r); all 1.f when binary().
  const float* row_values(std::int64_t r) const {
    return val_.data() + row_ptr_[static_cast<std::size_t>(r)];
  }

 private:
  std::vector<std::int32_t> row_ptr_;  // rows + 1 entries
  std::vector<std::int32_t> idx_;
  std::vector<float> val_;
  std::int64_t row_len_ = 0;
  bool binary_ = true;
};

}  // namespace snnskip
