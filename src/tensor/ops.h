#pragma once
// Free-function tensor operations used by the layer library and the joins.
//
// Channel-dimension manipulation (concat / slice / gather) is what realizes
// the paper's two skip-connection types: DSC concatenates (a subset of)
// earlier layers' channels, ASC adds tensors element-wise.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace snnskip {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// Concatenate NCHW tensors along the channel axis (dim 1). All inputs must
/// agree on N, H, W.
Tensor concat_channels(const std::vector<const Tensor*>& inputs);

/// Extract channels [c0, c1) of an NCHW tensor.
Tensor slice_channels(const Tensor& x, std::int64_t c0, std::int64_t c1);

/// Gather an arbitrary channel subset (used by DSC channel sub-sampling).
Tensor gather_channels(const Tensor& x, const std::vector<std::int64_t>& idx);

/// Scatter-add `grad` (N,|idx|,H,W) back into channels `idx` of an NCHW
/// accumulator — the backward of gather_channels.
void scatter_add_channels(Tensor& acc, const Tensor& grad,
                          const std::vector<std::int64_t>& idx);

/// Row-wise softmax of an NC tensor.
Tensor softmax(const Tensor& logits);

/// Row-wise argmax of an NC tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Zero-pad an NCHW tensor spatially by `pad` on each side.
Tensor pad2d(const Tensor& x, std::int64_t pad);

/// Crop the spatial padding added by pad2d (backward of pad2d).
Tensor unpad2d(const Tensor& x, std::int64_t pad);

}  // namespace snnskip
