#include "tensor/spike_csr.h"

#include <cassert>
#include <limits>

namespace snnskip {

void SpikeCsr::build(const float* data, std::int64_t rows,
                     std::int64_t row_len) {
  assert(row_len <= std::numeric_limits<std::int32_t>::max());
  row_ptr_.clear();
  idx_.clear();
  val_.clear();
  row_len_ = row_len;
  binary_ = true;
  row_ptr_.reserve(static_cast<std::size_t>(rows) + 1);
  row_ptr_.push_back(0);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* p = data + r * row_len;
    for (std::int64_t j = 0; j < row_len; ++j) {
      const float v = p[j];
      if (v != 0.f) {
        idx_.push_back(static_cast<std::int32_t>(j));
        val_.push_back(v);
        binary_ &= (v == 1.f);
      }
    }
    row_ptr_.push_back(static_cast<std::int32_t>(idx_.size()));
  }
}

}  // namespace snnskip
