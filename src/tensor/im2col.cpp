#include "tensor/im2col.h"

namespace snnskip {

void im2col(const ConvGeometry& g, const float* img, float* cols) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t cc = ho * wo;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = img + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = cols + row * cc;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t ox = 0; ox < wo; ++ox) out_row[oy * wo + ox] = 0.f;
            continue;
          }
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t ix = ox * g.stride - g.pad + kx;
            out_row[oy * wo + ox] =
                (ix < 0 || ix >= g.in_w) ? 0.f : plane[iy * g.in_w + ix];
          }
        }
      }
    }
  }
}

void im2row(const ConvGeometry& g, const float* img, float* rows) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t cr = g.col_rows();
  const std::int64_t hw = g.in_h * g.in_w;
  for (std::int64_t oy = 0; oy < ho; ++oy) {
    for (std::int64_t ox = 0; ox < wo; ++ox) {
      float* patch = rows + (oy * wo + ox) * cr;
      std::int64_t row = 0;
      for (std::int64_t c = 0; c < g.in_c; ++c) {
        const float* plane = img + c * hw;
        for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
          const std::int64_t iy = oy * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
              patch[row] = 0.f;
            }
            continue;
          }
          for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
            const std::int64_t ix = ox * g.stride - g.pad + kx;
            patch[row] =
                (ix < 0 || ix >= g.in_w) ? 0.f : plane[iy * g.in_w + ix];
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, const float* cols, float* img) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t cc = ho * wo;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = img + c * g.in_h * g.in_w;
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * cc;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          const std::int64_t iy = oy * g.stride - g.pad + ky;
          if (iy < 0 || iy >= g.in_h) continue;
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const std::int64_t ix = ox * g.stride - g.pad + kx;
            if (ix < 0 || ix >= g.in_w) continue;
            plane[iy * g.in_w + ix] += in_row[oy * wo + ox];
          }
        }
      }
    }
  }
}

}  // namespace snnskip
