// AVX2 int8 kernel table (ISSUE 10). Compiled with -mavx2 (via
// snnskip_simd_kernel_sources) and only when the toolchain supports it;
// reached exclusively through the CPUID-gated table accessor. Integer
// kernels: bit-identical to the scalar table by construction, enforced
// by tests/quant_test.cpp's scalar-vs-AVX2 memcmp.

#if !defined(__AVX2__)
#error "quant_avx2.cpp must be compiled with -mavx2"
#endif

#include "tensor/quant_kernels_impl.h"
#include "tensor/simd_ops.h"

namespace snnskip::simd {

const QuantKernels* quant_kernels_avx2() {
  static const QuantKernels k = quant_impl::make_quant_table<true>();
  return &k;
}

}  // namespace snnskip::simd
