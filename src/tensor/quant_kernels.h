#pragma once
// Public entry points for the int8 quantized kernels (ISSUE 10). Thin
// dispatch wrappers over the per-SIMD-level tables in simd_ops.h — the
// same pattern as spike_packed.h / gemm.h. All kernels are bit-identical
// across SIMD levels (integer accumulation; the quantize edge preserves
// the scalar per-lane float sequence), so SNNSKIP_SIMD never changes an
// int8 plan's outputs.
//
// Scheme recap (DESIGN.md §5k): weights are per-output-channel symmetric
// int8 (q = clamp(floor(w / S[o] + 0.5), -127, 127), S[o] from the raw
// row absmax); activations are quantized per op with one scalar step `a`
// (exactly 1.0 when every input term is binary spikes); accumulation is
// int32; dequantization happens once in the conv epilogue as
// a * S[o] * bn_scale_t[o] — so the BNTT fold costs one float vector per
// timestep instead of one weight copy per timestep.

#include <cstdint>

#include "tensor/im2col.h"

namespace snnskip {

/// dst[i] = clamp(floor(src[i] * inv + 0.5), -127, 127); `inv` is the
/// reciprocal of the quantization step (compute once per dispatch).
void quantize_int8(std::int64_t n, const float* src, float inv,
                   std::int8_t* dst);

/// Elementwise int32 -> float; dst may alias src (in-place widening of an
/// accumulator panel before the shared float epilogue).
void convert_i32_to_f32(std::int64_t n, const std::int32_t* src, float* dst);

/// c(m, n) = a(m, k) * b(n, k)^T with int8 operands and int32 output
/// (c overwritten). Row-major, shared inner dimension k.
void gemm_s8s32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, const std::int8_t* b,
                   std::int32_t* c);

/// Int8 twin of spike_packed_conv2d_term: accumulate one packed input
/// term into the transposed int32 panel `outt` ((Ho*Wo, O) rows). Same
/// contracts (chrow mapping, event order, returned accumulate count).
std::int64_t spike_packed_conv2d_term_i8(const ConvGeometry& g,
                                         std::int64_t src_c,
                                         const std::uint64_t* words,
                                         const std::int32_t* chrow,
                                         const std::int8_t* wt,
                                         std::int64_t out_c,
                                         std::int32_t* outt);

/// Int8 twin of spike_packed_depthwise_term ((C, Ho, Wo) int32 acc).
std::int64_t spike_packed_depthwise_term_i8(const ConvGeometry& g,
                                            std::int64_t src_c,
                                            const std::uint64_t* words,
                                            const std::int32_t* chrow,
                                            const std::int8_t* weight,
                                            std::int32_t* acc);

}  // namespace snnskip
