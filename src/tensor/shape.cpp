#include "tensor/shape.h"

#include <cassert>
#include <sstream>

namespace snnskip {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for ([[maybe_unused]] auto d : dims_) assert(d >= 0);
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for ([[maybe_unused]] auto d : dims_) assert(d >= 0);
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace snnskip
