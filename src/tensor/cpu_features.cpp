#include "tensor/cpu_features.h"

#include <atomic>
#include <mutex>

#include "util/logging.h"
#include "util/runtime_env.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace snnskip {

namespace detail {
// Defined in kernel_config.cpp: makes sure the tuning profile (if any) has
// been parsed, and returns its "simd" field ("auto" when absent/rejected).
// Declared here instead of a header because it is an implementation
// handshake between the two translation units, not API.
const std::string& tuned_simd_hint();
}  // namespace detail

const char* to_string(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Avx2Fma: return "avx2fma";
  }
  return "scalar";
}

bool parse_simd_level(const std::string& s, SimdLevel* out) {
  if (s == "scalar") {
    *out = SimdLevel::Scalar;
  } else if (s == "avx2") {
    *out = SimdLevel::Avx2;
  } else if (s == "avx2fma") {
    *out = SimdLevel::Avx2Fma;
  } else {
    return false;
  }
  return true;
}

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

bool cpu_has_fma() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool has = __builtin_cpu_supports("fma") != 0;
  return has;
#else
  return false;
#endif
}

bool simd_avx2_compiled() {
#if defined(SNNSKIP_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

SimdLevel max_simd_level() {
  if (!simd_avx2_compiled() || !cpu_has_avx2()) return SimdLevel::Scalar;
  return cpu_has_fma() ? SimdLevel::Avx2Fma : SimdLevel::Avx2;
}

std::string cpu_signature() {
  std::string brand = "unknown";
#if defined(__x86_64__) || defined(__i386__)
  unsigned int regs[4] = {0, 0, 0, 0};
  if (__get_cpuid(0x80000000u, &regs[0], &regs[1], &regs[2], &regs[3]) &&
      regs[0] >= 0x80000004u) {
    char buf[49] = {};
    for (unsigned int leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
      for (int r = 0; r < 4; ++r) {
        for (int b = 0; b < 4; ++b) {
          buf[leaf * 16 + r * 4 + b] =
              static_cast<char>((regs[r] >> (8 * b)) & 0xff);
        }
      }
    }
    // Trim leading/trailing whitespace from the padded brand string.
    std::string s(buf);
    const auto first = s.find_first_not_of(" \t");
    const auto last = s.find_last_not_of(" \t");
    if (first != std::string::npos) brand = s.substr(first, last - first + 1);
  }
#endif
  brand += "|avx2=";
  brand += cpu_has_avx2() ? '1' : '0';
  brand += "|fma=";
  brand += cpu_has_fma() ? '1' : '0';
  return brand;
}

namespace {

std::atomic<int> g_active{-1};  // -1 = not resolved yet
std::once_flag g_resolve_once;

SimdLevel clamp_to_supported(SimdLevel want, const std::string& origin) {
  const SimdLevel max = max_simd_level();
  if (static_cast<int>(want) <= static_cast<int>(max)) return want;
  SNNSKIP_LOG(Warn) << "SNNSKIP_SIMD: requested '" << to_string(want)
                    << "' (" << origin << ") but this "
                    << (simd_avx2_compiled() ? "CPU" : "build")
                    << " supports at most '" << to_string(max)
                    << "'; falling back";
  return max;
}

void resolve_active() {
  // Policy: an explicit SNNSKIP_SIMD wins; otherwise the tuning profile's
  // "simd" field; otherwise auto. "auto" picks Avx2 when available and
  // never Avx2Fma — fused accumulation changes last-ulp rounding, so it
  // stays an explicit opt-in (header comment).
  const std::string env = env::get_string("SNNSKIP_SIMD", "");
  std::string choice = env;
  std::string origin = "environment";
  if (choice.empty() || choice == "auto") {
    choice = detail::tuned_simd_hint();
    origin = "tuning profile";
  }
  SimdLevel level;
  if (choice.empty() || choice == "auto") {
    level = max_simd_level() >= SimdLevel::Avx2 ? SimdLevel::Avx2
                                                : SimdLevel::Scalar;
  } else if (parse_simd_level(choice, &level)) {
    level = clamp_to_supported(level, origin);
  } else {
    SNNSKIP_LOG(Warn) << "SNNSKIP_SIMD: unrecognized value '" << choice
                      << "' (" << origin << "); using auto";
    level = max_simd_level() >= SimdLevel::Avx2 ? SimdLevel::Avx2
                                                : SimdLevel::Scalar;
  }
  g_active.store(static_cast<int>(level), std::memory_order_release);
}

}  // namespace

SimdLevel active_simd() {
  const int v = g_active.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<SimdLevel>(v);
  std::call_once(g_resolve_once, resolve_active);
  return static_cast<SimdLevel>(g_active.load(std::memory_order_acquire));
}

SimdLevel set_active_simd(SimdLevel level) {
  const SimdLevel max = max_simd_level();
  if (static_cast<int>(level) > static_cast<int>(max)) level = max;
  g_active.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

}  // namespace snnskip
