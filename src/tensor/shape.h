#pragma once
// Tensor shape: a small vector of dimension sizes with row-major strides.
//
// Conventions used across the library:
//   images / activations : NCHW  (batch, channels, height, width)
//   linear activations   : NC
//   weights (conv)       : OIHW
//   weights (linear)     : OI

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace snnskip {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t ndim() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const { return dims_[i]; }
  std::int64_t operator[](std::size_t i) const { return dims_[i]; }
  const std::vector<std::int64_t>& dims() const { return dims_; }

  /// Total element count (1 for a scalar / empty shape).
  std::int64_t numel() const;

  /// Row-major strides, innermost dimension contiguous.
  std::vector<std::int64_t> strides() const;

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return dims_ != o.dims_; }

  /// "[2, 3, 8, 8]"
  std::string str() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace snnskip
