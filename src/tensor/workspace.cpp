#include "tensor/workspace.h"

#include <algorithm>
#include <cstring>

namespace snnskip {

namespace {
// Round requests to whole cache lines so consecutive buffers never share
// one, and SIMD loops see aligned starts.
constexpr std::size_t kAlignFloats = 16;  // 64 bytes
constexpr std::size_t kMinBlockFloats = 1 << 12;

std::size_t aligned(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}
}  // namespace

float* Workspace::alloc_floats(std::size_t n) {
  const std::size_t need = aligned(std::max<std::size_t>(n, 1));
  // Advance through existing blocks until one has room; leftover tails are
  // reclaimed by release(), which rewinds block/offset together.
  while (cur_block_ < blocks_.size() &&
         blocks_[cur_block_].cap - cur_off_ < need) {
    ++cur_block_;
    cur_off_ = 0;
  }
  if (cur_block_ == blocks_.size()) {
    // Grow by at least the whole current capacity so the block count stays
    // O(log high_water) and coalescing below converges fast.
    const std::size_t cap =
        std::max({need, capacity_, kMinBlockFloats});
    blocks_.push_back(Block{std::make_unique<float[]>(cap), cap});
    capacity_ += cap;
    ++heap_allocs_;
  }
  float* p = blocks_[cur_block_].data.get() + cur_off_;
  cur_off_ += need;
  used_ += need;
  high_water_ = std::max(high_water_, used_);
  return p;
}

void Workspace::release(const Mark& m) {
  cur_block_ = m.block;
  cur_off_ = m.offset;
  used_ = m.used;
  if (used_ == 0 && blocks_.size() > 1) {
    // Fully unwound and fragmented: coalesce into one block big enough for
    // the observed high-water mark, so steady state is a single bump
    // pointer and no further heap traffic.
    blocks_.clear();
    const std::size_t cap = std::max(high_water_, kMinBlockFloats);
    blocks_.push_back(Block{std::make_unique<float[]>(cap), cap});
    capacity_ = cap;
    ++heap_allocs_;
    cur_block_ = 0;
    cur_off_ = 0;
  }
}

float* Workspace::Scope::zeroed_floats(std::size_t n) {
  float* p = ws_.alloc_floats(n);
  std::memset(p, 0, n * sizeof(float));
  return p;
}

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

}  // namespace snnskip
