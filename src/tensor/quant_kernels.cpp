// Scalar int8 kernel table + public dispatch entries (ISSUE 10). The
// AVX2 table lives in quant_avx2.cpp (compiled -mavx2); without AVX2
// support the avx2 accessor aliases the scalar table so dispatch never
// needs a null check — same structure as spike_kernels.cpp.

#include "tensor/quant_kernels.h"

#include "tensor/quant_kernels_impl.h"
#include "tensor/simd_ops.h"

namespace snnskip {

namespace simd {

const QuantKernels* quant_kernels_scalar() {
  static const QuantKernels k = quant_impl::make_quant_table<false>();
  return &k;
}

#if !defined(SNNSKIP_HAVE_AVX2)
const QuantKernels* quant_kernels_avx2() { return quant_kernels_scalar(); }
#endif

}  // namespace simd

void quantize_int8(std::int64_t n, const float* src, float inv,
                   std::int8_t* dst) {
  simd::quant_ops().quantize_row(n, src, inv, dst);
}

void convert_i32_to_f32(std::int64_t n, const std::int32_t* src, float* dst) {
  simd::quant_ops().i32_to_f32(n, src, dst);
}

void gemm_s8s32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* a, const std::int8_t* b,
                   std::int32_t* c) {
  simd::quant_ops().gemm_s8s32_nt(m, n, k, a, b, c);
}

std::int64_t spike_packed_conv2d_term_i8(const ConvGeometry& g,
                                         std::int64_t src_c,
                                         const std::uint64_t* words,
                                         const std::int32_t* chrow,
                                         const std::int8_t* wt,
                                         std::int64_t out_c,
                                         std::int32_t* outt) {
  return simd::quant_ops().packed_conv2d_term_i8(g, src_c, words, chrow, wt,
                                                 out_c, outt);
}

std::int64_t spike_packed_depthwise_term_i8(const ConvGeometry& g,
                                            std::int64_t src_c,
                                            const std::uint64_t* words,
                                            const std::int32_t* chrow,
                                            const std::int8_t* weight,
                                            std::int32_t* acc) {
  return simd::quant_ops().packed_depthwise_term_i8(g, src_c, words, chrow,
                                                    weight, acc);
}

}  // namespace snnskip
