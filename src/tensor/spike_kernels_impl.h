#pragma once
// Event-kernel bodies shared by the scalar and AVX2 translation units
// (ISSUE 9). spike_kernels.cpp instantiates everything with V=false;
// simd_avx2.cpp re-instantiates with V=true (and Fused=true for the
// Avx2Fma table) under -mavx2 -mfma -ffp-contract=off. The kernel
// structure is byte-for-byte the historic scalar code — only the innermost
// unit-stride loops route through the vector primitives below, each of
// which preserves the scalar per-element operation sequence exactly
// (unfused multiply+add per lane), so the V=true instantiations stay
// bit-identical to V=false. Fused=true single-rounds the multiply-adds and
// is never reachable from the deterministic training contracts.
//
// Template parameters: V = use AVX2 intrinsics in the primitives,
// F = fuse multiply-add (only meaningful with V).

#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "parallel/parallel_for.h"
#include "tensor/im2col.h"
#include "tensor/kernel_config.h"
#include "tensor/simd_ops.h"
#include "tensor/spike_csr.h"
#include "tensor/workspace.h"

namespace snnskip::spike_impl {

// ---- Vector primitives -----------------------------------------------------

/// y[0..n) += a * x[0..n). The spike kernels' workhorse: one weight-row
/// accumulation per (event, tap).
template <bool V, bool F>
inline void axpy(std::int64_t n, float a, const float* __restrict x,
                 float* __restrict y) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 av = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
      const __m256 xv = _mm256_loadu_ps(x + i);
      const __m256 yv = _mm256_loadu_ps(y + i);
      if constexpr (F) {
        _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, xv, yv));
      } else {
        _mm256_storeu_ps(y + i, _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
      }
    }
  }
#endif
  for (; i < n; ++i) y[i] += a * x[i];
}

/// y[0..n) += x[0..n). Pure adds (the packed binary-spike accumulation) —
/// no multiply, so fusion never applies and every level is bit-equal.
template <bool V>
inline void add_rows(std::int64_t n, const float* __restrict x,
                     float* __restrict y) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(
          y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
    }
  }
#endif
  for (; i < n; ++i) y[i] += x[i];
}

/// y[0..n) += a (scalar broadcast; the bias add after the output flip).
template <bool V>
inline void add_scalar(std::int64_t n, float a, float* __restrict y) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 av = _mm256_set1_ps(a);
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), av));
    }
  }
#endif
  for (; i < n; ++i) y[i] += a;
}

// ---- Cache-blocked transpose (satellite: one templated helper) -------------

#if defined(__AVX2__)
/// 8x8 in-register transpose block: reads 8 rows of 8 at stride `scols`,
/// writes (or adds) the transpose as 8 rows at stride `dcols`. Exact
/// copies/adds — no reassociation anywhere.
template <bool Add>
inline void transpose_8x8_avx2(const float* src, std::int64_t scols,
                               float* dst, std::int64_t dcols) {
  __m256 r0 = _mm256_loadu_ps(src + 0 * scols);
  __m256 r1 = _mm256_loadu_ps(src + 1 * scols);
  __m256 r2 = _mm256_loadu_ps(src + 2 * scols);
  __m256 r3 = _mm256_loadu_ps(src + 3 * scols);
  __m256 r4 = _mm256_loadu_ps(src + 4 * scols);
  __m256 r5 = _mm256_loadu_ps(src + 5 * scols);
  __m256 r6 = _mm256_loadu_ps(src + 6 * scols);
  __m256 r7 = _mm256_loadu_ps(src + 7 * scols);
  __m256 t0 = _mm256_unpacklo_ps(r0, r1);
  __m256 t1 = _mm256_unpackhi_ps(r0, r1);
  __m256 t2 = _mm256_unpacklo_ps(r2, r3);
  __m256 t3 = _mm256_unpackhi_ps(r2, r3);
  __m256 t4 = _mm256_unpacklo_ps(r4, r5);
  __m256 t5 = _mm256_unpackhi_ps(r4, r5);
  __m256 t6 = _mm256_unpacklo_ps(r6, r7);
  __m256 t7 = _mm256_unpackhi_ps(r6, r7);
  __m256 s0 = _mm256_shuffle_ps(t0, t2, 0x44);
  __m256 s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
  __m256 s2 = _mm256_shuffle_ps(t1, t3, 0x44);
  __m256 s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
  __m256 s4 = _mm256_shuffle_ps(t4, t6, 0x44);
  __m256 s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
  __m256 s6 = _mm256_shuffle_ps(t5, t7, 0x44);
  __m256 s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
  __m256 o[8];
  o[0] = _mm256_permute2f128_ps(s0, s4, 0x20);
  o[1] = _mm256_permute2f128_ps(s1, s5, 0x20);
  o[2] = _mm256_permute2f128_ps(s2, s6, 0x20);
  o[3] = _mm256_permute2f128_ps(s3, s7, 0x20);
  o[4] = _mm256_permute2f128_ps(s0, s4, 0x31);
  o[5] = _mm256_permute2f128_ps(s1, s5, 0x31);
  o[6] = _mm256_permute2f128_ps(s2, s6, 0x31);
  o[7] = _mm256_permute2f128_ps(s3, s7, 0x31);
  for (int i = 0; i < 8; ++i) {
    float* d = dst + i * dcols;
    if constexpr (Add) {
      _mm256_storeu_ps(d, _mm256_add_ps(_mm256_loadu_ps(d), o[i]));
    } else {
      _mm256_storeu_ps(d, o[i]);
    }
  }
}
#endif  // __AVX2__

/// Cache-blocked transpose: dst(c, r) = src(r, c) (Add=false) or
/// dst(c, r) += src(r, c) (Add=true) for src of (rows, cols). The naive
/// loop strides one full row per write and misses on every store once the
/// panel outgrows L2 (e.g. a 512x2304 conv weight); `tile`-edge tiles keep
/// both sides inside a handful of cache lines. Each element is touched
/// exactly once, so tiling (and the 8x8 vector block) is order-free and
/// exact for any tile size.
template <bool V, bool Add>
void transpose_tiled(const float* src, std::int64_t rows, std::int64_t cols,
                     float* dst, std::int64_t tile) {
  for (std::int64_t r0 = 0; r0 < rows; r0 += tile) {
    const std::int64_t r1 = rows < r0 + tile ? rows : r0 + tile;
    for (std::int64_t c0 = 0; c0 < cols; c0 += tile) {
      const std::int64_t c1 = cols < c0 + tile ? cols : c0 + tile;
      std::int64_t r = r0;
#if defined(__AVX2__)
      if constexpr (V) {
        for (; r + 8 <= r1; r += 8) {
          std::int64_t c = c0;
          for (; c + 8 <= c1; c += 8) {
            transpose_8x8_avx2<Add>(src + r * cols + c, cols,
                                    dst + c * rows + r, rows);
          }
          for (std::int64_t rr = r; rr < r + 8; ++rr) {
            const float* s = src + rr * cols;
            for (std::int64_t cc = c; cc < c1; ++cc) {
              if constexpr (Add) {
                dst[cc * rows + rr] += s[cc];
              } else {
                dst[cc * rows + rr] = s[cc];
              }
            }
          }
        }
      }
#endif
      for (; r < r1; ++r) {
        const float* s = src + r * cols;
        for (std::int64_t c = c0; c < c1; ++c) {
          if constexpr (Add) {
            dst[c * rows + r] += s[c];
          } else {
            dst[c * rows + r] = s[c];
          }
        }
      }
    }
  }
}

/// Dispatch-friendly density scan.
template <bool V>
std::int64_t count_nonzero_impl(const float* data, std::int64_t n) {
  std::int64_t i = 0;
  std::int64_t nnz = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(data + i);
      const unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ)));
      nnz += std::popcount(mask);
    }
  }
#endif
  for (; i < n; ++i) nnz += (data[i] != 0.f);
  return nnz;
}

// ---- CSR event kernels (bodies: see spike_kernels.h for contracts) ---------

template <bool V, bool F>
void conv2d_forward(const ConvGeometry& g, const SpikeCsr& csr,
                    const float* weight, const float* bias, std::int64_t out_c,
                    float* out, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t o_c = out_c;
  const std::int64_t tile = kernel_config().transpose_tile;

  auto scope = ws.scope();
  // Weight transposed to ((c,ky,kx), o) so the per-spike accumulation is a
  // unit-stride axpy of length O. Rebuilt per call: O(O*CKK) — negligible
  // next to the conv itself and immune to weight-update staleness.
  float* wt = scope.floats(static_cast<std::size_t>(ckk * o_c));
  transpose_tiled<V, false>(weight, o_c, ckk, wt, tile);
  // Output accumulated transposed as (HoWo, O), then flipped back once.
  float* outt = scope.floats(static_cast<std::size_t>(howo * o_c));

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    std::memset(outt, 0, static_cast<std::size_t>(howo * o_c) * sizeof(float));
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      // Every kernel tap (ky,kx) that maps this input pixel onto a valid
      // output position receives one weight-row accumulation.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const float* wrow = wt + ((c * k + ky) * k + kx) * o_c;
          float* orow = outt + (oy * wo + ox) * o_c;
          axpy<V, F>(o_c, v, wrow, orow);
        }
      }
    }
    // Flip (HoWo, O) back to (O, HoWo) and add the bias — exact copies
    // plus the same single add per element the row-wise loop performed.
    float* oimg = out + img * o_c * howo;
    transpose_tiled<V, false>(outt, howo, o_c, oimg, tile);
    for (std::int64_t o = 0; o < o_c; ++o) {
      add_scalar<V>(howo, bias != nullptr ? bias[o] : 0.f, oimg + o * howo);
    }
  }
}

template <bool V, bool F>
void linear_forward(const SpikeCsr& csr, const float* weight,
                    const float* bias, std::int64_t out_f, float* out,
                    Workspace& ws) {
  const std::int64_t in_f = csr.row_len();
  const std::int64_t tile = kernel_config().transpose_tile;
  auto scope = ws.scope();
  float* wt = scope.floats(static_cast<std::size_t>(in_f * out_f));
  transpose_tiled<V, false>(weight, out_f, in_f, wt, tile);
  for (std::int64_t i = 0; i < csr.rows(); ++i) {
    float* orow = out + i * out_f;
    if (bias != nullptr) {
      std::memcpy(orow, bias, static_cast<std::size_t>(out_f) * sizeof(float));
    } else {
      std::memset(orow, 0, static_cast<std::size_t>(out_f) * sizeof(float));
    }
    const std::int32_t* idx = csr.row_indices(i);
    const float* val = csr.row_values(i);
    const std::int64_t cnt = csr.row_nnz(i);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const float* wrow = wt + static_cast<std::int64_t>(idx[e]) * out_f;
      axpy<V, F>(out_f, val[e], wrow, orow);
    }
  }
}

template <bool V, bool F>
void depthwise_forward(const ConvGeometry& g, const SpikeCsr& csr,
                       const float* weight, const float* bias, float* out) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t c_ = g.in_c;

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    float* oimg = out + img * c_ * howo;
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float b = bias != nullptr ? bias[ch] : 0.f;
      float* plane = oimg + ch * howo;
      for (std::int64_t j = 0; j < howo; ++j) plane[j] = b;
    }
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      const float* ker = weight + c * k * k;
      float* oplane = oimg + c * howo;
      // K*K scattered scalar taps — no contiguous run to vectorize.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += v * ker[ky * k + kx];
        }
      }
    }
  }
}

template <bool V, bool F>
void conv2d_backward_weight(const ConvGeometry& g, const SpikeCsr& csr,
                            const float* grad_out, std::int64_t out_c,
                            float* grad_weight, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t o_c = out_c;
  const std::int64_t tile = kernel_config().transpose_tile;

  auto scope = ws.scope();
  // grad_out transposed to (HoWo, O) once per image so the per-event tap
  // loop reads a unit-stride O-slice, mirroring the forward kernel.
  float* got = scope.floats(static_cast<std::size_t>(howo * o_c));

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    transpose_tiled<V, false>(grad_out + img * o_c * howo, o_c, howo, got,
                              tile);
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    // Each chunk owns an O-slice [ob, oe): it accumulates a private
    // (CKK, oe-ob) per-image partial from the events, then adds it into
    // its own grad_weight rows. gemm_nt computes the same per-image
    // partial (acc from +0, p ascending) before its single add, so the
    // result matches the dense path bit-for-bit for any partition.
    parallel_for_range(
        0, static_cast<std::size_t>(o_c), [&](std::size_t b, std::size_t e) {
          const std::int64_t ob = static_cast<std::int64_t>(b);
          const std::int64_t ow = static_cast<std::int64_t>(e) - ob;
          auto chunk_scope = Workspace::tls().scope();
          float* dwt = chunk_scope.floats(static_cast<std::size_t>(ckk * ow));
          std::memset(dwt, 0,
                      static_cast<std::size_t>(ckk * ow) * sizeof(float));
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            const std::int64_t flat = idx[ev];
            const float v = val[ev];
            const std::int64_t c = flat / hw;
            const std::int64_t rem = flat - c * hw;
            const std::int64_t iy = rem / g.in_w;
            const std::int64_t ix = rem - iy * g.in_w;
            for (std::int64_t ky = 0; ky < k; ++ky) {
              const std::int64_t ty = iy + pad - ky;
              if (ty < 0 || ty % s != 0) continue;
              const std::int64_t oy = ty / s;
              if (oy >= ho) continue;
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t tx = ix + pad - kx;
                if (tx < 0 || tx % s != 0) continue;
                const std::int64_t ox = tx / s;
                if (ox >= wo) continue;
                float* drow = dwt + ((c * k + ky) * k + kx) * ow;
                const float* grow = got + (oy * wo + ox) * o_c + ob;
                axpy<V, F>(ow, v, grow, drow);
              }
            }
          }
          transpose_tiled<V, true>(dwt, ckk, ow, grad_weight + ob * ckk,
                                   tile);
        });
  }
}

template <bool V, bool F>
void conv2d_backward_input(const ConvGeometry& g, const SpikeCsr& gcsr,
                           const float* weight, std::int64_t out_c,
                           float* grad_in, Workspace& ws) {
  const std::int64_t ckk = g.col_rows();
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t in_c = g.in_c;
  (void)out_c;

  auto scope = ws.scope();
  // Integer scratch is carved from the float arena (same size/alignment).
  std::int32_t* cnts = reinterpret_cast<std::int32_t*>(
      scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* pos = reinterpret_cast<std::int32_t*>(
      scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* active = reinterpret_cast<std::int32_t*>(
      scope.floats(static_cast<std::size_t>(howo)));
  std::int32_t* astart = reinterpret_cast<std::int32_t*>(
      scope.floats(static_cast<std::size_t>(howo)));

  for (std::int64_t img = 0; img < gcsr.rows(); ++img) {
    const std::int32_t* idx = gcsr.row_indices(img);
    const float* val = gcsr.row_values(img);
    const std::int64_t cnt = gcsr.row_nnz(img);
    if (cnt == 0) continue;  // dense would add only exact zeros here
    auto img_scope = ws.scope();
    // Bucket the gradient events by output column p (counting sort keeps
    // the within-column order ascending in o — gemm_tn's reduction order).
    std::memset(cnts, 0, static_cast<std::size_t>(howo) * sizeof(std::int32_t));
    for (std::int64_t ev = 0; ev < cnt; ++ev) ++cnts[idx[ev] % howo];
    std::int64_t na = 0;
    std::int32_t run = 0;
    for (std::int64_t p = 0; p < howo; ++p) {
      if (cnts[p] == 0) continue;
      active[na] = static_cast<std::int32_t>(p);
      astart[na] = run;
      pos[p] = run;
      run += cnts[p];
      ++na;
    }
    std::int32_t* bo = reinterpret_cast<std::int32_t*>(
        img_scope.floats(static_cast<std::size_t>(cnt)));
    float* bg = img_scope.floats(static_cast<std::size_t>(cnt));
    for (std::int64_t ev = 0; ev < cnt; ++ev) {
      const std::int64_t flat = idx[ev];
      const std::int64_t p = flat % howo;
      const std::int32_t at = pos[p]++;
      bo[at] = static_cast<std::int32_t>(flat / howo);
      bg[at] = val[ev];
    }
    // Phase 1: materialize only the active columns of the (CKK, HoWo)
    // gradient-column matrix, compacted to (na, CKK). Each column is an
    // independent output — safe to parallelize.
    float* dcols = img_scope.floats(static_cast<std::size_t>(na * ckk));
    parallel_for_range(
        0, static_cast<std::size_t>(na), [&](std::size_t jb, std::size_t je) {
          for (std::size_t j = jb; j < je; ++j) {
            float* buf = dcols + static_cast<std::int64_t>(j) * ckk;
            std::memset(buf, 0, static_cast<std::size_t>(ckk) * sizeof(float));
            const std::int32_t b0 = astart[j];
            const std::int32_t b1 = b0 + cnts[active[j]];
            for (std::int32_t t = b0; t < b1; ++t) {
              const float* wrow =
                  weight + static_cast<std::int64_t>(bo[t]) * ckk;
              axpy<V, F>(ckk, bg[t], wrow, buf);
            }
          }
        });
    // Phase 2: scatter in col2im's exact order — kernel row r ascending,
    // then column p ascending — restricted to the active columns (the
    // inactive ones hold exact +0 in the dense path). Channels own
    // disjoint planes, so the channel partition is deterministic.
    float* gimg = grad_in + img * in_c * hw;
    parallel_for_range(
        0, static_cast<std::size_t>(in_c), [&](std::size_t cb, std::size_t ce) {
          for (std::size_t c = cb; c < ce; ++c) {
            float* plane = gimg + static_cast<std::int64_t>(c) * hw;
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t r =
                    (static_cast<std::int64_t>(c) * k + ky) * k + kx;
                for (std::int64_t j = 0; j < na; ++j) {
                  const std::int64_t p = active[j];
                  const std::int64_t oy = p / wo, ox = p % wo;
                  const std::int64_t iy = oy * s - pad + ky;
                  if (iy < 0 || iy >= g.in_h) continue;
                  const std::int64_t ix = ox * s - pad + kx;
                  if (ix < 0 || ix >= g.in_w) continue;
                  plane[iy * g.in_w + ix] += dcols[j * ckk + r];
                }
              }
            }
          }
        });
  }
}

template <bool V, bool F>
void linear_backward_weight(const SpikeCsr& csr, const float* grad_out,
                            std::int64_t out_f, float* grad_weight,
                            Workspace& ws) {
  const std::int64_t in_f = csr.row_len();
  const std::int64_t tile = kernel_config().transpose_tile;
  auto scope = ws.scope();
  // Accumulate through a transposed (in_f, out_f) view so each event is a
  // unit-stride axpy of length O. gemm_tn accumulates directly onto C in
  // ascending batch-row order; the transposes are element-exact copies, so
  // accumulating onto the transposed copy in the same row order matches.
  float* wgt = scope.floats(static_cast<std::size_t>(in_f * out_f));
  transpose_tiled<V, false>(grad_weight, out_f, in_f, wgt, tile);
  const std::int64_t rows = csr.rows();
  parallel_for_range(
      0, static_cast<std::size_t>(out_f), [&](std::size_t b, std::size_t e) {
        const std::int64_t ob = static_cast<std::int64_t>(b);
        const std::int64_t oe = static_cast<std::int64_t>(e);
        for (std::int64_t row = 0; row < rows; ++row) {
          const float* gorow = grad_out + row * out_f;
          const std::int32_t* idx = csr.row_indices(row);
          const float* val = csr.row_values(row);
          const std::int64_t cnt = csr.row_nnz(row);
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            float* wrow = wgt + static_cast<std::int64_t>(idx[ev]) * out_f;
            axpy<V, F>(oe - ob, val[ev], gorow + ob, wrow + ob);
          }
        }
      });
  transpose_tiled<V, false>(wgt, in_f, out_f, grad_weight, tile);
}

template <bool V, bool F>
void linear_backward_input(const SpikeCsr& gcsr, const float* weight,
                           std::int64_t in_f, float* grad_in) {
  parallel_for_range(
      0, static_cast<std::size_t>(gcsr.rows()),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t row = b; row < e; ++row) {
          float* girow = grad_in + static_cast<std::int64_t>(row) * in_f;
          const std::int32_t* idx =
              gcsr.row_indices(static_cast<std::int64_t>(row));
          const float* val = gcsr.row_values(static_cast<std::int64_t>(row));
          const std::int64_t cnt = gcsr.row_nnz(static_cast<std::int64_t>(row));
          for (std::int64_t ev = 0; ev < cnt; ++ev) {
            const float* wrow =
                weight + static_cast<std::int64_t>(idx[ev]) * in_f;
            axpy<V, F>(in_f, val[ev], wrow, girow);
          }
        }
      });
}

template <bool V, bool F>
void depthwise_backward_weight(const ConvGeometry& g, const SpikeCsr& csr,
                               const float* grad_out, float* grad_weight) {
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t howo = ho * wo;
  const std::int64_t hw = g.in_h * g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t c_ = g.in_c;

  for (std::int64_t img = 0; img < csr.rows(); ++img) {
    const std::int32_t* idx = csr.row_indices(img);
    const float* val = csr.row_values(img);
    const std::int64_t cnt = csr.row_nnz(img);
    for (std::int64_t e = 0; e < cnt; ++e) {
      const std::int64_t flat = idx[e];
      const float v = val[e];
      const std::int64_t c = flat / hw;
      const std::int64_t rem = flat - c * hw;
      const std::int64_t iy = rem / g.in_w;
      const std::int64_t ix = rem - iy * g.in_w;
      const float* gop = grad_out + (img * c_ + c) * howo;
      float* gw = grad_weight + c * k * k;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          gw[ky * k + kx] += gop[oy * wo + ox] * v;
        }
      }
    }
  }
}

// ---- Packed-spike term kernels (bodies: see spike_packed.h) ----------------

template <bool V, bool F>
std::int64_t packed_conv2d_term(const ConvGeometry& g, std::int64_t src_c,
                                const std::uint64_t* words,
                                const std::int32_t* chrow, const float* wt,
                                std::int64_t out_c, float* outt) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = (numel + 63) >> 6;
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;  // popcount-guided: skip 64 positions at once
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row =
          chrow != nullptr ? static_cast<std::int64_t>(chrow[c]) : c;
      if (row < 0) continue;
      // Same tap walk as spike_conv2d_forward: each valid (ky, kx) is one
      // contiguous out_c-length accumulation of a transposed weight row —
      // pure adds (binary spikes), so every SIMD level is bit-equal.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const float* wrow = wt + ((row * k + ky) * k + kx) * out_c;
          float* orow = outt + (oy * wo + ox) * out_c;
          add_rows<V>(out_c, wrow, orow);
          synops += out_c;
        }
      }
    }
  }
  return synops;
}

template <bool V, bool F>
std::int64_t packed_depthwise_term(const ConvGeometry& g, std::int64_t src_c,
                                   const std::uint64_t* words,
                                   const std::int32_t* chrow,
                                   const float* weight, float* acc) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = (numel + 63) >> 6;
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row =
          chrow != nullptr ? static_cast<std::int64_t>(chrow[c]) : c;
      if (row < 0) continue;
      const float* ker = weight + row * k * k;
      float* oplane = acc + row * ho * wo;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += ker[ky * k + kx];
          ++synops;
        }
      }
    }
  }
  return synops;
}

// ---- Inference epilogue rows (contracts: tensor/epilogue.h) ----------------

template <bool V, bool F>
std::int64_t lif_row(std::int64_t p, const float* acc, int use_scale,
                     float scale, float bias, float beta, float theta,
                     float* m, float* dst, std::uint64_t* wbits,
                     std::int64_t bit0) {
  std::int64_t j = 0;
  std::int64_t spk = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 sv = _mm256_set1_ps(scale);
    const __m256 bv = _mm256_set1_ps(bias);
    const __m256 betav = _mm256_set1_ps(beta);
    const __m256 thetav = _mm256_set1_ps(theta);
    const __m256 one = _mm256_set1_ps(1.f);
    const __m256 zero = _mm256_setzero_ps();
    for (; j + 8 <= p; j += 8) {
      __m256 a = _mm256_loadu_ps(acc + j);
      if (use_scale != 0) a = _mm256_mul_ps(sv, a);
      const __m256 in = _mm256_add_ps(a, bv);
      const __m256 mv = _mm256_loadu_ps(m + j);
      __m256 vt;
      if constexpr (F) {
        vt = _mm256_fmadd_ps(betav, mv, in);
      } else {
        vt = _mm256_add_ps(_mm256_mul_ps(betav, mv), in);
      }
      const __m256 dist = _mm256_sub_ps(vt, thetav);
      // dist >= 0 (ordered: NaN never spikes, matching the scalar compare).
      const __m256 ge = _mm256_cmp_ps(dist, zero, _CMP_GE_OQ);
      _mm256_storeu_ps(dst + j, _mm256_and_ps(ge, one));
      // Soft reset on spike lanes, plain integrate on the rest.
      _mm256_storeu_ps(m + j, _mm256_blendv_ps(vt, dist, ge));
      const unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(ge));
      spk += std::popcount(mask);
      if (mask != 0) {
        const std::int64_t bit = bit0 + j;
        const std::int64_t wrd = bit >> 6;
        const int off = static_cast<int>(bit & 63);
        wbits[wrd] |= static_cast<std::uint64_t>(mask) << off;
        if (off > 56) {
          // The 8 lanes straddle a word boundary; the caller guarantees
          // bit0 + p - 1 is in range, so wrd + 1 exists.
          wbits[wrd + 1] |= static_cast<std::uint64_t>(mask) >> (64 - off);
        }
      }
    }
  }
#endif
  for (; j < p; ++j) {
    const float a0 = acc[j];
    const float in = (use_scale != 0 ? scale * a0 : a0) + bias;
    const float vt = beta * m[j] + in;
    const float dist = vt - theta;
    if (dist >= 0.f) {
      dst[j] = 1.f;
      m[j] = dist;
      const std::int64_t bit = bit0 + j;
      wbits[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      ++spk;
    } else {
      dst[j] = 0.f;
      m[j] = vt;
    }
  }
  return spk;
}

template <bool V, bool F>
void affine_row(std::int64_t p, const float* acc, int use_scale, float scale,
                float bias, int relu, float* dst) {
  std::int64_t j = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 sv = _mm256_set1_ps(scale);
    const __m256 bv = _mm256_set1_ps(bias);
    const __m256 zero = _mm256_setzero_ps();
    for (; j + 8 <= p; j += 8) {
      __m256 a = _mm256_loadu_ps(acc + j);
      if (use_scale != 0) a = _mm256_mul_ps(sv, a);
      __m256 in = _mm256_add_ps(a, bv);
      // max_ps(in, 0) == (in > 0 ? in : 0) lane-wise, including the NaN
      // and signed-zero cases (NaN compares false -> second operand).
      if (relu != 0) in = _mm256_max_ps(in, zero);
      _mm256_storeu_ps(dst + j, in);
    }
  }
#endif
  for (; j < p; ++j) {
    const float a0 = acc[j];
    const float in = (use_scale != 0 ? scale * a0 : a0) + bias;
    dst[j] = relu != 0 ? (in > 0.f ? in : 0.f) : in;
  }
}

/// One table per (V, F) instantiation; the three accessors in simd_ops.h
/// each wrap one of these in a function-local static.
template <bool V, bool F>
inline simd::SpikeKernels make_spike_table() {
  return simd::SpikeKernels{
      &conv2d_forward<V, F>,
      &linear_forward<V, F>,
      &depthwise_forward<V, F>,
      &conv2d_backward_weight<V, F>,
      &conv2d_backward_input<V, F>,
      &linear_backward_weight<V, F>,
      &linear_backward_input<V, F>,
      &depthwise_backward_weight<V, F>,
      &transpose_tiled<V, false>,
      &transpose_tiled<V, true>,
      &count_nonzero_impl<V>,
      &packed_conv2d_term<V, F>,
      &packed_depthwise_term<V, F>,
      &lif_row<V, F>,
      &affine_row<V, F>,
  };
}

}  // namespace snnskip::spike_impl
