#pragma once
// SIMD-dispatched inference epilogue rows (ISSUE 9). The compiled engine
// (src/infer) fuses BN folding + bias + LIF/PLIF (or ReLU) into one pass
// over each accumulator panel; these are the unit-stride row primitives
// behind that pass, vectorized per the active SIMD level. The engine only
// calls them for contiguous panels (plane stride 1) — its strided layouts
// (the packed-conv per-image panel) keep the scalar loop in engine.cpp.
//
// Bitwise contract: the Scalar and Avx2 variants produce identical bits
// (same unfused multiply/add sequence per element, lane-exact compares);
// Avx2Fma fuses beta*m + in and is opt-in only.

#include <cstdint>

namespace snnskip {

/// Fused LIF epilogue over one contiguous row of `p` accumulators:
///   in  = (use_scale ? scale * acc[j] : acc[j]) + bias
///   vt  = beta * m[j] + in
///   spike iff vt - theta >= 0; dst[j] = spike ? 1 : 0;
///   m[j] = spike ? vt - theta : vt (soft reset)
/// Sets bit (bit0 + j) of `wbits` for each spike and returns the spike
/// count. The caller guarantees wbits has capacity for bit0 + p bits.
/// No refractory handling — the engine falls back to its scalar loop when
/// a refractory counter is present.
std::int64_t lif_epilogue_row(std::int64_t p, const float* acc, int use_scale,
                              float scale, float bias, float beta, float theta,
                              float* m, float* dst, std::uint64_t* wbits,
                              std::int64_t bit0);

/// Fused affine(+ReLU) epilogue over one contiguous row:
///   in = (use_scale ? scale * acc[j] : acc[j]) + bias
///   dst[j] = relu ? (in > 0 ? in : 0) : in
void affine_epilogue_row(std::int64_t p, const float* acc, int use_scale,
                         float scale, float bias, int relu, float* dst);

}  // namespace snnskip
