#pragma once
// Internal per-kernel function-pointer tables behind the runtime SIMD
// dispatch (ISSUE 9). Public code never includes this; the public entry
// points in gemm.h / spike_kernels.h / spike_packed.h / epilogue.h pick a
// table from active_simd() + kernel_config() and jump through it.
//
// Layout: one table per SimdLevel per subsystem. The AVX2 tables are
// defined in the -mavx2 -mfma translation units (gemm_avx2.cpp,
// simd_avx2.cpp) and only when SNNSKIP_HAVE_AVX2 is set; otherwise the
// accessors alias the scalar tables so dispatch never needs a null check.

#include <cstdint>

#include "tensor/cpu_features.h"
#include "tensor/im2col.h"
#include "tensor/spike_csr.h"
#include "tensor/workspace.h"

namespace snnskip::simd {

// ---- GEMM ------------------------------------------------------------------

/// Legal register tiles for the GEMM microkernel. Nr is a multiple of 8 so
/// every tile has an AVX2 twin; Mr*Nr/8 + Nr/8 + 1 stays within 16 YMM
/// registers. Index 0 is the historic default.
struct GemmTile {
  int mr;
  int nr;
};
inline constexpr GemmTile kGemmTiles[] = {
    {4, 16}, {6, 16}, {8, 8}, {4, 8}, {6, 8}};
inline constexpr int kNumGemmTiles =
    static_cast<int>(sizeof(kGemmTiles) / sizeof(kGemmTiles[0]));

/// Index of (mr, nr) in kGemmTiles, or -1.
inline int gemm_tile_index(int mr, int nr) {
  for (int i = 0; i < kNumGemmTiles; ++i) {
    if (kGemmTiles[i].mr == mr && kGemmTiles[i].nr == nr) return i;
  }
  return -1;
}

/// Legal GEMM K-panel lengths (cache blocks) the tuner may pick.
inline constexpr int kGemmKcChoices[] = {64, 128, 256, 512};
inline constexpr int kNumGemmKcChoices =
    static_cast<int>(sizeof(kGemmKcChoices) / sizeof(kGemmKcChoices[0]));

/// Legal transpose tile edges.
inline constexpr int kTransposeTileChoices[] = {16, 32, 64, 128};
inline constexpr int kNumTransposeTileChoices = static_cast<int>(
    sizeof(kTransposeTileChoices) / sizeof(kTransposeTileChoices[0]));

using GemmDriverFn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                              float alpha, const float* a, const float* b,
                              float beta, float* c, std::int64_t kc);
using GemmNtFn = void (*)(std::int64_t m, std::int64_t n, std::int64_t k,
                          float alpha, const float* a, const float* b,
                          float beta, float* c);

struct GemmKernels {
  GemmDriverFn nn[kNumGemmTiles];
  GemmDriverFn tn[kNumGemmTiles];
  GemmNtFn nt;
};

const GemmKernels* gemm_kernels_scalar();
const GemmKernels* gemm_kernels_avx2();
const GemmKernels* gemm_kernels_avx2fma();

inline const GemmKernels* gemm_kernels_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::Avx2: return gemm_kernels_avx2();
    case SimdLevel::Avx2Fma: return gemm_kernels_avx2fma();
    case SimdLevel::Scalar: break;
  }
  return gemm_kernels_scalar();
}

// ---- Spike / packed / transpose / epilogue kernels -------------------------

struct SpikeKernels {
  void (*conv2d_forward)(const ConvGeometry&, const SpikeCsr&, const float*,
                         const float*, std::int64_t, float*, Workspace&);
  void (*linear_forward)(const SpikeCsr&, const float*, const float*,
                         std::int64_t, float*, Workspace&);
  void (*depthwise_forward)(const ConvGeometry&, const SpikeCsr&,
                            const float*, const float*, float*);
  void (*conv2d_backward_weight)(const ConvGeometry&, const SpikeCsr&,
                                 const float*, std::int64_t, float*,
                                 Workspace&);
  void (*conv2d_backward_input)(const ConvGeometry&, const SpikeCsr&,
                                const float*, std::int64_t, float*,
                                Workspace&);
  void (*linear_backward_weight)(const SpikeCsr&, const float*, std::int64_t,
                                 float*, Workspace&);
  void (*linear_backward_input)(const SpikeCsr&, const float*, std::int64_t,
                                float*);
  void (*depthwise_backward_weight)(const ConvGeometry&, const SpikeCsr&,
                                    const float*, float*);
  void (*transpose)(const float*, std::int64_t, std::int64_t, float*,
                    std::int64_t tile);
  void (*transpose_add)(const float*, std::int64_t, std::int64_t, float*,
                        std::int64_t tile);
  std::int64_t (*count_nonzero)(const float*, std::int64_t);
  std::int64_t (*packed_conv2d_term)(const ConvGeometry&, std::int64_t,
                                     const std::uint64_t*,
                                     const std::int32_t*, const float*,
                                     std::int64_t, float*);
  std::int64_t (*packed_depthwise_term)(const ConvGeometry&, std::int64_t,
                                        const std::uint64_t*,
                                        const std::int32_t*, const float*,
                                        float*);
  std::int64_t (*lif_row)(std::int64_t p, const float* acc, int use_scale,
                          float scale, float bias, float beta, float theta,
                          float* m, float* dst, std::uint64_t* wbits,
                          std::int64_t bit0);
  void (*affine_row)(std::int64_t p, const float* acc, int use_scale,
                     float scale, float bias, int relu, float* dst);
};

const SpikeKernels* spike_kernels_scalar();
const SpikeKernels* spike_kernels_avx2();
const SpikeKernels* spike_kernels_avx2fma();

inline const SpikeKernels* spike_kernels_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::Avx2: return spike_kernels_avx2();
    case SimdLevel::Avx2Fma: return spike_kernels_avx2fma();
    case SimdLevel::Scalar: break;
  }
  return spike_kernels_scalar();
}

inline const SpikeKernels& spike_ops() {
  return *spike_kernels_for(active_simd());
}

// ---- Int8 quantized kernels (ISSUE 10) -------------------------------------
// One table: the int8 kernels are integer (bit-identical at every level),
// so there is no separate FMA variant — Avx2 and Avx2Fma share the AVX2
// instantiation.

struct QuantKernels {
  void (*quantize_row)(std::int64_t n, const float* src, float inv,
                       std::int8_t* dst);
  void (*i32_to_f32)(std::int64_t n, const std::int32_t* src, float* dst);
  void (*gemm_s8s32_nt)(std::int64_t m, std::int64_t n, std::int64_t k,
                        const std::int8_t* a, const std::int8_t* b,
                        std::int32_t* c);
  std::int64_t (*packed_conv2d_term_i8)(const ConvGeometry&, std::int64_t,
                                        const std::uint64_t*,
                                        const std::int32_t*,
                                        const std::int8_t*, std::int64_t,
                                        std::int32_t*);
  std::int64_t (*packed_depthwise_term_i8)(const ConvGeometry&, std::int64_t,
                                           const std::uint64_t*,
                                           const std::int32_t*,
                                           const std::int8_t*, std::int32_t*);
};

const QuantKernels* quant_kernels_scalar();
const QuantKernels* quant_kernels_avx2();

inline const QuantKernels* quant_kernels_for(SimdLevel level) {
  switch (level) {
    case SimdLevel::Avx2:
    case SimdLevel::Avx2Fma: return quant_kernels_avx2();
    case SimdLevel::Scalar: break;
  }
  return quant_kernels_scalar();
}

inline const QuantKernels& quant_ops() {
  return *quant_kernels_for(active_simd());
}

}  // namespace snnskip::simd
