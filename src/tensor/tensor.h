#pragma once
// Dense float32 tensor with value semantics.
//
// Design (DESIGN.md §5.2):
//  * contiguous row-major storage, NCHW layout for activations;
//  * deep-copy on copy, O(1) move — candidate topologies in the search
//    clone weights explicitly via the WeightStore, so accidental sharing
//    is a bug we choose to make impossible rather than cheap;
//  * element access through data()/span for kernels, checked at() for
//    tests and debugging.

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace snnskip {

class Tensor {
 public:
  /// Empty (0-element, shapeless) tensor.
  Tensor() = default;
  /// Zero-initialized tensor of `shape`.
  explicit Tensor(Shape shape);
  /// Tensor filled with `value`.
  Tensor(Shape shape, float value);
  /// Tensor adopting the given flat data (size must match shape.numel()).
  Tensor(Shape shape, std::vector<float> data);

  // --- factories ---------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.f, float hi = 1.f);
  /// I.i.d. Bernoulli(p) entries in {0, 1}.
  static Tensor bernoulli(Shape shape, Rng& rng, float p);

  // --- observers ---------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Bounds-checked multi-index access (up to 4-D); for tests/assertions.
  float at(std::initializer_list<std::int64_t> idx) const;
  float& at(std::initializer_list<std::int64_t> idx);

  float operator[](std::size_t i) const { return data_[i]; }
  float& operator[](std::size_t i) { return data_[i]; }

  // --- shape manipulation (all preserve data order) ----------------------
  /// Same data, new shape; numel must match.
  Tensor reshape(Shape new_shape) const;

  // --- in-place arithmetic ------------------------------------------------
  Tensor& fill(float v);
  Tensor& add_(const Tensor& other);               ///< this += other
  Tensor& sub_(const Tensor& other);               ///< this -= other
  Tensor& mul_(float s);                           ///< this *= s
  Tensor& axpy_(float alpha, const Tensor& x);     ///< this += alpha * x
  Tensor& hadamard_(const Tensor& other);          ///< this *= other (eltwise)
  Tensor& clamp_(float lo, float hi);

  // --- reductions ---------------------------------------------------------
  double sum() const;
  double mean() const;
  float max_value() const;
  float min_value() const;
  /// Fraction of non-zero entries — the firing rate of a spike tensor.
  double nonzero_fraction() const;

  /// Frobenius-style max |a-b| difference; for tests.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  std::string str_stats() const;  ///< "shape=[...] mean=.. min=.. max=.."

 private:
  std::size_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace snnskip
