#pragma once
// Tunable kernel schedule constants + the per-machine tuning profile
// (ISSUE 9).
//
// The hot kernels used to run on hand-picked magic numbers (sparse
// threshold 0.25, 4x16 GEMM tile, K panel 128, 32x32 transpose tile,
// 8 shards) baked in at the use sites. They now live in one KernelConfig
// consulted by the dispatch layer, resolved once on first use:
//
//   defaults  <-  tuning profile (SNNSKIP_TUNE_PROFILE=path.json)
//             <-  environment overrides (SNNSKIP_SPARSE_THRESHOLD,
//                 SNNSKIP_INFER_THRESHOLD — an explicit env var always
//                 beats the profile)
//
// A tuning profile is the JSON artifact snnskip-tune writes: versioned
// ("snnskip-tune-v1"), keyed by the machine's cpu_signature(), and sealed
// with a CRC32 over the canonical serialization of the semantic fields.
// A profile that fails to parse, fails the CRC (torn write, bit rot), or
// names a different CPU is REJECTED with a warning and the defaults stand
// — a corrupt profile can cost performance, never correctness.
//
// Bitwise-determinism note: every knob here either preserves per-output-
// element accumulation order (gemm_kc only moves the K-panel boundaries,
// the per-element product sequence is unchanged; transpose_tile reorders
// exact copies) or is a dispatch policy whose chosen kernel is itself
// bit-exact against the alternative (sparse/infer thresholds pick between
// paths that agree bit-for-bit; shards only applies where the fixed-shard
// contract already guarantees shard-count invariance). Changing gemm_tile
// regroups which output elements share the all-zero spike-skip test; the
// skip is an exact no-op for +0 accumulators (DESIGN.md §5e), so results
// are unchanged on the training paths, which start all accumulators at +0.

#include <string>

namespace snnskip {

struct KernelConfig {
  /// Index into kGemmTiles (simd_ops.h): the (Mr, Nr) register tile the
  /// GEMM drivers block on. Index 0 is the historic 4x16.
  int gemm_tile = 0;
  /// GEMM K-panel (cache block) length.
  int gemm_kc = 128;
  /// Cache-blocked transpose tile edge.
  int transpose_tile = 32;
  /// Density cutoff for the training-graph sparse dispatch (SparseExec).
  float sparse_threshold = 0.25f;
  /// Density cutoff for the inference engine dispatch (ExecOptions
  /// default).
  float infer_threshold = 0.25f;
  /// Default shard count for deterministic data-parallel training (used
  /// only when DataParallelConfig.shards == 0).
  int shards = 8;
};

/// The process-wide resolved configuration (defaults <- profile <- env).
/// Cheap: one atomic load after first resolution.
const KernelConfig& kernel_config();

/// Replace the active configuration (tests, autotuner measurement loops).
/// Invalid fields are clamped to the defaults. Takes effect on the next
/// kernel call; does not re-read the environment or profile.
void set_kernel_config(const KernelConfig& cfg);

/// Identity of the loaded tuning profile for bench provenance:
/// "default" when none was loaded (or it was rejected), else the
/// profile's "id" field. check_bench_regression.py refuses to compare
/// rows across different profile ids.
const std::string& kernel_config_profile_id();

// ---- Tuning profile serialization ----------------------------------------

/// What snnskip-tune persists. `simd` is "auto"/"scalar"/"avx2"/"avx2fma";
/// `id` is a short human-readable label recorded into bench rows.
struct TuningProfile {
  std::string id = "tuned";
  std::string cpu_signature;
  std::string simd = "auto";
  KernelConfig config;
};

/// Canonical JSON for the profile, CRC32-sealed. parse_tuning_profile
/// re-serializes the parsed fields and checks the CRC against the stored
/// one, so any torn/edited byte that survives parsing still fails closed.
std::string serialize_tuning_profile(const TuningProfile& p);

/// Parse + validate (format version, required keys, legal tile, CRC).
/// Returns false with a reason in *err; does NOT check cpu_signature —
/// that policy belongs to the loader (and to tests).
bool parse_tuning_profile(const std::string& text, TuningProfile* out,
                          std::string* err);

}  // namespace snnskip
