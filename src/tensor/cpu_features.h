#pragma once
// Runtime CPU-feature detection and the process-wide SIMD level (ISSUE 9).
//
// The hot kernels (gemm, spike event kernels, packed-term kernels, the
// inference epilogues) ship in up to three variants per function:
//
//   Scalar   the portable register-blocked loops every x86-64 can run
//   Avx2     8-wide AVX2 with UNFUSED multiply+add, compiled with
//            -ffp-contract=off — bit-identical to the scalar path, because
//            each output element still accumulates the same products in
//            the same order and IEEE-754 ops are deterministic per element
//   Avx2Fma  AVX2 with fused multiply-add. FMA single-rounds a*b+c, so
//            results differ from scalar in the last ulp; it is therefore
//            NEVER selected automatically — only an explicit
//            SNNSKIP_SIMD=avx2fma (or tuning profile) opts in, and the
//            deterministic training contracts (DESIGN.md §5e/§5f) are
//            documented as scalar/avx2-only.
//
// Selection happens once: SNNSKIP_SIMD=auto|scalar|avx2|avx2fma is
// intersected with what the CPU supports (CPUID) and what the build
// compiled (SNNSKIP_HAVE_AVX2; the AVX2 translation units are only built
// when the toolchain accepts -mavx2 -mfma). "auto" resolves to Avx2 when
// available, never Avx2Fma. Per-kernel function-pointer tables index on
// the resolved level (see simd_ops.h); set_active_simd() exists for tests
// and the autotuner.

#include <string>

namespace snnskip {

enum class SimdLevel : int { Scalar = 0, Avx2 = 1, Avx2Fma = 2 };

/// "scalar" / "avx2" / "avx2fma".
const char* to_string(SimdLevel level);

/// Parse "scalar"/"avx2"/"avx2fma" (case-sensitive, matching to_string).
/// "auto" and anything unrecognized return false.
bool parse_simd_level(const std::string& s, SimdLevel* out);

/// CPUID says this processor can execute AVX2 (and FMA) instructions.
bool cpu_has_avx2();
bool cpu_has_fma();

/// The build compiled the -mavx2 -mfma translation units.
bool simd_avx2_compiled();

/// Highest level this process could run: the intersection of CPU support
/// and build support. Scalar everywhere else.
SimdLevel max_simd_level();

/// The level the dispatch tables use, resolved once on first use from
/// SNNSKIP_SIMD (or the tuning profile's "simd" field when the variable is
/// unset), clamped to max_simd_level(). auto -> Avx2 when available.
SimdLevel active_simd();

/// Force a level (clamped to max_simd_level()); returns what was applied.
/// Used by tests and the autotuner; takes effect on the next kernel call.
SimdLevel set_active_simd(SimdLevel level);

/// Stable identity of this machine for keying tuning profiles: the CPUID
/// brand string plus the feature bits that change kernel selection, e.g.
/// "Intel(R) Xeon(R) CPU @ 2.10GHz|avx2=1|fma=1".
std::string cpu_signature();

}  // namespace snnskip
