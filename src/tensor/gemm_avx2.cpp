// AVX2 GEMM tables (ISSUE 9). This translation unit is compiled with
// -mavx2 -mfma -ffp-contract=off (see snnskip_simd_kernel_sources in
// src/CMakeLists.txt) and only added to the build when the toolchain
// supports those flags; dispatch reaches it through simd_ops.h tables, so
// a baseline x86-64 binary never executes these instructions unless
// CPUID reported AVX2.
//
// fp-contract is off so the UNFUSED (Avx2) table stays bit-identical to
// scalar — the compiler must not quietly fuse our mul+add back into FMA.
// The Avx2Fma table uses explicit _mm256_fmadd intrinsics instead.

#if !defined(__AVX2__)
#error "gemm_avx2.cpp must be compiled with -mavx2"
#endif

#include "tensor/gemm_impl.h"
#include "tensor/simd_ops.h"

namespace snnskip::simd {

namespace {
using gemm_impl::gemm_nn_entry;
using gemm_impl::gemm_nt_entry;
using gemm_impl::gemm_tn_entry;
}  // namespace

const GemmKernels* gemm_kernels_avx2() {
  static const GemmKernels k = {
      {&gemm_nn_entry<4, 16, true, false>,
       &gemm_nn_entry<6, 16, true, false>,
       &gemm_nn_entry<8, 8, true, false>,
       &gemm_nn_entry<4, 8, true, false>,
       &gemm_nn_entry<6, 8, true, false>},
      {&gemm_tn_entry<4, 16, true, false>,
       &gemm_tn_entry<6, 16, true, false>,
       &gemm_tn_entry<8, 8, true, false>,
       &gemm_tn_entry<4, 8, true, false>,
       &gemm_tn_entry<6, 8, true, false>},
      &gemm_nt_entry<true, false>,
  };
  return &k;
}

const GemmKernels* gemm_kernels_avx2fma() {
  static const GemmKernels k = {
      {&gemm_nn_entry<4, 16, true, true>,
       &gemm_nn_entry<6, 16, true, true>,
       &gemm_nn_entry<8, 8, true, true>,
       &gemm_nn_entry<4, 8, true, true>,
       &gemm_nn_entry<6, 8, true, true>},
      {&gemm_tn_entry<4, 16, true, true>,
       &gemm_tn_entry<6, 16, true, true>,
       &gemm_tn_entry<8, 8, true, true>,
       &gemm_tn_entry<4, 8, true, true>,
       &gemm_tn_entry<6, 8, true, true>},
      &gemm_nt_entry<true, true>,
  };
  return &k;
}

}  // namespace snnskip::simd
