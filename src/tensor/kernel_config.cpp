#include "tensor/kernel_config.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "tensor/cpu_features.h"
#include "tensor/simd_ops.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/runtime_env.h"

namespace snnskip {

namespace {

constexpr const char* kFormat = "snnskip-tune-v1";

std::string fmt_float(float v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

// Everything up to (not including) the crc32 field — the canonical bytes
// the CRC seals. parse re-serializes through this same function, so the
// check is immune to whitespace/field-order edits only if they do not
// change the semantic fields; any change that does flips the CRC.
std::string profile_body(const TuningProfile& p) {
  const simd::GemmTile tile = simd::kGemmTiles[p.config.gemm_tile];
  std::string s = "{\n";
  s += "  \"format\": \"";
  s += kFormat;
  s += "\",\n";
  s += "  \"id\": \"" + p.id + "\",\n";
  s += "  \"cpu_signature\": \"" + p.cpu_signature + "\",\n";
  s += "  \"simd\": \"" + p.simd + "\",\n";
  s += "  \"gemm_mr\": " + std::to_string(tile.mr) + ",\n";
  s += "  \"gemm_nr\": " + std::to_string(tile.nr) + ",\n";
  s += "  \"gemm_kc\": " + std::to_string(p.config.gemm_kc) + ",\n";
  s += "  \"transpose_tile\": " + std::to_string(p.config.transpose_tile) +
       ",\n";
  s += "  \"sparse_threshold\": " + fmt_float(p.config.sparse_threshold) +
       ",\n";
  s += "  \"infer_threshold\": " + fmt_float(p.config.infer_threshold) +
       ",\n";
  s += "  \"shards\": " + std::to_string(p.config.shards);
  return s;
}

// Flat-object field scan. The profile is machine-written JSON with no
// nesting; strings must be escape-free (ids and CPU signatures are).
bool find_raw_field(const std::string& text, const std::string& key,
                    std::string* out, bool* is_string) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (pos >= text.size()) return false;
  if (text[pos] == '"') {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = text.substr(pos + 1, end - pos - 1);
    if (out->find('\\') != std::string::npos) return false;
    *is_string = true;
    return true;
  }
  std::size_t end = pos;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n') {
    ++end;
  }
  *out = text.substr(pos, end - pos);
  while (!out->empty() &&
         std::isspace(static_cast<unsigned char>(out->back()))) {
    out->pop_back();
  }
  *is_string = false;
  return !out->empty();
}

bool get_string_field(const std::string& text, const std::string& key,
                      std::string* out) {
  bool is_string = false;
  return find_raw_field(text, key, out, &is_string) && is_string;
}

bool get_number_field(const std::string& text, const std::string& key,
                      double* out) {
  std::string raw;
  bool is_string = false;
  if (!find_raw_field(text, key, &raw, &is_string) || is_string) return false;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::string serialize_tuning_profile(const TuningProfile& p) {
  const std::string body = profile_body(p);
  const std::uint32_t crc = crc32(body.data(), body.size());
  return body + ",\n  \"crc32\": " + std::to_string(crc) + "\n}\n";
}

bool parse_tuning_profile(const std::string& text, TuningProfile* out,
                          std::string* err) {
  auto fail = [err](const char* why) {
    if (err != nullptr) *err = why;
    return false;
  };
  TuningProfile p;
  std::string format;
  if (!get_string_field(text, "format", &format)) {
    return fail("missing format field");
  }
  if (format != kFormat) return fail("unsupported format version");
  if (!get_string_field(text, "id", &p.id)) return fail("missing id");
  if (!get_string_field(text, "cpu_signature", &p.cpu_signature)) {
    return fail("missing cpu_signature");
  }
  if (!get_string_field(text, "simd", &p.simd)) return fail("missing simd");
  SimdLevel lvl;
  if (p.simd != "auto" && !parse_simd_level(p.simd, &lvl)) {
    return fail("unrecognized simd level");
  }
  double mr = 0, nr = 0, kc = 0, tt = 0, sparse = 0, infer = 0, shards = 0,
         crc = 0;
  if (!get_number_field(text, "gemm_mr", &mr) ||
      !get_number_field(text, "gemm_nr", &nr) ||
      !get_number_field(text, "gemm_kc", &kc) ||
      !get_number_field(text, "transpose_tile", &tt) ||
      !get_number_field(text, "sparse_threshold", &sparse) ||
      !get_number_field(text, "infer_threshold", &infer) ||
      !get_number_field(text, "shards", &shards) ||
      !get_number_field(text, "crc32", &crc)) {
    return fail("missing or malformed field");
  }
  const int tile = simd::gemm_tile_index(static_cast<int>(mr),
                                         static_cast<int>(nr));
  if (tile < 0) return fail("gemm tile outside the legal set");
  p.config.gemm_tile = tile;
  p.config.gemm_kc = static_cast<int>(kc);
  p.config.transpose_tile = static_cast<int>(tt);
  p.config.sparse_threshold = static_cast<float>(sparse);
  p.config.infer_threshold = static_cast<float>(infer);
  p.config.shards = static_cast<int>(shards);
  if (p.config.gemm_kc < 1 || p.config.transpose_tile < 1 ||
      p.config.shards < 1) {
    return fail("non-positive schedule constant");
  }
  if (!(p.config.sparse_threshold > 0.f && p.config.sparse_threshold <= 1.f) ||
      !(p.config.infer_threshold >= 0.f && p.config.infer_threshold <= 1.f)) {
    return fail("threshold out of range");
  }
  const std::string body = profile_body(p);
  const std::uint32_t expect = crc32(body.data(), body.size());
  if (static_cast<std::uint32_t>(crc) != expect) return fail("CRC mismatch");
  *out = p;
  return true;
}

// ---- Process-wide resolution ----------------------------------------------

namespace {

struct Resolved {
  KernelConfig cfg;
  std::string profile_id = "default";
  std::string simd_hint = "auto";
};

Resolved load_resolved() {
  Resolved r;
  const std::string path = env::get_string("SNNSKIP_TUNE_PROFILE", "");
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      SNNSKIP_LOG(Warn) << "SNNSKIP_TUNE_PROFILE: cannot read '" << path
                        << "'; using default kernel constants";
    } else {
      std::ostringstream ss;
      ss << in.rdbuf();
      TuningProfile p;
      std::string err;
      if (!parse_tuning_profile(ss.str(), &p, &err)) {
        SNNSKIP_LOG(Warn) << "SNNSKIP_TUNE_PROFILE: rejected '" << path
                          << "' (" << err
                          << "); using default kernel constants";
      } else if (p.cpu_signature != cpu_signature()) {
        SNNSKIP_LOG(Warn) << "SNNSKIP_TUNE_PROFILE: '" << path
                          << "' is keyed to a different CPU ("
                          << p.cpu_signature
                          << "); using default kernel constants";
      } else {
        r.cfg = p.config;
        r.profile_id = p.id;
        r.simd_hint = p.simd;
        SNNSKIP_LOG(Info) << "loaded tuning profile '" << p.id << "' from "
                          << path;
      }
    }
  }
  // Explicit environment overrides always beat the profile (get_double
  // keeps the incoming value on unset/unparsable/out-of-range).
  r.cfg.sparse_threshold = static_cast<float>(
      env::get_double("SNNSKIP_SPARSE_THRESHOLD",
                      static_cast<double>(r.cfg.sparse_threshold),
                      /*lo=*/1e-9, /*hi=*/1.0));
  r.cfg.infer_threshold = static_cast<float>(env::get_double(
      "SNNSKIP_INFER_THRESHOLD", static_cast<double>(r.cfg.infer_threshold),
      /*lo=*/0.0, /*hi=*/1.0));
  return r;
}

std::atomic<const KernelConfig*> g_cfg{nullptr};
std::string g_profile_id = "default";  // written once under g_load_once
std::string g_simd_hint = "auto";
std::once_flag g_load_once;

void ensure_loaded() {
  std::call_once(g_load_once, [] {
    Resolved r = load_resolved();
    g_profile_id = r.profile_id;
    g_simd_hint = r.simd_hint;
    // Intentionally leaked: readers hold the pointer without refcounting.
    g_cfg.store(new KernelConfig(r.cfg), std::memory_order_release);
  });
}

}  // namespace

namespace detail {
const std::string& tuned_simd_hint() {
  ensure_loaded();
  return g_simd_hint;
}
}  // namespace detail

const KernelConfig& kernel_config() {
  const KernelConfig* p = g_cfg.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  ensure_loaded();
  return *g_cfg.load(std::memory_order_acquire);
}

void set_kernel_config(const KernelConfig& cfg) {
  // Resolve first so a later lazy load cannot clobber this explicit set.
  ensure_loaded();
  KernelConfig c = cfg;
  const KernelConfig defaults;
  if (c.gemm_tile < 0 || c.gemm_tile >= simd::kNumGemmTiles) {
    c.gemm_tile = defaults.gemm_tile;
  }
  if (c.gemm_kc < 1) c.gemm_kc = defaults.gemm_kc;
  if (c.transpose_tile < 1) c.transpose_tile = defaults.transpose_tile;
  if (!(c.sparse_threshold > 0.f && c.sparse_threshold <= 1.f)) {
    c.sparse_threshold = defaults.sparse_threshold;
  }
  if (!(c.infer_threshold >= 0.f && c.infer_threshold <= 1.f)) {
    c.infer_threshold = defaults.infer_threshold;
  }
  if (c.shards < 1) c.shards = defaults.shards;
  // Leaked like the loader's config: set_kernel_config is called a bounded
  // number of times (tests, tuner sweeps), and readers never refcount.
  g_cfg.store(new KernelConfig(c), std::memory_order_release);
}

const std::string& kernel_config_profile_id() {
  ensure_loaded();
  return g_profile_id;
}

}  // namespace snnskip
