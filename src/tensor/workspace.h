#pragma once
// Bump-pointer workspace arena for per-timestep scratch buffers.
//
// The SNN hot loop re-runs every layer T times per forward pass, and the
// im2col lowering used to heap-allocate a full (C*K*K, Ho*Wo) column
// tensor on every call — the timestep loop spent as much time in the
// allocator as in the kernels. The arena hands out scratch from blocks
// that only ever grow (high-water-mark reuse): after the first timestep
// the capacity has stabilized and every further acquire is a pointer
// bump, so steady-state iterations perform zero heap allocations.
//
// Usage is scoped and stack-like; pointers stay valid until the scope
// that produced them is destroyed (growth appends new blocks instead of
// reallocating, so earlier pointers are never invalidated):
//
//   auto scope = Workspace::tls().scope();
//   float* cols = scope.floats(cr * cc);      // uninitialized
//   float* outt = scope.zeroed_floats(n);     // zero-filled
//   ...                                       // released when scope dies
//
// Each thread owns its own arena via Workspace::tls(), so thread-pool
// workers evaluating candidates in parallel never contend or alias.

#include <cstddef>
#include <memory>
#include <vector>

namespace snnskip {

class Workspace {
 public:
  /// Rollback point for stack-like release; obtain via mark().
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t used = 0;
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Uninitialized scratch of `n` floats, 64-byte aligned. Valid until the
  /// enclosing mark is released.
  float* alloc_floats(std::size_t n);

  Mark mark() const { return Mark{cur_block_, cur_off_, used_}; }
  void release(const Mark& m);

  /// Peak simultaneous floats handed out since construction.
  std::size_t high_water() const { return high_water_; }
  /// Total floats reserved across blocks (the arena never shrinks).
  std::size_t capacity() const { return capacity_; }
  /// Cumulative heap allocations performed; stabilizes once the high-water
  /// mark stops growing — the steady-state zero-alloc property tests hook
  /// this counter.
  std::size_t heap_allocs() const { return heap_allocs_; }

  /// RAII frame: releases everything allocated through it on destruction.
  class Scope {
   public:
    explicit Scope(Workspace& ws) : ws_(ws), mark_(ws.mark()) {}
    ~Scope() { ws_.release(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    float* floats(std::size_t n) { return ws_.alloc_floats(n); }
    float* zeroed_floats(std::size_t n);

   private:
    Workspace& ws_;
    Mark mark_;
  };

  Scope scope() { return Scope(*this); }

  /// Per-thread arena; the single entry point for kernel scratch.
  static Workspace& tls();

 private:
  struct Block {
    std::unique_ptr<float[]> data;
    std::size_t cap = 0;
  };

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;
  std::size_t cur_off_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
  std::size_t heap_allocs_ = 0;
};

}  // namespace snnskip
