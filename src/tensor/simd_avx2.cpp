// AVX2 spike/packed/transpose/epilogue tables (ISSUE 9). Compiled with
// -mavx2 -mfma -ffp-contract=off (snnskip_simd_kernel_sources) and only
// when the toolchain supports those flags; fp-contract stays off so the
// UNFUSED (Avx2) table remains bit-identical to scalar. The Avx2Fma table
// fuses via explicit _mm256_fmadd intrinsics only.

#if !defined(__AVX2__)
#error "simd_avx2.cpp must be compiled with -mavx2"
#endif

#include "tensor/simd_ops.h"
#include "tensor/spike_kernels_impl.h"

namespace snnskip::simd {

const SpikeKernels* spike_kernels_avx2() {
  static const SpikeKernels k = spike_impl::make_spike_table<true, false>();
  return &k;
}

const SpikeKernels* spike_kernels_avx2fma() {
  static const SpikeKernels k = spike_impl::make_spike_table<true, true>();
  return &k;
}

}  // namespace snnskip::simd
