#pragma once
// im2col / col2im lowering for 2-D convolution.
//
// For one image of shape (C, H, W), a KxK convolution with stride S and
// padding P produces output (C_out, Ho, Wo). im2col unrolls every receptive
// field into a column of the matrix `cols` with layout
//   (C * K * K, Ho * Wo)
// so that conv = weight(C_out, C*K*K) x cols. col2im is the exact adjoint
// (scatter-add), used for the input-gradient in the backward pass.

#include <cstdint>

namespace snnskip {

struct ConvGeometry {
  std::int64_t in_c, in_h, in_w;
  std::int64_t kernel, stride, pad;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  std::int64_t col_rows() const { return in_c * kernel * kernel; }
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Unroll one image `img` (C*H*W floats) into `cols` (col_rows x col_cols).
void im2col(const ConvGeometry& g, const float* img, float* cols);

/// Transposed unroll: `rows` has layout (col_cols x col_rows) — one
/// contiguous receptive-field patch per output pixel. Pairs with gemm_nt
/// (weight rows x patch rows, both streaming contiguously), which stays in
/// its register tile even when the output is only a handful of pixels —
/// the regime where gemm's 16-column microkernel degrades to scalar edge
/// loops. Same element values as im2col, just the (row, pixel) transpose.
void im2row(const ConvGeometry& g, const float* img, float* rows);

/// Adjoint of im2col: accumulate `cols` back into `img` (must be zeroed by
/// the caller if a fresh gradient is wanted).
void col2im(const ConvGeometry& g, const float* cols, float* img);

}  // namespace snnskip
