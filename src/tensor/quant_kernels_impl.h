#pragma once
// Int8 kernel bodies shared by the scalar and AVX2 translation units
// (ISSUE 10). quant_kernels.cpp instantiates everything with V=false;
// quant_avx2.cpp re-instantiates with V=true under -mavx2 (fp-contract
// stays off project-wide for the SIMD TUs, but these kernels are integer
// except for the quantize/dequantize edges, whose float operation
// sequence is preserved per lane). Every kernel here is bit-identical
// across SIMD levels:
//
//   * the int32 accumulation kernels are pure integer arithmetic
//     (associative and exact), so any lane grouping gives the same sums;
//   * quantize_row rounds with floor(x * inv + 0.5) clamped to
//     [-127, 127] — _mm256_floor_ps is exact IEEE floor and the per-lane
//     multiply/add sequence matches the scalar expression, so the scalar
//     and AVX2 quantizers pick identical codes;
//   * i32_to_f32 is a single exact int->float conversion per element
//     (|acc| < 2^31 and every engine accumulator is < 2^24 ulp-exact
//     anyway for the spiking paths — see DESIGN.md §5k).
//
// The int8 GEMM deliberately avoids maddubs/dpbusd (maddubs is
// unsigned x signed with 16-bit saturation — wrong for two signed int8
// operands — and VNNI is not in the AVX2 baseline): both operands widen
// to int16 and _mm256_madd_epi16 multiplies into int32 with an exact
// pairwise add, so no intermediate can saturate. The engine bounds k so
// the int32 accumulator never wraps (asserted at max geometry by
// tests/quant_test.cpp).

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "tensor/im2col.h"
#include "tensor/simd_ops.h"

namespace snnskip::quant_impl {

// ---- Quantize / convert edges ----------------------------------------------

/// dst[i] = clamp(floor(src[i] * inv + 0.5), -127, 127) as int8.
/// `inv` is the reciprocal of the quantization step; the caller computes
/// it ONCE per dispatch so scalar and AVX2 see the same float.
template <bool V>
inline void quantize_row(std::int64_t n, const float* __restrict src,
                         float inv, std::int8_t* __restrict dst) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    const __m256 invv = _mm256_set1_ps(inv);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256i lo = _mm256_set1_epi32(-127);
    const __m256i hi = _mm256_set1_epi32(127);
    for (; i + 8 <= n; i += 8) {
      const __m256 x = _mm256_loadu_ps(src + i);
      const __m256 scaled =
          _mm256_add_ps(_mm256_mul_ps(x, invv), half);
      // floor then truncate: floor() is exact, and the floored value is
      // integral, so cvttps (truncation) reproduces the scalar
      // static_cast<int> of std::floor exactly.
      __m256i q = _mm256_cvttps_epi32(_mm256_floor_ps(scaled));
      q = _mm256_max_epi32(lo, _mm256_min_epi32(hi, q));
      // 8 x int32 -> 8 x int8: pack through int16 within the lane halves.
      const __m128i q_lo = _mm256_castsi256_si128(q);
      const __m128i q_hi = _mm256_extracti128_si256(q, 1);
      const __m128i q16 = _mm_packs_epi32(q_lo, q_hi);
      const __m128i q8 = _mm_packs_epi16(q16, q16);
      std::memcpy(dst + i, &q8, 8);
    }
  }
#endif
  for (; i < n; ++i) {
    float scaled = src[i] * inv + 0.5f;
    // Match _mm256_floor_ps semantics: floor of the scaled value.
    std::int32_t q = static_cast<std::int32_t>(std::floor(scaled));
    if (q < -127) q = -127;
    if (q > 127) q = 127;
    dst[i] = static_cast<std::int8_t>(q);
  }
}

/// In-place-safe elementwise int32 -> float conversion (dst may alias
/// src: each element is read before its slot is written).
template <bool V>
inline void i32_to_f32(std::int64_t n, const std::int32_t* src, float* dst) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    for (; i + 8 <= n; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_ps(dst + i, _mm256_cvtepi32_ps(v));
    }
  }
#endif
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]);
}

// ---- Int8 accumulation primitives ------------------------------------------

/// y[0..n) += x[0..n) with x int8 widened to int32 — the packed
/// binary-spike accumulation (one weight row per event tap). Pure integer
/// adds: every SIMD level is exactly equal.
template <bool V>
inline void add_rows_i8(std::int64_t n, const std::int8_t* __restrict x,
                        std::int32_t* __restrict y) {
  std::int64_t i = 0;
#if defined(__AVX2__)
  if constexpr (V) {
    for (; i + 8 <= n; i += 8) {
      const __m128i x8 =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
      const __m256i x32 = _mm256_cvtepi8_epi32(x8);
      __m256i yv = _mm256_loadu_si256(reinterpret_cast<__m256i*>(y + i));
      yv = _mm256_add_epi32(yv, x32);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), yv);
    }
  }
#endif
  for (; i < n; ++i) y[i] += x[i];
}

/// c[i, j] = sum_t a[i*k + t] * b[j*k + t], int8 x int8 -> int32, c
/// overwritten (beta = 0). Both matrices are row-major over a shared
/// inner dimension k ("nt" layout, like gemm_nt): a is (m, k), b is
/// (n, k), c is (m, n). AVX2 widens both operands to int16 and uses
/// madd_epi16 (16 products per instruction, pairwise int32 sums) — no
/// maddubs/dpbusd, so signed x signed is exact and the kernel runs on
/// the plain AVX2 baseline. Integer arithmetic: identical to scalar.
template <bool V>
void gemm_s8s32_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                   const std::int8_t* __restrict a,
                   const std::int8_t* __restrict b,
                   std::int32_t* __restrict c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      std::int64_t t = 0;
      std::int32_t acc = 0;
#if defined(__AVX2__)
      if constexpr (V) {
        __m256i accv = _mm256_setzero_si256();
        for (; t + 16 <= k; t += 16) {
          const __m128i a8 = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(arow + t));
          const __m128i b8 = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(brow + t));
          const __m256i a16 = _mm256_cvtepi8_epi16(a8);
          const __m256i b16 = _mm256_cvtepi8_epi16(b8);
          accv = _mm256_add_epi32(accv, _mm256_madd_epi16(a16, b16));
        }
        // Horizontal reduce the 8 int32 partials.
        const __m128i lo = _mm256_castsi256_si128(accv);
        const __m128i hi = _mm256_extracti128_si256(accv, 1);
        __m128i s = _mm_add_epi32(lo, hi);
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
        s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
        acc = _mm_cvtsi128_si32(s);
      }
#endif
      for (; t < k; ++t) {
        acc += static_cast<std::int32_t>(arow[t]) *
               static_cast<std::int32_t>(brow[t]);
      }
      crow[j] = acc;
    }
  }
}

// ---- Packed-spike int8 term kernels ----------------------------------------
// Same event walk as spike_impl::packed_conv2d_term / packed_depthwise_term
// (word skip + count-trailing-zeros bit walk, chrow channel mapping), but
// the weight rows are int8 and the accumulator panel is int32: binary
// spikes make the event path a pure integer row-add, so the int8 packed
// dispatch is EXACT given the quantized weights (no input quantization at
// all). Returns the accumulate count (energy accounting), like the fp32
// twins.

template <bool V>
std::int64_t packed_conv2d_term_i8(const ConvGeometry& g, std::int64_t src_c,
                                   const std::uint64_t* words,
                                   const std::int32_t* chrow,
                                   const std::int8_t* wt, std::int64_t out_c,
                                   std::int32_t* outt) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = (numel + 63) >> 6;
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;  // popcount-guided: skip 64 positions at once
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row =
          chrow != nullptr ? static_cast<std::int64_t>(chrow[c]) : c;
      if (row < 0) continue;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const std::int8_t* wrow = wt + ((row * k + ky) * k + kx) * out_c;
          std::int32_t* orow = outt + (oy * wo + ox) * out_c;
          add_rows_i8<V>(out_c, wrow, orow);
          synops += out_c;
        }
      }
    }
  }
  return synops;
}

template <bool V>
std::int64_t packed_depthwise_term_i8(const ConvGeometry& g,
                                      std::int64_t src_c,
                                      const std::uint64_t* words,
                                      const std::int32_t* chrow,
                                      const std::int8_t* weight,
                                      std::int32_t* acc) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = (numel + 63) >> 6;
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row =
          chrow != nullptr ? static_cast<std::int64_t>(chrow[c]) : c;
      if (row < 0) continue;
      const std::int8_t* ker = weight + row * k * k;
      std::int32_t* oplane = acc + row * ho * wo;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += ker[ky * k + kx];
          ++synops;
        }
      }
    }
  }
  return synops;
}

/// One table per V instantiation; the accessors in simd_ops.h each wrap
/// one of these in a function-local static.
template <bool V>
inline simd::QuantKernels make_quant_table() {
  return simd::QuantKernels{
      &quantize_row<V>,
      &i32_to_f32<V>,
      &gemm_s8s32_nt<V>,
      &packed_conv2d_term_i8<V>,
      &packed_depthwise_term_i8<V>,
  };
}

}  // namespace snnskip::quant_impl
