#pragma once
// Blocked single-precision GEMM kernels.
//
// Convolutions lower to GEMM via im2col, so this is the hot path of both
// the ANN and SNN forward/backward passes. The kernels are cache-blocked
// and parallelized over row panels with parallel_for; accumulation within
// a panel is sequential, so results are deterministic for any thread count.
//
//   gemm    : C = alpha * A(M,K)   * B(K,N)   + beta * C
//   gemm_tn : C = alpha * A(K,M)^T * B(K,N)   + beta * C
//   gemm_nt : C = alpha * A(M,K)   * B(N,K)^T + beta * C

#include <cstdint>

namespace snnskip {

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c);

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c);

}  // namespace snnskip
