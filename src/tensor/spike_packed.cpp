#include "tensor/spike_packed.h"

#include <bit>

#include "tensor/simd_ops.h"

namespace snnskip {

std::int64_t spike_pack(const float* src, std::int64_t n,
                        std::uint64_t* words) {
  const std::int64_t nwords = packed_words(n);
  std::int64_t nnz = 0;
  bool binary = true;
  for (std::int64_t w = 0; w < nwords; ++w) {
    const std::int64_t base = w << 6;
    const std::int64_t lim = (n - base) < 64 ? (n - base) : 64;
    std::uint64_t bits = 0;
    for (std::int64_t k = 0; k < lim; ++k) {
      const float v = src[base + k];
      if (v != 0.f) {
        bits |= std::uint64_t{1} << k;
        ++nnz;
        if (v != 1.f) binary = false;
      }
    }
    words[w] = bits;
  }
  return binary ? nnz : -1;
}

std::int64_t popcount_words(const std::uint64_t* words, std::int64_t nwords) {
  std::int64_t total = 0;
  for (std::int64_t w = 0; w < nwords; ++w) {
    total += std::popcount(words[w]);
  }
  return total;
}

// Term-kernel bodies live in spike_kernels_impl.h (they share the vector
// primitives and dual-TU instantiation with the CSR kernels); these entry
// points jump through the active SIMD level's table.

std::int64_t spike_packed_conv2d_term(const ConvGeometry& g,
                                      std::int64_t src_c,
                                      const std::uint64_t* words,
                                      const std::int32_t* chrow,
                                      const float* wt, std::int64_t out_c,
                                      float* outt) {
  return simd::spike_ops().packed_conv2d_term(g, src_c, words, chrow, wt,
                                              out_c, outt);
}

std::int64_t spike_packed_depthwise_term(const ConvGeometry& g,
                                         std::int64_t src_c,
                                         const std::uint64_t* words,
                                         const std::int32_t* chrow,
                                         const float* weight, float* acc) {
  return simd::spike_ops().packed_depthwise_term(g, src_c, words, chrow,
                                                 weight, acc);
}

}  // namespace snnskip
