#include "tensor/spike_packed.h"

#include <bit>

namespace snnskip {

std::int64_t spike_pack(const float* src, std::int64_t n,
                        std::uint64_t* words) {
  const std::int64_t nwords = packed_words(n);
  std::int64_t nnz = 0;
  bool binary = true;
  for (std::int64_t w = 0; w < nwords; ++w) {
    const std::int64_t base = w << 6;
    const std::int64_t lim = (n - base) < 64 ? (n - base) : 64;
    std::uint64_t bits = 0;
    for (std::int64_t k = 0; k < lim; ++k) {
      const float v = src[base + k];
      if (v != 0.f) {
        bits |= std::uint64_t{1} << k;
        ++nnz;
        if (v != 1.f) binary = false;
      }
    }
    words[w] = bits;
  }
  return binary ? nnz : -1;
}

std::int64_t popcount_words(const std::uint64_t* words, std::int64_t nwords) {
  std::int64_t total = 0;
  for (std::int64_t w = 0; w < nwords; ++w) {
    total += std::popcount(words[w]);
  }
  return total;
}

std::int64_t spike_packed_conv2d_term(const ConvGeometry& g,
                                      std::int64_t src_c,
                                      const std::uint64_t* words,
                                      const std::int32_t* chrow,
                                      const float* wt, std::int64_t out_c,
                                      float* outt) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = packed_words(numel);
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;  // popcount-guided: skip 64 positions at once
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row = chrow != nullptr
                                   ? static_cast<std::int64_t>(chrow[c])
                                   : c;
      if (row < 0) continue;
      // Same tap walk as spike_conv2d_forward: each valid (ky, kx) is one
      // contiguous out_c-length axpy of a transposed weight row.
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          const float* wrow = wt + ((row * k + ky) * k + kx) * out_c;
          float* orow = outt + (oy * wo + ox) * out_c;
          for (std::int64_t o = 0; o < out_c; ++o) orow[o] += wrow[o];
          synops += out_c;
        }
      }
    }
  }
  return synops;
}

std::int64_t spike_packed_depthwise_term(const ConvGeometry& g,
                                         std::int64_t src_c,
                                         const std::uint64_t* words,
                                         const std::int32_t* chrow,
                                         const float* weight, float* acc) {
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t k = g.kernel, s = g.stride, pad = g.pad;
  const std::int64_t ho = g.out_h(), wo = g.out_w();
  const std::int64_t plane = h * w;
  const std::int64_t numel = src_c * plane;
  const std::int64_t nwords = packed_words(numel);
  std::int64_t synops = 0;

  for (std::int64_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t bits = words[wi];
    if (bits == 0) continue;
    const std::int64_t base = wi << 6;
    while (bits != 0) {
      const std::int64_t flat = base + std::countr_zero(bits);
      bits &= bits - 1;
      const std::int64_t c = flat / plane;
      const std::int64_t rem = flat - c * plane;
      const std::int64_t iy = rem / w;
      const std::int64_t ix = rem - iy * w;
      const std::int64_t row = chrow != nullptr
                                   ? static_cast<std::int64_t>(chrow[c])
                                   : c;
      if (row < 0) continue;
      const float* ker = weight + row * k * k;
      float* oplane = acc + row * ho * wo;
      for (std::int64_t ky = 0; ky < k; ++ky) {
        const std::int64_t ty = iy + pad - ky;
        if (ty < 0 || ty % s != 0) continue;
        const std::int64_t oy = ty / s;
        if (oy >= ho) continue;
        for (std::int64_t kx = 0; kx < k; ++kx) {
          const std::int64_t tx = ix + pad - kx;
          if (tx < 0 || tx % s != 0) continue;
          const std::int64_t ox = tx / s;
          if (ox >= wo) continue;
          oplane[oy * wo + ox] += ker[ky * k + kx];
          ++synops;
        }
      }
    }
  }
  return synops;
}

}  // namespace snnskip
