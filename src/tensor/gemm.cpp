#include "tensor/gemm.h"

#include <algorithm>

#include "parallel/parallel_for.h"

namespace snnskip {

namespace {
// Block sizes tuned for L1-resident panels at the problem sizes this
// library runs (K, N typically 16..1024).
constexpr std::int64_t kBlockK = 128;
constexpr std::int64_t kBlockN = 256;
}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  parallel_for_range(0, static_cast<std::size_t>(m),
                     [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      if (beta == 0.f) {
        std::fill(crow, crow + n, 0.f);
      } else if (beta != 1.f) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
      for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
        const std::int64_t kend = std::min(k, kk + kBlockK);
        for (std::int64_t nn = 0; nn < n; nn += kBlockN) {
          const std::int64_t nend = std::min(n, nn + kBlockN);
          for (std::int64_t p = kk; p < kend; ++p) {
            const float av = alpha * a[i * k + p];
            if (av == 0.f) continue;  // spike matrices are mostly zero
            const float* brow = b + p * n;
            for (std::int64_t j = nn; j < nend; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  });
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  // A is stored (K, M); logical op is A^T(M,K) * B(K,N).
  parallel_for_range(0, static_cast<std::size_t>(m),
                     [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* crow = c + i * n;
      if (beta == 0.f) {
        std::fill(crow, crow + n, 0.f);
      } else if (beta != 1.f) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
      }
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * a[p * m + static_cast<std::int64_t>(i)];
        if (av == 0.f) continue;
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  // B is stored (N, K); logical op is A(M,K) * B^T(K,N). Row-times-row dot
  // products — both operands stream contiguously.
  parallel_for_range(0, static_cast<std::size_t>(m),
                     [&](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.f;
        for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = alpha * acc + (beta == 0.f ? 0.f : beta * crow[j]);
      }
    }
  });
}

}  // namespace snnskip
