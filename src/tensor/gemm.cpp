#include "tensor/gemm.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "telemetry/telemetry.h"

namespace snnskip {

namespace {
// Panel sizes tuned for L1-resident operands at the problem sizes this
// library runs (K, N typically 16..1024).
constexpr std::int64_t kBlockK = 128;
// Register microkernel: 4-row x 16-column accumulator tile. 4x16 floats fit
// comfortably in the vector register file and give the compiler independent
// accumulation chains to vectorize and interleave.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;

// C-tile [i0..i0+4) x [j0..j0+16) += alpha * A-panel * B-panel, where the
// A value for logical row i at depth p comes from arow(p, i). C must
// already hold beta-scaled values. The all-zero test keeps the historic
// spike-skip: when every A operand in the column is zero (common for spike
// matrices) the B row is never touched.
template <typename ARow>
inline void microkernel_4x16(std::int64_t n, std::int64_t j0, float alpha,
                             ARow&& arow, const float* b, std::int64_t kk,
                             std::int64_t kend, float* c, std::int64_t i0) {
  float acc[kMr][kNr];
  for (std::int64_t r = 0; r < kMr; ++r) {
    const float* crow = c + (i0 + r) * n + j0;
    for (std::int64_t j = 0; j < kNr; ++j) acc[r][j] = crow[j];
  }
  for (std::int64_t p = kk; p < kend; ++p) {
    const float a0 = alpha * arow(p, i0 + 0);
    const float a1 = alpha * arow(p, i0 + 1);
    const float a2 = alpha * arow(p, i0 + 2);
    const float a3 = alpha * arow(p, i0 + 3);
    if (a0 == 0.f && a1 == 0.f && a2 == 0.f && a3 == 0.f) continue;
    const float* brow = b + p * n + j0;
    for (std::int64_t j = 0; j < kNr; ++j) {
      const float bv = brow[j];
      acc[0][j] += a0 * bv;
      acc[1][j] += a1 * bv;
      acc[2][j] += a2 * bv;
      acc[3][j] += a3 * bv;
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    for (std::int64_t j = 0; j < kNr; ++j) crow[j] = acc[r][j];
  }
}

// Edge tile (mr < 4 rows or nr < 16 cols): plain loops, same skip.
template <typename ARow>
inline void microkernel_edge(std::int64_t n, std::int64_t j0, std::int64_t nr,
                             float alpha, ARow&& arow, const float* b,
                             std::int64_t kk, std::int64_t kend, float* c,
                             std::int64_t i0, std::int64_t mr) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + (i0 + r) * n + j0;
    for (std::int64_t p = kk; p < kend; ++p) {
      const float av = alpha * arow(p, i0 + r);
      if (av == 0.f) continue;
      const float* brow = b + p * n + j0;
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
}

inline void scale_rows(std::int64_t n, float beta, float* c, std::int64_t i0,
                       std::int64_t mr) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + (i0 + r) * n;
    if (beta == 0.f) {
      std::fill(crow, crow + n, 0.f);
    } else if (beta != 1.f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

// Shared driver for gemm / gemm_tn: parallelize over 4-row blocks, then
// sweep K panels x 16-column tiles with the register microkernel.
template <typename ARow>
void gemm_driver(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 ARow&& arow, const float* b, float beta, float* c) {
  const std::int64_t row_blocks = (m + kMr - 1) / kMr;
  parallel_for_range(0, static_cast<std::size_t>(row_blocks),
                     [&](std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::int64_t i0 = static_cast<std::int64_t>(blk) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      scale_rows(n, beta, c, i0, mr);
      for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
        const std::int64_t kend = std::min(k, kk + kBlockK);
        std::int64_t j0 = 0;
        if (mr == kMr) {
          for (; j0 + kNr <= n; j0 += kNr) {
            microkernel_4x16(n, j0, alpha, arow, b, kk, kend, c, i0);
          }
        }
        if (j0 < n || mr < kMr) {
          microkernel_edge(n, j0, n - j0, alpha, arow, b, kk, kend, c, i0,
                           mr);
        }
      }
    }
  });
}

}  // namespace

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  // Aggregate-only: gemm runs at per-image granularity inside the timestep
  // loop, so per-call trace events would dwarf the rest of the trace.
  SNNSKIP_SPAN_AGG("gemm", "gemm");
  gemm_driver(
      m, n, k, alpha,
      [a, k](std::int64_t p, std::int64_t i) { return a[i * k + p]; }, b,
      beta, c);
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  SNNSKIP_SPAN_AGG("gemm", "gemm_tn");
  // A is stored (K, M); logical op is A^T(M,K) * B(K,N).
  gemm_driver(
      m, n, k, alpha,
      [a, m](std::int64_t p, std::int64_t i) { return a[p * m + i]; }, b,
      beta, c);
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  SNNSKIP_SPAN_AGG("gemm", "gemm_nt");
  // B is stored (N, K); logical op is A(M,K) * B^T(K,N). Row-times-row dot
  // products — both operands stream contiguously. 4x4 register tile (the
  // B operand is strided across columns, so a wide 16-column tile would
  // turn its loads into gathers).
  const bool accumulate = (beta != 0.f);
  const std::int64_t row_blocks = (m + kMr - 1) / kMr;
  parallel_for_range(0, static_cast<std::size_t>(row_blocks),
                     [&](std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::int64_t i0 = static_cast<std::int64_t>(blk) * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      constexpr std::int64_t kJr = 4;
      for (std::int64_t j0 = 0; j0 < n; j0 += kJr) {
        const std::int64_t jr = std::min(kJr, n - j0);
        if (mr == kMr && jr == kJr) {
          float acc[kMr][kJr] = {};
          const float* a0 = a + (i0 + 0) * k;
          const float* a1 = a + (i0 + 1) * k;
          const float* a2 = a + (i0 + 2) * k;
          const float* a3 = a + (i0 + 3) * k;
          const float* bb0 = b + (j0 + 0) * k;
          const float* bb1 = b + (j0 + 1) * k;
          const float* bb2 = b + (j0 + 2) * k;
          const float* bb3 = b + (j0 + 3) * k;
          for (std::int64_t p = 0; p < k; ++p) {
            const float b0v = bb0[p], b1v = bb1[p], b2v = bb2[p],
                        b3v = bb3[p];
            const float a0v = a0[p], a1v = a1[p], a2v = a2[p], a3v = a3[p];
            acc[0][0] += a0v * b0v;
            acc[0][1] += a0v * b1v;
            acc[0][2] += a0v * b2v;
            acc[0][3] += a0v * b3v;
            acc[1][0] += a1v * b0v;
            acc[1][1] += a1v * b1v;
            acc[1][2] += a1v * b2v;
            acc[1][3] += a1v * b3v;
            acc[2][0] += a2v * b0v;
            acc[2][1] += a2v * b1v;
            acc[2][2] += a2v * b2v;
            acc[2][3] += a2v * b3v;
            acc[3][0] += a3v * b0v;
            acc[3][1] += a3v * b1v;
            acc[3][2] += a3v * b2v;
            acc[3][3] += a3v * b3v;
          }
          // beta handling hoisted out of the accumulation loop entirely:
          // one branch per tile, branch-free stores.
          for (std::int64_t r = 0; r < kMr; ++r) {
            float* crow = c + (i0 + r) * n + j0;
            if (accumulate) {
              for (std::int64_t j = 0; j < kJr; ++j) {
                crow[j] = alpha * acc[r][j] + beta * crow[j];
              }
            } else {
              for (std::int64_t j = 0; j < kJr; ++j) {
                crow[j] = alpha * acc[r][j];
              }
            }
          }
        } else {
          for (std::int64_t r = 0; r < mr; ++r) {
            const float* arow = a + (i0 + r) * k;
            float* crow = c + (i0 + r) * n;
            for (std::int64_t j = j0; j < j0 + jr; ++j) {
              const float* brow = b + j * k;
              float acc = 0.f;
              for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
              crow[j] = accumulate ? alpha * acc + beta * crow[j]
                                   : alpha * acc;
            }
          }
        }
      }
    }
  });
}

}  // namespace snnskip
