#include "tensor/gemm.h"

#include "tensor/gemm_impl.h"
#include "tensor/kernel_config.h"
#include "tensor/simd_ops.h"
#include "telemetry/telemetry.h"

namespace snnskip {

namespace simd {

namespace {
using gemm_impl::gemm_nn_entry;
using gemm_impl::gemm_nt_entry;
using gemm_impl::gemm_tn_entry;
}  // namespace

// Scalar table: one driver instantiation per legal register tile (the
// entries must line up with kGemmTiles).
const GemmKernels* gemm_kernels_scalar() {
  static const GemmKernels k = {
      {&gemm_nn_entry<4, 16, false, false>,
       &gemm_nn_entry<6, 16, false, false>,
       &gemm_nn_entry<8, 8, false, false>,
       &gemm_nn_entry<4, 8, false, false>,
       &gemm_nn_entry<6, 8, false, false>},
      {&gemm_tn_entry<4, 16, false, false>,
       &gemm_tn_entry<6, 16, false, false>,
       &gemm_tn_entry<8, 8, false, false>,
       &gemm_tn_entry<4, 8, false, false>,
       &gemm_tn_entry<6, 8, false, false>},
      &gemm_nt_entry<false, false>,
  };
  return &k;
}

#if !defined(SNNSKIP_HAVE_AVX2)
// AVX2 translation units not built (non-x86 target or the toolchain lacks
// -mavx2): alias the scalar table so dispatch never branches on a null.
const GemmKernels* gemm_kernels_avx2() { return gemm_kernels_scalar(); }
const GemmKernels* gemm_kernels_avx2fma() { return gemm_kernels_scalar(); }
#endif

}  // namespace simd

void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  // Aggregate-only: gemm runs at per-image granularity inside the timestep
  // loop, so per-call trace events would dwarf the rest of the trace.
  SNNSKIP_SPAN_AGG("gemm", "gemm");
  const KernelConfig& cfg = kernel_config();
  simd::gemm_kernels_for(active_simd())->nn[cfg.gemm_tile](
      m, n, k, alpha, a, b, beta, c, cfg.gemm_kc);
}

void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  SNNSKIP_SPAN_AGG("gemm", "gemm_tn");
  const KernelConfig& cfg = kernel_config();
  simd::gemm_kernels_for(active_simd())->tn[cfg.gemm_tile](
      m, n, k, alpha, a, b, beta, c, cfg.gemm_kc);
}

void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
             const float* a, const float* b, float beta, float* c) {
  SNNSKIP_SPAN_AGG("gemm", "gemm_nt");
  simd::gemm_kernels_for(active_simd())->nt(m, n, k, alpha, a, b, beta, c);
}

}  // namespace snnskip
