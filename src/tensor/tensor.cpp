#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace snnskip {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(static_cast<std::int64_t>(data_.size()) == shape_.numel());
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::bernoulli(Shape shape, Rng& rng, float p) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = rng.bernoulli(p) ? 1.f : 0.f;
  }
  return t;
}

std::size_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  assert(idx.size() == shape_.ndim());
  const auto strides = shape_.strides();
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (auto i : idx) {
    assert(i >= 0 && i < shape_.dim(d));
    flat += i * strides[d];
    ++d;
  }
  return static_cast<std::size_t>(flat);
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[flat_index(idx)];
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[flat_index(idx)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  assert(new_shape.numel() == shape_.numel());
  Tensor out(std::move(new_shape), data_);
  return out;
}

Tensor& Tensor::fill(float v) {
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  assert(other.numel() == numel());
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  assert(other.numel() == numel());
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o[i];
  return *this;
}

Tensor& Tensor::mul_(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& x) {
  assert(x.numel() == numel());
  const float* o = x.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
  return *this;
}

Tensor& Tensor::hadamard_(const Tensor& other) {
  assert(other.numel() == numel());
  const float* o = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= o[i];
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (auto& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

float Tensor::max_value() const {
  assert(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min_value() const {
  assert(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Tensor::nonzero_fraction() const {
  if (data_.empty()) return 0.0;
  std::size_t nz = 0;
  for (float v : data_) {
    if (v != 0.f) ++nz;
  }
  return static_cast<double>(nz) / static_cast<double>(data_.size());
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.numel() == b.numel());
  float m = 0.f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

std::string Tensor::str_stats() const {
  std::ostringstream os;
  os << "shape=" << shape_.str();
  if (!data_.empty()) {
    os << " mean=" << mean() << " min=" << min_value()
       << " max=" << max_value();
  }
  return os.str();
}

}  // namespace snnskip
