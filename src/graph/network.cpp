#include "graph/network.h"

#include "snn/lif.h"
#include "snn/plif.h"
#include "telemetry/telemetry.h"

namespace snnskip {

void Network::add_layer(LayerPtr layer) { stages_.push_back(std::move(layer)); }

void Network::add_block(std::unique_ptr<Block> block) {
  blocks_.push_back(block.get());
  stages_.push_back(std::move(block));
}

Tensor Network::forward(const Tensor& x, bool train) {
  SNNSKIP_SPAN("net", "forward");
  Tensor cur = x;
  for (auto& stage : stages_) {
    cur = stage->forward(cur, train);
  }
  return cur;
}

Tensor Network::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("net", "backward");
  Tensor cur = grad_out;
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Network::reset_state() {
  for (auto& stage : stages_) stage->reset_state();
}

std::vector<Parameter*> Network::parameters() {
  std::vector<Parameter*> out;
  for (auto& stage : stages_) {
    for (Parameter* p : stage->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, Tensor*>> Network::buffers() {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (auto& stage : stages_) {
    for (auto& b : stage->buffers()) out.push_back(std::move(b));
  }
  return out;
}

std::size_t Network::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) {
    n += static_cast<std::size_t>(p->numel());
  }
  return n;
}

void Network::set_recorder(FiringRateRecorder* rec) {
  for (auto& stage : stages_) {
    if (auto* block = dynamic_cast<Block*>(stage.get())) {
      block->set_recorder(rec);
    } else if (auto* lif = dynamic_cast<Lif*>(stage.get())) {
      lif->set_recorder(rec);
    } else if (auto* plif = dynamic_cast<Plif*>(stage.get())) {
      plif->set_recorder(rec);
    }
  }
}

std::int64_t Network::macs(const Shape& in) const {
  std::int64_t total = 0;
  Shape cur = in;
  for (const auto& stage : stages_) {
    total += stage->macs(cur);
    cur = stage->output_shape(cur);
  }
  return total;
}

Shape Network::output_shape(const Shape& in) const {
  Shape cur = in;
  for (const auto& stage : stages_) cur = stage->output_shape(cur);
  return cur;
}

}  // namespace snnskip
