#pragma once
// MAC accounting over a network (the paper's efficiency axis: DSC enlarges
// inputs and thus MACs, ASC keeps MACs flat but raises firing rates).

#include <cstdint>
#include <map>
#include <string>

#include "graph/network.h"

namespace snnskip {

struct MacReport {
  std::int64_t total = 0;                        ///< per timestep, full batch
  std::map<std::string, std::int64_t> per_block; ///< searchable blocks only
};

/// MACs for one forward timestep at input shape `in` (batch included).
MacReport count_macs(const Network& net, const Shape& in);

/// Effective synaptic-operation count of an SNN: in a spiking layer only
/// incoming spikes trigger accumulates, so effective ops ≈ MACs * rate * T.
double effective_snn_ops(std::int64_t macs_per_step, double firing_rate,
                         std::int64_t timesteps);

}  // namespace snnskip
