#pragma once
// Per-block adjacency matrix over layer nodes (paper §III-B, eq. 1).
//
// A block of depth d has nodes 0..d where node 0 is the block input and
// nodes 1..d are layers. The sequential chain k -> k+1 is always present;
// *skip* connections occupy the slots (i, j) with j >= i + 2 and take one
// of three values:
//   0 = None, 1 = DSC (DenseNet-like concatenation), 2 = ASC (addition).
//
// The paper's search space contains no backward connections (the matrix is
// strictly upper-triangular there), but its future-work section proposes
// adding them. This implementation supports that extension: *recurrent*
// entries at (src, dst) with src >= dst deliver node src's PREVIOUS-
// timestep output to node dst's input — a one-step-delayed edge, which is
// the only causally valid form of backward connectivity in an unrolled
// SNN. Recurrent edges are addition-type only (set_recurrent).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace snnskip {

enum class SkipType : std::uint8_t { None = 0, DSC = 1, ASC = 2 };

std::string to_string(SkipType t);

class Adjacency {
 public:
  /// Chain adjacency (no skips) over `depth` layer nodes.
  explicit Adjacency(int depth);

  int depth() const { return depth_; }

  /// Connection type from node i's output to node j's input.
  SkipType at(int i, int j) const;
  /// Set a *skip* slot (requires j >= i + 2).
  void set(int i, int j, SkipType t);

  /// Canonical list of skip slots for a block of depth d, ordered by
  /// (dst, src) ascending. Slot count = d*(d-1)/2.
  static std::vector<std::pair<int, int>> skip_slots(int depth);

  // ---- recurrent (backward) connections: future-work extension ---------
  /// Type of the one-step-delayed edge from node src (>= dst) to node dst.
  SkipType recurrent_at(int src, int dst) const;
  /// Set a recurrent slot; requires 1 <= dst <= src <= depth and type in
  /// {None, ASC} (concatenation across time is not supported).
  void set_recurrent(int src, int dst, SkipType t);
  /// Canonical (src, dst) recurrent slots, src >= dst >= 1, ordered by
  /// (dst, src). Slot count = d*(d+1)/2.
  static std::vector<std::pair<int, int>> recurrent_slots(int depth);
  /// Number of recurrent edges present.
  int total_recurrent() const;

  /// Number of skip connections entering layer j (paper's n_skip,j).
  int n_skip_in(int j) const;
  /// Total skip connections in the block.
  int total_skips() const;
  /// Count of slots holding a given type.
  int count_type(SkipType t) const;

  /// Slot values (0/1/2) in canonical slot order — the BO encoding.
  std::vector<int> encode() const;
  static Adjacency decode(int depth, const std::vector<int>& code);

  bool operator==(const Adjacency& o) const {
    return depth_ == o.depth_ && a_ == o.a_;
  }
  bool operator!=(const Adjacency& o) const { return !(*this == o); }

  /// Multi-line matrix rendering for logs.
  std::string str() const;

  // ---- canonical constructions -----------------------------------------
  /// No skip connections.
  static Adjacency chain(int depth);
  /// Fig. 1's sweep: every layer j receives skips of `type` from its
  /// `n_skip` nearest eligible predecessors (clamped to availability).
  static Adjacency uniform(int depth, SkipType type, int n_skip);
  /// All skip slots set to `type` (DenseNet-style all-to-all for DSC).
  static Adjacency all(int depth, SkipType type);

 private:
  int idx(int i, int j) const { return i * (depth_ + 1) + j; }

  int depth_;
  std::vector<SkipType> a_;  // (d+1) x (d+1), strictly upper-triangular use
};

}  // namespace snnskip
