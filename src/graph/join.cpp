#include "graph/join.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace snnskip {

std::vector<std::int64_t> dsc_channel_subset(const std::string& block_name,
                                             int src, int dst,
                                             std::int64_t src_channels,
                                             double fraction) {
  assert(src_channels > 0);
  std::int64_t count = static_cast<std::int64_t>(
      std::llround(fraction * static_cast<double>(src_channels)));
  count = std::clamp<std::int64_t>(count, 1, src_channels);

  // FNV-1a over the edge identity seeds the subset draw.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (char c : block_name) mix(static_cast<std::uint64_t>(c));
  mix(static_cast<std::uint64_t>(src) + 0x100);
  mix(static_cast<std::uint64_t>(dst) + 0x10000);
  mix(static_cast<std::uint64_t>(src_channels));

  Rng rng(h);
  std::vector<std::size_t> perm(static_cast<std::size_t>(src_channels));
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);

  std::vector<std::int64_t> subset(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    subset[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(perm[static_cast<std::size_t>(i)]);
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

}  // namespace snnskip
