#pragma once
// Network: an ordered sequence of stages (plain layers and Blocks).
//
// The paper's topologies are "blocks connected with a single sequential
// connection" (§III-A): a stem, a chain of searchable blocks (with optional
// transition layers between them), and a classification head. forward()/
// backward() process ONE timestep; the training driver unrolls T steps and
// walks back through the saved contexts (BPTT).

#include <memory>
#include <vector>

#include "graph/block.h"
#include "nn/layer.h"
#include "snn/spike_stats.h"

namespace snnskip {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Append a non-searchable stage (stem conv, pooling, head, ...).
  void add_layer(LayerPtr layer);
  /// Append a searchable block; retained in blocks() order.
  void add_block(std::unique_ptr<Block> block);

  /// One timestep forward. `train` enables context saving for BPTT.
  Tensor forward(const Tensor& x, bool train);
  /// One timestep backward (matching the most recent un-popped forward).
  Tensor backward(const Tensor& grad_out);

  /// Clear temporal state and contexts (sequence boundary).
  void reset_state();

  std::vector<Parameter*> parameters();
  std::size_t parameter_count();
  /// Non-trainable named state (batch-norm running stats) across stages.
  std::vector<std::pair<std::string, Tensor*>> buffers();

  /// Searchable blocks in network order.
  const std::vector<Block*>& blocks() const { return blocks_; }

  /// All stages (plain layers and blocks) in execution order — the walk
  /// the inference compiler (infer/compile.h) freezes into a plan.
  const std::vector<LayerPtr>& stages() const { return stages_; }

  /// Attach/detach a firing-rate recorder on every spiking neuron.
  void set_recorder(FiringRateRecorder* rec);

  /// Forward MACs for one timestep at batch input shape `in`.
  std::int64_t macs(const Shape& in) const;
  Shape output_shape(const Shape& in) const;

 private:
  std::vector<LayerPtr> stages_;
  std::vector<Block*> blocks_;  // non-owning views into stages_
};

}  // namespace snnskip
