#pragma once
// Join helpers realizing the two skip-connection types.
//
// DSC (DenseNet-like): a deterministic, position-seeded subset of the
// source node's channels is concatenated onto the destination's input —
// the paper's "generalized version where we vary the number of skip
// connections by randomly selecting only some channels for concatenation".
// The subset is a pure function of (block name, src, dst, source width,
// fraction), so the same edge always wires the same channels; that is what
// makes supernet weight sharing across candidate topologies well-defined.

#include <cstdint>
#include <string>
#include <vector>

namespace snnskip {

/// Deterministic channel subset for a DSC edge.
/// Returns max(1, round(fraction * src_channels)) sorted unique indices.
std::vector<std::int64_t> dsc_channel_subset(const std::string& block_name,
                                             int src, int dst,
                                             std::int64_t src_channels,
                                             double fraction);

}  // namespace snnskip
