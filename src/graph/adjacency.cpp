#include "graph/adjacency.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace snnskip {

std::string to_string(SkipType t) {
  switch (t) {
    case SkipType::None: return "none";
    case SkipType::DSC: return "dsc";
    case SkipType::ASC: return "asc";
  }
  return "?";
}

Adjacency::Adjacency(int depth)
    : depth_(depth),
      a_(static_cast<std::size_t>((depth + 1) * (depth + 1)), SkipType::None) {
  assert(depth >= 1);
}

SkipType Adjacency::at(int i, int j) const {
  assert(i >= 0 && j >= 0 && i <= depth_ && j <= depth_);
  return a_[static_cast<std::size_t>(idx(i, j))];
}

void Adjacency::set(int i, int j, SkipType t) {
  if (j < i + 2 || i < 0 || j > depth_) {
    throw std::invalid_argument("Adjacency::set: (" + std::to_string(i) +
                                "," + std::to_string(j) +
                                ") is not a skip slot");
  }
  a_[static_cast<std::size_t>(idx(i, j))] = t;
}

std::vector<std::pair<int, int>> Adjacency::skip_slots(int depth) {
  std::vector<std::pair<int, int>> slots;
  for (int j = 2; j <= depth; ++j) {
    for (int i = 0; i <= j - 2; ++i) {
      slots.emplace_back(i, j);
    }
  }
  return slots;
}

SkipType Adjacency::recurrent_at(int src, int dst) const {
  assert(src >= 1 && dst >= 1 && src <= depth_ && dst <= depth_ &&
         src >= dst);
  // Recurrent edges live in the lower triangle (src >= dst) of the same
  // storage, indexed [src][dst].
  return a_[static_cast<std::size_t>(idx(src, dst))];
}

void Adjacency::set_recurrent(int src, int dst, SkipType t) {
  if (dst < 1 || src < dst || src > depth_) {
    throw std::invalid_argument("Adjacency::set_recurrent: (" +
                                std::to_string(src) + "," +
                                std::to_string(dst) +
                                ") is not a recurrent slot");
  }
  if (t == SkipType::DSC) {
    throw std::invalid_argument(
        "Adjacency::set_recurrent: recurrent edges are addition-type only");
  }
  a_[static_cast<std::size_t>(idx(src, dst))] = t;
}

std::vector<std::pair<int, int>> Adjacency::recurrent_slots(int depth) {
  std::vector<std::pair<int, int>> slots;
  for (int dst = 1; dst <= depth; ++dst) {
    for (int src = dst; src <= depth; ++src) {
      slots.emplace_back(src, dst);
    }
  }
  return slots;
}

int Adjacency::total_recurrent() const {
  int n = 0;
  for (const auto& [src, dst] : recurrent_slots(depth_)) {
    if (recurrent_at(src, dst) != SkipType::None) ++n;
  }
  return n;
}

int Adjacency::n_skip_in(int j) const {
  int n = 0;
  for (int i = 0; i <= j - 2; ++i) {
    if (at(i, j) != SkipType::None) ++n;
  }
  return n;
}

int Adjacency::total_skips() const {
  int n = 0;
  for (int j = 1; j <= depth_; ++j) n += n_skip_in(j);
  return n;
}

int Adjacency::count_type(SkipType t) const {
  int n = 0;
  for (const auto& [i, j] : skip_slots(depth_)) {
    if (at(i, j) == t) ++n;
  }
  return n;
}

std::vector<int> Adjacency::encode() const {
  std::vector<int> code;
  for (const auto& [i, j] : skip_slots(depth_)) {
    code.push_back(static_cast<int>(at(i, j)));
  }
  return code;
}

Adjacency Adjacency::decode(int depth, const std::vector<int>& code) {
  Adjacency adj(depth);
  const auto slots = skip_slots(depth);
  if (code.size() != slots.size()) {
    throw std::invalid_argument("Adjacency::decode: code length mismatch");
  }
  for (std::size_t k = 0; k < slots.size(); ++k) {
    if (code[k] < 0 || code[k] > 2) {
      throw std::invalid_argument("Adjacency::decode: bad slot value");
    }
    if (code[k] != 0) {
      adj.set(slots[k].first, slots[k].second,
              static_cast<SkipType>(code[k]));
    }
  }
  return adj;
}

std::string Adjacency::str() const {
  std::ostringstream os;
  for (int i = 0; i <= depth_; ++i) {
    for (int j = 0; j <= depth_; ++j) {
      char c = '.';
      if (j == i + 1) c = '-';  // sequential edge
      else if (j >= i + 2) c = "0DA"[static_cast<int>(at(i, j))];
      os << c << (j == depth_ ? "" : " ");
    }
    os << "\n";
  }
  return os.str();
}

Adjacency Adjacency::chain(int depth) { return Adjacency(depth); }

Adjacency Adjacency::uniform(int depth, SkipType type, int n_skip) {
  Adjacency adj(depth);
  if (type == SkipType::None || n_skip <= 0) return adj;
  for (int j = 2; j <= depth; ++j) {
    // Nearest eligible sources are j-2, j-3, ..., 0.
    int added = 0;
    for (int i = j - 2; i >= 0 && added < n_skip; --i, ++added) {
      adj.set(i, j, type);
    }
  }
  return adj;
}

Adjacency Adjacency::all(int depth, SkipType type) {
  Adjacency adj(depth);
  if (type == SkipType::None) return adj;
  for (const auto& [i, j] : skip_slots(depth)) adj.set(i, j, type);
  return adj;
}

}  // namespace snnskip
