#include "graph/mac_counter.h"

namespace snnskip {

MacReport count_macs(const Network& net, const Shape& in) {
  MacReport report;
  report.total = net.macs(in);
  // Per-block accounting needs the input shape at each block; recompute by
  // walking shapes through the blocks in order using the network totals.
  // Blocks see the shape produced by everything before them; since Network
  // doesn't expose intermediate stages publicly, approximate by querying
  // each block with the shape chained through the block list. This is exact
  // for block-only segments and is used for relative comparisons only.
  Shape cur = in;
  for (const Block* b : net.blocks()) {
    // Blocks may be preceded by transitions that changed the shape; derive
    // the block's input shape from its spec instead.
    const Shape block_in{cur[0], b->spec().in_channels, cur[2], cur[3]};
    report.per_block[b->name()] = b->macs(block_in);
    cur = b->output_shape(block_in);
  }
  return report;
}

double effective_snn_ops(std::int64_t macs_per_step, double firing_rate,
                         std::int64_t timesteps) {
  return static_cast<double>(macs_per_step) * firing_rate *
         static_cast<double>(timesteps);
}

}  // namespace snnskip
