#pragma once
// Block: a DAG of layer nodes wired by an Adjacency matrix.
//
// Node i (1..d) runs op -> batch-norm -> neuron. Its input is assembled
// from the sequential predecessor's output plus the incoming skip edges:
//   ASC edges add (through a lazily-created 1x1 projection when channels
//   or spatial sizes mismatch) onto the main path *before* the op;
//   DSC edges concatenate a deterministic channel subset of the source
//   (average-pooled to the destination's spatial size if needed), widening
//   the op's input channels.
// A Block is itself a Layer: forward() is one timestep, backward() pops the
// matching context, so the BPTT driver treats blocks and plain layers
// uniformly.
//
// Weight-sharing layout: for every node the ops' input channels follow the
// canonical order [main | seg(src=0) | seg(src=1) | ...] over ALL potential
// DSC sources, whether or not the candidate adjacency activates them. A
// candidate's conv weight is the gather of the active segments from this
// "supernet" layout; see train/weight_store.h.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency.h"
#include "nn/batchnorm_tt.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "snn/lif.h"

namespace snnskip {

enum class NeuronMode { Spiking, Analog };

/// Spiking neuron family: plain LIF or PLIF with a learnable leak.
enum class NeuronKind { Lif, Plif };

enum class NodeOp { Conv3x3, Conv1x1, DwConv3x3 };

struct NodePlan {
  NodeOp op = NodeOp::Conv3x3;
  std::int64_t out_channels = 8;
  std::int64_t stride = 1;
  bool spiking = true;  ///< false => no neuron (linear node, MobileNetV2)
};

struct BlockSpec {
  std::string name;  ///< stable identity (weight-store keys, DSC subsets)
  std::int64_t in_channels = 8;
  std::vector<NodePlan> nodes;

  int depth() const { return static_cast<int>(nodes.size()); }
  /// Output channels of node i (0 = block input).
  std::int64_t node_out_channels(int i) const;
  /// Cumulative spatial downsampling after node i relative to block input.
  std::int64_t spatial_div(int i) const;
  /// Whether a skip slot (src, dst) supports the given type:
  /// DSC cannot feed a depthwise node (channel count is structural there).
  bool slot_allows(int src, int dst, SkipType t) const;

  /// Whether a recurrent slot (src >= dst) is admissible: addition-type
  /// only, and the source and destination must live at the same spatial
  /// resolution (the one-step delay cannot also resample).
  bool recurrent_slot_allows(int src, int dst, SkipType t) const;
};

struct BlockConfig {
  NeuronMode mode = NeuronMode::Spiking;
  NeuronKind neuron = NeuronKind::Lif;
  std::int64_t max_timesteps = 16;
  LifConfig lif{};
  double dsc_fraction = 0.5;  ///< fraction of source channels per DSC edge
};

class Block final : public Layer {
 public:
  /// Segment of a node's (supernet) input channel range fed by one
  /// potential DSC source.
  struct Segment {
    int src = 0;
    std::vector<std::int64_t> src_channels;  // channels taken from source
    std::int64_t offset = 0;                 // start in supernet in-dim
  };

  struct Node {
    NodePlan plan;
    LayerPtr op;
    LayerPtr bn;
    LayerPtr neuron;
    std::int64_t main_in_c = 0;   ///< sequential-path channels
    std::int64_t used_in_c = 0;   ///< actual op input channels
    std::int64_t supernet_in_c = 0;
    std::vector<Segment> potential_segments;       ///< all srcs 0..i-2
    std::vector<std::int64_t> used_weight_channels; ///< gather indices
  };

  struct SkipEdge {
    int src = 0, dst = 0;
    SkipType type = SkipType::None;
    std::vector<std::int64_t> channels;  ///< DSC: source channels taken
    LayerPtr proj;   ///< ASC: 1x1 conv (null when identity suffices)
    LayerPtr pool;   ///< spatial aligner (null when sizes match)
  };

  /// One-step-delayed edge: node src's output at t-1 adds onto node dst's
  /// input at t (the future-work backward-connection extension).
  struct RecurrentEdge {
    int src = 0, dst = 0;
    LayerPtr proj;  ///< 1x1 channel adapter (null when widths match)
  };

  Block(BlockSpec spec, Adjacency adjacency, BlockConfig cfg, Rng& rng);

  // Layer interface — one invocation per timestep.
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::vector<std::pair<std::string, Tensor*>> buffers() override;
  std::string name() const override { return spec_.name; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  const BlockSpec& spec() const { return spec_; }
  const Adjacency& adjacency() const { return adj_; }
  const BlockConfig& config() const { return cfg_; }
  std::vector<Node>& nodes() { return nodes_; }
  std::vector<SkipEdge>& skip_edges() { return edges_; }
  std::vector<RecurrentEdge>& recurrent_edges() { return redges_; }

  /// Point every spiking neuron in the block at `rec` (nullptr detaches).
  void set_recorder(FiringRateRecorder* rec);

 private:
  struct Ctx {
    std::vector<Shape> node_out_shapes;  // per node 0..d
    bool used_recurrent = false;         // t > 0: delayed edges were active
  };

  /// Assemble node i's input from predecessor output + skips; train=true
  /// threads through the sub-layers' context saving.
  Tensor assemble_input(int i, const std::vector<Tensor>& outs, bool train);

  BlockSpec spec_;
  Adjacency adj_;
  BlockConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<SkipEdge> edges_;  // active skip edges, ordered by (dst, src)
  std::vector<RecurrentEdge> redges_;
  std::vector<Ctx> saved_;

  // Temporal state for recurrent edges.
  std::vector<Tensor> prev_outputs_;     // node outputs at t-1 (forward)
  bool has_prev_ = false;
  std::vector<Tensor> pending_carry_;    // dL/d(out at t-1), per node
  bool has_carry_ = false;
};

}  // namespace snnskip
