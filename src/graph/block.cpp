#include "graph/block.h"

#include <cassert>
#include <stdexcept>

#include "graph/join.h"
#include "nn/activations.h"
#include "nn/depthwise_conv2d.h"
#include "nn/pooling.h"
#include "snn/plif.h"
#include "telemetry/telemetry.h"
#include "tensor/ops.h"

namespace snnskip {

std::int64_t BlockSpec::node_out_channels(int i) const {
  assert(i >= 0 && i <= depth());
  if (i == 0) return in_channels;
  return nodes[static_cast<std::size_t>(i - 1)].out_channels;
}

std::int64_t BlockSpec::spatial_div(int i) const {
  assert(i >= 0 && i <= depth());
  std::int64_t div = 1;
  for (int k = 1; k <= i; ++k) {
    div *= nodes[static_cast<std::size_t>(k - 1)].stride;
  }
  return div;
}

bool BlockSpec::slot_allows(int src, int dst, SkipType t) const {
  if (dst < 2 || dst > depth() || src < 0 || src > dst - 2) return false;
  if (t == SkipType::DSC &&
      nodes[static_cast<std::size_t>(dst - 1)].op == NodeOp::DwConv3x3) {
    // Depthwise ops have structurally fixed channel counts; concatenation
    // would change them, so DSC into a depthwise node is invalid.
    return false;
  }
  return true;
}

bool BlockSpec::recurrent_slot_allows(int src, int dst, SkipType t) const {
  if (dst < 1 || src < dst || src > depth()) return false;
  if (t == SkipType::None) return true;
  if (t != SkipType::ASC) return false;
  // The delayed edge adds tensors as-is; source and destination input must
  // share a spatial resolution (a 1x1 projection fixes channels only).
  return spatial_div(src) == spatial_div(dst - 1);
}

namespace {

LayerPtr make_op(const NodePlan& plan, std::int64_t in_c, Rng& rng,
                 const std::string& op_name) {
  switch (plan.op) {
    case NodeOp::Conv3x3:
      return std::make_unique<Conv2d>(in_c, plan.out_channels, 3, plan.stride,
                                      1, /*bias=*/false, rng, op_name);
    case NodeOp::Conv1x1:
      return std::make_unique<Conv2d>(in_c, plan.out_channels, 1, plan.stride,
                                      0, /*bias=*/false, rng, op_name);
    case NodeOp::DwConv3x3:
      if (in_c != plan.out_channels) {
        throw std::invalid_argument(
            "DwConv3x3 node requires out_channels == input channels");
      }
      return std::make_unique<DepthwiseConv2d>(in_c, 3, plan.stride, 1,
                                               /*bias=*/false, rng, op_name);
  }
  throw std::logic_error("unknown NodeOp");
}

}  // namespace

Block::Block(BlockSpec spec, Adjacency adjacency, BlockConfig cfg, Rng& rng)
    : spec_(std::move(spec)), adj_(std::move(adjacency)), cfg_(cfg) {
  if (adj_.depth() != spec_.depth()) {
    throw std::invalid_argument("Block: adjacency depth != spec depth");
  }
  const int d = spec_.depth();

  // Validate the adjacency against structural constraints before building.
  for (const auto& [i, j] : Adjacency::skip_slots(d)) {
    const SkipType t = adj_.at(i, j);
    if (t != SkipType::None && !spec_.slot_allows(i, j, t)) {
      throw std::invalid_argument("Block '" + spec_.name + "': slot (" +
                                  std::to_string(i) + "," + std::to_string(j) +
                                  ") does not allow " + to_string(t));
    }
  }
  for (const auto& [src, dst] : Adjacency::recurrent_slots(d)) {
    const SkipType t = adj_.recurrent_at(src, dst);
    if (t != SkipType::None && !spec_.recurrent_slot_allows(src, dst, t)) {
      throw std::invalid_argument(
          "Block '" + spec_.name + "': recurrent slot (" +
          std::to_string(src) + "->" + std::to_string(dst) +
          ") does not allow " + to_string(t));
    }
  }

  nodes_.reserve(static_cast<std::size_t>(d));
  for (int i = 1; i <= d; ++i) {
    Node node;
    node.plan = spec_.nodes[static_cast<std::size_t>(i - 1)];
    node.main_in_c = spec_.node_out_channels(i - 1);

    // Supernet input layout: [main | seg(src=0) | seg(src=1) | ...] over
    // every potential DSC source, active or not.
    std::int64_t offset = node.main_in_c;
    const bool dsc_ok =
        node.plan.op != NodeOp::DwConv3x3;  // mirror slot_allows
    if (dsc_ok) {
      for (int src = 0; src <= i - 2; ++src) {
        Segment seg;
        seg.src = src;
        seg.src_channels = dsc_channel_subset(
            spec_.name, src, i, spec_.node_out_channels(src),
            cfg_.dsc_fraction);
        seg.offset = offset;
        offset += static_cast<std::int64_t>(seg.src_channels.size());
        node.potential_segments.push_back(std::move(seg));
      }
    }
    node.supernet_in_c = offset;

    // Gather indices of the channels this candidate actually uses.
    for (std::int64_t c = 0; c < node.main_in_c; ++c) {
      node.used_weight_channels.push_back(c);
    }
    for (const Segment& seg : node.potential_segments) {
      if (adj_.at(seg.src, i) == SkipType::DSC) {
        for (std::size_t k = 0; k < seg.src_channels.size(); ++k) {
          node.used_weight_channels.push_back(
              seg.offset + static_cast<std::int64_t>(k));
        }
      }
    }
    node.used_in_c =
        static_cast<std::int64_t>(node.used_weight_channels.size());

    const std::string base =
        spec_.name + ".n" + std::to_string(i);
    node.op = make_op(node.plan, node.used_in_c, rng, base + ".op");
    node.bn = std::make_unique<BatchNormTT>(
        node.plan.out_channels, cfg_.max_timesteps, 0.1f, 1e-5f, base + ".bn");
    if (!node.plan.spiking) {
      node.neuron = std::make_unique<Identity>();
    } else if (cfg_.mode == NeuronMode::Spiking) {
      if (cfg_.neuron == NeuronKind::Plif) {
        node.neuron = std::make_unique<Plif>(cfg_.lif, base + ".plif");
      } else {
        node.neuron = std::make_unique<Lif>(cfg_.lif, base + ".lif");
      }
    } else {
      node.neuron = std::make_unique<ReLU>();
    }
    nodes_.push_back(std::move(node));
  }

  // Materialize the active skip edges, ordered by (dst, src).
  for (int dst = 2; dst <= d; ++dst) {
    for (int src = 0; src <= dst - 2; ++src) {
      const SkipType t = adj_.at(src, dst);
      if (t == SkipType::None) continue;
      SkipEdge edge;
      edge.src = src;
      edge.dst = dst;
      edge.type = t;
      const std::int64_t src_c = spec_.node_out_channels(src);
      const std::int64_t dst_main_c = spec_.node_out_channels(dst - 1);
      const std::int64_t ratio =
          spec_.spatial_div(dst - 1) / spec_.spatial_div(src);
      const std::string ename = spec_.name + ".e" + std::to_string(src) +
                                "_" + std::to_string(dst);
      if (t == SkipType::DSC) {
        edge.channels =
            dsc_channel_subset(spec_.name, src, dst, src_c, cfg_.dsc_fraction);
        if (ratio > 1) {
          // Ceil-mode pooling matches the conv path's ceil(H/ratio)
          // spatial arithmetic for every input size (see nn/pooling.h).
          edge.pool =
              std::make_unique<AvgPool2d>(ratio, ratio, /*ceil_mode=*/true);
        }
      } else {  // ASC
        if (src_c != dst_main_c || ratio > 1) {
          edge.proj = std::make_unique<Conv2d>(src_c, dst_main_c, 1, ratio, 0,
                                               /*bias=*/false, rng,
                                               ename + ".proj");
        }
      }
      edges_.push_back(std::move(edge));
    }
  }

  // Recurrent (one-step-delayed) edges, ordered by (dst, src).
  for (int dst = 1; dst <= d; ++dst) {
    for (int src = dst; src <= d; ++src) {
      if (adj_.recurrent_at(src, dst) != SkipType::ASC) continue;
      RecurrentEdge edge;
      edge.src = src;
      edge.dst = dst;
      const std::int64_t src_c = spec_.node_out_channels(src);
      const std::int64_t dst_main_c = spec_.node_out_channels(dst - 1);
      if (src_c != dst_main_c) {
        edge.proj = std::make_unique<Conv2d>(
            src_c, dst_main_c, 1, 1, 0, /*bias=*/false, rng,
            spec_.name + ".r" + std::to_string(src) + "_" +
                std::to_string(dst) + ".proj");
      }
      redges_.push_back(std::move(edge));
    }
  }
}

Tensor Block::assemble_input(int i, const std::vector<Tensor>& outs,
                             bool train) {
  Tensor main = outs[static_cast<std::size_t>(i - 1)];  // copy: may be added to

  // ASC edges first: they modify the main path.
  for (auto& edge : edges_) {
    if (edge.dst != i || edge.type != SkipType::ASC) continue;
    const Tensor& src_out = outs[static_cast<std::size_t>(edge.src)];
    if (edge.proj) {
      main.add_(edge.proj->forward(src_out, train));
    } else {
      main.add_(src_out);
    }
  }

  // Recurrent edges deliver the previous timestep's outputs (zero
  // contribution at the first step of a sequence).
  if (has_prev_) {
    for (auto& edge : redges_) {
      if (edge.dst != i) continue;
      const Tensor& src_prev = prev_outputs_[static_cast<std::size_t>(edge.src)];
      if (edge.proj) {
        main.add_(edge.proj->forward(src_prev, train));
      } else {
        main.add_(src_prev);
      }
    }
  }

  // DSC edges widen the input via concatenation, in src order (matching the
  // used_weight_channels layout).
  std::vector<Tensor> gathered;
  for (auto& edge : edges_) {
    if (edge.dst != i || edge.type != SkipType::DSC) continue;
    Tensor part = gather_channels(outs[static_cast<std::size_t>(edge.src)],
                                  edge.channels);
    if (edge.pool) part = edge.pool->forward(part, train);
    gathered.push_back(std::move(part));
  }
  if (gathered.empty()) return main;

  std::vector<const Tensor*> parts;
  parts.push_back(&main);
  for (const Tensor& g : gathered) parts.push_back(&g);
  return concat_channels(parts);
}

Tensor Block::forward(const Tensor& x, bool train) {
  SNNSKIP_SPAN("block.fwd", spec_.name);
  const int d = spec_.depth();
  const bool had_prev = has_prev_;  // recurrence state entering this step
  std::vector<Tensor> outs;
  outs.reserve(static_cast<std::size_t>(d + 1));
  outs.push_back(x);

  for (int i = 1; i <= d; ++i) {
    Node& node = nodes_[static_cast<std::size_t>(i - 1)];
    Tensor in = assemble_input(i, outs, train);
    Tensor y = node.op->forward(in, train);
    y = node.bn->forward(y, train);
    y = node.neuron->forward(y, train);
    outs.push_back(std::move(y));
  }

  if (train) {
    Ctx ctx;
    ctx.node_out_shapes.reserve(outs.size());
    for (const Tensor& t : outs) ctx.node_out_shapes.push_back(t.shape());
    ctx.used_recurrent = had_prev;
    saved_.push_back(std::move(ctx));
  }
  if (!redges_.empty()) {
    prev_outputs_ = outs;  // keep t's outputs for the t+1 delayed edges
    has_prev_ = true;
  }
  return std::move(outs.back());
}

Tensor Block::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("block.bwd", spec_.name);
  assert(!saved_.empty() && "Block::backward without matching forward");
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();

  const int d = spec_.depth();
  std::vector<Tensor> grads;
  grads.reserve(static_cast<std::size_t>(d + 1));
  for (int i = 0; i <= d; ++i) {
    grads.emplace_back(ctx.node_out_shapes[static_cast<std::size_t>(i)]);
  }
  grads[static_cast<std::size_t>(d)].add_(grad_out);

  // Recurrent gradients produced while processing timestep t+1 target the
  // outputs of this timestep; consume them now.
  if (has_carry_) {
    for (int i = 0; i <= d; ++i) {
      grads[static_cast<std::size_t>(i)].add_(
          pending_carry_[static_cast<std::size_t>(i)]);
    }
    has_carry_ = false;
  }
  std::vector<Tensor> next_carry;
  if (!redges_.empty() && ctx.used_recurrent) {
    next_carry.reserve(static_cast<std::size_t>(d + 1));
    for (int i = 0; i <= d; ++i) {
      next_carry.emplace_back(ctx.node_out_shapes[static_cast<std::size_t>(i)]);
    }
  }

  for (int i = d; i >= 1; --i) {
    Node& node = nodes_[static_cast<std::size_t>(i - 1)];
    Tensor g = node.neuron->backward(grads[static_cast<std::size_t>(i)]);
    g = node.bn->backward(g);
    Tensor g_in = node.op->backward(g);  // channels == used_in_c

    Tensor g_main = slice_channels(g_in, 0, node.main_in_c);

    // DSC segments come after the main channels, in (src ascending) order.
    std::int64_t off = node.main_in_c;
    for (auto& edge : edges_) {
      if (edge.dst != i || edge.type != SkipType::DSC) continue;
      const std::int64_t len =
          static_cast<std::int64_t>(edge.channels.size());
      Tensor g_seg = slice_channels(g_in, off, off + len);
      off += len;
      if (edge.pool) g_seg = edge.pool->backward(g_seg);
      scatter_add_channels(grads[static_cast<std::size_t>(edge.src)], g_seg,
                           edge.channels);
    }
    assert(off == node.used_in_c);

    // ASC edges receive the main-path gradient unchanged.
    for (auto& edge : edges_) {
      if (edge.dst != i || edge.type != SkipType::ASC) continue;
      if (edge.proj) {
        grads[static_cast<std::size_t>(edge.src)].add_(
            edge.proj->backward(g_main));
      } else {
        grads[static_cast<std::size_t>(edge.src)].add_(g_main);
      }
    }

    // Recurrent edges: the gradient flows to the source's output at t-1,
    // delivered to the NEXT backward() invocation through the carry.
    if (ctx.used_recurrent) {
      for (auto& edge : redges_) {
        if (edge.dst != i) continue;
        if (edge.proj) {
          next_carry[static_cast<std::size_t>(edge.src)].add_(
              edge.proj->backward(g_main));
        } else {
          next_carry[static_cast<std::size_t>(edge.src)].add_(g_main);
        }
      }
    }

    grads[static_cast<std::size_t>(i - 1)].add_(g_main);
  }

  if (!next_carry.empty()) {
    pending_carry_ = std::move(next_carry);
    has_carry_ = true;
  }
  return std::move(grads[0]);
}

void Block::reset_state() {
  saved_.clear();
  for (auto& node : nodes_) {
    node.op->reset_state();
    node.bn->reset_state();
    node.neuron->reset_state();
  }
  for (auto& edge : edges_) {
    if (edge.proj) edge.proj->reset_state();
    if (edge.pool) edge.pool->reset_state();
  }
  for (auto& edge : redges_) {
    if (edge.proj) edge.proj->reset_state();
  }
  prev_outputs_.clear();
  has_prev_ = false;
  pending_carry_.clear();
  has_carry_ = false;
}

std::vector<Parameter*> Block::parameters() {
  std::vector<Parameter*> out;
  for (auto& node : nodes_) {
    for (Parameter* p : node.op->parameters()) out.push_back(p);
    for (Parameter* p : node.bn->parameters()) out.push_back(p);
  }
  for (auto& edge : edges_) {
    if (edge.proj) {
      for (Parameter* p : edge.proj->parameters()) out.push_back(p);
    }
  }
  for (auto& edge : redges_) {
    if (edge.proj) {
      for (Parameter* p : edge.proj->parameters()) out.push_back(p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Tensor*>> Block::buffers() {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (auto& node : nodes_) {
    for (auto& b : node.bn->buffers()) out.push_back(std::move(b));
  }
  return out;
}

std::int64_t Block::macs(const Shape& in) const {
  const int d = spec_.depth();
  std::int64_t total = 0;
  // Track per-node output shapes to size each op's input.
  std::vector<Shape> shapes;
  shapes.push_back(in);
  for (int i = 1; i <= d; ++i) {
    const Node& node = nodes_[static_cast<std::size_t>(i - 1)];
    const Shape& prev = shapes[static_cast<std::size_t>(i - 1)];
    const Shape op_in{prev[0], node.used_in_c, prev[2], prev[3]};
    total += node.op->macs(op_in);
    shapes.push_back(node.op->output_shape(op_in));
  }
  for (const auto& edge : edges_) {
    if (edge.type == SkipType::ASC && edge.proj) {
      total += edge.proj->macs(shapes[static_cast<std::size_t>(edge.src)]);
    }
  }
  for (const auto& edge : redges_) {
    if (edge.proj) {
      total += edge.proj->macs(shapes[static_cast<std::size_t>(edge.src)]);
    }
  }
  return total;
}

Shape Block::output_shape(const Shape& in) const {
  const int d = spec_.depth();
  const std::int64_t div = spec_.spatial_div(d);
  // Strided convs (k3/s2/p1 and k1/s2/p0 alike) map H -> ceil(H/2), and
  // nested ceils compose, so the block output is ceil(H/div).
  return Shape{in[0], spec_.node_out_channels(d), (in[2] + div - 1) / div,
               (in[3] + div - 1) / div};
}

void Block::set_recorder(FiringRateRecorder* rec) {
  for (auto& node : nodes_) {
    if (auto* lif = dynamic_cast<Lif*>(node.neuron.get())) {
      lif->set_recorder(rec);
    } else if (auto* plif = dynamic_cast<Plif*>(node.neuron.get())) {
      plif->set_recorder(rec);
    }
  }
}

}  // namespace snnskip
