#pragma once
// Parallel candidate evaluation for the search loops ("parallel BO",
// paper §III-B): fine-tune up to k proposed topologies concurrently on
// ThreadPool::global().
//
// Determinism contract (mirrors the data-parallel trainer, DESIGN.md §5f):
// every candidate in a batch is a pure function of
//   (weight-store snapshot at batch entry, its code, its GLOBAL evaluation
//    index) — never of the execution schedule. Concretely:
//   * all k candidates start from the SAME WeightStore snapshot, each via
//     a private store copy (so get_or_init never races and a candidate
//     cannot observe a concurrent sibling's weights);
//   * each candidate's fine-tune seed is split-derived from the global
//     evaluation index, so resuming a journaled search re-derives the
//     same seeds for the remaining suffix;
//   * successful candidates' weights merge back into the shared store via
//     store_from in candidate-index order, on the calling thread.
// Batches of one executed serially are therefore the reference trajectory:
// workers only change how many fine-tunes run concurrently, never any
// result. Divergence isolation is inherited per-fit from the health
// monitor; a failed candidate merges nothing back.

#include <cstdint>
#include <vector>

#include "core/evaluator.h"

namespace snnskip {

struct ParallelEvalConfig {
  /// Concurrent candidate fine-tunes; 0 reads SNNSKIP_WORKERS (unset => 1).
  std::int64_t workers = 0;
  /// Derive each candidate's fine-tune seed from its global evaluation
  /// index (split stream). Disable to reproduce the legacy fixed-seed
  /// fine-tunes exactly (then batch_k == 1 matches evaluate_shared
  /// bit-for-bit).
  bool reseed_candidates = true;
};

class ParallelCandidateEvaluator {
 public:
  /// Borrows `base` (must outlive the parallel evaluator); all weights,
  /// references, and cost accounting stay in the base evaluator.
  explicit ParallelCandidateEvaluator(CandidateEvaluator& base,
                                      ParallelEvalConfig cfg = {});

  std::int64_t workers() const { return workers_; }

  /// Evaluate `codes` as one batch with global evaluation indices
  /// start_idx .. start_idx + codes.size() - 1 (the search loop's journal
  /// indices). Returns one CandidateResult per code, in order.
  std::vector<CandidateResult> evaluate_shared_batch(
      std::size_t start_idx, const std::vector<EncodingVec>& codes);

  /// The fine-tune seed used for global evaluation index `idx` (split
  /// stream off `base_seed`). Exposed for the replay tests.
  static std::uint64_t candidate_seed(std::uint64_t base_seed,
                                      std::size_t idx);

 private:
  CandidateEvaluator* base_;
  ParallelEvalConfig cfg_;
  std::int64_t workers_ = 1;
};

}  // namespace snnskip
