#include "core/adapter.h"

#include "graph/mac_counter.h"
#include "util/logging.h"
#include "util/runtime_env.h"
#include "util/timer.h"

namespace snnskip {

BoProblem make_bo_problem(CandidateEvaluator& evaluator) {
  BoProblem problem;
  problem.sample = [&evaluator](Rng& rng) {
    return evaluator.space().sample(rng);
  };
  problem.featurize = [](const EncodingVec& code) {
    return one_hot_features(code);
  };
  problem.objective = [&evaluator](const EncodingVec& code) {
    return evaluator.evaluate_shared(code).objective;
  };
  // observe carries the failed flag into the search trace / journal, so a
  // penalized candidate is distinguishable from a genuinely bad one.
  problem.observe = [&evaluator](const EncodingVec& code) {
    const CandidateResult r = evaluator.evaluate_shared(code);
    return Observation{code, r.objective, r.failed};
  };
  return problem;
}

BoProblem make_scratch_problem(CandidateEvaluator& evaluator) {
  BoProblem problem = make_bo_problem(evaluator);
  problem.objective = [&evaluator](const EncodingVec& code) {
    return evaluator.evaluate_scratch(code).objective;
  };
  problem.observe = [&evaluator](const EncodingVec& code) {
    const CandidateResult r = evaluator.evaluate_scratch(code);
    return Observation{code, r.objective, r.failed};
  };
  return problem;
}

BoProblem make_parallel_bo_problem(CandidateEvaluator& evaluator,
                                   ParallelCandidateEvaluator& parallel) {
  BoProblem problem = make_bo_problem(evaluator);
  problem.observe_batch = [&parallel](std::size_t start_idx,
                                      const std::vector<EncodingVec>& codes) {
    const std::vector<CandidateResult> results =
        parallel.evaluate_shared_batch(start_idx, codes);
    std::vector<Observation> observations;
    observations.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      observations.push_back(
          Observation{codes[i], results[i].objective, results[i].failed});
    }
    return observations;
  };
  return problem;
}

SearchTrace bo_trace(CandidateEvaluator& evaluator, const BoConfig& cfg) {
  const BoProblem problem = make_bo_problem(evaluator);
  return run_bayes_opt(problem, cfg);
}

SearchTrace bo_trace_parallel(CandidateEvaluator& evaluator,
                              const BoConfig& cfg,
                              const ParallelEvalConfig& pcfg) {
  ParallelCandidateEvaluator parallel(evaluator, pcfg);
  const BoProblem problem = make_parallel_bo_problem(evaluator, parallel);
  return run_bayes_opt(problem, cfg);
}

SearchTrace rs_trace(CandidateEvaluator& evaluator, const RsConfig& cfg) {
  const BoProblem problem = make_scratch_problem(evaluator);
  return run_random_search(problem, cfg);
}

AdaptationReport run_adaptation(const AdapterConfig& cfg) {
  AdaptationReport report;
  Timer timer;

  DatasetBundle data = make_datasets(cfg.dataset, cfg.data_cfg);

  EvaluatorConfig ecfg;
  ecfg.model = cfg.model;
  ecfg.model_cfg = cfg.model_cfg;
  ecfg.model_cfg.seed = cfg.seed;
  ecfg.finetune = cfg.finetune;
  ecfg.scratch = cfg.base_train;
  ecfg.seed = cfg.seed;
  CandidateEvaluator evaluator(ecfg, data);

  const Shape in_shape{1, data.train->step_channels(),
                       cfg.data_cfg.height, cfg.data_cfg.width};

  // (1) ANN reference on static-image datasets.
  if (data.has_ann_reference) {
    ModelConfig ann_cfg = evaluator.model_config();
    ann_cfg.mode = NeuronMode::Analog;
    ann_cfg.max_timesteps = 1;
    ann_cfg.seed = cfg.seed ^ 0xA11ULL;
    Network ann = build_model(cfg.model, ann_cfg,
                              default_adjacencies(cfg.model, ann_cfg));
    const TrainConfig& ann_train =
        cfg.ann_train.epochs > 0 ? cfg.ann_train : cfg.base_train;
    fit(ann, NeuronMode::Analog, data.train, nullptr, ann_train);
    report.ann_test_acc =
        evaluate(ann, NeuronMode::Analog, *data.test, ann_train).accuracy;
    report.has_ann = true;
    evaluator.set_ann_reference(report.ann_test_acc);
    SNNSKIP_LOG(Info) << cfg.model << "/" << cfg.dataset
                      << " ANN test acc=" << report.ann_test_acc;
  }

  // (2) Vanilla SNN: the architecture's native adjacency, full budget.
  const auto default_adjs =
      default_adjacencies(cfg.model, evaluator.model_config());
  const EncodingVec default_code = evaluator.space().encode(default_adjs);
  {
    Network snn = evaluator.build(default_code);
    fit(snn, NeuronMode::Spiking, data.train, nullptr, cfg.base_train);
    FiringRateRecorder recorder;
    const EvalResult test = evaluate(snn, NeuronMode::Spiking, *data.test,
                                     cfg.base_train, &recorder);
    report.snn_base_test_acc = test.accuracy;
    report.snn_base_firing_rate = test.firing_rate;
    report.snn_base_macs = count_macs(snn, in_shape).total;
    // Seed the shared store with the trained baseline weights.
    evaluator.store().store_from(snn);
    SNNSKIP_LOG(Info) << cfg.model << "/" << cfg.dataset
                      << " vanilla SNN test acc=" << test.accuracy
                      << " rate=" << test.firing_rate;
  }

  // (3) Bayesian optimization over the skip-connection space.
  // SNNSKIP_WORKERS > 1 opts the round batches into concurrent candidate
  // fine-tunes (batch-entry snapshot semantics, core/parallel_evaluator.h);
  // the default stays the serial reference trajectory.
  if (env::workers(1) > 1) {
    report.trace = bo_trace_parallel(evaluator, cfg.bo, ParallelEvalConfig{});
  } else {
    report.trace = bo_trace(evaluator, cfg.bo);
  }
  report.best_code = report.trace.best;

  // (4) Final training of the winner from the shared weights.
  {
    Network best = evaluator.build(report.best_code);
    evaluator.store().load_into(best);
    fit(best, NeuronMode::Spiking, data.train, nullptr, cfg.base_train);
    FiringRateRecorder recorder;
    const EvalResult test = evaluate(best, NeuronMode::Spiking, *data.test,
                                     cfg.base_train, &recorder);
    report.optimized_test_acc = test.accuracy;
    report.optimized_firing_rate = test.firing_rate;
    report.optimized_macs = count_macs(best, in_shape).total;
    SNNSKIP_LOG(Info) << cfg.model << "/" << cfg.dataset
                      << " optimized SNN test acc=" << test.accuracy
                      << " rate=" << test.firing_rate;
  }

  report.search_seconds = timer.elapsed_s();
  return report;
}

}  // namespace snnskip
