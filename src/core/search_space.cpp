#include "core/search_space.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace snnskip {

SearchSpace::SearchSpace(std::vector<BlockSpec> specs, bool include_recurrent)
    : specs_(std::move(specs)) {
  for (std::size_t b = 0; b < specs_.size(); ++b) {
    for (const auto& [i, j] : Adjacency::skip_slots(specs_[b].depth())) {
      slots_.push_back(SlotRef{b, i, j, false});
    }
  }
  if (include_recurrent) {
    for (std::size_t b = 0; b < specs_.size(); ++b) {
      for (const auto& [src, dst] :
           Adjacency::recurrent_slots(specs_[b].depth())) {
        // Only expose slots that some value other than None can occupy.
        if (specs_[b].recurrent_slot_allows(src, dst, SkipType::ASC)) {
          slots_.push_back(SlotRef{b, src, dst, true});
        }
      }
    }
  }
}

bool SearchSpace::value_allowed(std::size_t k, int value) const {
  assert(k < slots_.size());
  if (value < 0 || value > 2) return false;
  if (value == 0) return true;
  const SlotRef& s = slots_[k];
  if (s.recurrent) {
    return specs_[s.block].recurrent_slot_allows(
        s.src, s.dst, static_cast<SkipType>(value));
  }
  return specs_[s.block].slot_allows(s.src, s.dst,
                                     static_cast<SkipType>(value));
}

EncodingVec SearchSpace::sample(Rng& rng) const {
  EncodingVec code(slots_.size(), 0);
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    std::vector<int> allowed;
    for (int v = 0; v <= 2; ++v) {
      if (value_allowed(k, v)) allowed.push_back(v);
    }
    code[k] = allowed[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(allowed.size())))];
  }
  return code;
}

EncodingVec SearchSpace::mutate(const EncodingVec& code, Rng& rng) const {
  assert(code.size() == slots_.size());
  EncodingVec out = code;
  if (slots_.empty()) return out;
  // Pick a slot with at least two admissible values.
  for (int tries = 0; tries < 64; ++tries) {
    const std::size_t k = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(slots_.size())));
    std::vector<int> alternatives;
    for (int v = 0; v <= 2; ++v) {
      if (v != out[k] && value_allowed(k, v)) alternatives.push_back(v);
    }
    if (alternatives.empty()) continue;
    out[k] = alternatives[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(alternatives.size())))];
    return out;
  }
  return out;
}

std::vector<Adjacency> SearchSpace::decode(const EncodingVec& code) const {
  if (code.size() != slots_.size()) {
    throw std::invalid_argument("SearchSpace::decode: encoding length");
  }
  std::vector<Adjacency> adjs;
  adjs.reserve(specs_.size());
  for (const auto& spec : specs_) adjs.emplace_back(spec.depth());
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    if (code[k] == 0) continue;
    if (!value_allowed(k, code[k])) {
      throw std::invalid_argument("SearchSpace::decode: inadmissible value");
    }
    const SlotRef& s = slots_[k];
    if (s.recurrent) {
      adjs[s.block].set_recurrent(s.src, s.dst,
                                  static_cast<SkipType>(code[k]));
    } else {
      adjs[s.block].set(s.src, s.dst, static_cast<SkipType>(code[k]));
    }
  }
  return adjs;
}

EncodingVec SearchSpace::encode(const std::vector<Adjacency>& adjs) const {
  if (adjs.size() != specs_.size()) {
    throw std::invalid_argument("SearchSpace::encode: block count");
  }
  EncodingVec code(slots_.size(), 0);
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    const SlotRef& s = slots_[k];
    code[k] = static_cast<int>(
        s.recurrent ? adjs[s.block].recurrent_at(s.src, s.dst)
                    : adjs[s.block].at(s.src, s.dst));
  }
  return code;
}

bool SearchSpace::valid(const EncodingVec& code) const {
  if (code.size() != slots_.size()) return false;
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    if (!value_allowed(k, code[k])) return false;
  }
  return true;
}

double SearchSpace::log10_size() const {
  double log_size = 0.0;
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    int count = 0;
    for (int v = 0; v <= 2; ++v) {
      if (value_allowed(k, v)) ++count;
    }
    log_size += std::log10(static_cast<double>(count));
  }
  return log_size;
}

}  // namespace snnskip
