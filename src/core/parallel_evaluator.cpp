#include "core/parallel_evaluator.h"

#include <atomic>
#include <cmath>
#include <future>

#include "parallel/thread_pool.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/runtime_env.h"

namespace snnskip {

ParallelCandidateEvaluator::ParallelCandidateEvaluator(CandidateEvaluator& base,
                                                       ParallelEvalConfig cfg)
    : base_(&base),
      cfg_(cfg),
      workers_(cfg.workers > 0 ? cfg.workers : env::workers(1)) {}

std::uint64_t ParallelCandidateEvaluator::candidate_seed(
    std::uint64_t base_seed, std::size_t idx) {
  // Same derivation style as Encoder::clone_shard: a splitmix step off a
  // golden-ratio-spread state is a pure function of (base_seed, idx) and
  // decorrelates nearby indices.
  std::uint64_t state =
      base_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(idx) + 1));
  return splitmix64(state);
}

std::vector<CandidateResult> ParallelCandidateEvaluator::evaluate_shared_batch(
    std::size_t start_idx, const std::vector<EncodingVec>& codes) {
  SNNSKIP_SPAN("bo", "evaluate_batch");
  const std::size_t k = codes.size();
  std::vector<CandidateResult> results(k);
  if (k == 0) return results;
  Telemetry::count_max("bo.parallel_candidates", static_cast<double>(k));

  // Every candidate starts from the store as it stands at batch entry —
  // the snapshot is read-only from here; per-candidate get_or_init happens
  // in private copies.
  const WeightStore::Snapshot entry = base_->store().snapshot();
  const EvaluatorConfig& ecfg = base_->config();

  // Candidates that survive keep their fine-tuned network here for the
  // ordered merge after the batch completes.
  std::vector<Network> nets(k);
  std::vector<char> merge(k, 0);

  auto run_candidate = [&](std::size_t c) {
    SNNSKIP_SPAN("bo", "parallel_candidate");
    Telemetry::count("bo.finetunes");
    Network net = base_->build(codes[c]);
    WeightStore ws(ecfg.seed);
    ws.restore(entry);  // copy; the shared snapshot stays untouched
    ws.load_into(net);
    TrainConfig finetune = ecfg.finetune;
    if (cfg_.reseed_candidates) {
      finetune.seed = candidate_seed(finetune.seed, start_idx + c);
    }
    const FitResult fr = [&] {
      SNNSKIP_SPAN("bo", "finetune");
      return fit(net, NeuronMode::Spiking, base_->data().train, nullptr,
                 finetune);
    }();
    CandidateResult res;
    bool failed = fr.diverged;
    if (!failed) {
      res = base_->finish(net, fr, codes[c]);
      failed =
          !std::isfinite(res.objective) || !std::isfinite(res.val_accuracy);
    }
    if (failed) {
      results[c] = base_->failed_result(fr, "parallel-shared");
      return;
    }
    res.health_retries = fr.health_retries;
    results[c] = res;
    nets[c] = std::move(net);
    merge[c] = 1;
    SNNSKIP_LOG(Debug) << "parallel-shared eval[" << (start_idx + c)
                       << "]: acc=" << res.val_accuracy
                       << " objective=" << res.objective;
  };

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t c; (c = next.fetch_add(1)) < k;) run_candidate(c);
  };
  const std::size_t concurrency =
      std::min<std::size_t>(static_cast<std::size_t>(workers_), k);
  if (concurrency <= 1 || ThreadPool::on_worker_thread()) {
    drain();
  } else {
    std::vector<std::future<void>> helpers;
    helpers.reserve(concurrency - 1);
    for (std::size_t i = 0; i < concurrency - 1; ++i) {
      helpers.push_back(ThreadPool::global().submit(drain));
    }
    drain();
    for (auto& h : helpers) h.get();
  }

  // Ordered merge on the calling thread: later candidates win where slices
  // overlap, exactly as sequential evaluate_shared calls would compose.
  for (std::size_t c = 0; c < k; ++c) {
    if (merge[c]) base_->store().store_from(nets[c]);
  }
  base_->add_evaluations(k);
  return results;
}

}  // namespace snnskip
