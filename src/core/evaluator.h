#pragma once
// Candidate evaluation (the expensive f(A) inside the BO loop).
//
// Two regimes, matching the paper's comparison:
//   evaluate_shared  — the proposed method: load the supernet weights from
//                      the shared WeightStore, fine-tune for n epochs, read
//                      validation accuracy, write the weights back.
//   evaluate_scratch — the random-search baseline's regime: fresh weights,
//                      full training budget, no sharing.
//
// The objective handed to the optimizer is the ACCURACY DROP versus the ANN
// reference when one exists (static-image datasets), otherwise the negated
// validation accuracy — both minimized.

#include <optional>

#include "core/search_space.h"
#include "metrics/energy.h"
#include "models/zoo.h"
#include "train/evaluate.h"
#include "train/trainer.h"
#include "train/weight_store.h"

namespace snnskip {

struct CandidateResult {
  double val_accuracy = 0.0;
  double firing_rate = 0.0;
  std::int64_t macs = 0;       ///< per timestep, batch of one
  double energy_pj = 0.0;      ///< spike-driven inference energy estimate
  double objective = 0.0;      ///< what the optimizer minimizes
  /// Training diverged past the health monitor's retry budget (or the
  /// metrics came back non-finite). The objective is then the finite
  /// failure penalty, and for shared evaluation the WeightStore was
  /// restored to its pre-candidate state.
  bool failed = false;
  int health_retries = 0;      ///< rollbacks spent during the fine-tune
};

struct EvaluatorConfig {
  std::string model = "resnet18s";
  ModelConfig model_cfg{};     ///< in_channels / classes / T set from data
  TrainConfig finetune{};      ///< the n-epoch shared-weights budget
  TrainConfig scratch{};       ///< the from-scratch budget (RS baseline)
  std::uint64_t seed = 3;

  /// Energy-aware trade-off weight lambda (paper contribution: "optimize
  /// the trade-off between accuracy drop and energy efficiency"). The
  /// minimized objective becomes
  ///   drop(A) + lambda * energy(A) / energy(reference)
  /// where energy is the spike-driven inference estimate (metrics/energy.h)
  /// and the reference is set via set_energy_reference (the vanilla SNN).
  /// lambda == 0 reproduces the pure accuracy objective.
  double energy_weight = 0.0;
  EnergyModel energy_model{};

  /// Include one-step-delayed backward connections in the search space
  /// (the paper's future-work extension; see graph/adjacency.h).
  bool include_recurrent = false;

  /// Objective assigned to failed (diverged) candidates: finite and worse
  /// than any achievable value in both objective regimes (drop <= 1,
  /// -accuracy <= 0), but moderate enough not to wreck the GP's target
  /// standardization the way a 1e9 sentinel would.
  double failure_penalty = 2.0;

  /// Apply the health guard (with the SNNSKIP_MAX_RETRIES budget) to
  /// candidate trainings unless the TrainConfigs already enable one.
  bool guard_candidates = true;
};

class CandidateEvaluator {
 public:
  CandidateEvaluator(EvaluatorConfig cfg, DatasetBundle data);

  const SearchSpace& space() const { return space_; }
  WeightStore& store() { return store_; }
  const EvaluatorConfig& config() const { return cfg_; }
  const DatasetBundle& data() const { return data_; }
  const ModelConfig& model_config() const { return model_cfg_; }

  /// Drop objective uses this ANN accuracy when set.
  void set_ann_reference(double ann_acc) { ann_ref_ = ann_acc; }
  std::optional<double> ann_reference() const { return ann_ref_; }

  /// Reference energy (pJ) for the lambda-weighted term; normally the
  /// vanilla SNN's estimate. Ignored while energy_weight == 0.
  void set_energy_reference(double energy_pj) { energy_ref_ = energy_pj; }
  std::optional<double> energy_reference() const { return energy_ref_; }

  /// Spike-driven inference energy estimate for a measured candidate.
  double candidate_energy_pj(std::int64_t macs, double firing_rate) const;

  /// Build the candidate network (spiking) for an encoding.
  Network build(const EncodingVec& code) const;

  CandidateResult evaluate_shared(const EncodingVec& code);
  CandidateResult evaluate_scratch(const EncodingVec& code);

  /// Number of candidate trainings performed so far (cost accounting).
  std::size_t evaluations() const { return evaluations_; }
  /// Attribute trainings performed outside evaluate_shared/evaluate_scratch
  /// (the parallel candidate evaluator runs the fine-tunes itself but the
  /// cost ledger stays here).
  void add_evaluations(std::size_t n) { evaluations_ += n; }

  /// MACs for one timestep at batch-1 input shape.
  std::int64_t candidate_macs(const EncodingVec& code) const;

  /// Post-training measurement: validation accuracy, firing rate, MACs,
  /// energy, and the minimized objective for an already fine-tuned `net`.
  /// Shared by evaluate_shared/evaluate_scratch and the parallel candidate
  /// evaluator (core/parallel_evaluator.h); touches no evaluator state.
  CandidateResult finish(Network& net, const FitResult& fit_result,
                         const EncodingVec& code) const;
  /// Penalized result for a diverged/non-finite candidate.
  CandidateResult failed_result(const FitResult& fit_result,
                                const char* regime) const;

 private:
  Shape input_shape() const;

  EvaluatorConfig cfg_;
  DatasetBundle data_;
  ModelConfig model_cfg_;  ///< cfg_.model_cfg adjusted to the dataset
  SearchSpace space_;
  WeightStore store_;
  std::optional<double> ann_ref_;
  std::optional<double> energy_ref_;
  std::size_t evaluations_ = 0;
};

}  // namespace snnskip
