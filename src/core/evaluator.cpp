#include "core/evaluator.h"

#include <cmath>

#include "graph/mac_counter.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snnskip {

namespace {

ModelConfig adjust_model_config(ModelConfig cfg, const DatasetBundle& data,
                                const TrainConfig& train_cfg) {
  cfg.in_channels = data.train->step_channels();
  cfg.num_classes = data.train->num_classes();
  const std::int64_t t = data.train->timesteps() > 0 ? data.train->timesteps()
                                                     : train_cfg.timesteps;
  cfg.max_timesteps = t;
  return cfg;
}

EvaluatorConfig guard_config(EvaluatorConfig cfg) {
  // A diverged candidate must fail a bounded retry loop, not crash the
  // search; opt in both training budgets unless the caller configured
  // health explicitly.
  if (cfg.guard_candidates) {
    HealthConfig guarded = default_health_config();
    guarded.enabled = true;
    if (!cfg.finetune.health.enabled) cfg.finetune.health = guarded;
    if (!cfg.scratch.health.enabled) cfg.scratch.health = guarded;
  }
  return cfg;
}

}  // namespace

CandidateEvaluator::CandidateEvaluator(EvaluatorConfig cfg, DatasetBundle data)
    : cfg_(guard_config(std::move(cfg))),
      data_(std::move(data)),
      model_cfg_(adjust_model_config(cfg_.model_cfg, data_, cfg_.finetune)),
      space_(model_block_specs(cfg_.model, model_cfg_),
             cfg_.include_recurrent),
      store_(cfg_.seed) {}

Shape CandidateEvaluator::input_shape() const {
  const Shape s = data_.train->sample_shape();
  // Event samples are (T*C, H, W); per-step input is (1, C, H, W).
  return Shape{1, data_.train->step_channels(), s[s.ndim() - 2],
               s[s.ndim() - 1]};
}

Network CandidateEvaluator::build(const EncodingVec& code) const {
  ModelConfig cfg = model_cfg_;
  cfg.mode = NeuronMode::Spiking;
  return build_model(cfg_.model, cfg, space_.decode(code));
}

std::int64_t CandidateEvaluator::candidate_macs(
    const EncodingVec& code) const {
  const Network net = build(code);
  return count_macs(net, input_shape()).total;
}

double CandidateEvaluator::candidate_energy_pj(std::int64_t macs,
                                               double firing_rate) const {
  return cfg_.energy_model.snn_energy_pj(macs, firing_rate,
                                         model_cfg_.max_timesteps);
}

CandidateResult CandidateEvaluator::finish(Network& net,
                                           const FitResult& fit_result,
                                           const EncodingVec& code) const {
  (void)fit_result;
  FiringRateRecorder recorder;
  const EvalResult val = evaluate(net, NeuronMode::Spiking, *data_.val,
                                  cfg_.finetune, &recorder);
  CandidateResult res;
  res.val_accuracy = val.accuracy;
  res.firing_rate = val.firing_rate;
  res.macs = candidate_macs(code);
  res.energy_pj = candidate_energy_pj(res.macs, res.firing_rate);
  res.objective = ann_ref_ ? (*ann_ref_ - val.accuracy) : -val.accuracy;
  if (cfg_.energy_weight > 0.0) {
    // Scalarized accuracy/energy trade-off; normalized so lambda has the
    // same meaning across models ("1.0 == one reference-energy unit costs
    // one full accuracy point of budget").
    const double ref = energy_ref_.value_or(res.energy_pj);
    if (ref > 0.0) {
      res.objective += cfg_.energy_weight * res.energy_pj / ref;
    }
  }
  return res;
}

CandidateResult CandidateEvaluator::failed_result(const FitResult& fr,
                                                  const char* regime) const {
  CandidateResult res;
  res.failed = true;
  res.objective = cfg_.failure_penalty;
  res.health_retries = fr.health_retries;
  Telemetry::count("bo.failed_candidates");
  SNNSKIP_LOG(Warn) << regime << " eval: candidate failed (diverged="
                    << fr.diverged << ", retries=" << fr.health_retries
                    << "), penalized objective=" << res.objective;
  return res;
}

CandidateResult CandidateEvaluator::evaluate_shared(const EncodingVec& code) {
  SNNSKIP_SPAN("bo", "evaluate_shared");
  ++evaluations_;
  Network net = build(code);
  // Snapshot so a diverged fine-tune can be rolled back wholesale: shared
  // weights must only ever advance by healthy candidates.
  WeightStore::Snapshot snap = store_.snapshot();
  store_.load_into(net);
  Telemetry::count("bo.finetunes");
  const FitResult fr = [&] {
    SNNSKIP_SPAN("bo", "finetune");
    return fit(net, NeuronMode::Spiking, data_.train, nullptr, cfg_.finetune);
  }();
  CandidateResult res;
  bool failed = fr.diverged;
  if (!failed) {
    res = finish(net, fr, code);
    failed = !std::isfinite(res.objective) || !std::isfinite(res.val_accuracy);
  }
  if (failed) {
    store_.restore(std::move(snap));
    res = failed_result(fr, "shared");
    return res;
  }
  store_.store_from(net);
  res.health_retries = fr.health_retries;
  SNNSKIP_LOG(Debug) << "shared eval: acc=" << res.val_accuracy
                     << " rate=" << res.firing_rate
                     << " objective=" << res.objective;
  return res;
}

CandidateResult CandidateEvaluator::evaluate_scratch(const EncodingVec& code) {
  SNNSKIP_SPAN("bo", "evaluate_scratch");
  ++evaluations_;
  Network net = build(code);
  Telemetry::count("bo.scratch_trainings");
  const FitResult fr = [&] {
    SNNSKIP_SPAN("bo", "scratch_train");
    return fit(net, NeuronMode::Spiking, data_.train, nullptr, cfg_.scratch);
  }();
  CandidateResult res;
  bool failed = fr.diverged;
  if (!failed) {
    res = finish(net, fr, code);
    failed = !std::isfinite(res.objective) || !std::isfinite(res.val_accuracy);
  }
  if (failed) return failed_result(fr, "scratch");
  res.health_retries = fr.health_retries;
  SNNSKIP_LOG(Debug) << "scratch eval: acc=" << res.val_accuracy
                     << " objective=" << res.objective;
  return res;
}

}  // namespace snnskip
