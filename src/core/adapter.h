#pragma once
// The full ANN -> SNN adaptation pipeline (paper Fig. 2):
//
//   1. (static-image datasets) train the ANN twin -> reference accuracy;
//   2. train the vanilla SNN (the architecture's native adjacencies) ->
//      baseline accuracy / firing rate, and seed the shared WeightStore;
//   3. Bayesian-optimize the skip-connection configuration (number,
//      position, type) against the accuracy-drop objective, sharing
//      weights and fine-tuning n epochs per candidate;
//   4. retrain/fine-tune the best candidate on the full budget and report
//      test accuracy, firing rate and MACs.
//
// run_adaptation drives the whole pipeline; bo_trace / rs_trace expose the
// two search regimes separately for the Fig. 3 comparison.

#include "core/evaluator.h"
#include "core/parallel_evaluator.h"
#include "opt/bayes_opt.h"
#include "opt/random_search.h"

namespace snnskip {

struct AdapterConfig {
  std::string model = "resnet18s";
  std::string dataset = "cifar10-dvs";
  SyntheticConfig data_cfg{};
  ModelConfig model_cfg{};
  TrainConfig base_train{};  ///< vanilla SNN / final-candidate budget
  TrainConfig finetune{};    ///< per-candidate fine-tune budget (n epochs)
  /// ANN-reference budget; analog nets prefer smaller LRs than the
  /// surrogate-gradient SNNs. Used only when epochs > 0, else base_train.
  TrainConfig ann_train{.epochs = 0};
  BoConfig bo{};
  std::uint64_t seed = 5;
};

struct AdaptationReport {
  bool has_ann = false;
  double ann_test_acc = 0.0;
  double snn_base_test_acc = 0.0;
  double snn_base_firing_rate = 0.0;
  std::int64_t snn_base_macs = 0;
  double optimized_test_acc = 0.0;
  double optimized_firing_rate = 0.0;
  std::int64_t optimized_macs = 0;
  EncodingVec best_code;
  SearchTrace trace;
  double search_seconds = 0.0;
};

/// BO problem adapter over a CandidateEvaluator (shared-weights regime).
BoProblem make_bo_problem(CandidateEvaluator& evaluator);
/// Same space but the objective trains from scratch (RS baseline regime).
BoProblem make_scratch_problem(CandidateEvaluator& evaluator);
/// Shared-weights problem with observe_batch wired to a parallel candidate
/// evaluator, so each BO round's batch fine-tunes concurrently. Borrows
/// both evaluators; they must outlive the problem.
BoProblem make_parallel_bo_problem(CandidateEvaluator& evaluator,
                                   ParallelCandidateEvaluator& parallel);

SearchTrace bo_trace(CandidateEvaluator& evaluator, const BoConfig& cfg);
SearchTrace rs_trace(CandidateEvaluator& evaluator, const RsConfig& cfg);
/// bo_trace with parallel candidate evaluation (core/parallel_evaluator.h).
SearchTrace bo_trace_parallel(CandidateEvaluator& evaluator,
                              const BoConfig& cfg,
                              const ParallelEvalConfig& pcfg);

AdaptationReport run_adaptation(const AdapterConfig& cfg);

}  // namespace snnskip
