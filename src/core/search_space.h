#pragma once
// Search-space construction (paper Fig. 2, step 1): extract every block of
// a topology, enumerate its skip slots, and define the set Lambda of all
// admissible adjacency assignments. A candidate is one value in {0,1,2}
// per slot across all blocks, filtered by structural constraints
// (BlockSpec::slot_allows — e.g. no DSC into depthwise nodes).

#include <vector>

#include "graph/adjacency.h"
#include "graph/block.h"
#include "opt/encoding.h"
#include "util/rng.h"

namespace snnskip {

class SearchSpace {
 public:
  struct SlotRef {
    std::size_t block = 0;
    int src = 0;
    int dst = 0;
    bool recurrent = false;  ///< one-step-delayed edge (future-work ext.)
  };

  /// `include_recurrent` appends the recurrent (backward-connection)
  /// slots after the forward skip slots — the paper's future-work
  /// extension. Recurrent slots admit {None, ASC} only, and only where
  /// BlockSpec::recurrent_slot_allows holds.
  explicit SearchSpace(std::vector<BlockSpec> specs,
                       bool include_recurrent = false);

  const std::vector<BlockSpec>& specs() const { return specs_; }
  const std::vector<SlotRef>& slots() const { return slots_; }
  std::size_t num_slots() const { return slots_.size(); }

  /// Whether `value` (0/1/2) is admissible at slot k.
  bool value_allowed(std::size_t k, int value) const;

  /// Uniform random admissible candidate.
  EncodingVec sample(Rng& rng) const;

  /// Flip one random slot to a different admissible value.
  EncodingVec mutate(const EncodingVec& code, Rng& rng) const;

  /// Candidate -> per-block adjacency matrices (and back).
  std::vector<Adjacency> decode(const EncodingVec& code) const;
  EncodingVec encode(const std::vector<Adjacency>& adjs) const;

  /// Validity check for externally produced encodings.
  bool valid(const EncodingVec& code) const;

  /// log10 of |Lambda| (number of admissible assignments).
  double log10_size() const;

 private:
  std::vector<BlockSpec> specs_;
  std::vector<SlotRef> slots_;
};

}  // namespace snnskip
