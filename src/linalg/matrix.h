#pragma once
// Small dense double-precision matrix for the Gaussian-process surrogate.
//
// Kept separate from Tensor on purpose: GP math wants double precision and
// tiny sizes (tens of observations), while the NN substrate wants float32
// throughput. Row-major storage, value semantics.

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace snnskip {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::int64_t rows, std::int64_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), fill) {}

  static Matrix identity(std::int64_t n);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  double& operator()(std::int64_t i, std::int64_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(std::int64_t i, std::int64_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  const std::vector<double>& data() const { return data_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& o) const;
  /// y = this * x for a vector x (size cols()).
  std::vector<double> mul_vec(const std::vector<double>& x) const;

  /// this += s * I (jitter for numerical stability).
  void add_diagonal(double s);

  std::string str() const;

 private:
  std::int64_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace snnskip
