#include "linalg/cholesky.h"

#include <cmath>

namespace snnskip {

std::optional<Matrix> cholesky(const Matrix& a) {
  assert(a.rows() == a.cols());
  const std::int64_t n = a.rows();
  Matrix l(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::int64_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) return std::nullopt;
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_lower(const Matrix& l,
                                const std::vector<double>& b) {
  const std::int64_t n = l.rows();
  assert(static_cast<std::int64_t>(b.size()) == n);
  std::vector<double> x(b);
  for (std::int64_t i = 0; i < n; ++i) {
    double sum = x[static_cast<std::size_t>(i)];
    for (std::int64_t k = 0; k < i; ++k) {
      sum -= l(i, k) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
  return x;
}

std::vector<double> solve_lower_transpose(const Matrix& l,
                                          const std::vector<double>& b) {
  const std::int64_t n = l.rows();
  assert(static_cast<std::int64_t>(b.size()) == n);
  std::vector<double> x(b);
  for (std::int64_t i = n; i-- > 0;) {
    double sum = x[static_cast<std::size_t>(i)];
    for (std::int64_t k = i + 1; k < n; ++k) {
      sum -= l(k, i) * x[static_cast<std::size_t>(k)];
    }
    x[static_cast<std::size_t>(i)] = sum / l(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double cholesky_logdet(const Matrix& l) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

}  // namespace snnskip
