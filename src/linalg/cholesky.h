#pragma once
// Cholesky factorization and solves for symmetric positive-definite
// systems — the numerical core of Gaussian-process regression:
//   K = L L^T,  alpha = K^{-1} y  via two triangular solves,
//   predictive variance via  v = L^{-1} k*.

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace snnskip {

/// Lower-triangular Cholesky factor of a symmetric PD matrix.
/// Returns std::nullopt if the matrix is not positive definite (after
/// exhausting the caller's jitter budget the GP treats that as an error).
std::optional<Matrix> cholesky(const Matrix& a);

/// Solve L x = b with L lower-triangular (forward substitution).
std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b);

/// Solve L^T x = b with L lower-triangular (backward substitution).
std::vector<double> solve_lower_transpose(const Matrix& l,
                                          const std::vector<double>& b);

/// Solve (L L^T) x = b.
std::vector<double> cholesky_solve(const Matrix& l,
                                   const std::vector<double>& b);

/// log(det(K)) = 2 * sum(log(diag(L))).
double cholesky_logdet(const Matrix& l);

}  // namespace snnskip
