#include "linalg/matrix.h"

#include <sstream>

namespace snnskip {

Matrix Matrix::identity(std::int64_t n) {
  Matrix m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& o) const {
  assert(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::int64_t j = 0; j < o.cols_; ++j) {
        out(i, j) += a * o(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::mul_vec(const std::vector<double>& x) const {
  assert(static_cast<std::int64_t>(x.size()) == cols_);
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (std::int64_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols_; ++j) {
      acc += (*this)(i, j) * x[static_cast<std::size_t>(j)];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

void Matrix::add_diagonal(double s) {
  const std::int64_t n = std::min(rows_, cols_);
  for (std::int64_t i = 0; i < n; ++i) (*this)(i, i) += s;
}

std::string Matrix::str() const {
  std::ostringstream os;
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 == cols_ ? "" : " ");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace snnskip
