#include "serve/protocol.h"

#include <chrono>
#include <cstring>

#include "util/crc32.h"

namespace snnskip::serve::wire {

namespace {

// Caps on request geometry, validated before allocating. Generous next to
// anything the model zoo compiles, tight next to kMaxPayload.
constexpr std::uint32_t kMaxNameLen = 256;
constexpr std::uint32_t kMaxFrames = 65536;
constexpr std::uint32_t kMaxDim = 65536;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f32s(const float* p, std::size_t n) { raw(p, n * sizeof(float)); }
  void bytes(const std::string& s) { raw(s.data(), s.size()); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}
  std::uint8_t u8() { return *need(1); }
  std::uint16_t u16() { return copy<std::uint16_t>(); }
  std::uint32_t u32() { return copy<std::uint32_t>(); }
  std::uint64_t u64() { return copy<std::uint64_t>(); }
  std::int64_t i64() { return copy<std::int64_t>(); }
  std::string str(std::size_t len) {
    const std::uint8_t* p = need(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }
  void f32s(float* dst, std::size_t count) {
    const std::uint8_t* p = need(count * sizeof(float));
    std::memcpy(dst, p, count * sizeof(float));
  }
  std::size_t remaining() const { return n_ - off_; }

 private:
  template <typename T>
  T copy() {
    T v;
    std::memcpy(&v, need(sizeof(T)), sizeof(T));
    return v;
  }
  const std::uint8_t* need(std::size_t k) {
    if (n_ - off_ < k) throw ProtocolError("wire: truncated payload");
    const std::uint8_t* p = p_ + off_;
    off_ += k;
    return p;
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// CRC-32 low byte over the header fields that delimit and route the
// frame: {type, payload_len}. The payload CRC cannot cover these — the
// length must be trusted BEFORE the payload exists, and a flipped type
// byte would otherwise silently reroute the frame (Request -> Goaway)
// and degrade to a client timeout instead of a deterministic error.
std::uint8_t header_checksum(std::uint8_t type, std::uint32_t payload_len) {
  std::uint8_t f[5];
  f[0] = type;
  std::memcpy(f + 1, &payload_len, 4);
  return static_cast<std::uint8_t>(crc32(f, sizeof f) & 0xff);
}

std::vector<std::uint8_t> wrap(FrameType type,
                               std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  Writer h;
  h.u32(kMagic);
  h.u8(static_cast<std::uint8_t>(type));
  h.u8(header_checksum(static_cast<std::uint8_t>(type), len));
  h.u8(0);
  h.u8(0);
  h.u32(len);
  h.u32(crc32(payload.data(), payload.size()));
  out = h.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Rejected: return "rejected";
    case Status::Expired: return "expired";
    case Status::Failed: return "failed";
    case Status::BadRequest: return "bad_request";
    case Status::CrcError: return "crc_error";
  }
  return "unknown";
}

std::int64_t mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::uint8_t> encode_request(const RequestMsg& m) {
  if (m.frames.empty()) throw ProtocolError("wire: empty request sequence");
  const Shape& s = m.frames.front().shape();
  if (s.ndim() != 3) throw ProtocolError("wire: frames must be (C, H, W)");
  Writer w;
  w.u64(m.id);
  w.i64(m.deadline_ns);
  w.u16(static_cast<std::uint16_t>(m.model.size()));
  w.bytes(m.model);
  w.u32(static_cast<std::uint32_t>(m.frames.size()));
  w.u32(static_cast<std::uint32_t>(s[0]));
  w.u32(static_cast<std::uint32_t>(s[1]));
  w.u32(static_cast<std::uint32_t>(s[2]));
  for (const Tensor& f : m.frames) {
    if (f.shape() != s) throw ProtocolError("wire: ragged frame shapes");
    w.f32s(f.data(), static_cast<std::size_t>(f.numel()));
  }
  return wrap(FrameType::Request, w.take());
}

std::vector<std::uint8_t> encode_response(const ResponseMsg& m) {
  Writer w;
  w.u64(m.id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.i64(m.retry_after_us);
  const std::uint32_t classes =
      m.status == Status::Ok ? static_cast<std::uint32_t>(m.value.numel()) : 0;
  w.u32(classes);
  if (classes > 0) w.f32s(m.value.data(), classes);
  w.u16(static_cast<std::uint16_t>(
      std::min<std::size_t>(m.error.size(), kMaxNameLen)));
  w.bytes(m.error.substr(0, kMaxNameLen));
  return wrap(FrameType::Response, w.take());
}

std::vector<std::uint8_t> encode_goaway() {
  return wrap(FrameType::Goaway, {});
}

RequestMsg decode_request(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  RequestMsg m;
  m.id = r.u64();
  m.deadline_ns = r.i64();
  const std::uint16_t name_len = r.u16();
  if (name_len > kMaxNameLen) throw ProtocolError("wire: model name too long");
  m.model = r.str(name_len);
  const std::uint32_t t = r.u32();
  const std::uint32_t c = r.u32();
  const std::uint32_t h = r.u32();
  const std::uint32_t w = r.u32();
  if (t == 0 || t > kMaxFrames || c == 0 || c > kMaxDim || h == 0 ||
      h > kMaxDim || w == 0 || w > kMaxDim) {
    throw ProtocolError("wire: implausible request geometry");
  }
  const std::uint64_t frame_floats =
      static_cast<std::uint64_t>(c) * h * w;
  // Validate the full tensor block against the actual payload size BEFORE
  // allocating anything (same discipline as the checkpoint loader). The
  // check must be division-based: t*frame_floats*sizeof(float) can reach
  // 2^64 at the geometry caps (t=2^14, c=h=w=2^16 wraps to exactly 0) and
  // a wrapped product would sail past a multiplication-based bound.
  // remaining() <= kMaxPayload, t >= 1, and integer division floors, so
  // frame_floats <= (remaining/4)/t  <=>  t*frame_floats*4 <= remaining.
  const std::uint64_t max_floats = r.remaining() / sizeof(float);
  if (frame_floats > max_floats / t) {
    throw ProtocolError("wire: request payload shorter than its geometry");
  }
  const Shape frame{static_cast<std::int64_t>(c), static_cast<std::int64_t>(h),
                    static_cast<std::int64_t>(w)};
  m.frames.reserve(t);
  for (std::uint32_t i = 0; i < t; ++i) {
    Tensor f(frame);
    r.f32s(f.data(), static_cast<std::size_t>(frame_floats));
    m.frames.push_back(std::move(f));
  }
  return m;
}

ResponseMsg decode_response(const std::uint8_t* p, std::size_t n) {
  Reader r(p, n);
  ResponseMsg m;
  m.id = r.u64();
  const std::uint8_t st = r.u8();
  if (st > static_cast<std::uint8_t>(Status::CrcError)) {
    throw ProtocolError("wire: unknown response status");
  }
  m.status = static_cast<Status>(st);
  m.retry_after_us = r.i64();
  const std::uint32_t classes = r.u32();
  if (classes > kMaxDim) throw ProtocolError("wire: implausible class count");
  if (static_cast<std::uint64_t>(classes) * sizeof(float) > r.remaining()) {
    throw ProtocolError("wire: response payload shorter than its geometry");
  }
  if (classes > 0) {
    m.value = Tensor(Shape{static_cast<std::int64_t>(classes)});
    r.f32s(m.value.data(), classes);
  }
  const std::uint16_t err_len = r.u16();
  m.error = r.str(err_len);
  return m;
}

void FrameAssembler::append(const void* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer stays bounded by one frame.
  if (consumed_ > 0 && (consumed_ >= buf_.size() || consumed_ > (64u << 10))) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const auto* b = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), b, b + n);
}

std::optional<FrameAssembler::Frame> FrameAssembler::next() {
  if (buffered() < kHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + consumed_;
  std::uint32_t magic, len, crc;
  std::memcpy(&magic, h, 4);
  if (magic != kMagic) throw ProtocolError("wire: bad frame magic");
  const std::uint8_t type = h[4];
  std::memcpy(&len, h + 8, 4);
  std::memcpy(&crc, h + 12, 4);
  // Verify the header checksum BEFORE acting on type or len: a corrupted
  // length would silently desync the stream and a corrupted type would
  // reroute the frame, so neither field is trusted unchecked.
  if (h[5] != header_checksum(type, len)) {
    throw ProtocolError("wire: header checksum mismatch");
  }
  if (type < static_cast<std::uint8_t>(FrameType::Request) ||
      type > static_cast<std::uint8_t>(FrameType::Goaway)) {
    throw ProtocolError("wire: unknown frame type");
  }
  if (len > kMaxPayload) throw ProtocolError("wire: oversize frame");
  if (buffered() < kHeaderBytes + len) return std::nullopt;

  Frame f;
  f.type = static_cast<FrameType>(type);
  const std::uint8_t* payload = h + kHeaderBytes;
  f.crc_ok = crc32(payload, len) == crc;
  f.payload.assign(payload, payload + len);
  consumed_ += kHeaderBytes + len;
  return f;
}

}  // namespace snnskip::serve::wire
