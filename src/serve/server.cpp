#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "fault/inject.h"
#include "telemetry/telemetry.h"

namespace snnskip::serve {

Server::Server(ModelRegistry& registry, ServeOptions opts)
    : opts_(opts), registry_(registry) {
  latency_ring_.assign(std::max<std::size_t>(1, opts_.latency_window), 0.0);
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(std::max<std::int64_t>(1, opts_.workers)));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  pool_.reset();  // joins workers (all batches already finished by drain)
}

void Server::add_model(const ModelSpec& spec) {
  ModelHandle model = registry_.load(spec);
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    throw std::logic_error("serve::Server: add_model after drain");
  }
  ModelQueue& q = queues_[spec.name];
  q.model = std::move(model);
}

Server::Ticket Server::submit(const std::string& model,
                              std::vector<Tensor> frames) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = queues_.find(model);
  if (it == queues_.end()) {
    throw std::invalid_argument("serve::Server: unknown model '" + model +
                                "'");
  }
  const Shape& in = it->second.model->plan()->input_shape;
  if (frames.empty()) {
    throw std::invalid_argument("serve::Server: empty request sequence");
  }
  const Shape frame_shape{in[1], in[2], in[3]};
  for (const Tensor& f : frames) {
    if (f.shape() != frame_shape) {
      throw std::invalid_argument(
          "serve::Server: frame shape does not match the model's compiled "
          "(C, H, W)");
    }
  }

  Ticket t;
  // Admission control: shed load at the edge once the backlog passes the
  // watermark (or when draining), with a retry hint sized to the time the
  // current backlog needs to clear at one batch per latency budget.
  const bool full = pending_total_ >= opts_.queue_capacity;
  if (draining_ || full || SNNSKIP_FAULT("serve.queue_full")) {
    ++rejected_;
    Telemetry::count("serve.rejected");
    t.accepted = false;
    t.retry_after_us =
        draining_ ? 0
                  : opts_.latency_budget_us *
                        (1 + pending_total_ / std::max<std::int64_t>(
                                                  1, opts_.max_batch));
    return t;
  }

  auto req = std::make_unique<Request>();
  req->frames = std::move(frames);
  req->enqueue_ns = Telemetry::now_ns();
  t.result = req->promise.get_future();
  t.accepted = true;
  it->second.pending.push_back(std::move(req));
  ++pending_total_;
  ++accepted_;
  depth_high_water_ = std::max(depth_high_water_, pending_total_);
  Telemetry::count("serve.requests");
  Telemetry::count_max("serve.queue_depth.high_water",
                       static_cast<double>(pending_total_));
  lock.unlock();
  cv_.notify_one();
  return t;
}

Tensor Server::infer(const std::string& model, std::vector<Tensor> frames) {
  Ticket t = submit(model, std::move(frames));
  if (!t.accepted) {
    throw std::runtime_error("serve::Server: request rejected (retry in " +
                             std::to_string(t.retry_after_us) + "us)");
  }
  return t.result.get();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
  drain_cv_.wait(lock, [this] {
    return pending_total_ == 0 && in_flight_batches_ == 0;
  });
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Server::dispatcher_loop() {
  const std::int64_t budget_ns = opts_.latency_budget_us * 1000;
  const std::int64_t linger_ns =
      std::min(opts_.linger_us, opts_.latency_budget_us) * 1000;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // Cut every ready batch: batch-full queues immediately, deadline-hit
    // queues by the age of their OLDEST pending request, everything when
    // draining. Work-conserving: while a worker is idle the deadline is
    // the short linger, not the full budget — holding a batch open only
    // buys throughput when every worker is busy anyway.
    auto wait_ns = [&] {
      return in_flight_batches_ < opts_.workers ? linger_ns : budget_ns;
    };
    for (auto& [name, q] : queues_) {
      const std::int64_t cap =
          std::min<std::int64_t>(opts_.max_batch, q.model->batch_capacity());
      while (!q.pending.empty() &&
             (static_cast<std::int64_t>(q.pending.size()) >= cap ||
              draining_ ||
              Telemetry::now_ns() >=
                  q.pending.front()->enqueue_ns +
                      static_cast<std::uint64_t>(wait_ns()))) {
        cut_batch(q);
      }
    }

    // Sleep until the earliest pending deadline (or a submit / drain /
    // batch-completion wake; completions can shorten deadlines to the
    // linger, so run_batch also notifies cv_).
    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (const auto& [name, q] : queues_) {
      if (!q.pending.empty()) {
        next = std::min(next, static_cast<std::int64_t>(
                                  q.pending.front()->enqueue_ns) +
                                  wait_ns());
      }
    }
    if (next == std::numeric_limits<std::int64_t>::max()) {
      cv_.wait(lock);
    } else {
      const std::int64_t now = static_cast<std::int64_t>(Telemetry::now_ns());
      if (next > now) {
        cv_.wait_for(lock, std::chrono::nanoseconds(next - now));
      }
    }
  }
}

void Server::cut_batch(ModelQueue& q) {
  const std::int64_t cap =
      std::min<std::int64_t>(opts_.max_batch, q.model->batch_capacity());
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(cap), q.pending.size());
  Batch batch;
  batch.model = q.model;
  batch.requests.reserve(n);
  const std::uint64_t now = Telemetry::now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    std::unique_ptr<Request> req = std::move(q.pending.front());
    q.pending.pop_front();
    telemetry::record_span("serve.queue_wait", q.model->spec().name,
                           req->enqueue_ns, now - req->enqueue_ns);
    batch.requests.push_back(std::move(req));
  }
  pending_total_ -= static_cast<std::int64_t>(n);
  ++in_flight_batches_;
  ++batches_;
  batched_requests_ += static_cast<std::int64_t>(n);
  Telemetry::count("serve.batches");
  Telemetry::count("serve.batch_occupancy", static_cast<double>(n));
  pool_->submit([this, b = std::make_shared<Batch>(std::move(batch))] {
    run_batch(std::move(*b));
  });
}

void Server::run_batch(Batch batch) {
  const std::string& name = batch.model->spec().name;
  SNNSKIP_SPAN("serve.execute", name);
  const std::size_t nreq = batch.requests.size();
  std::size_t fulfilled = 0;
  try {
    LoadedModel::Lease lease = batch.model->lease();
    const infer::Plan& plan = *batch.model->plan();
    const std::int64_t n = plan.input_shape[0];
    const std::int64_t img_f = plan.input_shape[1] * plan.input_shape[2] *
                               plan.input_shape[3];
    const std::int64_t classes = plan.output_shape.numel() / n;

    std::size_t tmax = 0;
    for (const auto& req : batch.requests) {
      tmax = std::max(tmax, req->frames.size());
    }

    Tensor x(plan.input_shape);
    Tensor out(plan.output_shape);
    std::vector<std::vector<float>> acc(
        nreq, std::vector<float>(static_cast<std::size_t>(classes), 0.f));
    for (std::size_t t = 0; t < tmax; ++t) {
      {
        SNNSKIP_SPAN_AGG("serve.batch_assemble", name);
        std::memset(x.data(), 0,
                    static_cast<std::size_t>(x.numel()) * sizeof(float));
        for (std::size_t i = 0; i < nreq; ++i) {
          const auto& frames = batch.requests[i]->frames;
          if (t < frames.size()) {
            std::memcpy(x.data() + static_cast<std::int64_t>(i) * img_f,
                        frames[t].data(),
                        static_cast<std::size_t>(img_f) * sizeof(float));
          }
        }
      }
      lease->step(x, &out);
      for (std::size_t i = 0; i < nreq; ++i) {
        if (t >= batch.requests[i]->frames.size()) continue;
        const float* row = out.data() + static_cast<std::int64_t>(i) * classes;
        float* a = acc[i].data();
        for (std::int64_t c = 0; c < classes; ++c) a[c] += row[c];
      }
    }

    // Account completions and latencies BEFORE fulfilling any promise:
    // a client that returns from result.get() must already see its
    // request in stats().completed.
    const std::uint64_t done_ns = Telemetry::now_ns();
    std::vector<Tensor> results;
    results.reserve(nreq);
    for (std::size_t i = 0; i < nreq; ++i) {
      Tensor r(Shape{classes});
      std::memcpy(r.data(), acc[i].data(),
                  static_cast<std::size_t>(classes) * sizeof(float));
      results.push_back(std::move(r));
      record_latency(
          static_cast<double>(done_ns - batch.requests[i]->enqueue_ns) / 1e6);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += static_cast<std::int64_t>(nreq);
    }
    for (std::size_t i = 0; i < nreq; ++i) {
      batch.requests[i]->promise.set_value(std::move(results[i]));
      ++fulfilled;
    }
  } catch (...) {
    for (std::size_t i = fulfilled; i < nreq; ++i) {
      batch.requests[i]->promise.set_exception(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Execution failures happen before the completed_ bump above; only
    // the unfulfilled remainder is charged as failed.
    if (fulfilled == 0) {
      failed_ += static_cast<std::int64_t>(nreq);
    } else {
      completed_ -= static_cast<std::int64_t>(nreq - fulfilled);
      failed_ += static_cast<std::int64_t>(nreq - fulfilled);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_batches_;
  }
  drain_cv_.notify_all();
  cv_.notify_one();  // a worker just went idle: deadlines may shorten
}

void Server::record_latency(double ms) {
  std::lock_guard<std::mutex> lock(lat_mu_);
  latency_ring_[lat_next_] = ms;
  if (++lat_next_ == latency_ring_.size()) {
    lat_next_ = 0;
    lat_full_ = true;
  }
}

ServeStats Server::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.batches = batches_;
    s.mean_batch_occupancy =
        batches_ > 0 ? static_cast<double>(batched_requests_) /
                           static_cast<double>(batches_)
                     : 0.0;
    s.queue_depth = pending_total_;
    s.queue_depth_high_water = depth_high_water_;
  }
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    lat.assign(latency_ring_.begin(),
               lat_full_ ? latency_ring_.end()
                         : latency_ring_.begin() +
                               static_cast<std::ptrdiff_t>(lat_next_));
  }
  if (!lat.empty()) {
    auto pct = [&lat](double p) {
      const std::size_t k = static_cast<std::size_t>(
          p * static_cast<double>(lat.size() - 1) + 0.5);
      std::nth_element(lat.begin(),
                       lat.begin() + static_cast<std::ptrdiff_t>(k),
                       lat.end());
      return lat[k];
    };
    s.p50_ms = pct(0.50);
    s.p99_ms = pct(0.99);
  }
  return s;
}

}  // namespace snnskip::serve
