#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "fault/inject.h"
#include "serve/protocol.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snnskip::serve {

namespace {

/// Promise adapter: maps Outcome onto the Ticket future (exceptions for
/// everything that is not Ok, so result.get() keeps throwing like before
/// deadlines existed).
std::function<void(Outcome)> promise_completion(
    std::shared_ptr<std::promise<Tensor>> prom) {
  return [prom = std::move(prom)](Outcome o) {
    if (o.status == RequestStatus::Ok) {
      prom->set_value(std::move(o.value));
    } else {
      const char* what = o.status == RequestStatus::Expired
                             ? "serve::Server: deadline expired"
                             : "serve::Server: request failed";
      prom->set_exception(std::make_exception_ptr(std::runtime_error(
          o.error.empty() ? what : std::string(what) + ": " + o.error)));
    }
  };
}

}  // namespace

Server::Server(ModelRegistry& registry, ServeOptions opts)
    : opts_(opts), registry_(registry) {
  latency_ring_.assign(std::max<std::size_t>(1, opts_.latency_window), 0.0);
  pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(std::max<std::int64_t>(1, opts_.workers)));
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  pool_.reset();  // joins workers (all batches already finished by drain)
}

void Server::add_model(const ModelSpec& spec) {
  ModelHandle model = registry_.load(spec);
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    throw std::logic_error("serve::Server: add_model after drain");
  }
  ModelQueue& q = queues_[spec.name];
  q.model = std::move(model);
}

void Server::submit_async(const std::string& model, std::vector<Tensor> frames,
                          const SubmitOptions& sub,
                          std::function<void(Outcome)> done) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = queues_.find(model);
  if (it == queues_.end()) {
    throw std::invalid_argument("serve::Server: unknown model '" + model +
                                "'");
  }
  const Shape& in = it->second.model->plan()->input_shape;
  if (frames.empty()) {
    throw std::invalid_argument("serve::Server: empty request sequence");
  }
  const Shape frame_shape{in[1], in[2], in[3]};
  for (const Tensor& f : frames) {
    if (f.shape() != frame_shape) {
      throw std::invalid_argument(
          "serve::Server: frame shape does not match the model's compiled "
          "(C, H, W)");
    }
  }

  // Admission control: shed load at the edge once the backlog passes the
  // watermark (or when draining), with a retry hint sized to the time the
  // current backlog needs to clear at one batch per latency budget.
  const bool full = pending_total_ >= opts_.queue_capacity;
  if (draining_ || full || SNNSKIP_FAULT("serve.queue_full")) {
    ++rejected_;
    Telemetry::count("serve.rejected");
    Outcome o;
    o.status = RequestStatus::Rejected;
    o.retry_after_us =
        draining_ ? 0
                  : opts_.latency_budget_us *
                        (1 + pending_total_ / std::max<std::int64_t>(
                                                  1, opts_.max_batch));
    o.error = draining_ ? "draining" : "queue full";
    lock.unlock();
    done(std::move(o));
    return;
  }

  auto req = std::make_unique<Request>();
  req->frames = std::move(frames);
  req->done = std::move(done);
  req->enqueue_ns = Telemetry::now_ns();
  req->deadline_ns = sub.deadline_ns;
  it->second.pending.push_back(std::move(req));
  ++pending_total_;
  ++accepted_;
  depth_high_water_ = std::max(depth_high_water_, pending_total_);
  Telemetry::count("serve.requests");
  Telemetry::count_max("serve.queue_depth.high_water",
                       static_cast<double>(pending_total_));
  lock.unlock();
  cv_.notify_one();
}

Server::Ticket Server::submit(const std::string& model,
                              std::vector<Tensor> frames,
                              const SubmitOptions& sub) {
  Ticket t;
  auto prom = std::make_shared<std::promise<Tensor>>();
  std::future<Tensor> fut = prom->get_future();
  // Admission rejections complete synchronously; map them onto the
  // rejected-Ticket shape instead of a future exception so existing
  // backpressure callers keep their retry_after_us hint. The rejection
  // flag lives in shared state captured BY VALUE — the callback must
  // never hold references into this frame, because nothing but the
  // current synchronous-rejection invariant keeps it from running after
  // submit() returns. If that invariant ever breaks, the rejection also
  // settles the promise below, so the accepted-looking future the caller
  // got throws instead of dangling forever.
  struct RejectGate {
    bool rejected = false;
    std::int64_t retry_after_us = 0;
  };
  auto gate = std::make_shared<RejectGate>();
  submit_async(model, std::move(frames), sub, [gate, prom](Outcome o) {
    if (o.status == RequestStatus::Rejected) {
      gate->rejected = true;
      gate->retry_after_us = o.retry_after_us;
      prom->set_exception(std::make_exception_ptr(std::runtime_error(
          "serve::Server: request rejected (retry in " +
          std::to_string(o.retry_after_us) + "us)")));
      return;
    }
    promise_completion(prom)(std::move(o));
  });
  if (gate->rejected) {
    t.accepted = false;
    t.retry_after_us = gate->retry_after_us;
    return t;
  }
  t.accepted = true;
  t.result = std::move(fut);
  return t;
}

Tensor Server::infer(const std::string& model, std::vector<Tensor> frames) {
  Ticket t = submit(model, std::move(frames));
  if (!t.accepted) {
    throw std::runtime_error("serve::Server: request rejected (retry in " +
                             std::to_string(t.retry_after_us) + "us)");
  }
  return t.result.get();
}

bool Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
  auto done = [this] { return pending_total_ == 0 && in_flight_batches_ == 0; };
  if (opts_.drain_timeout_ms <= 0) {
    drain_cv_.wait(lock, done);
    return true;
  }
  if (drain_cv_.wait_for(lock, std::chrono::milliseconds(opts_.drain_timeout_ms),
                         done)) {
    return true;
  }
  // Timed out: a worker is wedged or a batch is pathologically slow. Fail
  // whatever is still QUEUED so no promise dangles, and latch
  // drain_expired_ so batches parked in the worker queue fast-fail at
  // pickup instead of burning engine time nobody is waiting on. The
  // batch a worker is executing right now still completes normally.
  drain_expired_.store(true, std::memory_order_relaxed);
  std::vector<std::unique_ptr<Request>> orphans;
  for (auto& [name, q] : queues_) {
    while (!q.pending.empty()) {
      orphans.push_back(std::move(q.pending.front()));
      q.pending.pop_front();
      --pending_total_;
    }
  }
  failed_ += static_cast<std::int64_t>(orphans.size());
  lock.unlock();
  SNNSKIP_LOG(Warn) << "serve: drain timed out after "
                    << opts_.drain_timeout_ms << "ms; failing "
                    << orphans.size() << " queued request(s)";
  for (auto& req : orphans) {
    Outcome o;
    o.status = RequestStatus::Failed;
    o.error = "drain timeout";
    req->done(std::move(o));
  }
  return false;
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::vector<std::unique_ptr<Server::Request>> Server::collect_expired() {
  std::vector<std::unique_ptr<Request>> shed;
  const std::int64_t now = wire::mono_now_ns();
  for (auto& [name, q] : queues_) {
    for (auto it = q.pending.begin(); it != q.pending.end();) {
      Request& r = **it;
      if (r.deadline_ns > 0 && now >= r.deadline_ns) {
        shed.push_back(std::move(*it));
        it = q.pending.erase(it);
        --pending_total_;
      } else {
        ++it;
      }
    }
  }
  return shed;
}

void Server::dispatcher_loop() {
  const std::int64_t budget_ns = opts_.latency_budget_us * 1000;
  const std::int64_t linger_ns =
      std::min(opts_.linger_us, opts_.latency_budget_us) * 1000;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    // Shed requests whose deadline already expired BEFORE assembling any
    // batch: engine time is the scarce resource, and an answer past its
    // deadline is wasted work. Draining flushes everything regardless —
    // the client is still waiting on those futures.
    std::vector<std::unique_ptr<Request>> shed;
    if (!draining_) shed = collect_expired();
    if (!shed.empty()) {
      expired_ += static_cast<std::int64_t>(shed.size());
      lock.unlock();
      for (auto& req : shed) {
        Telemetry::count("serve.deadline_expired");
        Outcome o;
        o.status = RequestStatus::Expired;
        o.error = "deadline expired before batch assembly";
        req->done(std::move(o));
      }
      shed.clear();
      lock.lock();
      // mu_ was released while completing the shed requests; stop() may
      // have set stopping_ and fired its (then-unheard) notify in that
      // window. Re-evaluate the loop condition before committing to a
      // wait, or the untimed cv_.wait below sleeps through the join.
      continue;
    }

    // Cut every ready batch: batch-full queues immediately, deadline-hit
    // queues by the age of their OLDEST pending request, everything when
    // draining. Work-conserving: while a worker is idle the deadline is
    // the short linger, not the full budget — holding a batch open only
    // buys throughput when every worker is busy anyway.
    auto wait_ns = [&] {
      return in_flight_batches_ < opts_.workers ? linger_ns : budget_ns;
    };
    for (auto& [name, q] : queues_) {
      const std::int64_t cap =
          std::min<std::int64_t>(opts_.max_batch, q.model->batch_capacity());
      while (!q.pending.empty() &&
             (static_cast<std::int64_t>(q.pending.size()) >= cap ||
              draining_ ||
              Telemetry::now_ns() >=
                  q.pending.front()->enqueue_ns +
                      static_cast<std::uint64_t>(wait_ns()))) {
        cut_batch(q);
      }
    }

    // Sleep until the earliest pending flush deadline or request
    // deadline (or a submit / drain / batch-completion wake; completions
    // can shorten flush deadlines to the linger, so run_batch also
    // notifies cv_). Flush deadlines live in the telemetry clock domain,
    // request deadlines in the monotonic domain — compare DURATIONS, not
    // absolute times.
    std::int64_t sleep_ns = std::numeric_limits<std::int64_t>::max();
    const std::int64_t tnow = static_cast<std::int64_t>(Telemetry::now_ns());
    const std::int64_t mnow = wire::mono_now_ns();
    for (const auto& [name, q] : queues_) {
      if (q.pending.empty()) continue;
      sleep_ns = std::min(
          sleep_ns, static_cast<std::int64_t>(q.pending.front()->enqueue_ns) +
                        wait_ns() - tnow);
      for (const auto& req : q.pending) {
        if (req->deadline_ns > 0) {
          sleep_ns = std::min(sleep_ns, req->deadline_ns - mnow);
        }
      }
    }
    if (sleep_ns == std::numeric_limits<std::int64_t>::max()) {
      cv_.wait(lock);
    } else if (sleep_ns > 0) {
      cv_.wait_for(lock, std::chrono::nanoseconds(sleep_ns));
    }
  }
}

void Server::cut_batch(ModelQueue& q) {
  const std::int64_t cap =
      std::min<std::int64_t>(opts_.max_batch, q.model->batch_capacity());
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(cap), q.pending.size());
  Batch batch;
  batch.model = q.model;
  batch.requests.reserve(n);
  const std::uint64_t now = Telemetry::now_ns();
  for (std::size_t i = 0; i < n; ++i) {
    std::unique_ptr<Request> req = std::move(q.pending.front());
    q.pending.pop_front();
    telemetry::record_span("serve.queue_wait", q.model->spec().name,
                           req->enqueue_ns, now - req->enqueue_ns);
    batch.requests.push_back(std::move(req));
  }
  pending_total_ -= static_cast<std::int64_t>(n);
  ++in_flight_batches_;
  ++batches_;
  batched_requests_ += static_cast<std::int64_t>(n);
  Telemetry::count("serve.batches");
  Telemetry::count("serve.batch_occupancy", static_cast<double>(n));
  pool_->submit([this, b = std::make_shared<Batch>(std::move(batch))] {
    run_batch(std::move(*b));
  });
}

void Server::run_batch(Batch batch) {
  const std::string& name = batch.model->spec().name;
  if (drain_expired_.load(std::memory_order_relaxed)) {
    const std::size_t nabandoned = batch.requests.size();
    {
      std::lock_guard<std::mutex> lock(mu_);
      failed_ += static_cast<std::int64_t>(nabandoned);
    }
    for (auto& req : batch.requests) {
      Outcome o;
      o.status = RequestStatus::Failed;
      o.error = "drain timeout";
      req->done(std::move(o));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_batches_;
    }
    drain_cv_.notify_all();
    return;
  }
  SNNSKIP_SPAN("serve.execute", name);
  const std::size_t nreq = batch.requests.size();
  std::vector<Outcome> outcomes(nreq);
  bool poisoned = false;
  try {
    LoadedModel::Lease lease = batch.model->lease();
    const infer::Plan& plan = *batch.model->plan();
    const std::int64_t n = plan.input_shape[0];
    const std::int64_t img_f = plan.input_shape[1] * plan.input_shape[2] *
                               plan.input_shape[3];
    const std::int64_t classes = plan.output_shape.numel() / n;

    std::size_t tmax = 0;
    for (const auto& req : batch.requests) {
      tmax = std::max(tmax, req->frames.size());
    }

    Tensor x(plan.input_shape);
    Tensor out(plan.output_shape);
    std::vector<std::vector<float>> acc(
        nreq, std::vector<float>(static_cast<std::size_t>(classes), 0.f));
    for (std::size_t t = 0; t < tmax; ++t) {
      {
        SNNSKIP_SPAN_AGG("serve.batch_assemble", name);
        std::memset(x.data(), 0,
                    static_cast<std::size_t>(x.numel()) * sizeof(float));
        for (std::size_t i = 0; i < nreq; ++i) {
          const auto& frames = batch.requests[i]->frames;
          if (t < frames.size()) {
            std::memcpy(x.data() + static_cast<std::int64_t>(i) * img_f,
                        frames[t].data(),
                        static_cast<std::size_t>(img_f) * sizeof(float));
          }
        }
      }
      lease->step(x, &out);
      if (SNNSKIP_FAULT("serve.engine_nan")) {
        // Simulated corrupted-weights blowup: poison the step output the
        // same way an Inf/NaN weight would.
        for (std::int64_t i = 0; i < out.numel(); ++i) {
          out.data()[i] = std::numeric_limits<float>::quiet_NaN();
        }
      }
      for (std::size_t i = 0; i < nreq; ++i) {
        if (t >= batch.requests[i]->frames.size()) continue;
        const float* row = out.data() + static_cast<std::int64_t>(i) * classes;
        float* a = acc[i].data();
        for (std::int64_t c = 0; c < classes; ++c) a[c] += row[c];
      }
    }

    // Non-finite outputs mean the model itself is unhealthy (weights or
    // state corrupt): fail the whole batch and quarantine the model.
    for (std::size_t i = 0; i < nreq && !poisoned; ++i) {
      for (float v : acc[i]) {
        if (!std::isfinite(v)) {
          poisoned = true;
          break;
        }
      }
    }

    if (poisoned) {
      for (std::size_t i = 0; i < nreq; ++i) {
        outcomes[i].status = RequestStatus::Failed;
        outcomes[i].error = "non-finite engine output (model quarantined)";
      }
    } else {
      const std::uint64_t done_ns = Telemetry::now_ns();
      for (std::size_t i = 0; i < nreq; ++i) {
        Tensor r(Shape{classes});
        std::memcpy(r.data(), acc[i].data(),
                    static_cast<std::size_t>(classes) * sizeof(float));
        outcomes[i].status = RequestStatus::Ok;
        outcomes[i].value = std::move(r);
        record_latency(
            static_cast<double>(done_ns - batch.requests[i]->enqueue_ns) /
            1e6);
      }
    }
  } catch (const std::exception& e) {
    for (std::size_t i = 0; i < nreq; ++i) {
      outcomes[i].status = RequestStatus::Failed;
      outcomes[i].error = e.what();
    }
  } catch (...) {
    for (std::size_t i = 0; i < nreq; ++i) {
      outcomes[i].status = RequestStatus::Failed;
      outcomes[i].error = "unknown execution failure";
    }
  }

  // Quarantine BEFORE reporting the failures: a client that retries the
  // moment it sees the failure must already find the reloaded model.
  if (poisoned) quarantine_model(batch.model);

  // Account completions BEFORE invoking any callback: a client that
  // returns from result.get() must already see its request in stats().
  std::size_t ok = 0;
  for (const Outcome& o : outcomes) {
    if (o.status == RequestStatus::Ok) ++ok;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed_ += static_cast<std::int64_t>(ok);
    failed_ += static_cast<std::int64_t>(nreq - ok);
  }
  for (std::size_t i = 0; i < nreq; ++i) {
    batch.requests[i]->done(std::move(outcomes[i]));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_batches_;
  }
  drain_cv_.notify_all();
  cv_.notify_one();  // a worker just went idle: deadlines may shorten
}

void Server::quarantine_model(const ModelHandle& model) {
  const std::string name = model->spec().name;
  // Serialize cycles so two poisoned batches of one model trigger one
  // reload; the identity check below makes the second a no-op.
  std::lock_guard<std::mutex> qlock(quarantine_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(name);
    if (it == queues_.end() || it->second.model != model) {
      return;  // already quarantined and swapped (or model was removed)
    }
  }
  Telemetry::count("serve.quarantined");
  SNNSKIP_LOG(Error) << "serve: non-finite output from model '" << name
                     << "'; quarantining (evict + reload)";
  registry_.evict(name);
  std::string err;
  ModelHandle fresh = registry_.try_load(model->spec(), &err);

  const bool reloaded = fresh != nullptr;
  std::vector<std::unique_ptr<Request>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++quarantined_;
    auto it = queues_.find(name);
    if (it != queues_.end() && it->second.model == model) {
      if (fresh) {
        it->second.model = std::move(fresh);
      } else {
        // Reload failed too (checkpoint corrupt on disk): unregister the
        // model so submits report it unknown instead of serving poison.
        while (!it->second.pending.empty()) {
          orphans.push_back(std::move(it->second.pending.front()));
          it->second.pending.pop_front();
          --pending_total_;
        }
        failed_ += static_cast<std::int64_t>(orphans.size());
        queues_.erase(it);
      }
    }
  }
  if (!reloaded) {
    SNNSKIP_LOG(Error) << "serve: quarantine reload of '" << name
                       << "' failed (" << err << "); model unregistered";
    for (auto& req : orphans) {
      Outcome o;
      o.status = RequestStatus::Failed;
      o.error = "model quarantined and reload failed: " + err;
      req->done(std::move(o));
    }
    drain_cv_.notify_all();
  }
}

void Server::record_latency(double ms) {
  std::lock_guard<std::mutex> lock(lat_mu_);
  latency_ring_[lat_next_] = ms;
  if (++lat_next_ == latency_ring_.size()) {
    lat_next_ = 0;
    lat_full_ = true;
  }
}

ServeStats Server::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.expired = expired_;
    s.quarantined = quarantined_;
    s.batches = batches_;
    s.mean_batch_occupancy =
        batches_ > 0 ? static_cast<double>(batched_requests_) /
                           static_cast<double>(batches_)
                     : 0.0;
    s.queue_depth = pending_total_;
    s.queue_depth_high_water = depth_high_water_;
  }
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    lat.assign(latency_ring_.begin(),
               lat_full_ ? latency_ring_.end()
                         : latency_ring_.begin() +
                               static_cast<std::ptrdiff_t>(lat_next_));
  }
  if (!lat.empty()) {
    auto pct = [&lat](double p) {
      const std::size_t k = static_cast<std::size_t>(
          p * static_cast<double>(lat.size() - 1) + 0.5);
      std::nth_element(lat.begin(),
                       lat.begin() + static_cast<std::ptrdiff_t>(k),
                       lat.end());
      return lat[k];
    };
    s.p50_ms = pct(0.50);
    s.p99_ms = pct(0.99);
  }
  return s;
}

}  // namespace snnskip::serve
