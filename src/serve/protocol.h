#pragma once
// Wire protocol for the snnskip-serve TCP transport (ISSUE 8).
//
// Every message travels in one length-prefixed, CRC-framed binary frame:
//
//   u32 magic 'SNKS' | u8 type | u8 hdr_crc | u8[2] reserved
//   | u32 payload_len | u32 crc32(payload) | payload bytes
//
// hdr_crc is the CRC-32 low byte over {type, payload_len} — the two
// fields the payload CRC cannot protect, because they must be trusted
// before the payload arrives. A corrupted type or length byte is
// therefore a deterministic ProtocolError (close) instead of a silent
// frame reroute or stream desync that would only surface as a client
// timeout. The 16-byte header is validated before any allocation (bad
// magic, a header-checksum mismatch, or an oversize length is
// unrecoverable — the stream cannot be resynchronized — and closes the
// connection), while a payload whose CRC does not match is a TORN frame:
// the length prefix still delimits it, so the receiver rejects exactly
// that frame with Status::CrcError and the connection survives. This is
// the same torn-vs-corrupt split the SNNSKIP2 checkpoint format uses
// (util/crc32, DESIGN.md §5d), applied to a byte stream.
//
// Payloads are little-endian plain-old-data (the only supported hosts are
// little-endian; a mixed-endian deployment would need byte swapping
// here and nowhere else). Request frames carry an ABSOLUTE deadline in
// the machine-wide monotonic clock domain (mono_now_ns, CLOCK_MONOTONIC):
// the transport is loopback/LAN-scoped, where sender and receiver share
// that clock, so the server can shed a request whose deadline expired
// while it sat in the queue without any clock-offset negotiation.
//
// decode_* functions validate every count against the actual payload size
// before allocating (a corrupted tensor count can never trigger a huge
// allocation) and throw ProtocolError on malformed input.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace snnskip::serve::wire {

/// Malformed frame or payload (never thrown for a torn CRC — that is a
/// recoverable per-frame condition reported via Frame::crc_ok).
struct ProtocolError : std::runtime_error {
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::uint32_t kMagic = 0x534B4E53u;  // "SNKS" little-endian
constexpr std::size_t kHeaderBytes = 16;
/// Hard cap on one frame's payload; a length above this is treated as
/// stream corruption, not a large request.
constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class FrameType : std::uint8_t {
  Request = 1,   ///< client -> server: one inference sequence
  Response = 2,  ///< server -> client: result or error/backpressure
  Goaway = 3,    ///< server -> client: draining, do not send more
};

/// Response status codes. Retryable: Rejected (after retry_after_us),
/// Failed and CrcError (transient). Not retryable: Expired (the deadline
/// has passed), BadRequest (the request itself is malformed).
enum class Status : std::uint8_t {
  Ok = 0,
  Rejected = 1,    ///< admission control shed the request
  Expired = 2,     ///< deadline passed before execution
  Failed = 3,      ///< engine failure (e.g. model quarantined)
  BadRequest = 4,  ///< unknown model / bad shape / malformed payload
  CrcError = 5,    ///< the REQUEST frame arrived torn; resend it
};

const char* status_name(Status s);

struct RequestMsg {
  std::uint64_t id = 0;          ///< echoed in the response
  std::int64_t deadline_ns = 0;  ///< absolute mono_now_ns(); 0 = none
  std::string model;
  std::vector<Tensor> frames;  ///< T frames of identical (C, H, W)
};

struct ResponseMsg {
  std::uint64_t id = 0;  ///< 0 when the request could not be parsed
  Status status = Status::Failed;
  std::int64_t retry_after_us = 0;  ///< backpressure hint (Rejected)
  std::string error;                ///< human-readable detail (non-Ok)
  Tensor value;                     ///< rate-accumulated head output (Ok)
};

/// Machine-wide monotonic clock (CLOCK_MONOTONIC), the deadline domain of
/// RequestMsg — comparable across processes on one machine, never
/// affected by wall-clock steps.
std::int64_t mono_now_ns();

/// Serialize a full frame (header + payload).
std::vector<std::uint8_t> encode_request(const RequestMsg& m);
std::vector<std::uint8_t> encode_response(const ResponseMsg& m);
std::vector<std::uint8_t> encode_goaway();

/// Parse a payload (the bytes after the header). Throws ProtocolError.
RequestMsg decode_request(const std::uint8_t* p, std::size_t n);
ResponseMsg decode_response(const std::uint8_t* p, std::size_t n);

/// Incremental frame reassembly over an arbitrary-chunked byte stream
/// (partial reads produce partial buffers; next() only pops complete
/// frames). Torn frames pop with crc_ok == false; structurally invalid
/// streams (bad magic / oversize length / unknown type) throw
/// ProtocolError, after which the connection must be closed.
class FrameAssembler {
 public:
  struct Frame {
    FrameType type = FrameType::Request;
    bool crc_ok = true;
    std::vector<std::uint8_t> payload;
  };

  void append(const void* data, std::size_t n);
  std::optional<Frame> next();

  /// Bytes buffered but not yet popped as a frame (a nonzero value that
  /// persists means a half-received frame — the transport's read-timeout
  /// trigger).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;
};

}  // namespace snnskip::serve::wire
