#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"
#include "util/runtime_env.h"

namespace snnskip::serve {

ClientOptions ClientOptions::from_env() {
  ClientOptions o;
  o.max_retries = env::get_int("SNNSKIP_CLIENT_RETRIES", o.max_retries);
  if (o.max_retries < 0) o.max_retries = 0;
  o.backoff_base_us =
      env::get_int("SNNSKIP_CLIENT_BACKOFF_US", o.backoff_base_us);
  if (o.backoff_base_us < 1) o.backoff_base_us = 1;
  o.backoff_cap_us =
      env::get_int("SNNSKIP_CLIENT_BACKOFF_CAP_US", o.backoff_cap_us);
  if (o.backoff_cap_us < o.backoff_base_us) {
    o.backoff_cap_us = o.backoff_base_us;
  }
  return o;
}

Client::Client(ClientOptions opts)
    : opts_(std::move(opts)), jitter_state_(opts_.jitter_seed) {}

Client::~Client() { disconnect_(); }

bool Client::connect_() {
  if (fd_ >= 0) return true;
  goaway_ = false;
  in_ = wire::FrameAssembler();  // a fresh stream has no stale bytes
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    last_err_ = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    last_err_ = "bad host address: " + opts_.host;
    disconnect_();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    last_err_ = std::string("connect(): ") + std::strerror(errno);
    disconnect_();
    return false;
  }
  timeval tv{};
  tv.tv_sec = opts_.io_timeout_ms / 1000;
  tv.tv_usec = (opts_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::disconnect_() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::int64_t Client::backoff_delay_us(std::int64_t attempt,
                                      std::int64_t server_hint_us) {
  // d = min(cap, base * 2^attempt), then full-jitter onto [d/2, d]: the
  // half-floor keeps retries from stampeding in lockstep while still
  // guaranteeing real spacing. The server's backpressure hint is a floor,
  // never a ceiling — it reflects actual backlog.
  std::int64_t d = opts_.backoff_base_us;
  for (std::int64_t i = 0; i < attempt && d < opts_.backoff_cap_us; ++i) {
    d *= 2;
  }
  if (d > opts_.backoff_cap_us) d = opts_.backoff_cap_us;
  const std::int64_t half = d / 2;
  const std::int64_t span = d - half + 1;
  const std::int64_t jittered =
      half + static_cast<std::int64_t>(splitmix64(jitter_state_) %
                                      static_cast<std::uint64_t>(span));
  return jittered > server_hint_us ? jittered : server_hint_us;
}

bool Client::try_once(const std::vector<std::uint8_t>& frame,
                      std::uint64_t id, wire::ResponseMsg* out) {
  if (!connect_()) return false;

  // Send the whole frame (blocking with SO_SNDTIMEO).
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    last_err_ = std::string("send(): ") + std::strerror(errno);
    disconnect_();
    return false;
  }

  // Receive until the matching Response pops out. A GOAWAY racing ahead
  // of our response is noted and the read continues — the server flushes
  // in-flight responses before closing.
  char buf[16384];
  while (true) {
    while (auto f = in_.next()) {
      if (f->type == wire::FrameType::Goaway) {
        goaway_ = true;
        continue;
      }
      if (f->type != wire::FrameType::Response) continue;
      if (!f->crc_ok) {
        // Our copy of the response tore in transit; the request already
        // ran. Treat as a connection-level failure so the policy layer
        // decides (retry is safe: inference is idempotent).
        last_err_ = "response frame failed CRC";
        disconnect_();
        return false;
      }
      wire::ResponseMsg r;
      try {
        r = wire::decode_response(f->payload.data(), f->payload.size());
      } catch (const wire::ProtocolError& e) {
        last_err_ = std::string("bad response payload: ") + e.what();
        disconnect_();
        return false;
      }
      // id 0 = the server could not attribute the frame (torn request);
      // with one outstanding request the correlation is still unambiguous.
      if (r.id == id || r.id == 0) {
        *out = std::move(r);
        return true;
      }
      // A stale response from a previous timed-out attempt: skip it.
    }
    if (goaway_) {
      // GOAWAY and no in-flight response left to wait for.
      out->id = id;
      out->status = wire::Status::Rejected;
      out->error = "server is draining (goaway)";
      return true;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      try {
        in_.append(buf, static_cast<std::size_t>(n));
      } catch (const wire::ProtocolError& e) {
        last_err_ = std::string("protocol error: ") + e.what();
        disconnect_();
        return false;
      }
      continue;
    }
    if (n == 0) {
      last_err_ = "server closed connection";
      disconnect_();
      return false;
    }
    if (errno == EINTR) continue;
    last_err_ = (errno == EAGAIN || errno == EWOULDBLOCK)
                    ? std::string("receive timeout")
                    : std::string("recv(): ") + std::strerror(errno);
    disconnect_();
    return false;
  }
}

Client::Result Client::infer(const std::string& model,
                             const std::vector<Tensor>& frames,
                             std::int64_t deadline_ns) {
  wire::RequestMsg req;
  req.deadline_ns = deadline_ns;
  req.model = model;
  req.frames = frames;

  Result res;
  std::int64_t hint_us = 0;
  for (std::int64_t attempt = 0;; ++attempt) {
    if (deadline_ns != 0 && wire::mono_now_ns() >= deadline_ns) {
      res.status = wire::Status::Expired;
      res.error = "deadline expired before attempt";
      res.retries = attempt;
      return res;
    }
    if (attempt > 0) {
      const std::int64_t delay = backoff_delay_us(attempt - 1, hint_us);
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }

    req.id = next_id_++;  // fresh id per attempt: stale replies are skipped
    wire::ResponseMsg resp;
    const bool got = try_once(wire::encode_request(req), req.id, &resp);
    res.retries = attempt;

    if (got) {
      res.status = resp.status;
      hint_us = resp.retry_after_us;
      switch (resp.status) {
        case wire::Status::Ok:
          res.ok = true;
          res.value = std::move(resp.value);
          return res;
        case wire::Status::Expired:
        case wire::Status::BadRequest:
          res.error = resp.error;
          return res;  // terminal: retrying cannot change the answer
        case wire::Status::Rejected:
          if (goaway_) {
            res.error = resp.error;
            return res;  // draining server: stop, don't hammer it
          }
          [[fallthrough]];
        case wire::Status::Failed:
        case wire::Status::CrcError:
          res.error = resp.error;
          break;  // retryable
      }
    } else {
      res.status = wire::Status::Failed;
      res.error = last_err_;
      hint_us = 0;
    }

    if (attempt >= opts_.max_retries) {
      res.error += " (retries exhausted)";
      return res;
    }
  }
}

}  // namespace snnskip::serve
