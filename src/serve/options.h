#pragma once
// Serving-daemon configuration (ISSUE 7).
//
// All knobs have compiled-in defaults; from_env() overlays the
// SNNSKIP_SERVE_* environment variables (read through util/runtime_env,
// documented in README "Runtime environment variables"). Like
// infer::ExecOptions, the environment only seeds a configuration VALUE —
// a constructed Server snapshots its ServeOptions and never consults
// process-global state afterwards.

#include <cstddef>
#include <cstdint>

namespace snnskip::serve {

struct ServeOptions {
  /// Flush a model's pending queue as soon as this many requests are
  /// waiting (also the largest batch ever cut; must not exceed the
  /// model's compiled batch capacity — Server::add_model clamps).
  std::int64_t max_batch = 8;

  /// Flush deadline: a pending request is never held longer than this
  /// before its batch is cut, so a lone request on an idle server still
  /// meets a hard latency budget (TTFS-style workloads).
  std::int64_t latency_budget_us = 2000;

  /// Work-conserving linger: while at least one worker is IDLE, a batch
  /// is cut once its oldest request has waited this long (capped by
  /// latency_budget_us) instead of the full budget — holding requests to
  /// grow a batch only pays off when every worker is already busy. The
  /// small nonzero default still coalesces near-simultaneous arrivals.
  std::int64_t linger_us = 200;

  /// Admission watermark across all models: submits beyond this many
  /// queued (not yet dispatched) requests are rejected with a
  /// retry-after hint instead of growing the queue without bound
  /// (postgres-style backpressure: fail fast, keep the server live).
  std::int64_t queue_capacity = 256;

  /// Batch-execution thread-pool size. Each in-flight batch leases one
  /// engine from the model's pool, so this also bounds engines per model.
  std::int64_t workers = 2;

  /// Ring of most recent per-request latencies kept for p50/p99.
  std::size_t latency_window = 8192;

  /// TCP port for the loopback transport (serve/transport.h). 0 binds an
  /// ephemeral port (tests/benches read it back via SocketServer::port()).
  std::int64_t port = 0;

  /// Per-connection I/O timeout: a connection stalled mid-frame (bytes
  /// buffered but no complete frame arriving) or wedged by the
  /// serve.read_stall fault is closed after this long with no progress.
  /// Idle connections with no half-read frame are NOT reaped — a quiet
  /// persistent client costs one fd, not a worker.
  std::int64_t io_timeout_ms = 2000;

  /// Upper bound on Server::drain(): if pending + in-flight work has not
  /// finished after this long (a wedged worker, a runaway batch), drain
  /// fails the still-queued requests and returns false instead of hanging
  /// SIGTERM/SIGINT shutdown forever. 0 waits without bound.
  std::int64_t drain_timeout_ms = 30000;

  /// Compiled-in defaults overlaid with SNNSKIP_SERVE_BATCH,
  /// SNNSKIP_SERVE_BUDGET_US, SNNSKIP_SERVE_LINGER_US,
  /// SNNSKIP_SERVE_QUEUE, SNNSKIP_SERVE_WORKERS, SNNSKIP_SERVE_PORT,
  /// SNNSKIP_SERVE_IO_TIMEOUT_MS, SNNSKIP_SERVE_DRAIN_MS.
  static ServeOptions from_env();
};

}  // namespace snnskip::serve
