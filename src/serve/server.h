#pragma once
// High-throughput inference daemon core (ISSUE 7, hardened in ISSUE 8):
// dynamic batching under a latency budget, bounded-queue admission
// control with explicit backpressure, end-to-end deadline propagation,
// model quarantine, and bounded graceful drain.
//
// Request model: a request is one event-stream sequence — T frames of
// shape (C, H, W) for a named model — and its response is the
// rate-accumulated head output (the per-class spike/logit sum over the
// sequence, the quantity the paper's rate decoding classifies on).
//
// Pipeline:
//
//   submit()  --admission-->  per-model pending queue  --dispatcher-->
//   batch (flush on batch-full OR deadline)  --ThreadPool-->  exec task
//   (lease pooled Engine, step T times, complete requests)
//
// * Admission control: one watermark across all models
//   (ServeOptions::queue_capacity). A submit over the watermark is
//   REJECTED immediately with a retry_after_us hint derived from the
//   current backlog — shed load explicitly at the edge instead of letting
//   latency grow without bound. Fault site `serve.queue_full` forces this
//   path deterministically.
// * Deadline propagation: a request may carry an ABSOLUTE deadline
//   (wire::mono_now_ns() domain, CLOCK_MONOTONIC). The dispatcher sheds
//   requests whose deadline already expired BEFORE batch assembly
//   (counter `serve.deadline_expired`, Outcome Expired) — engine time is
//   never spent computing an answer nobody is waiting for. Deadlines
//   arriving over the transport (serve/transport.h) flow through
//   unchanged, so a client timeout bounds server work end to end.
// * Dynamic batching: a dedicated dispatcher thread cuts a model's batch
//   when max_batch requests are pending or the OLDEST pending request
//   has waited its deadline — the full latency_budget_us while every
//   worker is busy, but only the short work-conserving linger_us while a
//   worker sits idle. Batches from different models (and multiple batches
//   of one model) execute concurrently on the worker pool; each leases
//   its own Engine, so per-engine ExecOptions and ExecStats never
//   interleave.
// * Quarantine: a batch whose engine output contains a non-finite value
//   (a corrupted weight blob, an overflowing activation, or the injected
//   `serve.engine_nan` fault) fails ONLY that batch's requests, then
//   evicts the model from the registry and reloads it from its spec —
//   checkpoint re-read, plan re-compiled — before the failures are
//   reported (counter `serve.quarantined`), so a client that retries on
//   failure immediately hits the fresh copy. If even the reload fails
//   (checkpoint now corrupt on disk) the model is unregistered: one
//   poisoned blob degrades one model, never the daemon.
// * Graceful drain: drain() stops admission, flushes every pending
//   request, and returns once nothing is queued or in flight — but never
//   waits longer than ServeOptions::drain_timeout_ms: on timeout the
//   still-queued requests are failed and drain returns false, so a
//   wedged worker cannot hang SIGTERM/SIGINT shutdown forever. The
//   destructor drains.
//
// Telemetry (enabled runs): per-request `serve.queue_wait` spans, per-
// batch `serve.execute` + per-step `serve.batch_assemble` spans, and
// serve.requests / serve.rejected / serve.batches / serve.batch_occupancy
// / serve.deadline_expired / serve.quarantined counters with a
// serve.queue_depth.high_water gauge. Latency p50/p99 over a recent
// window is always available from stats().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.h"
#include "serve/model_registry.h"
#include "serve/options.h"
#include "tensor/tensor.h"

namespace snnskip::serve {

/// Aggregate server statistics (stats(); all totals since construction).
struct ServeStats {
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;   ///< engine failures (incl. quarantines)
  std::int64_t expired = 0;  ///< shed with an already-expired deadline
  std::int64_t quarantined = 0;  ///< model evict+reload cycles
  std::int64_t batches = 0;
  double mean_batch_occupancy = 0.0;  ///< completed / batches
  std::int64_t queue_depth = 0;       ///< instantaneous pending requests
  std::int64_t queue_depth_high_water = 0;
  double p50_ms = 0.0;  ///< over the recent-latency window
  double p99_ms = 0.0;
};

/// Terminal disposition of one accepted request.
enum class RequestStatus {
  Ok,
  Rejected,  ///< admission shed it (submit_async only; submit() returns
             ///< a rejected Ticket instead)
  Expired,   ///< deadline passed before execution
  Failed,    ///< engine failure / quarantine / drain timeout
};

/// What a completion callback receives, exactly once per request.
struct Outcome {
  RequestStatus status = RequestStatus::Failed;
  Tensor value;                     ///< valid when status == Ok
  std::int64_t retry_after_us = 0;  ///< backpressure hint when Rejected
  std::string error;                ///< human-readable detail otherwise
};

struct SubmitOptions {
  /// Absolute deadline in wire::mono_now_ns() (CLOCK_MONOTONIC); 0 = no
  /// deadline. Expired requests are shed before batch assembly.
  std::int64_t deadline_ns = 0;
};

class Server {
 public:
  /// `registry` must outlive the server. Snapshots `opts`.
  Server(ModelRegistry& registry, ServeOptions opts = ServeOptions::from_env());
  ~Server();  ///< drains, then joins dispatcher and workers
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load `spec` through the registry and accept requests for
  /// `spec.name`. max_batch is clamped to the model's compiled batch
  /// capacity. Not callable after drain(). Throws on load failure —
  /// daemon startup paths that must survive a bad model use
  /// ModelRegistry::try_load + add_model(spec) in a try block, or the
  /// snnskip-serve binary's per-manifest skip logic.
  void add_model(const ModelSpec& spec);

  /// Outcome of submit: either a future for the rate-accumulated head
  /// output (shape (num_classes,)), or a rejection with a backpressure
  /// hint.
  struct Ticket {
    bool accepted = false;
    std::int64_t retry_after_us = 0;  ///< only meaningful when rejected
    std::future<Tensor> result;       ///< valid only when accepted
  };

  /// Submit a sequence for `model` (added via add_model; unknown names
  /// throw std::invalid_argument, as do empty sequences and frames whose
  /// shape differs from the model's compiled (C, H, W)). Never blocks on
  /// the queue: over-watermark submits return a rejected ticket. A shed
  /// deadline or an engine failure surfaces as std::runtime_error from
  /// result.get().
  Ticket submit(const std::string& model, std::vector<Tensor> frames,
                const SubmitOptions& sub = {});

  /// Callback form (what the transport uses): `done` is invoked exactly
  /// once — synchronously for admission rejections, from a worker thread
  /// otherwise. The callback must not re-enter the Server. Throws
  /// std::invalid_argument for malformed requests, like submit().
  void submit_async(const std::string& model, std::vector<Tensor> frames,
                    const SubmitOptions& sub,
                    std::function<void(Outcome)> done);

  /// Convenience: submit and wait. Throws std::runtime_error on
  /// rejection (callers that want backpressure semantics use submit()).
  Tensor infer(const std::string& model, std::vector<Tensor> frames);

  /// Stop admission, flush all pending batches immediately, and return
  /// once nothing is pending or in flight — or after
  /// ServeOptions::drain_timeout_ms, whichever comes first. On timeout,
  /// still-queued requests complete with RequestStatus::Failed and drain
  /// returns false (in-flight batches keep running and complete whenever
  /// their worker finishes). Idempotent.
  bool drain();
  bool draining() const;

  ServeStats stats() const;

 private:
  struct Request {
    std::vector<Tensor> frames;
    std::function<void(Outcome)> done;
    std::uint64_t enqueue_ns = 0;   ///< Telemetry::now_ns at admission
    std::int64_t deadline_ns = 0;   ///< wire::mono_now_ns domain; 0 = none
  };

  struct ModelQueue {
    ModelHandle model;
    std::deque<std::unique_ptr<Request>> pending;
  };

  struct Batch {
    ModelHandle model;  ///< keeps the model alive even if evicted mid-run
    std::vector<std::unique_ptr<Request>> requests;
  };

  void dispatcher_loop();
  /// Cut up to max_batch requests from `q` into a Batch and hand it to
  /// the worker pool. Caller holds mu_.
  void cut_batch(ModelQueue& q);
  /// Remove already-expired requests from every pending queue. Caller
  /// holds mu_; the shed requests are returned for completion OUTSIDE
  /// the lock.
  std::vector<std::unique_ptr<Request>> collect_expired();
  void run_batch(Batch batch);
  /// Evict + reload `model` after a poisoned batch; swaps the fresh
  /// handle into the queue (or unregisters the model when the reload
  /// itself fails). No locks held by the caller.
  void quarantine_model(const ModelHandle& model);
  void record_latency(double ms);

  const ServeOptions opts_;
  ModelRegistry& registry_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // dispatcher wakeups
  std::condition_variable drain_cv_;  // drain() completion
  std::map<std::string, ModelQueue> queues_;
  std::int64_t pending_total_ = 0;
  std::int64_t in_flight_batches_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  // Latched by a timed-out drain(); run_batch fast-fails batches still
  // parked in the worker queue instead of burning engine time on them.
  std::atomic<bool> drain_expired_{false};

  // Serializes quarantine evict+reload cycles (never held with mu_).
  std::mutex quarantine_mu_;

  // Totals (guarded by mu_).
  std::int64_t accepted_ = 0, rejected_ = 0, completed_ = 0, failed_ = 0;
  std::int64_t expired_ = 0, quarantined_ = 0;
  std::int64_t batches_ = 0, batched_requests_ = 0;
  std::int64_t depth_high_water_ = 0;

  // Recent request latencies (own lock: hot path, touched per request).
  mutable std::mutex lat_mu_;
  std::vector<double> latency_ring_;
  std::size_t lat_next_ = 0;
  bool lat_full_ = false;

  std::unique_ptr<ThreadPool> pool_;  // batch execution workers
  std::thread dispatcher_;
};

}  // namespace snnskip::serve
