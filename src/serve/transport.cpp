#include "serve/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "fault/inject.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace snnskip::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

wire::Status to_wire(RequestStatus s) {
  switch (s) {
    case RequestStatus::Ok:
      return wire::Status::Ok;
    case RequestStatus::Rejected:
      return wire::Status::Rejected;
    case RequestStatus::Expired:
      return wire::Status::Expired;
    case RequestStatus::Failed:
      return wire::Status::Failed;
  }
  return wire::Status::Failed;
}

}  // namespace

SocketServer::SocketServer(Server& server, const ServeOptions& opts)
    : server_(server), opts_(opts) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve::SocketServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port =
      htons(static_cast<std::uint16_t>(opts_.port < 0 ? 0 : opts_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        "serve::SocketServer: cannot listen on 127.0.0.1:" +
        std::to_string(opts_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = static_cast<int>(ntohs(bound.sin_port));
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve::SocketServer: pipe() failed");
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  io_ = std::thread([this] { io_loop(); });
  SNNSKIP_LOG(Info) << "serve: listening on 127.0.0.1:" << port_;
}

SocketServer::~SocketServer() {
  shutdown();
  // Every pending completion callback captures `this`, so none may still
  // be running (or waiting to run) when this object is freed. drain()
  // flushes the common case but is bounded by drain_timeout_ms — it can
  // return false with batches still executing or parked in the worker
  // pool whose completions fire later. Wait for the callback count
  // itself: once the drain timeout latches, parked batches fast-fail at
  // pickup, so this converges quickly unless a worker is wedged inside
  // an engine step (which would hang the Server's own pool join anyway).
  server_.drain();
  {
    std::unique_lock<std::mutex> lock(cb_mu_);
    cb_cv_.wait(lock, [this] { return pending_callbacks_ == 0; });
  }
  hard_stop_.store(true, std::memory_order_release);
  wake();
  if (io_.joinable()) io_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void SocketServer::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  wake();
}

SocketServer::TransportStats SocketServer::stats() const {
  TransportStats s;
  s.connections = connections_.load();
  s.frames_rx = frames_rx_.load();
  s.frames_torn = frames_torn_.load();
  s.responses_tx = responses_tx_.load();
  s.dropped_responses = dropped_responses_.load();
  s.disconnects = disconnects_.load();
  s.timeouts = timeouts_.load();
  s.accept_failures = accept_failures_.load();
  s.protocol_errors = protocol_errors_.load();
  return s;
}

void SocketServer::wake() {
  if (wake_wr_ >= 0) {
    const char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_wr_, &b, 1);  // EAGAIN is fine
  }
}

void SocketServer::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<ConnPtr> polled;  // pfds[i + 2] belongs to polled[i]

  while (!hard_stop_.load(std::memory_order_acquire)) {
    const bool shutting = shutdown_.load(std::memory_order_acquire);

    // Snapshot connections (the completion threads only touch out_mu-
    // guarded fields, never the map, so the snapshot is race-free).
    std::vector<ConnPtr> conns;
    {
      std::lock_guard<std::mutex> lock(cmu_);
      conns.reserve(conns_.size());
      for (auto& [id, c] : conns_) conns.push_back(c);
    }

    if (shutting && !goaway_sent_) {
      // Graceful drain: tell every client to stop sending; the connection
      // closes once its queued responses flush and nothing is in flight.
      goaway_sent_ = true;
      auto frame = wire::encode_goaway();
      for (const ConnPtr& c : conns) {
        std::lock_guard<std::mutex> lock(c->out_mu);
        if (!c->closed) c->outq.push_back(frame);
        c->closing = true;
      }
    }

    pfds.clear();
    polled.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    pfds.push_back({listen_fd_, static_cast<short>(shutting ? 0 : POLLIN), 0});
    for (const ConnPtr& c : conns) {
      short events = 0;
      if (!c->stalled && !c->closing) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(c->out_mu);
        if (!c->outq.empty()) events |= POLLOUT;
      }
      pfds.push_back({c->fd, events, 0});
      polled.push_back(c);
    }

    ::poll(pfds.data(), pfds.size(), 50);
    const std::int64_t now = wire::mono_now_ns();

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    if ((pfds[1].revents & POLLIN) != 0) do_accept();

    for (std::size_t i = 0; i < polled.size(); ++i) {
      const ConnPtr& c = polled[i];
      const short re = pfds[i + 2].revents;
      if (c->fd < 0) continue;
      if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        disconnects_.fetch_add(1);
        Telemetry::count("serve.transport.disconnects");
        close_conn(c);
        continue;
      }
      if ((re & POLLOUT) != 0) handle_writable(c);
      if (c->fd >= 0 && (re & POLLIN) != 0) handle_readable(c);
      if (c->fd < 0) continue;

      // A half-received frame (or an injected stall) that makes no
      // progress for io_timeout_ms is a dead or malicious peer: reap it.
      // Fully idle connections (no partial frame) are never reaped.
      if ((c->stalled || c->in.buffered() > 0) && opts_.io_timeout_ms > 0 &&
          now - c->last_progress_ns > opts_.io_timeout_ms * 1'000'000) {
        timeouts_.fetch_add(1);
        Telemetry::count("serve.transport.timeouts");
        SNNSKIP_LOG(Warn) << "serve: closing stalled connection #" << c->id
                          << " (" << c->in.buffered()
                          << " bytes buffered mid-frame)";
        close_conn(c);
        continue;
      }

      // Closing connections go away once flushed and quiescent.
      if (c->closing) {
        std::int64_t inflight;
        bool flushed;
        {
          std::lock_guard<std::mutex> lock(c->out_mu);
          inflight = c->inflight;
          flushed = c->outq.empty();
        }
        if (inflight == 0 && flushed) close_conn(c);
      }
    }
  }

  // Hard stop: drop whatever is left.
  std::lock_guard<std::mutex> lock(cmu_);
  for (auto& [id, c] : conns_) {
    std::lock_guard<std::mutex> olock(c->out_mu);
    c->closed = true;
    if (c->fd >= 0) ::close(c->fd);
    c->fd = -1;
  }
  conns_.clear();
}

void SocketServer::do_accept() {
  while (true) {
    sockaddr_in peer{};
    socklen_t plen = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      accept_failures_.fetch_add(1);
      Telemetry::count("serve.transport.accept_failures");
      SNNSKIP_LOG(Warn) << "serve: accept() failed: " << std::strerror(errno);
      return;
    }
    if (SNNSKIP_FAULT("serve.accept_fail")) {
      // Drill: an accept that fails after the handshake (fd exhaustion,
      // RST race) must not take the listener down with it.
      accept_failures_.fetch_add(1);
      Telemetry::count("serve.transport.accept_failures");
      SNNSKIP_LOG(Warn) << "serve: injected accept failure, dropping client";
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->last_progress_ns = wire::mono_now_ns();
    {
      std::lock_guard<std::mutex> lock(cmu_);
      c->id = next_conn_id_++;
      conns_.emplace(c->id, c);
    }
    connections_.fetch_add(1);
    Telemetry::count("serve.transport.connections");
  }
}

void SocketServer::handle_readable(const ConnPtr& c) {
  if (SNNSKIP_FAULT("serve.read_stall")) {
    // Drill: the peer stops mid-frame. Stop reading the fd; the stall
    // sweep closes it after io_timeout_ms.
    c->stalled = true;
    c->last_progress_ns = wire::mono_now_ns();
    return;
  }
  char buf[16384];
  while (true) {
    const ssize_t n = ::read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      c->last_progress_ns = wire::mono_now_ns();
      try {
        c->in.append(buf, static_cast<std::size_t>(n));
        while (auto frame = c->in.next()) {
          frames_rx_.fetch_add(1);
          handle_frame(c, std::move(*frame));
          if (c->fd < 0) return;  // handle_frame may close the conn
        }
      } catch (const wire::ProtocolError& e) {
        // Bad magic / header checksum / oversize length: the stream
        // cannot be resynced.
        protocol_errors_.fetch_add(1);
        Telemetry::count("serve.transport.protocol_errors");
        SNNSKIP_LOG(Warn) << "serve: protocol error on connection #" << c->id
                          << ": " << e.what();
        close_conn(c);
        return;
      } catch (const std::exception& e) {
        // Defense in depth: anything else a frame provokes (an allocation
        // failure above all) costs that connection, never the daemon — an
        // uncaught exception here would std::terminate the I/O thread.
        protocol_errors_.fetch_add(1);
        Telemetry::count("serve.transport.protocol_errors");
        SNNSKIP_LOG(Error) << "serve: error handling frame on connection #"
                           << c->id << ": " << e.what();
        close_conn(c);
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF
      disconnects_.fetch_add(1);
      Telemetry::count("serve.transport.disconnects");
      close_conn(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    disconnects_.fetch_add(1);  // ECONNRESET and friends
    Telemetry::count("serve.transport.disconnects");
    close_conn(c);
    return;
  }
}

void SocketServer::handle_frame(const ConnPtr& c,
                                wire::FrameAssembler::Frame frame) {
  if (frame.type == wire::FrameType::Goaway) return;  // client-side only
  if (frame.type != wire::FrameType::Request) {
    protocol_errors_.fetch_add(1);
    close_conn(c);
    return;
  }
  if (!frame.crc_ok || SNNSKIP_FAULT("serve.frame_torn")) {
    // Torn frame: the length prefix kept the stream synchronized, so only
    // THIS request is lost. Tell the client to resend (id 0: a torn
    // payload cannot be trusted for its id; the client protocol is one
    // outstanding request per connection, so correlation is unambiguous).
    frames_torn_.fetch_add(1);
    Telemetry::count("serve.frame_torn");
    wire::ResponseMsg r;
    r.id = 0;
    r.status = wire::Status::CrcError;
    r.error = "request frame failed CRC check; resend";
    send_response_now(c, r);
    return;
  }

  wire::RequestMsg req;
  try {
    req = wire::decode_request(frame.payload.data(), frame.payload.size());
  } catch (const wire::ProtocolError& e) {
    wire::ResponseMsg r;
    r.id = 0;
    r.status = wire::Status::BadRequest;
    r.error = e.what();
    send_response_now(c, r);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(c->out_mu);
    ++c->inflight;
  }
  {
    std::lock_guard<std::mutex> lock(cb_mu_);
    ++pending_callbacks_;
  }
  const std::uint64_t conn_id = c->id;
  const std::uint64_t req_id = req.id;
  SubmitOptions sub;
  sub.deadline_ns = req.deadline_ns;
  try {
    server_.submit_async(
        req.model, std::move(req.frames), sub,
        [this, conn_id, req_id](Outcome o) {
          wire::ResponseMsg r;
          r.id = req_id;
          r.status = to_wire(o.status);
          r.retry_after_us = o.retry_after_us;
          r.error = std::move(o.error);
          if (o.status == RequestStatus::Ok) r.value = std::move(o.value);
          enqueue_response(conn_id, wire::encode_response(r));
          // Last touch of `this`: the destructor waits on this count, and
          // notify must happen under the lock so it cannot outlive the
          // condition variable it signals.
          std::lock_guard<std::mutex> lock(cb_mu_);
          if (--pending_callbacks_ == 0) cb_cv_.notify_all();
        });
  } catch (const std::exception& e) {
    // Unknown model / empty sequence / shape mismatch: the request is
    // wrong, not the connection. submit_async threw before taking
    // ownership of the completion, so settle the inflight and callback
    // counts here.
    {
      std::lock_guard<std::mutex> lock(c->out_mu);
      --c->inflight;
    }
    {
      std::lock_guard<std::mutex> lock(cb_mu_);
      if (--pending_callbacks_ == 0) cb_cv_.notify_all();
    }
    wire::ResponseMsg r;
    r.id = req_id;
    r.status = wire::Status::BadRequest;
    r.error = e.what();
    send_response_now(c, r);
    return;
  }

  if (SNNSKIP_FAULT("serve.client_disconnect")) {
    // Drill: the peer vanishes with a request in flight. The batch must
    // still run and return its lease; the response is dropped on the
    // floor when the completion finds the connection gone.
    disconnects_.fetch_add(1);
    Telemetry::count("serve.transport.disconnects");
    SNNSKIP_LOG(Warn) << "serve: injected disconnect on connection #" << c->id;
    close_conn(c);
  }
}

void SocketServer::handle_writable(const ConnPtr& c) {
  bool broken = false;
  {
    std::lock_guard<std::mutex> lock(c->out_mu);
    while (!c->outq.empty()) {
      const std::vector<std::uint8_t>& front = c->outq.front();
      const ssize_t n = ::write(c->fd, front.data() + c->out_off,
                                front.size() - c->out_off);
      if (n > 0) {
        c->last_progress_ns = wire::mono_now_ns();
        c->out_off += static_cast<std::size_t>(n);
        if (c->out_off == front.size()) {
          c->outq.pop_front();
          c->out_off = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      broken = true;  // peer gone mid-write (EPIPE/ECONNRESET)
      break;
    }
  }
  if (broken) {
    disconnects_.fetch_add(1);
    Telemetry::count("serve.transport.disconnects");
    close_conn(c);
  }
}

void SocketServer::enqueue_response(std::uint64_t conn_id,
                                    std::vector<std::uint8_t> frame) {
  ConnPtr c;
  {
    std::lock_guard<std::mutex> lock(cmu_);
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) c = it->second;
  }
  if (!c) {
    dropped_responses_.fetch_add(1);
    Telemetry::count("serve.transport.dropped_responses");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(c->out_mu);
    --c->inflight;
    if (c->closed) {
      dropped_responses_.fetch_add(1);
      Telemetry::count("serve.transport.dropped_responses");
      return;
    }
    c->outq.push_back(std::move(frame));
  }
  responses_tx_.fetch_add(1);
  wake();
}

void SocketServer::send_response_now(const ConnPtr& c,
                                     const wire::ResponseMsg& m) {
  // I/O-thread path (torn frame / bad request): enqueue and let the poll
  // loop flush, same as completions.
  {
    std::lock_guard<std::mutex> lock(c->out_mu);
    if (c->closed) return;
    c->outq.push_back(wire::encode_response(m));
  }
  responses_tx_.fetch_add(1);
}

void SocketServer::close_conn(const ConnPtr& c) {
  {
    std::lock_guard<std::mutex> lock(c->out_mu);
    c->closed = true;
    if (c->fd >= 0) ::close(c->fd);
    c->fd = -1;
  }
  std::lock_guard<std::mutex> lock(cmu_);
  conns_.erase(c->id);
}

}  // namespace snnskip::serve
