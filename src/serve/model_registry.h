#pragma once
// Model cache for multi-tenant serving (ISSUE 7).
//
// ModelRegistry::load unifies the load-then-compile sequence that used to
// be duplicated ad hoc (build the zoo network, optionally restore an
// SNNSKIP2 checkpoint, warm BNTT stats for synthetic weights,
// infer::compile at a frozen batch shape) behind one call returning a
// shared ModelHandle:
//
//   serve::ModelRegistry registry(/*capacity=*/4);
//   serve::ModelHandle m = registry.load(spec);        // or load(path)
//   auto lease = m->lease();                           // pooled Engine
//   lease->step(x, &out);
//
// The registry keeps at most `capacity` models resident in LRU order;
// loading an evicted model again rebuilds it from its spec (checkpoint
// re-read, plan re-compiled). Eviction only drops the registry's
// reference — outstanding ModelHandles keep their model fully usable, so
// an in-flight batch can never lose its engine mid-run.
//
// Each LoadedModel owns one immutable PlanPtr and a pool of Engines
// compiled from it with the spec's per-engine ExecOptions. lease() pops a
// pooled engine (or constructs one when the pool is empty — pool size
// thus tracks peak concurrency, which the Server bounds by its worker
// count) and returns it on lease destruction. Engine::reset() is called
// on every lease, so each request sequence starts from zeroed neuron
// state.
//
// A model can also be described by a MANIFEST file — a trivial
// `key value` per line format (see ModelSpec::from_manifest) — which is
// what the snnskip-serve daemon's --manifests flag and
// ModelRegistry::load(path) consume.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/adjacency.h"
#include "infer/compile.h"
#include "infer/engine.h"
#include "models/zoo.h"
#include "tensor/shape.h"

namespace snnskip::serve {

struct ModelSpec {
  std::string name;              ///< registry key + telemetry label
  std::string family = "resnet18s";  ///< model-zoo family
  ModelConfig config{};
  /// Per-block adjacencies; empty selects default_adjacencies(family).
  std::vector<Adjacency> adjacencies;
  /// Optional SNNSKIP2 checkpoint restored into the built network before
  /// compiling. Empty keeps the seeded initialization.
  std::string checkpoint;
  /// Without a checkpoint, run this many train-mode steps on Bernoulli
  /// noise so the BNTT running stats are non-trivial before folding
  /// (synthetic-weights convenience used by benches and tests).
  std::int64_t warm_bn_steps = 0;
  /// Compiled batch capacity and input plane (channels come from config).
  std::int64_t batch = 1;
  std::int64_t in_h = 8, in_w = 8;
  infer::CompileOptions compile{};
  /// Int8 plans (compile.precision == Int8) self-calibrate at load time:
  /// the registry compiles an FP32 twin at batch 1, sweeps it over this
  /// many steps of a FIXED seeded Bernoulli spike stream (Rng(123),
  /// p=0.3) to profile activation ranges, then compiles the int8 plan
  /// from the profile. The stream is deterministic so an evicted model
  /// reloaded later gets a bit-identical plan (LRU round-trips stay
  /// reproducible, same contract as the BN warmup stream).
  std::int64_t calib_steps = 8;
  /// Per-engine dispatch options for every pooled engine of this model.
  infer::ExecOptions exec = infer::ExecOptions::defaults();

  /// The frozen (N, C, H, W) compile shape.
  Shape input_shape() const {
    return Shape{batch, config.in_channels, in_h, in_w};
  }

  /// Parse a `key value` manifest (one pair per line; '#' comments).
  /// Keys: name family width in_channels num_classes timesteps theta
  /// neuron (lif|plif) seed checkpoint warm_bn_steps batch in_h in_w
  /// fold_bn precision (fp32|int8) calib_steps packed threshold. Relative
  /// checkpoint paths resolve against the manifest's directory. Throws
  /// std::runtime_error on unreadable files or unknown keys.
  static ModelSpec from_manifest(const std::string& path);
};

class LoadedModel {
 public:
  /// Built by ModelRegistry; not user-constructible directly.
  LoadedModel(ModelSpec spec, infer::PlanPtr plan);

  const ModelSpec& spec() const { return spec_; }
  const infer::PlanPtr& plan() const { return plan_; }
  std::int64_t batch_capacity() const { return plan_->input_shape[0]; }

  /// RAII engine lease: returns the engine to the pool on destruction.
  class Lease {
   public:
    Lease(LoadedModel* m, std::unique_ptr<infer::Engine> e)
        : model_(m), engine_(std::move(e)) {}
    ~Lease() {
      if (model_ != nullptr) model_->release(std::move(engine_));
    }
    Lease(Lease&& o) noexcept
        : model_(o.model_), engine_(std::move(o.engine_)) {
      o.model_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    infer::Engine* operator->() const { return engine_.get(); }
    infer::Engine& operator*() const { return *engine_; }

   private:
    LoadedModel* model_;
    std::unique_ptr<infer::Engine> engine_;
  };

  /// Pop a pooled engine (reset to zeroed neuron state), constructing a
  /// new one when the pool is empty. Thread-safe.
  Lease lease();

  /// Engines ever constructed for this model (== peak concurrency).
  std::int64_t engines_created() const;

 private:
  friend class Lease;
  void release(std::unique_ptr<infer::Engine> e);

  const ModelSpec spec_;
  const infer::PlanPtr plan_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<infer::Engine>> free_;
  std::int64_t created_ = 0;
};

using ModelHandle = std::shared_ptr<LoadedModel>;

class ModelRegistry {
 public:
  /// `capacity` == max resident models; at least 1.
  explicit ModelRegistry(std::size_t capacity = capacity_from_env());

  /// SNNSKIP_SERVE_CACHE (default 4, min 1).
  static std::size_t capacity_from_env();

  /// Return the resident model named `spec.name` (refreshing recency), or
  /// build it: zoo network -> optional checkpoint restore -> BN warmup ->
  /// infer::compile -> engine pool. Evicts least-recently-used residents
  /// beyond capacity. Throws std::runtime_error when a checkpoint is
  /// named but cannot be restored, std::invalid_argument on bad specs.
  ModelHandle load(const ModelSpec& spec);

  /// Manifest-file convenience: load(ModelSpec::from_manifest(path)).
  ModelHandle load(const std::string& manifest_path);

  /// Recoverable variants of load(): a corrupt manifest (missing value,
  /// duplicate key, unknown key, unreadable file) or a CRC-failing /
  /// missing checkpoint returns nullptr with the reason in *error and an
  /// Error log line — never an uncaught throw. This is what the daemon's
  /// startup path and the quarantine reload use, so one bad model blob
  /// degrades one model instead of killing the process. The fault site
  /// `serve.manifest_corrupt` forces the manifest-parse failure
  /// deterministically.
  ModelHandle try_load(const ModelSpec& spec, std::string* error = nullptr);
  ModelHandle try_load(const std::string& manifest_path,
                       std::string* error = nullptr);

  /// Drop the resident entry for `name` (quarantine: the next load(spec)
  /// is forced cold, re-reading the checkpoint). Outstanding handles stay
  /// usable, exactly like LRU eviction. Returns false when not resident.
  bool evict(const std::string& name);

  /// Cold (cache-miss) loads so far — LRU tests observe reloads here.
  std::int64_t cold_loads() const;
  std::size_t resident() const;
  bool is_resident(const std::string& name) const;

 private:
  struct Entry {
    ModelHandle model;
    std::uint64_t last_used = 0;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  // small; linear scan
  std::uint64_t tick_ = 0;
  std::int64_t cold_loads_ = 0;
};

}  // namespace snnskip::serve
