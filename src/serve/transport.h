#pragma once
// TCP loopback transport for the serving daemon (ISSUE 8).
//
// SocketServer fronts a serve::Server with a real byte-stream interface:
// a nonblocking accept/read/write loop (one I/O thread, poll()-driven)
// speaking the length-prefixed, CRC-framed protocol of serve/protocol.h.
// The serving core stays transport-agnostic — the I/O thread only
// decodes frames, calls Server::submit_async, and encodes the Outcome the
// completion callback delivers (on a worker thread) into the
// connection's write queue, waking the poll loop through a self-pipe.
//
// Failure containment (the whole point — each path has a deterministic
// fault site and a chaos drill in tests/serve_fault_test.cpp):
//
//   * Torn frame (`serve.frame_torn`): a payload whose CRC fails is
//     answered with Status::CrcError and the connection SURVIVES — the
//     length prefix still delimits the frame, so the stream stays
//     synchronized. Only structural corruption (bad magic, oversize
//     length) closes the connection, because resync is impossible.
//   * Client disconnect (`serve.client_disconnect`): a peer vanishing
//     mid-request never cancels engine work — the batch completes, the
//     lease returns to the pool, and the orphaned response is dropped on
//     the floor (dropped_responses counter).
//   * Accept failure (`serve.accept_fail`): logged and counted; the
//     listener keeps accepting.
//   * Read stall (`serve.read_stall`): a connection that stops making
//     progress mid-frame is closed after ServeOptions::io_timeout_ms, so
//     a slow-loris client pins one fd, not a worker or the dispatcher.
//
// Shutdown: shutdown() stops accepting, sends a GOAWAY frame on every
// connection, and closes each one once its in-flight responses have
// flushed. The destructor shuts down, drains the wrapped Server, then
// BLOCKS until every completion callback handed to submit_async has run
// — drain() is bounded by drain_timeout_ms and can return with batches
// still executing or parked in the worker pool, and each of those
// callbacks captures `this`, so the destructor may not proceed on
// drain's word alone. Parked batches fast-fail at pickup once the drain
// timeout latches, so this wait is short; only a worker wedged INSIDE
// an engine step holds it up, and that worker would hang the Server's
// own destructor (pool join) regardless. Finally the I/O thread is
// joined.
//
// Deadlines cross the wire as absolute CLOCK_MONOTONIC values
// (wire::mono_now_ns) — valid because the transport is loopback/LAN
// scoped to one machine; see protocol.h.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/options.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace snnskip::serve {

class SocketServer {
 public:
  /// Binds 127.0.0.1:opts.port (0 = ephemeral; read back via port()),
  /// listens, and starts the I/O thread. Throws std::runtime_error when
  /// the socket cannot be bound. `server` must outlive this object.
  SocketServer(Server& server, const ServeOptions& opts);
  ~SocketServer();  ///< shutdown() + server.drain() + join
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound TCP port.
  int port() const { return port_; }

  /// Begin graceful shutdown: stop accepting, goaway every connection,
  /// flush in-flight responses, then close. Does NOT drain the Server
  /// (callers order that themselves: shutdown() -> Server::drain()).
  /// Idempotent, non-blocking.
  void shutdown();

  struct TransportStats {
    std::int64_t connections = 0;       ///< total accepted
    std::int64_t frames_rx = 0;         ///< complete frames parsed
    std::int64_t frames_torn = 0;       ///< CRC-failed frames rejected
    std::int64_t responses_tx = 0;      ///< responses enqueued to clients
    std::int64_t dropped_responses = 0; ///< completions after disconnect
    std::int64_t disconnects = 0;       ///< peer resets/EOFs + injected
    std::int64_t timeouts = 0;          ///< io_timeout_ms closes
    std::int64_t accept_failures = 0;   ///< failed/injected accepts
    std::int64_t protocol_errors = 0;   ///< unrecoverable stream errors
  };
  TransportStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    wire::FrameAssembler in;
    std::int64_t last_progress_ns = 0;  ///< last successful read/write
    bool stalled = false;  ///< serve.read_stall fired on this conn
    bool closing = false;  ///< close once outq flushes + inflight hits 0

    /// out_mu guards everything below (completion callbacks run on worker
    /// threads and append here while the I/O thread flushes).
    std::mutex out_mu;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t out_off = 0;
    std::int64_t inflight = 0;  ///< submitted, response not yet enqueued
    bool closed = false;        ///< fd closed; drop completions for it
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void io_loop();
  void do_accept();
  void handle_readable(const ConnPtr& c);
  void handle_frame(const ConnPtr& c, wire::FrameAssembler::Frame frame);
  void handle_writable(const ConnPtr& c);
  /// Completion path (any thread): append an encoded frame to the
  /// connection's write queue if it still exists, else drop.
  void enqueue_response(std::uint64_t conn_id,
                        std::vector<std::uint8_t> frame);
  void send_response_now(const ConnPtr& c, const wire::ResponseMsg& m);
  void close_conn(const ConnPtr& c);
  void wake();

  Server& server_;
  const ServeOptions opts_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;
  int port_ = 0;

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> hard_stop_{false};

  mutable std::mutex cmu_;  ///< conns_ map (I/O thread + completion threads)
  std::map<std::uint64_t, ConnPtr> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool goaway_sent_ = false;  ///< I/O thread only

  // Completion callbacks in flight (handed to submit_async, not yet
  // finished running). Each captures `this`; the destructor waits for
  // zero, since Server::drain() alone is no guarantee — it times out.
  std::mutex cb_mu_;
  std::condition_variable cb_cv_;
  std::int64_t pending_callbacks_ = 0;  ///< guarded by cb_mu_

  // Stats (atomics: bumped from the I/O thread and completion threads).
  std::atomic<std::int64_t> connections_{0}, frames_rx_{0}, frames_torn_{0},
      responses_tx_{0}, dropped_responses_{0}, disconnects_{0}, timeouts_{0},
      accept_failures_{0}, protocol_errors_{0};

  std::thread io_;
};

}  // namespace snnskip::serve
