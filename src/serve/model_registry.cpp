#include "serve/model_registry.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fault/inject.h"
#include "infer/quant.h"
#include "tensor/tensor.h"
#include "telemetry/telemetry.h"
#include "train/checkpoint.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/runtime_env.h"

namespace snnskip::serve {

namespace {

bool parse_bool(const std::string& v) {
  std::string t;
  t.reserve(v.size());
  for (char c : v) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return !(t == "0" || t == "false" || t == "off" || t == "no");
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string file_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end =
      (dot == std::string::npos || dot <= start) ? path.size() : dot;
  return path.substr(start, end - start);
}

}  // namespace

ModelSpec ModelSpec::from_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in || SNNSKIP_FAULT("serve.manifest_corrupt")) {
    throw std::runtime_error("serve::ModelSpec: cannot read manifest " + path);
  }
  ModelSpec spec;
  std::string line;
  std::size_t lineno = 0;
  std::set<std::string> seen_keys;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key, value;
    if (!(ls >> key)) continue;  // blank / comment-only line
    ls >> std::ws;
    std::getline(ls, value);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.pop_back();
    }
    auto bad = [&](const std::string& why) {
      throw std::runtime_error("serve::ModelSpec: " + path + ":" +
                               std::to_string(lineno) + ": " + why);
    };
    if (value.empty()) bad("missing value for key '" + key + "'");
    if (!seen_keys.insert(key).second) {
      // A duplicate key is almost always a hand-edit gone wrong; silently
      // letting the last one win would serve a model nobody asked for.
      bad("duplicate key '" + key + "'");
    }
    try {
      if (key == "name") {
        spec.name = value;
      } else if (key == "family") {
        spec.family = value;
      } else if (key == "width") {
        spec.config.width = std::stoll(value);
      } else if (key == "in_channels") {
        spec.config.in_channels = std::stoll(value);
      } else if (key == "num_classes") {
        spec.config.num_classes = std::stoll(value);
      } else if (key == "timesteps") {
        spec.config.max_timesteps = std::stoll(value);
      } else if (key == "seed") {
        spec.config.seed = std::stoull(value);
      } else if (key == "theta") {
        spec.config.lif.threshold = std::stof(value);
      } else if (key == "neuron") {
        if (value == "lif") {
          spec.config.neuron = NeuronKind::Lif;
        } else if (value == "plif") {
          spec.config.neuron = NeuronKind::Plif;
        } else {
          bad("unknown neuron kind '" + value + "'");
        }
      } else if (key == "checkpoint") {
        spec.checkpoint =
            value.front() == '/' ? value : dirname_of(path) + "/" + value;
      } else if (key == "warm_bn_steps") {
        spec.warm_bn_steps = std::stoll(value);
      } else if (key == "batch") {
        spec.batch = std::stoll(value);
      } else if (key == "in_h") {
        spec.in_h = std::stoll(value);
      } else if (key == "in_w") {
        spec.in_w = std::stoll(value);
      } else if (key == "fold_bn") {
        spec.compile.fold_bn = parse_bool(value);
      } else if (key == "precision") {
        if (!infer::parse_precision(value, &spec.compile.precision)) {
          bad("unknown precision '" + value + "' (fp32|int8)");
        }
      } else if (key == "calib_steps") {
        spec.calib_steps = std::stoll(value);
      } else if (key == "packed") {
        spec.exec.packed = parse_bool(value);
      } else if (key == "threshold") {
        spec.exec.threshold = std::stof(value);
      } else {
        bad("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      bad("unparsable value '" + value + "' for key '" + key + "'");
    } catch (const std::out_of_range&) {
      bad("out-of-range value '" + value + "' for key '" + key + "'");
    }
  }
  if (spec.name.empty()) spec.name = file_stem(path);
  return spec;
}

LoadedModel::LoadedModel(ModelSpec spec, infer::PlanPtr plan)
    : spec_(std::move(spec)), plan_(std::move(plan)) {}

LoadedModel::Lease LoadedModel::lease() {
  std::unique_ptr<infer::Engine> eng;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      eng = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (!eng) {
    // Construct outside the lock: arena allocation is the expensive part
    // and must not serialize concurrent leases of other engines.
    eng = std::make_unique<infer::Engine>(plan_, spec_.exec);
  }
  eng->reset();
  return Lease(this, std::move(eng));
}

void LoadedModel::release(std::unique_ptr<infer::Engine> e) {
  if (!e) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(e));
}

std::int64_t LoadedModel::engines_created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t ModelRegistry::capacity_from_env() {
  const std::int64_t v = env::get_int("SNNSKIP_SERVE_CACHE", 4);
  return static_cast<std::size_t>(v < 1 ? 1 : v);
}

ModelRegistry::ModelRegistry(std::size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

ModelHandle ModelRegistry::load(const ModelSpec& spec) {
  if (spec.name.empty()) {
    throw std::invalid_argument("serve::ModelRegistry: spec.name is empty");
  }
  if (spec.batch < 1) {
    throw std::invalid_argument("serve::ModelRegistry: spec.batch < 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (name == spec.name) {
      entry.last_used = ++tick_;
      Telemetry::count("serve.model_cache.hits");
      return entry.model;
    }
  }

  // Cold load: build -> restore/warm -> compile -> pool. Loads serialize
  // behind the registry lock (cheap next to training; serving hot paths
  // only touch LoadedModel, which has its own lock).
  Network net = build_model(
      spec.family, spec.config,
      spec.adjacencies.empty()
          ? default_adjacencies(spec.family, spec.config)
          : spec.adjacencies);
  const Shape in_shape = spec.input_shape();
  if (!spec.checkpoint.empty()) {
    if (load_network(spec.checkpoint, net) == 0) {
      // Covers the missing file, a truncated/torn write, and any CRC
      // mismatch: load_entries restores whole-or-not-at-all (ISSUE 3).
      throw std::runtime_error(
          "serve::ModelRegistry: checkpoint missing or corrupt "
          "(restored no parameters): " +
          spec.checkpoint);
    }
  } else if (spec.warm_bn_steps > 0) {
    // Fixed warmup stream: an evicted model reloaded later recovers the
    // exact same BNTT stats, so LRU round-trips are bit-reproducible.
    // Always batch-1, independent of the compiled capacity, so specs
    // differing only in `batch` fold identical weights (serve_load
    // cross-checks batched serving against a batch-1 twin this way).
    const Shape warm_shape{1, spec.config.in_channels, spec.in_h, spec.in_w};
    Rng rng(99);
    net.reset_state();
    for (std::int64_t t = 0; t < spec.warm_bn_steps; ++t) {
      net.forward(Tensor::bernoulli(warm_shape, rng, 0.3f), /*train=*/true);
    }
  }
  net.reset_state();
  infer::Plan plan;
  if (spec.compile.precision == infer::Precision::Int8) {
    // Self-calibration (ISSUE 10): profile activation ranges on an FP32
    // twin over a fixed seeded spike stream, then compile int8 from the
    // profile. Batch-1 calibration shape for the same reason as the BN
    // warmup: specs differing only in `batch` must fold (and now
    // quantize) identical weights.
    infer::CompileOptions fp = spec.compile;
    fp.precision = infer::Precision::Fp32;
    fp.quant = nullptr;
    const Shape cal_shape{1, spec.config.in_channels, spec.in_h, spec.in_w};
    infer::PlanPtr fplan = infer::compile(net, cal_shape, fp);
    const std::int64_t steps = spec.calib_steps < 1 ? 1 : spec.calib_steps;
    std::vector<std::vector<Tensor>> seqs(1);
    Rng crng(123);
    for (std::int64_t t = 0; t < steps; ++t) {
      seqs[0].push_back(Tensor::bernoulli(cal_shape, crng, 0.3f));
    }
    const infer::QuantProfile prof = infer::calibrate_quant(fplan, seqs);
    infer::CompileOptions qopts = spec.compile;
    qopts.quant = &prof;
    plan = infer::compile_plan(net, in_shape, qopts);
  } else {
    plan = infer::compile_plan(net, in_shape, spec.compile);
  }
  plan.model_name = spec.name;
  auto model = std::make_shared<LoadedModel>(
      spec, std::make_shared<const infer::Plan>(std::move(plan)));

  entries_.emplace_back(spec.name, Entry{model, ++tick_});
  ++cold_loads_;
  Telemetry::count("serve.model_cache.cold_loads");
  while (entries_.size() > capacity_) {
    auto lru = std::min_element(
        entries_.begin(), entries_.end(), [](const auto& a, const auto& b) {
          return a.second.last_used < b.second.last_used;
        });
    Telemetry::count("serve.model_cache.evictions");
    entries_.erase(lru);
  }
  return model;
}

ModelHandle ModelRegistry::load(const std::string& manifest_path) {
  return load(ModelSpec::from_manifest(manifest_path));
}

ModelHandle ModelRegistry::try_load(const ModelSpec& spec,
                                    std::string* error) {
  try {
    return load(spec);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    SNNSKIP_LOG(Error) << "serve: model load failed, skipping '" << spec.name
                       << "': " << e.what();
    Telemetry::count("serve.model_cache.load_failures");
    return nullptr;
  }
}

ModelHandle ModelRegistry::try_load(const std::string& manifest_path,
                                    std::string* error) {
  try {
    return load(manifest_path);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    SNNSKIP_LOG(Error) << "serve: model load failed, skipping manifest "
                       << manifest_path << ": " << e.what();
    Telemetry::count("serve.model_cache.load_failures");
    return nullptr;
  }
}

bool ModelRegistry::evict(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == name) {
      entries_.erase(it);
      Telemetry::count("serve.model_cache.evictions");
      return true;
    }
  }
  return false;
}

std::int64_t ModelRegistry::cold_loads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_loads_;
}

std::size_t ModelRegistry::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ModelRegistry::is_resident(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [n, entry] : entries_) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace snnskip::serve
