// snnskip-serve: high-throughput inference daemon (ISSUE 7, networked in
// ISSUE 8).
//
// Stands up a ModelRegistry + Server and either:
//
//   * serves the CRC-framed loopback TCP protocol (--port N or
//     SNNSKIP_SERVE_PORT; serve/transport.h) until SIGTERM/SIGINT or
//     --duration-s elapses, or
//   * drives itself with an in-process closed-loop client soak (the
//     default, and what bench/serve_load measures).
//
// Models come from --manifests (comma-separated `key value` manifest
// files, see serve/model_registry.h) or a built-in two-model demo with
// synthetic weights. A manifest that fails to load — unreadable or
// corrupt file, duplicate key, CRC-failing checkpoint — is SKIPPED with
// an error log line; the daemon starts with whatever loaded. It only
// fails when nothing loaded.
//
// SIGTERM/SIGINT trigger a graceful drain: admission stops, connected
// clients get a GOAWAY frame, every pending request flushes (bounded by
// SNNSKIP_SERVE_DRAIN_MS), and the final stats line prints before exit.
//
// Usage:
//   snnskip-serve [--manifests a.manifest,b.manifest]
//                 [--port 7433] [--duration-s 5] [--clients 4]
//                 [--timesteps 6] [--rate 0.15] [--telemetry 1]
//                 [--trace-out serve_trace.json]

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/options.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/rng.h"

namespace snnskip::serve {
namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Two small synthetic-weight models so the daemon demos multi-tenant
// serving out of the box (distinct thetas => distinct dispatch mixes).
std::vector<ModelSpec> demo_specs(std::int64_t timesteps) {
  std::vector<ModelSpec> specs(2);
  specs[0].name = "demo-a";
  specs[1].name = "demo-b";
  specs[1].config.lif.threshold = 2.0f;
  for (ModelSpec& s : specs) {
    s.config.width = 8;
    s.config.in_channels = 2;
    s.config.max_timesteps = timesteps;
    s.config.seed = 7;
    s.warm_bn_steps = timesteps;
    s.batch = 8;
  }
  return specs;
}

void print_stats(const Server& server, const char* tag) {
  const ServeStats s = server.stats();
  std::printf(
      "[%s] ok=%lld rej=%lld fail=%lld exp=%lld quar=%lld batches=%lld "
      "occ=%.2f depth=%lld (hw %lld) p50=%.2fms p99=%.2fms\n",
      tag, static_cast<long long>(s.completed),
      static_cast<long long>(s.rejected), static_cast<long long>(s.failed),
      static_cast<long long>(s.expired),
      static_cast<long long>(s.quarantined),
      static_cast<long long>(s.batches), s.mean_batch_occupancy,
      static_cast<long long>(s.queue_depth),
      static_cast<long long>(s.queue_depth_high_water), s.p50_ms, s.p99_ms);
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const double duration_s = args.get_double("duration-s", 5.0);
  const int clients = args.get_int("clients", 4);
  const std::int64_t timesteps = args.get_int("timesteps", 6);
  const float rate = static_cast<float>(args.get_double("rate", 0.15));
  const std::string trace_out = args.get("trace-out", "");
  if (args.get_int("telemetry", trace_out.empty() ? 0 : 1) != 0) {
    Telemetry::set_enabled(true);
  }

  ServeOptions opts = ServeOptions::from_env();
  if (args.has("port")) opts.port = args.get_int("port", 0);
  const bool socket_mode = args.has("port") || opts.port != 0;

  ModelRegistry registry;
  Server server(registry, opts);

  std::vector<std::string> names;
  if (args.has("manifests")) {
    for (const std::string& path : split_csv(args.get("manifests", ""))) {
      // One corrupt manifest or checkpoint must not keep the healthy
      // models from serving: parse + load recoverably and skip failures.
      std::string err;
      const ModelHandle loaded = registry.try_load(path, &err);
      if (!loaded) {
        std::fprintf(stderr, "skipped %s: %s\n", path.c_str(), err.c_str());
        continue;
      }
      server.add_model(loaded->spec());
      names.push_back(loaded->spec().name);
      std::printf("loaded %-16s (%s)\n", loaded->spec().name.c_str(),
                  path.c_str());
    }
  } else {
    for (const ModelSpec& spec : demo_specs(timesteps)) {
      server.add_model(spec);
      names.push_back(spec.name);
      std::printf("loaded %-16s (built-in demo)\n", spec.name.c_str());
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "FAIL: no models loaded\n");
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);

  if (socket_mode) {
    // Network mode: the transport owns all client traffic; this thread
    // only prints stats and watches for shutdown.
    SocketServer transport(server, opts);
    std::printf("serving on 127.0.0.1:%d\n", transport.port());
    while (!g_stop.load(std::memory_order_relaxed) &&
           (duration_s <= 0.0 || std::chrono::steady_clock::now() < deadline)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      print_stats(server, "serve");
    }
    transport.shutdown();  // goaway every connection
    const bool clean = server.drain();
    print_stats(server, "final");
    const SocketServer::TransportStats ts = transport.stats();
    std::printf(
        "[transport] conns=%lld frames=%lld torn=%lld resp=%lld "
        "dropped=%lld disc=%lld timeouts=%lld accfail=%lld\n",
        static_cast<long long>(ts.connections),
        static_cast<long long>(ts.frames_rx),
        static_cast<long long>(ts.frames_torn),
        static_cast<long long>(ts.responses_tx),
        static_cast<long long>(ts.dropped_responses),
        static_cast<long long>(ts.disconnects),
        static_cast<long long>(ts.timeouts),
        static_cast<long long>(ts.accept_failures));
    if (!clean) std::fprintf(stderr, "WARN: drain timed out\n");
  } else {
    // Closed-loop clients: each submits one sequence at a time to a model
    // picked round-robin per request, backing off by the server's
    // retry_after_us hint when rejected.
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(1000 + static_cast<std::uint64_t>(c));
        const Shape frame{2, 8, 8};
        std::uint64_t i = 0;
        while (!g_stop.load(std::memory_order_relaxed) &&
               std::chrono::steady_clock::now() < deadline) {
          const std::string& model =
              names[(static_cast<std::size_t>(c) + i++) % names.size()];
          std::vector<Tensor> frames;
          frames.reserve(static_cast<std::size_t>(timesteps));
          for (std::int64_t t = 0; t < timesteps; ++t) {
            frames.push_back(Tensor::bernoulli(frame, rng, rate));
          }
          Server::Ticket ticket = server.submit(model, std::move(frames));
          if (!ticket.accepted) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(ticket.retry_after_us));
            continue;
          }
          ticket.result.get();
        }
      });
    }

    while (!g_stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      print_stats(server, "serve");
    }

    g_stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    server.drain();
    print_stats(server, "final");
  }

  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace snnskip::serve

int main(int argc, char** argv) { return snnskip::serve::run(argc, argv); }
