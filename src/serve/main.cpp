// snnskip-serve: high-throughput inference daemon (ISSUE 7).
//
// Stands up a ModelRegistry + Server and drives it with an in-process
// closed-loop client soak (the repo has no network stack; the daemon's
// value is the serving core — dynamic batching, admission control,
// model cache — which bench/serve_load measures and tests/serve_test
// checks). Models come from --manifests (comma-separated `key value`
// manifest files, see serve/model_registry.h) or a built-in two-model
// demo with synthetic weights.
//
// SIGINT triggers a graceful drain: admission stops, every pending
// request flushes, and the final stats line prints before exit.
//
// Usage:
//   snnskip-serve [--manifests a.manifest,b.manifest]
//                 [--duration-s 5] [--clients 4] [--timesteps 6]
//                 [--rate 0.15] [--telemetry 1]
//                 [--trace-out serve_trace.json]

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.h"
#include "serve/options.h"
#include "serve/server.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "tensor/tensor.h"
#include "util/cli.h"
#include "util/rng.h"

namespace snnskip::serve {
namespace {

std::atomic<bool> g_stop{false};

void on_sigint(int) { g_stop.store(true, std::memory_order_relaxed); }

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Two small synthetic-weight models so the daemon demos multi-tenant
// serving out of the box (distinct thetas => distinct dispatch mixes).
std::vector<ModelSpec> demo_specs(std::int64_t timesteps) {
  std::vector<ModelSpec> specs(2);
  specs[0].name = "demo-a";
  specs[1].name = "demo-b";
  specs[1].config.lif.threshold = 2.0f;
  for (ModelSpec& s : specs) {
    s.config.width = 8;
    s.config.in_channels = 2;
    s.config.max_timesteps = timesteps;
    s.config.seed = 7;
    s.warm_bn_steps = timesteps;
    s.batch = 8;
  }
  return specs;
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  const double duration_s = args.get_double("duration-s", 5.0);
  const int clients = args.get_int("clients", 4);
  const std::int64_t timesteps = args.get_int("timesteps", 6);
  const float rate = static_cast<float>(args.get_double("rate", 0.15));
  const std::string trace_out = args.get("trace-out", "");
  if (args.get_int("telemetry", trace_out.empty() ? 0 : 1) != 0) {
    Telemetry::set_enabled(true);
  }

  ModelRegistry registry;
  Server server(registry);

  std::vector<std::string> names;
  if (args.has("manifests")) {
    for (const std::string& path : split_csv(args.get("manifests", ""))) {
      const ModelSpec spec = ModelSpec::from_manifest(path);
      server.add_model(spec);
      names.push_back(spec.name);
      std::printf("loaded %-16s (%s)\n", spec.name.c_str(), path.c_str());
    }
  } else {
    for (const ModelSpec& spec : demo_specs(timesteps)) {
      server.add_model(spec);
      names.push_back(spec.name);
      std::printf("loaded %-16s (built-in demo)\n", spec.name.c_str());
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "FAIL: no models loaded\n");
    return 1;
  }

  std::signal(SIGINT, on_sigint);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);

  // Closed-loop clients: each submits one sequence at a time to a model
  // picked round-robin per request, backing off by the server's
  // retry_after_us hint when rejected.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      const Shape frame{2, 8, 8};
      std::uint64_t i = 0;
      while (!g_stop.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < deadline) {
        const std::string& model =
            names[(static_cast<std::size_t>(c) + i++) % names.size()];
        std::vector<Tensor> frames;
        frames.reserve(static_cast<std::size_t>(timesteps));
        for (std::int64_t t = 0; t < timesteps; ++t) {
          frames.push_back(Tensor::bernoulli(frame, rng, rate));
        }
        Server::Ticket ticket = server.submit(model, std::move(frames));
        if (!ticket.accepted) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(ticket.retry_after_us));
          continue;
        }
        ticket.result.get();
      }
    });
  }

  // Periodic stats until the soak ends or SIGINT arrives.
  auto print_stats = [&](const char* tag) {
    const ServeStats s = server.stats();
    std::printf(
        "[%s] ok=%lld rej=%lld fail=%lld batches=%lld occ=%.2f depth=%lld "
        "(hw %lld) p50=%.2fms p99=%.2fms\n",
        tag, static_cast<long long>(s.completed),
        static_cast<long long>(s.rejected), static_cast<long long>(s.failed),
        static_cast<long long>(s.batches), s.mean_batch_occupancy,
        static_cast<long long>(s.queue_depth),
        static_cast<long long>(s.queue_depth_high_water), s.p50_ms, s.p99_ms);
  };
  while (!g_stop.load(std::memory_order_relaxed) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    print_stats("serve");
  }

  g_stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  server.drain();
  print_stats("final");

  if (!trace_out.empty()) {
    if (!write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace snnskip::serve

int main(int argc, char** argv) { return snnskip::serve::run(argc, argv); }
