#include "serve/options.h"

#include "util/runtime_env.h"

namespace snnskip::serve {

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.max_batch = env::get_int("SNNSKIP_SERVE_BATCH", o.max_batch);
  if (o.max_batch < 1) o.max_batch = 1;
  o.latency_budget_us =
      env::get_int("SNNSKIP_SERVE_BUDGET_US", o.latency_budget_us);
  if (o.latency_budget_us < 0) o.latency_budget_us = 0;
  o.linger_us = env::get_int("SNNSKIP_SERVE_LINGER_US", o.linger_us);
  if (o.linger_us < 0) o.linger_us = 0;
  o.queue_capacity = env::get_int("SNNSKIP_SERVE_QUEUE", o.queue_capacity);
  if (o.queue_capacity < 1) o.queue_capacity = 1;
  o.workers = env::get_int("SNNSKIP_SERVE_WORKERS", o.workers);
  if (o.workers < 1) o.workers = 1;
  o.port = env::get_int("SNNSKIP_SERVE_PORT", o.port);
  if (o.port < 0 || o.port > 65535) o.port = 0;
  o.io_timeout_ms = env::get_int("SNNSKIP_SERVE_IO_TIMEOUT_MS", o.io_timeout_ms);
  if (o.io_timeout_ms < 1) o.io_timeout_ms = 1;
  o.drain_timeout_ms = env::get_int("SNNSKIP_SERVE_DRAIN_MS", o.drain_timeout_ms);
  if (o.drain_timeout_ms < 0) o.drain_timeout_ms = 0;
  return o;
}

}  // namespace snnskip::serve
