#include "serve/options.h"

#include "util/runtime_env.h"

namespace snnskip::serve {

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.max_batch = env::get_int("SNNSKIP_SERVE_BATCH", o.max_batch);
  if (o.max_batch < 1) o.max_batch = 1;
  o.latency_budget_us =
      env::get_int("SNNSKIP_SERVE_BUDGET_US", o.latency_budget_us);
  if (o.latency_budget_us < 0) o.latency_budget_us = 0;
  o.linger_us = env::get_int("SNNSKIP_SERVE_LINGER_US", o.linger_us);
  if (o.linger_us < 0) o.linger_us = 0;
  o.queue_capacity = env::get_int("SNNSKIP_SERVE_QUEUE", o.queue_capacity);
  if (o.queue_capacity < 1) o.queue_capacity = 1;
  o.workers = env::get_int("SNNSKIP_SERVE_WORKERS", o.workers);
  if (o.workers < 1) o.workers = 1;
  return o;
}

}  // namespace snnskip::serve
