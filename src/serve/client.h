#pragma once
// Client library for the snnskip-serve TCP transport (ISSUE 8).
//
// A Client owns one blocking loopback connection and speaks the
// one-outstanding-request protocol of serve/protocol.h: send a Request
// frame, wait for the matching Response. What it adds over a raw socket
// is the FAULT-TOLERANCE policy, so every caller (bench/serve_load's
// socket mode, the chaos drills, a user's driver script) retries the same
// way:
//
//   * Capped exponential backoff with deterministic jitter. Attempt k
//     sleeps in [d/2, d] where d = min(backoff_cap_us,
//     backoff_base_us * 2^k); the jitter stream is splitmix64 seeded from
//     ClientOptions::jitter_seed, so a drill replays the exact same
//     delays. When the server supplied a retry_after_us backpressure
//     hint, the sleep is max(hint, jittered backoff) — the server knows
//     its backlog better than the client's schedule does.
//   * Retry classification: Rejected (backpressure), Failed (transient
//     engine failure — the server quarantine-reloads the model before the
//     failure is even reported, so an immediate retry hits a fresh copy),
//     CrcError (torn frame; resend) and connection errors are retried up
//     to max_retries. Ok, Expired, BadRequest and Goaway are terminal:
//     more attempts cannot change the answer.
//   * Deadline honesty: a nonzero absolute deadline (wire::mono_now_ns
//     domain) is checked before every attempt — the client returns
//     Expired locally rather than submitting work whose answer it will
//     not wait for, mirroring the server's own pre-batch shedding.
//
// Clients are NOT thread-safe; use one Client per thread (each costs one
// fd). Connection setup is lazy and re-establishment after an error is
// automatic on the next attempt.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace snnskip::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< required (no default port; tests use ephemeral)
  /// Socket send/receive timeout (SO_SNDTIMEO/SO_RCVTIMEO). A server that
  /// stops responding surfaces as a retryable connection error after this
  /// long, never a hang.
  std::int64_t io_timeout_ms = 2000;
  std::int64_t max_retries = 8;  ///< retry attempts AFTER the first try
  std::int64_t backoff_base_us = 200;
  std::int64_t backoff_cap_us = 50'000;
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;

  /// Defaults overlaid with SNNSKIP_CLIENT_RETRIES,
  /// SNNSKIP_CLIENT_BACKOFF_US, SNNSKIP_CLIENT_BACKOFF_CAP_US.
  static ClientOptions from_env();
};

class Client {
 public:
  explicit Client(ClientOptions opts);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    bool ok = false;
    wire::Status status = wire::Status::Failed;
    Tensor value;       ///< rate-accumulated head output when ok
    std::string error;  ///< final failure detail otherwise
    std::int64_t retries = 0;  ///< attempts beyond the first
  };

  /// Run one sequence through the server, retrying per the policy above.
  /// `deadline_ns` is an absolute wire::mono_now_ns() value (0 = none)
  /// propagated to the server and honored locally between retries.
  Result infer(const std::string& model, const std::vector<Tensor>& frames,
               std::int64_t deadline_ns = 0);

  /// The delay before retry attempt `attempt` (0-based), combining the
  /// jittered exponential backoff with the server's retry_after_us hint.
  /// Deterministic for a given seed; advances the jitter stream. Public
  /// so tests can replay the schedule.
  std::int64_t backoff_delay_us(std::int64_t attempt,
                                std::int64_t server_hint_us);

  bool connected() const { return fd_ >= 0; }
  /// Server sent GOAWAY (draining); subsequent infer() fails fast.
  bool goaway() const { return goaway_; }

 private:
  bool connect_();  ///< idempotent; false on failure (errno in last_err_)
  void disconnect_();
  /// One send+receive attempt. Returns false on connection-level failure
  /// (out->status untouched); true with *out filled otherwise.
  bool try_once(const std::vector<std::uint8_t>& frame, std::uint64_t id,
                wire::ResponseMsg* out);

  ClientOptions opts_;
  int fd_ = -1;
  wire::FrameAssembler in_;
  std::uint64_t next_id_ = 1;
  std::uint64_t jitter_state_;
  bool goaway_ = false;
  std::string last_err_;
};

}  // namespace snnskip::serve
