#include "snn/encoders.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace snnskip {

Tensor PoissonEncoder::encode(const Tensor& x, std::int64_t t) {
  (void)t;  // each call draws fresh spikes; reset() rewinds the stream
  Tensor out(x.shape());
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float p =
        std::clamp(gain_ * x[static_cast<std::size_t>(i)], 0.f, 1.f);
    out[static_cast<std::size_t>(i)] = rng_.bernoulli(p) ? 1.f : 0.f;
  }
  return out;
}

std::unique_ptr<Encoder> PoissonEncoder::clone_shard(
    std::uint64_t shard) const {
  // Splitmix-derived per-shard seed: decorrelated streams, pure function of
  // (seed, shard). Shard 0 deliberately does NOT reuse the parent stream —
  // a shard sees only its slice of the batch, so "same stream" would not
  // reproduce the unsharded encoding anyway.
  std::uint64_t state = seed_ ^ (0xb5ad4eceda1ce2a9ULL * (shard + 1));
  return std::make_unique<PoissonEncoder>(splitmix64(state), gain_);
}

Tensor DirectEncoder::encode(const Tensor& x, std::int64_t t) {
  (void)t;
  return x;
}

Tensor EventEncoder::encode(const Tensor& x, std::int64_t t) {
  [[maybe_unused]] const Shape& s = x.shape();
  assert(s.ndim() == 4 && s[1] == t_ * c_);
  assert(t >= 0 && t < t_);
  return slice_channels(x, t * c_, (t + 1) * c_);
}

Tensor LatencyEncoder::encode(const Tensor& x, std::int64_t t) {
  assert(t >= 0 && t < t_);
  Tensor out(x.shape());
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[static_cast<std::size_t>(i)];
    if (v < min_intensity_) continue;
    // Intensity 1 fires at t = 0; intensity at the floor fires at t = T-1.
    const float clamped = std::clamp(v, 0.f, 1.f);
    const auto fire_t = static_cast<std::int64_t>(
        std::lround((1.f - clamped) * static_cast<float>(t_ - 1)));
    if (fire_t == t) out[static_cast<std::size_t>(i)] = 1.f;
  }
  return out;
}

}  // namespace snnskip
