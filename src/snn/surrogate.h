#pragma once
// Surrogate derivatives for the spike nonlinearity.
//
// The spike function S = H(V - theta) has zero derivative almost everywhere,
// which breaks backpropagation (paper §II, Neftci et al. 2019). During the
// backward pass the Heaviside derivative is replaced by a smooth pseudo-
// derivative sigma'(u) of the membrane distance u = V - theta. Three widely
// used families are provided:
//
//   FastSigmoid : 1 / (slope*|u| + 1)^2          (Zenke & Ganguli, SuperSpike)
//   Atan        : alpha / (2 * (1 + (pi/2*alpha*u)^2))   (snnTorch default-ish)
//   Boxcar      : 1/(2w) for |u| <= w, else 0    (straight-through window)

#include <string>

namespace snnskip {

enum class SurrogateKind { FastSigmoid, Atan, Boxcar };

struct Surrogate {
  SurrogateKind kind = SurrogateKind::FastSigmoid;
  /// Sharpness: slope for FastSigmoid, alpha for Atan, half-width for
  /// Boxcar. The default slope of 2 is deliberately shallow: with
  /// batch-norm'd membranes sitting ~1 below threshold, sharper surrogates
  /// attenuate gradients so strongly that deep unskipped SNNs stop
  /// training at all (the failure mode the paper's skip study probes; see
  /// bench/ablation_surrogate for the measured effect).
  float scale = 2.f;

  /// Pseudo-derivative at membrane distance u = V - theta.
  float grad(float u) const;
};

std::string to_string(SurrogateKind k);
SurrogateKind surrogate_from_string(const std::string& s);

}  // namespace snnskip
