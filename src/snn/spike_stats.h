#pragma once
// Firing-rate accounting.
//
// The paper reports the "average firing rate": the fraction of neurons that
// emit a spike per timestep, averaged over neurons, timesteps and the
// evaluation set (≈11% for the un-skipped baseline in Fig. 1). Every LIF
// layer can be pointed at a shared recorder; the runner enables recording
// during evaluation only, so training speed is unaffected.

#include <cstdint>
#include <map>
#include <string>

namespace snnskip {

class FiringRateRecorder {
 public:
  /// Accumulate `spikes` spikes observed across `neurons` neuron-timesteps.
  void record(const std::string& layer, double spikes, double neuron_steps);

  void reset();

  /// Overall firing rate: total spikes / total neuron-timesteps.
  double overall_rate() const;

  /// Per-layer rates, keyed by layer name.
  std::map<std::string, double> per_layer_rates() const;

  double total_spikes() const { return total_spikes_; }
  double total_neuron_steps() const { return total_steps_; }

 private:
  struct Acc {
    double spikes = 0.0;
    double steps = 0.0;
  };
  std::map<std::string, Acc> per_layer_;
  double total_spikes_ = 0.0;
  double total_steps_ = 0.0;
};

}  // namespace snnskip
