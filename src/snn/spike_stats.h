#pragma once
// Firing-rate and density accounting.
//
// The paper reports the "average firing rate": the fraction of neurons that
// emit a spike per timestep, averaged over neurons, timesteps and the
// evaluation set (≈11% for the un-skipped baseline in Fig. 1). Every LIF
// layer can be pointed at a shared recorder; the runner enables recording
// during evaluation only, so training speed is unaffected.
//
// One sparsity definition, three consumers: "density" is always
// nonzeros / elements over the tensors a layer actually consumed. The LIF
// firing rate, the achieved input density seen by the sparse kernels
// (SparseExec::stats().density()), and the `firing_rate` argument of
// EnergyModel::snn_energy_pj all use this same ratio, so benchmark output
// and energy numbers are directly comparable.

#include <cstdint>
#include <map>
#include <string>

namespace snnskip {

class FiringRateRecorder {
 public:
  /// Accumulate `spikes` spikes observed across `neurons` neuron-timesteps.
  void record(const std::string& layer, double spikes, double neuron_steps);

  /// Accumulate the density actually observed at a consumer's input:
  /// `nnz` nonzero entries out of `elements`. Fed from the sparse-kernel
  /// dispatch stats (SparseExec) by runners and benchmarks.
  void record_density(const std::string& layer, double nnz, double elements);

  void reset();

  /// Overall firing rate: total spikes / total neuron-timesteps.
  double overall_rate() const;

  /// Average achieved input density: total nnz / total elements — the
  /// sparsity the event-driven kernels actually exploited. Falls back to
  /// overall_rate() when no density samples were recorded, since both use
  /// the same nonzeros-per-element definition.
  double average_density() const;

  /// Per-layer rates, keyed by layer name.
  std::map<std::string, double> per_layer_rates() const;

  /// Per-layer achieved input densities, keyed by layer name.
  std::map<std::string, double> per_layer_density() const;

  double total_spikes() const { return total_spikes_; }
  double total_neuron_steps() const { return total_steps_; }

 private:
  struct Acc {
    double spikes = 0.0;
    double steps = 0.0;
  };
  std::map<std::string, Acc> per_layer_;
  std::map<std::string, Acc> density_per_layer_;  // spikes=nnz, steps=elems
  double total_spikes_ = 0.0;
  double total_steps_ = 0.0;
  double total_nnz_ = 0.0;
  double total_elements_ = 0.0;
};

}  // namespace snnskip
