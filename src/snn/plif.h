#pragma once
// Parametric LIF: a LIF neuron whose membrane leak is LEARNED (Fang et al.,
// "Incorporating Learnable Membrane Time Constant", ICCV 2021 — the PLIF
// cell snnTorch/SpikingJelly ship). The leak is parameterized through a
// sigmoid, beta = sigma(w), so it stays in (0, 1) unconstrained in w.
//
// Dynamics match Lif (soft reset, surrogate spike gradient); the extra
// gradient is the direct dependence of each integration step on w:
//   V_t = sigma(w) * V'_{t-1} + x_t
//   dL/dw += sum_t dL/dV_t * V'_{t-1} * sigma'(w)
// (indirect paths through earlier V' are already carried by BPTT).

#include "nn/layer.h"
#include "snn/lif.h"

namespace snnskip {

class Plif final : public Layer {
 public:
  /// `init_beta` sets the initial leak (converted through logit).
  Plif(LifConfig cfg, std::string layer_name = "plif");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override { return {&leak_}; }
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& in) const override { return in; }

  /// Current effective leak beta = sigma(w).
  float beta() const;

  /// Static neuron parameters (threshold, refractory); the learned leak is
  /// read through beta(), NOT config().beta.
  const LifConfig& config() const { return cfg_; }

  void set_recorder(FiringRateRecorder* rec) { recorder_ = rec; }

 private:
  struct Ctx {
    Tensor u;         // V_t - theta
    Tensor prev_mem;  // V'_{t-1} (the direct-dependence factor for dw)
    std::int64_t bytes = 0;  // retained-activation accounting
  };

  LifConfig cfg_;
  std::string name_;
  Parameter leak_;  // scalar w; beta = sigmoid(w)
  Tensor membrane_;
  bool has_state_ = false;
  std::vector<Ctx> saved_;
  Tensor grad_v_carry_;
  bool has_carry_ = false;
  FiringRateRecorder* recorder_ = nullptr;
};

}  // namespace snnskip
