#include "snn/plif.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/spike_kernels.h"

namespace snnskip {

namespace {
float sigmoid(float x) { return 1.f / (1.f + std::exp(-x)); }
}  // namespace

Plif::Plif(LifConfig cfg, std::string layer_name)
    : cfg_(cfg), name_(std::move(layer_name)) {
  // logit(initial beta): beta = 0.9 -> w ~= 2.197.
  const float b = std::clamp(cfg_.beta, 0.01f, 0.99f);
  leak_ = Parameter(name_ + ".leak",
                    Tensor(Shape{1}, std::vector<float>{
                                         std::log(b / (1.f - b))}));
}

float Plif::beta() const { return sigmoid(leak_.value[0]); }

Tensor Plif::forward(const Tensor& x, bool train) {
  SNNSKIP_SPAN("plif.fwd", name_);
  if (!has_state_ || membrane_.shape() != x.shape()) {
    membrane_ = Tensor(x.shape());
    has_state_ = true;
  }
  const float b = beta();

  Tensor spikes(x.shape());
  Ctx ctx;
  if (train) {
    ctx.u = Tensor(x.shape());
    ctx.prev_mem = membrane_;  // V'_{t-1} before integration
  }
  const std::int64_t n = x.numel();
  float* v = membrane_.data();
  const float* in = x.data();
  float* s = spikes.data();
  double spike_count = 0.0;

  for (std::int64_t i = 0; i < n; ++i) {
    const float vt = b * v[i] + in[i];
    const float dist = vt - cfg_.threshold;
    if (train) ctx.u[static_cast<std::size_t>(i)] = dist;
    if (dist >= 0.f) {
      s[i] = 1.f;
      v[i] = vt - cfg_.threshold;
      spike_count += 1.0;
    } else {
      s[i] = 0.f;
      v[i] = vt;
    }
  }
  if (recorder_ != nullptr) {
    recorder_->record(name_, spike_count, static_cast<double>(n));
  }
  Telemetry::count("spikes", spike_count);
  if (train) {
    ctx.bytes = (ctx.u.numel() + ctx.prev_mem.numel()) *
                static_cast<std::int64_t>(sizeof(float));
    RetainedActivations::add(ctx.bytes);
    saved_.push_back(std::move(ctx));
  }
  return spikes;
}

Tensor Plif::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("plif.bwd", name_);
  assert(!saved_.empty() && "Plif::backward without matching forward");
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();
  RetainedActivations::sub(ctx.bytes);

  if (!has_carry_ || grad_v_carry_.shape() != ctx.u.shape()) {
    grad_v_carry_ = Tensor(ctx.u.shape());
    has_carry_ = true;
  }

  const float w = leak_.value[0];
  const float b = sigmoid(w);
  const float dsig = b * (1.f - b);

  Tensor grad_in(ctx.u.shape());
  const std::int64_t n = ctx.u.numel();
  const float* go = grad_out.data();
  const float* uptr = ctx.u.data();
  const float* pm = ctx.prev_mem.data();
  float* carry = grad_v_carry_.data();
  float* gi = grad_in.data();
  const float theta = cfg_.threshold;
  const bool detach = cfg_.detach_reset;
  double dw = 0.0;

  std::int64_t active = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float sg = cfg_.surrogate.grad(uptr[i]);
    float dv = go[i] * sg;
    if (detach) {
      dv += carry[i];
    } else {
      dv += carry[i] * (1.f - theta * sg);
    }
    gi[i] = dv;
    active += (dv != 0.f);
    dw += static_cast<double>(dv) * pm[i];  // direct w-path: V'_{t-1}
    carry[i] = b * dv;
  }
  leak_.grad[0] += static_cast<float>(dw) * dsig;
  // Surrogate active set for the layer below (see Lif::backward).
  if (SparseExec::bwd_enabled()) {
    GradDensityHint::publish(gi, n, active);
  }
  return grad_in;
}

void Plif::reset_state() {
  has_state_ = false;
  has_carry_ = false;
  membrane_ = Tensor();
  grad_v_carry_ = Tensor();
  for (const Ctx& c : saved_) RetainedActivations::sub(c.bytes);
  saved_.clear();
}

}  // namespace snnskip
