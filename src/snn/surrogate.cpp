#include "snn/surrogate.h"

#include <cmath>
#include <stdexcept>

namespace snnskip {

float Surrogate::grad(float u) const {
  switch (kind) {
    case SurrogateKind::FastSigmoid: {
      const float d = scale * std::abs(u) + 1.f;
      return 1.f / (d * d);
    }
    case SurrogateKind::Atan: {
      const float z = 0.5f * static_cast<float>(M_PI) * scale * u;
      return scale / (2.f * (1.f + z * z));
    }
    case SurrogateKind::Boxcar: {
      const float w = 1.f / scale;  // scale = 1/half-width for consistency
      return (std::abs(u) <= w) ? 0.5f / w : 0.f;
    }
  }
  return 0.f;
}

std::string to_string(SurrogateKind k) {
  switch (k) {
    case SurrogateKind::FastSigmoid: return "fast_sigmoid";
    case SurrogateKind::Atan: return "atan";
    case SurrogateKind::Boxcar: return "boxcar";
  }
  return "?";
}

SurrogateKind surrogate_from_string(const std::string& s) {
  if (s == "fast_sigmoid") return SurrogateKind::FastSigmoid;
  if (s == "atan") return SurrogateKind::Atan;
  if (s == "boxcar") return SurrogateKind::Boxcar;
  throw std::invalid_argument("unknown surrogate: " + s);
}

}  // namespace snnskip
