#include "snn/lif.h"

#include <cassert>

#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/spike_kernels.h"

namespace snnskip {

Lif::Lif(LifConfig cfg, std::string layer_name)
    : cfg_(cfg), name_(std::move(layer_name)) {}

Tensor Lif::forward(const Tensor& x, bool train) {
  SNNSKIP_SPAN("lif.fwd", name_);
  if (!has_state_ || membrane_.shape() != x.shape()) {
    membrane_ = Tensor(x.shape());
    if (cfg_.refractory > 0) refrac_count_ = Tensor(x.shape());
    has_state_ = true;
  }

  const bool use_refrac = cfg_.refractory > 0;
  Tensor spikes(x.shape());
  TrainCtx ctx;
  ctx.u = Tensor(x.shape());
  if (train && use_refrac) ctx.live_mask = Tensor::full(x.shape(), 1.f);

  const std::int64_t n = x.numel();
  float* v = membrane_.data();
  const float* in = x.data();
  float* s = spikes.data();
  float* uptr = ctx.u.data();
  float* rc = use_refrac ? refrac_count_.data() : nullptr;
  double spike_count = 0.0;

  for (std::int64_t i = 0; i < n; ++i) {
    const float vt = cfg_.beta * v[i] + in[i];
    const float dist = vt - cfg_.threshold;
    uptr[i] = dist;
    bool live = true;
    if (use_refrac && rc[i] > 0.f) {
      live = false;
      rc[i] -= 1.f;
      if (train) ctx.live_mask[static_cast<std::size_t>(i)] = 0.f;
    }
    if (live && dist >= 0.f) {
      s[i] = 1.f;
      v[i] = vt - cfg_.threshold;
      if (use_refrac) rc[i] = static_cast<float>(cfg_.refractory);
      spike_count += 1.0;
    } else {
      s[i] = 0.f;
      v[i] = vt;
    }
  }

  if (recorder_ != nullptr) {
    recorder_->record(name_, spike_count, static_cast<double>(n));
  }
  Telemetry::count("spikes", spike_count);
  if (train) {
    ctx.bytes = (ctx.u.numel() + ctx.live_mask.numel()) *
                static_cast<std::int64_t>(sizeof(float));
    RetainedActivations::add(ctx.bytes);
    saved_.push_back(std::move(ctx));
  }
  return spikes;
}

Tensor Lif::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("lif.bwd", name_);
  assert(!saved_.empty() && "Lif::backward without matching forward");
  TrainCtx ctx = std::move(saved_.back());
  saved_.pop_back();
  RetainedActivations::sub(ctx.bytes);
  assert(grad_out.shape() == ctx.u.shape());

  if (!has_carry_ || grad_v_carry_.shape() != ctx.u.shape()) {
    grad_v_carry_ = Tensor(ctx.u.shape());
    has_carry_ = true;
  }

  Tensor grad_in(ctx.u.shape());
  const std::int64_t n = ctx.u.numel();
  const float* go = grad_out.data();
  const float* uptr = ctx.u.data();
  const float* live = ctx.live_mask.empty() ? nullptr : ctx.live_mask.data();
  float* carry = grad_v_carry_.data();
  float* gi = grad_in.data();
  const float theta = cfg_.threshold;
  const bool detach = cfg_.detach_reset;

  std::int64_t active = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    // Refractory-silenced steps contribute no spike gradient.
    const float gate = live ? live[i] : 1.f;
    const float sg = gate * cfg_.surrogate.grad(uptr[i]);
    // dL/dV_t: output path + recurrent path (optionally through the reset).
    float dv = go[i] * sg;
    if (detach) {
      dv += carry[i];
    } else {
      dv += carry[i] * (1.f - theta * sg);
    }
    gi[i] = dv;
    active += (dv != 0.f);
    carry[i] = cfg_.beta * dv;  // becomes dL/dV'_{t-1}
  }
  // Publish the surrogate active set: with Boxcar, sigma' is exactly zero
  // outside its window, so most dL/dx entries are hard zeros — the layer
  // below reads this count to dispatch its event-driven dX path without
  // rescanning the tensor.
  if (SparseExec::bwd_enabled()) {
    GradDensityHint::publish(gi, n, active);
  }
  return grad_in;
}

void Lif::reset_state() {
  has_state_ = false;
  has_carry_ = false;
  membrane_ = Tensor();
  refrac_count_ = Tensor();
  grad_v_carry_ = Tensor();
  for (const TrainCtx& c : saved_) RetainedActivations::sub(c.bytes);
  saved_.clear();
}

}  // namespace snnskip
