#pragma once
// Leaky integrate-and-fire neuron layer with surrogate-gradient BPTT.
//
// Dynamics per timestep (reset-by-subtraction):
//   V_t  = beta * V'_{t-1} + x_t          (leaky integration)
//   S_t  = H(V_t - theta)                 (spike if threshold crossed)
//   V'_t = V_t - theta * S_t              (soft reset)
//
// Backward (unrolled in time): the Heaviside derivative is replaced by the
// configured surrogate sigma'(V_t - theta). Two gradient paths meet at V_t:
// the output path dL/dS_t and the recurrent path dL/dV'_t carried from
// t+1. With `detach_reset` (default, snnTorch behaviour) the reset term's
// dependence on S_t is excluded from the recurrent path:
//   dL/dV_t = dL/dS_t * sigma'(u_t) + dL/dV'_t * (1 [- theta*sigma'(u_t)])
//   dL/dx_t = dL/dV_t
//   dL/dV'_{t-1} = beta * dL/dV_t
//
// The layer is shape-agnostic: membrane state adopts the input shape on the
// first step after reset_state().

#include "nn/layer.h"
#include "snn/spike_stats.h"
#include "snn/surrogate.h"

namespace snnskip {

struct LifConfig {
  float beta = 0.9f;        ///< membrane leak factor in (0, 1]
  float threshold = 1.0f;   ///< spike threshold theta
  Surrogate surrogate{};
  bool detach_reset = true; ///< exclude reset path from BPTT (snnTorch-style)
  /// Absolute refractory period: after a spike the neuron is silenced for
  /// this many timesteps (the membrane keeps integrating). 0 disables.
  /// During refractoriness the spike gradient is zero (the gate is
  /// piecewise constant), so BPTT simply masks those entries.
  std::int64_t refractory = 0;
};

class Lif final : public Layer {
 public:
  explicit Lif(LifConfig cfg, std::string layer_name = "lif");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& in) const override { return in; }

  const LifConfig& config() const { return cfg_; }

  /// Attach a recorder; spikes are counted on every forward (train or eval)
  /// while attached. Pass nullptr to detach.
  void set_recorder(FiringRateRecorder* rec) { recorder_ = rec; }

 private:
  struct TrainCtx {
    Tensor u;          // V_t - theta
    Tensor live_mask;  // 1 where not refractory (only kept if refractory>0)
    std::int64_t bytes = 0;  // retained-activation accounting
  };

  LifConfig cfg_;
  std::string name_;
  Tensor membrane_;               // V' after the last step
  Tensor refrac_count_;           // steps of silence left, per neuron
  bool has_state_ = false;
  std::vector<TrainCtx> saved_;   // per-timestep contexts (train only)
  Tensor grad_v_carry_;           // dL/dV'_t flowing backward in time
  bool has_carry_ = false;
  FiringRateRecorder* recorder_ = nullptr;
};

}  // namespace snnskip
