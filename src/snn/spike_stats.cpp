#include "snn/spike_stats.h"

namespace snnskip {

void FiringRateRecorder::record(const std::string& layer, double spikes,
                                double neuron_steps) {
  auto& acc = per_layer_[layer];
  acc.spikes += spikes;
  acc.steps += neuron_steps;
  total_spikes_ += spikes;
  total_steps_ += neuron_steps;
}

void FiringRateRecorder::record_density(const std::string& layer, double nnz,
                                        double elements) {
  auto& acc = density_per_layer_[layer];
  acc.spikes += nnz;
  acc.steps += elements;
  total_nnz_ += nnz;
  total_elements_ += elements;
}

void FiringRateRecorder::reset() {
  per_layer_.clear();
  density_per_layer_.clear();
  total_spikes_ = 0.0;
  total_steps_ = 0.0;
  total_nnz_ = 0.0;
  total_elements_ = 0.0;
}

double FiringRateRecorder::overall_rate() const {
  return total_steps_ > 0.0 ? total_spikes_ / total_steps_ : 0.0;
}

double FiringRateRecorder::average_density() const {
  return total_elements_ > 0.0 ? total_nnz_ / total_elements_
                               : overall_rate();
}

std::map<std::string, double> FiringRateRecorder::per_layer_rates() const {
  std::map<std::string, double> out;
  for (const auto& [name, acc] : per_layer_) {
    out[name] = acc.steps > 0.0 ? acc.spikes / acc.steps : 0.0;
  }
  return out;
}

std::map<std::string, double> FiringRateRecorder::per_layer_density() const {
  std::map<std::string, double> out;
  for (const auto& [name, acc] : density_per_layer_) {
    out[name] = acc.steps > 0.0 ? acc.spikes / acc.steps : 0.0;
  }
  return out;
}

}  // namespace snnskip
