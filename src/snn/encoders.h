#pragma once
// Input encoders: map a static image or an event stream to the per-timestep
// input tensors consumed by the spiking network.
//
//   PoissonEncoder : pixel intensity -> Bernoulli spike probability per step
//                    (rate coding; used for static CIFAR-10-like images)
//   DirectEncoder  : the analog frame is presented unchanged at every step
//                    ("direct encoding", common for static-image SNNs)
//   EventEncoder   : the sample already carries a time dimension
//                    (T, C, H, W) — each step is a slice (DVS datasets)

#include <cstdint>
#include <memory>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace snnskip {

class Encoder {
 public:
  virtual ~Encoder() = default;
  /// Input tensor for timestep `t` given the raw batch sample(s) `x`.
  /// For static images x is (N, C, H, W); for event data x is (N, T, C, H, W)
  /// flattened as (N, T*C, H, W) with known T.
  virtual Tensor encode(const Tensor& x, std::int64_t t) = 0;
  /// Reset any per-sequence randomness (called at sequence start).
  virtual void reset() {}

  /// Independent encoder for data-parallel shard `shard` (train/
  /// data_parallel.h). Stateless encoders return a plain copy; stochastic
  /// ones (Poisson) derive a decorrelated split stream so concurrent
  /// shards never share mutable RNG state and the encoding is a pure
  /// function of (seed, shard) — independent of worker count. Returns
  /// nullptr when the encoder cannot be sharded.
  virtual std::unique_ptr<Encoder> clone_shard(std::uint64_t shard) const {
    (void)shard;
    return nullptr;
  }
};

class PoissonEncoder final : public Encoder {
 public:
  /// `gain` scales intensities into spike probabilities (clamped to [0,1]).
  PoissonEncoder(std::uint64_t seed, float gain = 1.f)
      : seed_(seed), base_rng_(seed), rng_(seed), gain_(gain) {}

  Tensor encode(const Tensor& x, std::int64_t t) override;
  void reset() override { rng_ = base_rng_; }
  std::unique_ptr<Encoder> clone_shard(std::uint64_t shard) const override;

 private:
  std::uint64_t seed_;
  Rng base_rng_;
  Rng rng_;
  float gain_;
};

class DirectEncoder final : public Encoder {
 public:
  Tensor encode(const Tensor& x, std::int64_t t) override;
  std::unique_ptr<Encoder> clone_shard(std::uint64_t shard) const override {
    (void)shard;
    return std::make_unique<DirectEncoder>();
  }
};

class EventEncoder final : public Encoder {
 public:
  /// `timesteps` and `channels` describe the (T, C) packing of dim 1.
  EventEncoder(std::int64_t timesteps, std::int64_t channels)
      : t_(timesteps), c_(channels) {}

  Tensor encode(const Tensor& x, std::int64_t t) override;
  std::unique_ptr<Encoder> clone_shard(std::uint64_t shard) const override {
    (void)shard;
    return std::make_unique<EventEncoder>(t_, c_);
  }

 private:
  std::int64_t t_, c_;
};

/// Time-to-first-spike (latency) coding: each pixel fires exactly once, at
/// a time inversely related to its intensity — bright pixels early, dark
/// pixels late; intensities below `min_intensity` never fire. A temporal
/// code with one spike per neuron, the sparsest classical encoding.
class LatencyEncoder final : public Encoder {
 public:
  LatencyEncoder(std::int64_t timesteps, float min_intensity = 0.05f)
      : t_(timesteps), min_intensity_(min_intensity) {}

  Tensor encode(const Tensor& x, std::int64_t t) override;
  std::unique_ptr<Encoder> clone_shard(std::uint64_t shard) const override {
    (void)shard;
    return std::make_unique<LatencyEncoder>(t_, min_intensity_);
  }

 private:
  std::int64_t t_;
  float min_intensity_;
};

}  // namespace snnskip
