#include "models/common.h"

namespace snnskip {

// The Fig. 1 probe network: a single block of four 3x3 conv layers between
// a stem and a classification head. Sweeping Adjacency::uniform(4, type, n)
// over its skip slots reproduces the paper's skip-connection investigation.

std::vector<BlockSpec> single_block_specs(const ModelConfig& cfg) {
  BlockSpec b;
  b.name = "b0";
  b.in_channels = cfg.width;
  for (int i = 0; i < 4; ++i) {
    b.nodes.push_back(NodePlan{NodeOp::Conv3x3, cfg.width, 1, true});
  }
  return {b};
}

Network build_single_block(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies) {
  const auto specs = single_block_specs(cfg);
  assert(adjacencies.size() == specs.size());
  Rng rng(cfg.seed);
  Network net;
  detail::add_stem(net, cfg, cfg.width, rng);
  net.add_block(std::make_unique<Block>(specs[0], adjacencies[0],
                                        detail::block_config(cfg), rng));
  detail::add_head(net, cfg, cfg.width, rng);
  return net;
}

}  // namespace snnskip
