#include "models/common.h"

namespace snnskip {

// mobilenetv2s: inverted-residual blocks at reduced width. Each block is a
// depth-3 DAG: 1x1 expansion (xE), 3x3 depthwise (carrying the stride), and
// a LINEAR 1x1 projection (spiking=false — MobileNetV2's linear bottleneck).
// The classic residual is the slot (0, 3) with ASC, enabled by default for
// stride-1 blocks with matching widths. DSC can never enter node 2 (the
// depthwise op has structurally fixed channels), which slot_allows encodes;
// the search space queries that constraint per slot.

namespace {
constexpr std::int64_t kExpansion = 2;

struct StagePlan {
  std::int64_t out_mult;  // out channels = out_mult * width
  std::int64_t stride;
};
constexpr StagePlan kStages[5] = {
    {1, 1}, {2, 2}, {2, 1}, {4, 2}, {4, 1},
};
}  // namespace

std::vector<BlockSpec> mobilenetv2s_specs(const ModelConfig& cfg) {
  const std::int64_t w = cfg.width;
  std::vector<BlockSpec> specs;
  std::int64_t in_c = w;  // stem output
  for (int i = 0; i < 5; ++i) {
    const std::int64_t out_c = kStages[i].out_mult * w;
    const std::int64_t mid_c = kExpansion * in_c;
    BlockSpec b;
    b.name = "ir" + std::to_string(i);
    b.in_channels = in_c;
    b.nodes.push_back(NodePlan{NodeOp::Conv1x1, mid_c, 1, true});
    b.nodes.push_back(
        NodePlan{NodeOp::DwConv3x3, mid_c, kStages[i].stride, true});
    b.nodes.push_back(NodePlan{NodeOp::Conv1x1, out_c, 1, /*spiking=*/false});
    specs.push_back(std::move(b));
    in_c = out_c;
  }
  return specs;
}

Network build_mobilenetv2s(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies) {
  const auto specs = mobilenetv2s_specs(cfg);
  assert(adjacencies.size() == specs.size());
  Rng rng(cfg.seed);
  Network net;
  detail::add_stem(net, cfg, cfg.width, rng);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    net.add_block(std::make_unique<Block>(specs[i], adjacencies[i],
                                          detail::block_config(cfg), rng));
  }
  detail::add_head(net, cfg, kStages[4].out_mult * cfg.width, rng);
  return net;
}

}  // namespace snnskip
