#include "models/common.h"

namespace snnskip {

// resnet18s: the ResNet-18 block grammar at reduced width. Four stages of
// two basic blocks (two 3x3 convs each); stages 2-4 downsample by striding
// the first conv of their first block. The classic identity shortcut is the
// skip slot (0, 2) with type ASC — exactly what default_adjacencies sets —
// and the searchable space varies that slot per block.

std::vector<BlockSpec> resnet18s_specs(const ModelConfig& cfg) {
  const std::int64_t w = cfg.width;
  const std::int64_t stage_c[4] = {w, 2 * w, 4 * w, 8 * w};
  std::vector<BlockSpec> specs;
  std::int64_t in_c = w;  // stem output
  for (int stage = 0; stage < 4; ++stage) {
    for (int idx = 0; idx < 2; ++idx) {
      BlockSpec b;
      b.name = "rb" + std::to_string(stage) + "_" + std::to_string(idx);
      b.in_channels = in_c;
      const std::int64_t stride = (stage > 0 && idx == 0) ? 2 : 1;
      b.nodes.push_back(NodePlan{NodeOp::Conv3x3, stage_c[stage], stride, true});
      b.nodes.push_back(NodePlan{NodeOp::Conv3x3, stage_c[stage], 1, true});
      specs.push_back(std::move(b));
      in_c = stage_c[stage];
    }
  }
  return specs;
}

Network build_resnet18s(const ModelConfig& cfg,
                        const std::vector<Adjacency>& adjacencies) {
  const auto specs = resnet18s_specs(cfg);
  assert(adjacencies.size() == specs.size());
  Rng rng(cfg.seed);
  Network net;
  detail::add_stem(net, cfg, cfg.width, rng);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    net.add_block(std::make_unique<Block>(specs[i], adjacencies[i],
                                          detail::block_config(cfg), rng));
  }
  detail::add_head(net, cfg, 8 * cfg.width, rng);
  return net;
}

}  // namespace snnskip
