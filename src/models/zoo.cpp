#include "models/zoo.h"

#include <stdexcept>

namespace snnskip {

std::vector<std::string> model_names() {
  return {"single_block", "resnet18s", "densenet121s", "mobilenetv2s"};
}

std::vector<BlockSpec> model_block_specs(const std::string& model,
                                         const ModelConfig& cfg) {
  if (model == "single_block") return single_block_specs(cfg);
  if (model == "resnet18s") return resnet18s_specs(cfg);
  if (model == "densenet121s") return densenet121s_specs(cfg);
  if (model == "mobilenetv2s") return mobilenetv2s_specs(cfg);
  throw std::invalid_argument("unknown model: " + model);
}

std::vector<Adjacency> default_adjacencies(const std::string& model,
                                           const ModelConfig& cfg) {
  const auto specs = model_block_specs(model, cfg);
  std::vector<Adjacency> adjs;
  adjs.reserve(specs.size());

  if (model == "single_block") {
    // Plain chain: the un-skipped baseline of Fig. 1 (n_skip = 0).
    for (const auto& spec : specs) adjs.emplace_back(spec.depth());
  } else if (model == "resnet18s") {
    // Identity residual: input -> block output (slot (0, 2), ASC).
    for (const auto& spec : specs) {
      Adjacency adj(spec.depth());
      adj.set(0, 2, SkipType::ASC);
      adjs.push_back(std::move(adj));
    }
  } else if (model == "densenet121s") {
    // Dense connectivity: every slot carries a DSC edge.
    for (const auto& spec : specs) {
      adjs.push_back(Adjacency::all(spec.depth(), SkipType::DSC));
    }
  } else if (model == "mobilenetv2s") {
    // Residual around stride-1 blocks with matching widths (classic
    // MobileNetV2); other blocks start without skips.
    for (const auto& spec : specs) {
      Adjacency adj(spec.depth());
      const bool stride1 = spec.spatial_div(spec.depth()) == 1;
      const bool same_c =
          spec.in_channels == spec.node_out_channels(spec.depth());
      if (stride1 && same_c) adj.set(0, 3, SkipType::ASC);
      adjs.push_back(std::move(adj));
    }
  } else {
    throw std::invalid_argument("unknown model: " + model);
  }
  return adjs;
}

Network build_model(const std::string& model, const ModelConfig& cfg,
                    const std::vector<Adjacency>& adjacencies) {
  if (model == "single_block") return build_single_block(cfg, adjacencies);
  if (model == "resnet18s") return build_resnet18s(cfg, adjacencies);
  if (model == "densenet121s") return build_densenet121s(cfg, adjacencies);
  if (model == "mobilenetv2s") return build_mobilenetv2s(cfg, adjacencies);
  throw std::invalid_argument("unknown model: " + model);
}

}  // namespace snnskip
