#pragma once
// Shared helpers for the model builders.

#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/batchnorm_tt.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "snn/lif.h"
#include "snn/plif.h"

namespace snnskip::detail {

/// Spiking or analog neuron per the model config.
inline LayerPtr make_neuron(const ModelConfig& cfg, const std::string& name) {
  if (cfg.mode == NeuronMode::Spiking) {
    if (cfg.neuron == NeuronKind::Plif) {
      return std::make_unique<Plif>(cfg.lif, name);
    }
    return std::make_unique<Lif>(cfg.lif, name);
  }
  return std::make_unique<ReLU>();
}

/// conv3x3 -> BNTT -> neuron stem.
inline void add_stem(Network& net, const ModelConfig& cfg,
                     std::int64_t out_c, Rng& rng) {
  auto conv = std::make_unique<Conv2d>(cfg.in_channels, out_c, 3, 1, 1,
                                       /*bias=*/false, rng, "stem.conv");
  // The stem is the network's first layer: nothing consumes dL/dx, so skip
  // the gemm_tn + col2im entirely (backward still returns a zero tensor of
  // the input shape).
  conv->set_input_grad_needed(false);
  net.add_layer(std::move(conv));
  net.add_layer(std::make_unique<BatchNormTT>(out_c, cfg.max_timesteps, 0.1f,
                                              1e-5f, "stem.bn"));
  net.add_layer(make_neuron(cfg, "stem.lif"));
}

/// global-average-pool -> linear classification head (optionally spiking).
inline void add_head(Network& net, const ModelConfig& cfg,
                     std::int64_t feat_c, Rng& rng) {
  net.add_layer(std::make_unique<GlobalAvgPool2d>());
  net.add_layer(std::make_unique<Linear>(feat_c, cfg.num_classes,
                                         /*bias=*/true, rng, "head.fc"));
  if (cfg.spiking_head && cfg.mode == NeuronMode::Spiking) {
    net.add_layer(make_neuron(cfg, "head.lif"));
  }
}

inline BlockConfig block_config(const ModelConfig& cfg) {
  BlockConfig bc;
  bc.mode = cfg.mode;
  bc.neuron = cfg.neuron;
  bc.max_timesteps = cfg.max_timesteps;
  bc.lif = cfg.lif;
  bc.dsc_fraction = cfg.dsc_fraction;
  return bc;
}

}  // namespace snnskip::detail
