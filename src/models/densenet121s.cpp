#include "models/common.h"

namespace snnskip {

// densenet121s: DenseNet-121's grammar at reduced replication — four dense
// blocks (depths 3/4/4/3 standing in for 6/12/24/16) joined by 1x1-conv +
// avg-pool transitions. The paper's generalized dense connectivity is the
// default adjacency: every skip slot carries a DSC edge, each concatenating
// a channel subset of its source (graph/join.h). The searchable space can
// thin those edges out or flip them to ASC.

namespace {
constexpr int kDepths[4] = {3, 4, 4, 3};
}

std::vector<BlockSpec> densenet121s_specs(const ModelConfig& cfg) {
  const std::int64_t w = cfg.width;
  const std::int64_t stage_c[4] = {w, 2 * w, 2 * w, 4 * w};
  std::vector<BlockSpec> specs;
  for (int stage = 0; stage < 4; ++stage) {
    BlockSpec b;
    b.name = "db" + std::to_string(stage);
    b.in_channels = stage_c[stage];
    for (int i = 0; i < kDepths[stage]; ++i) {
      b.nodes.push_back(NodePlan{NodeOp::Conv3x3, stage_c[stage], 1, true});
    }
    specs.push_back(std::move(b));
  }
  return specs;
}

Network build_densenet121s(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies) {
  const auto specs = densenet121s_specs(cfg);
  assert(adjacencies.size() == specs.size());
  const std::int64_t w = cfg.width;
  const std::int64_t stage_c[4] = {w, 2 * w, 2 * w, 4 * w};
  Rng rng(cfg.seed);
  Network net;
  detail::add_stem(net, cfg, stage_c[0], rng);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    net.add_block(std::make_unique<Block>(specs[i], adjacencies[i],
                                          detail::block_config(cfg), rng));
    if (i + 1 < specs.size()) {
      // Transition: 1x1 channel adapter + spatial halving.
      const std::string tname = "trans" + std::to_string(i);
      net.add_layer(std::make_unique<Conv2d>(
          stage_c[i], stage_c[i + 1], 1, 1, 0, /*bias=*/false, rng,
          tname + ".conv"));
      net.add_layer(std::make_unique<BatchNormTT>(
          stage_c[i + 1], cfg.max_timesteps, 0.1f, 1e-5f, tname + ".bn"));
      net.add_layer(detail::make_neuron(cfg, tname + ".lif"));
      net.add_layer(std::make_unique<AvgPool2d>(2, 2));
    }
  }
  detail::add_head(net, cfg, stage_c[3], rng);
  return net;
}

}  // namespace snnskip
