#pragma once
// Model zoo: scaled-down spiking/analog twins of the paper's architectures.
//
// Each builder produces a Network whose searchable structure (the block
// list with per-block skip slots) is also exposed separately, so the
// optimizer can enumerate the adjacency search space without building
// networks. Channel widths scale with ModelConfig::width; depths follow the
// original block grammars at reduced replication (DESIGN.md §2).
//
// Families:
//   single_block : stem + one 4-conv-layer block + head (Fig. 1 probe)
//   resnet18s    : 4 stages x 2 basic blocks (depth-2, default ASC residual)
//   densenet121s : 4 dense blocks (depths 3/4/4/3, default all-DSC) with
//                  1x1+avgpool transitions
//   mobilenetv2s : inverted-residual blocks (expand -> depthwise -> linear
//                  project, default ASC around stride-1 blocks)

#include <string>
#include <vector>

#include "graph/adjacency.h"
#include "graph/block.h"
#include "graph/network.h"

namespace snnskip {

struct ModelConfig {
  NeuronMode mode = NeuronMode::Spiking;
  NeuronKind neuron = NeuronKind::Lif;  ///< Plif = learnable leak
  std::int64_t in_channels = 2;   ///< 2 for DVS polarity, 3 for RGB
  std::int64_t num_classes = 10;
  std::int64_t max_timesteps = 10;
  LifConfig lif{};
  double dsc_fraction = 0.5;
  std::int64_t width = 8;         ///< base channel count
  /// Spiking classification head: append a LIF after the head linear so
  /// the network's outputs are class SPIKES (rate-decoded with
  /// mse_count_loss) instead of analog logits. Spiking mode only.
  bool spiking_head = false;
  std::uint64_t seed = 1;
};

/// Names accepted by the builders below.
std::vector<std::string> model_names();

/// The searchable block specs of a model (order matches blocks() of the
/// built network). Used by the optimizer to enumerate adjacency spaces.
std::vector<BlockSpec> model_block_specs(const std::string& model,
                                         const ModelConfig& cfg);

/// The architecture's native adjacencies (the "direct conversion" the
/// paper's SNN column uses): ASC residuals for resnet/mobilenet, all-DSC
/// for densenet, plain chain for single_block.
std::vector<Adjacency> default_adjacencies(const std::string& model,
                                           const ModelConfig& cfg);

/// Build a network with the given per-block adjacencies (must match the
/// block count; pass default_adjacencies(...) for the vanilla model).
Network build_model(const std::string& model, const ModelConfig& cfg,
                    const std::vector<Adjacency>& adjacencies);

// Per-family entry points (same contract as build_model).
Network build_single_block(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies);
Network build_resnet18s(const ModelConfig& cfg,
                        const std::vector<Adjacency>& adjacencies);
Network build_densenet121s(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies);
Network build_mobilenetv2s(const ModelConfig& cfg,
                           const std::vector<Adjacency>& adjacencies);

std::vector<BlockSpec> single_block_specs(const ModelConfig& cfg);
std::vector<BlockSpec> resnet18s_specs(const ModelConfig& cfg);
std::vector<BlockSpec> densenet121s_specs(const ModelConfig& cfg);
std::vector<BlockSpec> mobilenetv2s_specs(const ModelConfig& cfg);

}  // namespace snnskip
