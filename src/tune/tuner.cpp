#include <cmath>
#include <limits>
#include <map>

#include "opt/acquisition.h"
#include "opt/gp.h"
#include "opt/journal.h"
#include "telemetry/telemetry.h"
#include "tune/tune.h"
#include "util/logging.h"

namespace snnskip::tune {

namespace {

struct Observation {
  std::vector<double> x;
  double y = 0.0;
  bool failed = false;
};

}  // namespace

FamilyResult tune_family(Family& fam, const TuneOptions& opts) {
  // Span-timer measurement needs telemetry on; leave it on afterwards (the
  // tuner owns the process).
  Telemetry::set_enabled(true);

  const std::int64_t space_size = fam.space.size();
  std::map<EncodingVec, Observation> observed;

  const std::string journal_path =
      opts.journal_prefix.empty()
          ? std::string()
          : opts.journal_prefix + "_" + fam.name + ".jsonl";
  SearchJournal journal(journal_path);

  FamilyResult res;
  res.family = fam.name;

  // Resume: replay journaled measurements instead of re-timing them.
  if (!journal_path.empty()) {
    for (const JournalEntry& e : SearchJournal::replay(journal_path)) {
      if (!fam.space.valid(e.code) || observed.count(e.code) != 0) continue;
      observed[e.code] =
          Observation{fam.space.features(e.code), e.value, e.failed};
      ++res.replayed;
    }
  }

  std::size_t next_idx = observed.size();
  auto evaluate = [&](const EncodingVec& code) {
    Observation ob;
    ob.x = fam.space.features(code);
    try {
      fam.apply(code);
      ob.y = fam.measure();
    } catch (const std::exception& ex) {
      SNNSKIP_LOG(Warn) << "tune[" << fam.name
                        << "]: candidate failed: " << ex.what();
      ob.failed = true;
      ob.y = 0.0;
    }
    observed[code] = ob;
    journal.append(next_idx++, code, ob.y, ob.failed);
    ++res.evaluated;
  };

  // The default point is ALWAYS measured (first): the final argmin over
  // the observed set therefore includes it, which is what makes the
  // committed profile never-slower than the defaults by construction.
  if (observed.count(fam.default_code) == 0) evaluate(fam.default_code);

  const std::vector<double> ls_grid = {0.08, 0.15, 0.3, 0.6, 1.2};
  while (static_cast<std::int64_t>(observed.size()) < space_size &&
         static_cast<int>(observed.size()) < opts.budget) {
    // Fit the surrogate on the non-failed observations.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    double best_y = std::numeric_limits<double>::infinity();
    for (const auto& [code, ob] : observed) {
      if (ob.failed) continue;
      xs.push_back(ob.x);
      ys.push_back(ob.y);
      if (ob.y < best_y) best_y = ob.y;
    }
    EncodingVec pick;
    if (ys.size() >= 2) {
      GaussianProcess gp = GaussianProcess::fit_best_lengthscale(
          xs, ys, ls_grid, /*variance=*/1.0, /*noise=*/1e-4);
      double best_ei = -std::numeric_limits<double>::infinity();
      for (std::int64_t flat = 0; flat < space_size; ++flat) {
        EncodingVec code = fam.space.from_flat(flat);
        if (observed.count(code) != 0) continue;
        const double ei = expected_improvement(
            gp.predict(fam.space.features(code)), best_y);
        if (ei > best_ei) {
          best_ei = ei;
          pick = std::move(code);
        }
      }
    } else {
      for (std::int64_t flat = 0; flat < space_size; ++flat) {
        EncodingVec code = fam.space.from_flat(flat);
        if (observed.count(code) == 0) {
          pick = std::move(code);
          break;
        }
      }
    }
    if (!fam.space.valid(pick)) break;  // nothing left to propose
    evaluate(pick);
  }

  // Argmin over everything observed (default included).
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [code, ob] : observed) {
    if (ob.failed) continue;
    if (ob.y < best) {
      best = ob.y;
      res.best_code = code;
    }
  }
  const auto def = observed.find(fam.default_code);
  if (def != observed.end() && !def->second.failed) {
    res.default_seconds = def->second.y;
  }
  res.best_seconds = best;
  if (res.best_code.empty()) res.best_code = fam.default_code;

  // Leave the winner installed for the next family (greedy coordinate
  // descent over the joint schedule).
  fam.apply(res.best_code);
  return res;
}

}  // namespace snnskip::tune
