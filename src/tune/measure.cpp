#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "data/dataloader.h"
#include "data/synthetic_dvs_cifar.h"
#include "infer/compile.h"
#include "infer/engine.h"
#include "models/zoo.h"
#include "nn/optimizer.h"
#include "snn/encoders.h"
#include "telemetry/telemetry.h"
#include "tensor/cpu_features.h"
#include "tensor/epilogue.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/simd_ops.h"
#include "tensor/spike_csr.h"
#include "tensor/spike_kernels.h"
#include "tensor/workspace.h"
#include "train/data_parallel.h"
#include "train/trainer.h"
#include "tune/tune.h"
#include "util/rng.h"
#include "util/timer.h"

namespace snnskip::tune {

namespace {

std::uint64_t span_total_ns(const char* key) {
  for (const telemetry::SpanStat& s : telemetry::snapshot().spans) {
    if (std::string_view(s.cat) == "tune" && s.name == key) return s.total_ns;
  }
  return 0;
}

}  // namespace

double measure_span_seconds(const char* key, double min_ms,
                            const std::function<void()>& body) {
  body();  // warm caches / branch history / workspace arenas
  const std::uint64_t before = span_total_ns(key);
  std::int64_t reps = 0;
  Timer t;
  do {
    const std::uint64_t s = Telemetry::now_ns();
    body();
    telemetry::record_span("tune", key, s, Telemetry::now_ns() - s,
                           /*emit_trace=*/false);
    ++reps;
  } while (t.elapsed_ms() < min_ms);
  const std::uint64_t after = span_total_ns(key);
  return static_cast<double>(after - before) * 1e-9 /
         static_cast<double>(reps);
}

namespace {

/// Deterministic binary spike pattern at (approximately) `density`.
float spike_at(std::int64_t i, double density) {
  const std::uint64_t h = static_cast<std::uint64_t>(i) * 2654435761u % 1000u;
  return static_cast<double>(h) < density * 1000.0 ? 1.f : 0.f;
}

// ---- Shared workloads ------------------------------------------------------

struct GemmWork {
  std::int64_t n = 0;
  std::vector<float> a, b, c;
};

std::shared_ptr<GemmWork> make_gemm_work(bool smoke) {
  auto w = std::make_shared<GemmWork>();
  w->n = smoke ? 48 : 192;  // L2-resident: 3 * 192^2 floats ~ 430 KiB
  const std::int64_t nn = w->n * w->n;
  w->a.resize(static_cast<std::size_t>(nn));
  w->b.resize(static_cast<std::size_t>(nn));
  w->c.assign(static_cast<std::size_t>(nn), 0.f);
  for (std::int64_t i = 0; i < nn; ++i) {
    w->a[static_cast<std::size_t>(i)] = 0.001f * static_cast<float>(i % 37);
    w->b[static_cast<std::size_t>(i)] = 0.001f * static_cast<float>(i % 29);
  }
  return w;
}

void run_gemm(GemmWork& w) {
  gemm(w.n, w.n, w.n, 1.f, w.a.data(), w.b.data(), 0.f, w.c.data());
  gemm_tn(w.n, w.n, w.n, 1.f, w.a.data(), w.b.data(), 0.f, w.c.data());
}

struct ConvWork {
  ConvGeometry g{};
  std::int64_t o_c = 0, n_img = 0;
  std::vector<float> weight, out;
  std::vector<double> densities;
  std::vector<std::vector<float>> inputs;  // dense, one per density
  std::vector<SpikeCsr> csr;               // packed, one per density
  // (density index, sparse path?) -> measured seconds; valid for the
  // duration of one family (nothing it depends on changes mid-family).
  std::map<std::pair<int, int>, double> cache;
};

std::shared_ptr<ConvWork> make_conv_work(bool smoke) {
  auto w = std::make_shared<ConvWork>();
  const std::int64_t hw = smoke ? 8 : 16;
  w->g = ConvGeometry{/*in_c=*/8, hw, hw, /*kernel=*/3, /*stride=*/1,
                      /*pad=*/1};
  w->o_c = smoke ? 8 : 16;
  w->n_img = 2;
  const std::int64_t ckk = w->g.col_rows();
  w->weight.resize(static_cast<std::size_t>(w->o_c * ckk));
  for (std::size_t i = 0; i < w->weight.size(); ++i) {
    w->weight[i] = 0.01f * static_cast<float>((static_cast<int>(i) % 17) - 8);
  }
  const std::int64_t numel = w->g.in_c * hw * hw;
  w->out.assign(
      static_cast<std::size_t>(w->n_img * w->o_c * w->g.col_cols()), 0.f);
  w->densities = {0.05, 0.15, 0.25, 0.35, 0.5};
  w->inputs.resize(w->densities.size());
  w->csr.resize(w->densities.size());
  for (std::size_t d = 0; d < w->densities.size(); ++d) {
    std::vector<float>& in = w->inputs[d];
    in.resize(static_cast<std::size_t>(w->n_img * numel));
    for (std::size_t i = 0; i < in.size(); ++i) {
      // Offset per density so the patterns differ.
      in[i] = spike_at(static_cast<std::int64_t>(i + 131 * d),
                       w->densities[d]);
    }
    w->csr[d].build(in.data(), w->n_img, numel);
  }
  return w;
}

void run_conv_sparse(ConvWork& w, std::size_t d) {
  spike_conv2d_forward(w.g, w.csr[d], w.weight.data(), nullptr, w.o_c,
                       w.out.data(), Workspace::tls());
}

void run_conv_dense(ConvWork& w, std::size_t d) {
  const std::int64_t ckk = w.g.col_rows();
  const std::int64_t howo = w.g.col_cols();
  const std::int64_t numel = w.g.in_c * w.g.in_h * w.g.in_w;
  auto scope = Workspace::tls().scope();
  float* cols = scope.floats(static_cast<std::size_t>(ckk * howo));
  for (std::int64_t img = 0; img < w.n_img; ++img) {
    im2col(w.g, w.inputs[d].data() + img * numel, cols);
    gemm(w.o_c, howo, ckk, 1.f, w.weight.data(), cols, 0.f,
         w.out.data() + img * w.o_c * howo);
  }
}

struct LifWork {
  std::int64_t p = 0, rows = 0;
  std::vector<float> acc, m, dst;
  std::vector<std::uint64_t> wbits;
};

std::shared_ptr<LifWork> make_lif_work(bool smoke) {
  auto w = std::make_shared<LifWork>();
  w->p = smoke ? 256 : 4096;
  w->rows = 8;
  const std::size_t n = static_cast<std::size_t>(w->p * w->rows);
  w->acc.resize(n);
  w->m.assign(n, 0.f);
  w->dst.assign(n, 0.f);
  w->wbits.assign(static_cast<std::size_t>((w->p * w->rows + 63) / 64), 0u);
  for (std::size_t i = 0; i < n; ++i) {
    w->acc[i] = 0.002f * static_cast<float>((static_cast<int>(i) % 97) - 48);
  }
  return w;
}

void run_lif(LifWork& w) {
  for (std::int64_t r = 0; r < w.rows; ++r) {
    const std::int64_t off = r * w.p;
    (void)lif_epilogue_row(w.p, w.acc.data() + off, /*use_scale=*/1,
                           /*scale=*/1.02f, /*bias=*/0.01f, /*beta=*/0.9f,
                           /*theta=*/1.f, w.m.data() + off,
                           w.dst.data() + off, w.wbits.data(),
                           /*bit0=*/off);
  }
}

struct TransposeWork {
  std::int64_t rows = 0, cols = 0;
  std::vector<float> src, dst;
};

std::shared_ptr<TransposeWork> make_transpose_work(bool smoke) {
  auto w = std::make_shared<TransposeWork>();
  w->rows = smoke ? 64 : 512;
  w->cols = smoke ? 96 : 1152;
  w->src.resize(static_cast<std::size_t>(w->rows * w->cols));
  w->dst.assign(w->src.size(), 0.f);
  for (std::size_t i = 0; i < w->src.size(); ++i) {
    w->src[i] = 1e-4f * static_cast<float>(static_cast<int>(i) % 251);
  }
  return w;
}

struct InferWork {
  infer::PlanPtr plan;
  Shape in_shape;
  std::vector<Tensor> xs;
};

std::shared_ptr<InferWork> make_infer_work(bool smoke) {
  auto w = std::make_shared<InferWork>();
  ModelConfig mc;
  mc.in_channels = 2;
  mc.width = smoke ? 4 : 8;
  mc.max_timesteps = 4;
  mc.seed = 7;
  Network net = build_model("single_block", mc,
                            default_adjacencies("single_block", mc));
  const std::int64_t hw = smoke ? 8 : 12;
  w->in_shape = Shape{1, 2, hw, hw};
  // A few train-mode steps so BNTT has non-identity statistics to fold.
  Rng rng(99);
  net.reset_state();
  for (int t = 0; t < 4; ++t) {
    (void)net.forward(Tensor::bernoulli(w->in_shape, rng, 0.3f),
                      /*train=*/true);
  }
  net.reset_state();
  w->plan = infer::compile(net, w->in_shape);
  Rng xr(17);
  for (int t = 0; t < 4; ++t) {
    w->xs.push_back(Tensor::bernoulli(w->in_shape, xr, 0.15f));
  }
  return w;
}

struct DpWork {
  ModelConfig model;
  std::int64_t timesteps = 0;
  Batch batch;
};

std::shared_ptr<DpWork> make_dp_work(bool smoke) {
  auto w = std::make_shared<DpWork>();
  SyntheticConfig data;
  data.height = 8;
  data.width = 8;
  data.timesteps = 2;
  data.train_size = 32;
  data.seed = 31;
  w->model.in_channels = 2;
  w->model.max_timesteps = 2;
  w->model.width = 4;
  w->model.seed = 5;
  w->timesteps = 2;
  SyntheticDvsCifar ds(data, Split::Train);
  DataLoader loader(ds, smoke ? 8 : 16, /*shuffle=*/false, 0);
  loader.start_epoch(0);
  if (!loader.next(w->batch)) throw std::runtime_error("tune: empty dataset");
  return w;
}

KernelConfig current_with(const std::function<void(KernelConfig*)>& edit) {
  KernelConfig c = kernel_config();
  edit(&c);
  return c;
}

}  // namespace

std::vector<Family> build_families(const TuneOptions& opts) {
  const bool smoke = opts.smoke;
  const double min_ms = opts.min_ms;
  std::vector<Family> fams;

  // ---- simd: the composite workload picks the process-wide level -----------
  {
    Family f;
    f.name = "simd";
    Axis levels{"simd", {}};
    // Tune only over the bit-identical tables (Scalar, Avx2). Avx2Fma
    // reassociates accumulation and must stay a per-user opt-in
    // (SNNSKIP_SIMD=avx2fma): an autotuned profile loads process-wide,
    // and silently fusing there would break the deterministic-training
    // and engine-equals-training bitwise contracts (DESIGN.md §5j).
    const int max_lvl =
        std::min(static_cast<int>(max_simd_level()),
                 static_cast<int>(SimdLevel::Avx2));
    for (int l = 0; l <= max_lvl; ++l) levels.choices.push_back(l);
    f.space.axes = {levels};
    // Default = what "auto" resolves to.
    f.default_code = {max_lvl};
    auto gw = make_gemm_work(smoke);
    auto cw = make_conv_work(smoke);
    auto lw = make_lif_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_active_simd(static_cast<SimdLevel>(space.value(code, 0)));
    };
    f.measure = [gw, cw, lw, min_ms] {
      return measure_span_seconds("simd", min_ms, [gw, cw, lw] {
        run_gemm(*gw);
        run_conv_sparse(*cw, 1);  // density 0.15 — the spiking regime
        run_lif(*lw);
      });
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->simd = to_string(static_cast<SimdLevel>(space.value(code, 0)));
    };
    fams.push_back(std::move(f));
  }

  // ---- gemm: register tile x K-panel ---------------------------------------
  {
    Family f;
    f.name = "gemm";
    Axis tile{"gemm_tile", {}};
    for (int i = 0; i < simd::kNumGemmTiles; ++i) tile.choices.push_back(i);
    Axis kc{"gemm_kc", {simd::kGemmKcChoices,
                        simd::kGemmKcChoices + simd::kNumGemmKcChoices}};
    f.space.axes = {tile, kc};
    f.default_code = {0, 1};  // tile {4,16}, kc 128 — the historic schedule
    auto gw = make_gemm_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_kernel_config(current_with([&](KernelConfig* c) {
        c->gemm_tile = space.value(code, 0);
        c->gemm_kc = space.value(code, 1);
      }));
    };
    f.measure = [gw, min_ms] {
      return measure_span_seconds("gemm", min_ms, [gw] { run_gemm(*gw); });
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->config.gemm_tile = space.value(code, 0);
      p->config.gemm_kc = space.value(code, 1);
    };
    fams.push_back(std::move(f));
  }

  // ---- transpose: tile edge ------------------------------------------------
  {
    Family f;
    f.name = "transpose";
    Axis tile{"transpose_tile",
              {simd::kTransposeTileChoices,
               simd::kTransposeTileChoices + simd::kNumTransposeTileChoices}};
    f.space.axes = {tile};
    f.default_code = {1};  // 32, the historic kTile
    auto tw = make_transpose_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_kernel_config(current_with([&](KernelConfig* c) {
        c->transpose_tile = space.value(code, 0);
      }));
    };
    f.measure = [tw, min_ms] {
      return measure_span_seconds("transpose", min_ms, [tw] {
        transpose_panel(tw->src.data(), tw->rows, tw->cols, tw->dst.data());
        transpose_add_panel(tw->dst.data(), tw->cols, tw->rows,
                            tw->src.data());
      });
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->config.transpose_tile = space.value(code, 0);
    };
    fams.push_back(std::move(f));
  }

  // ---- sparse: CSR-vs-dense dispatch threshold -----------------------------
  // The threshold does not change any kernel, only which path runs at a
  // given density; the objective is total time across a density sweep with
  // per-(density, path) timings measured once and cached.
  {
    Family f;
    f.name = "sparse";
    Axis thr{"sparse_threshold_pct", {5, 10, 15, 20, 25, 30, 40, 50}};
    f.space.axes = {thr};
    f.default_code = {4};  // 25%
    auto cw = make_conv_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_kernel_config(current_with([&](KernelConfig* c) {
        c->sparse_threshold =
            static_cast<float>(space.value(code, 0)) / 100.f;
      }));
    };
    f.measure = [cw, min_ms] {
      const double thr =
          static_cast<double>(kernel_config().sparse_threshold);
      double total = 0.0;
      for (std::size_t d = 0; d < cw->densities.size(); ++d) {
        const bool sparse = cw->densities[d] < thr;
        const auto key = std::make_pair(static_cast<int>(d), sparse ? 1 : 0);
        auto it = cw->cache.find(key);
        if (it == cw->cache.end()) {
          const double secs =
              sparse ? measure_span_seconds("sparse.csr", min_ms,
                                            [cw, d] { run_conv_sparse(*cw, d); })
                     : measure_span_seconds("sparse.dense", min_ms,
                                            [cw, d] { run_conv_dense(*cw, d); });
          it = cw->cache.emplace(key, secs).first;
        }
        total += it->second;
      }
      return total;
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->config.sparse_threshold =
          static_cast<float>(space.value(code, 0)) / 100.f;
    };
    fams.push_back(std::move(f));
  }

  // ---- infer: compiled-engine dispatch threshold ---------------------------
  {
    Family f;
    f.name = "infer";
    Axis thr{"infer_threshold_pct", {0, 5, 10, 15, 25, 35, 50}};
    f.space.axes = {thr};
    f.default_code = {4};  // 25%
    auto iw = make_infer_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_kernel_config(current_with([&](KernelConfig* c) {
        c->infer_threshold =
            static_cast<float>(space.value(code, 0)) / 100.f;
      }));
    };
    f.measure = [iw, min_ms] {
      infer::ExecOptions eo;
      eo.packed = true;
      eo.threshold = kernel_config().infer_threshold;
      infer::Engine eng(iw->plan, eo);
      Tensor out(iw->plan->output_shape);
      return measure_span_seconds("infer", min_ms, [iw, &eng, &out] {
        eng.reset();
        for (const Tensor& x : iw->xs) eng.step(x, &out);
      });
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->config.infer_threshold =
          static_cast<float>(space.value(code, 0)) / 100.f;
    };
    fams.push_back(std::move(f));
  }

  // ---- shards: data-parallel decomposition ---------------------------------
  // NOTE: different shard counts are different (each internally
  // deterministic) gradient-reduction schedules; the profile only moves
  // the DEFAULT, and explicit DataParallelConfig::shards always wins.
  {
    Family f;
    f.name = "shards";
    Axis sh{"shards", {1, 2, 4, 8}};
    f.space.axes = {sh};
    f.default_code = {3};  // 8 = kDataParallelDefaultShards
    auto dw = make_dp_work(smoke);
    Space space = f.space;
    f.apply = [space](const EncodingVec& code) {
      set_kernel_config(current_with([&](KernelConfig* c) {
        c->shards = space.value(code, 0);
      }));
    };
    f.measure = [dw, min_ms] {
      const ModelConfig& mc = dw->model;
      Network net = build_model("single_block", mc,
                                default_adjacencies("single_block", mc));
      EventEncoder enc(dw->timesteps, mc.in_channels);
      DataParallelConfig dcfg;  // shards = 0 -> resolves via kernel_config
      dcfg.replica_factory = [&mc] {
        return build_model("single_block", mc,
                           default_adjacencies("single_block", mc));
      };
      DataParallelEngine engine(net, dcfg, enc, dw->timesteps,
                                LossKind::MeanLogitCE);
      auto ps = net.parameters();
      Sgd opt(ps, 0.01f, 0.9f, 0.f);
      return measure_span_seconds("shards", min_ms, [&] {
        if (engine.enabled()) {
          engine.train_batch(dw->batch, opt, 5.f);
        } else {
          train_batch(net, enc, dw->batch, dw->timesteps, opt, 5.f,
                      LossKind::MeanLogitCE);
        }
      });
    };
    f.commit = [space](const EncodingVec& code, TuningProfile* p) {
      p->config.shards = space.value(code, 0);
    };
    fams.push_back(std::move(f));
  }

  return fams;
}

}  // namespace snnskip::tune
