#include "tune/tune.h"

namespace snnskip::tune {

std::int64_t Space::size() const {
  std::int64_t n = 1;
  for (const Axis& a : axes) n *= static_cast<std::int64_t>(a.choices.size());
  return n;
}

bool Space::valid(const EncodingVec& code) const {
  if (code.size() != axes.size()) return false;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (code[i] < 0 ||
        code[i] >= static_cast<int>(axes[i].choices.size())) {
      return false;
    }
  }
  return true;
}

std::vector<double> Space::features(const EncodingVec& code) const {
  // Position within the axis, normalized to [0, 1]. Every axis here is
  // ordered (tile sizes, panel lengths, thresholds ascend), so adjacent
  // positions really are "nearby" for the RBF kernel; a single-choice axis
  // maps to 0.
  std::vector<double> f(axes.size(), 0.0);
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const std::size_t n = axes[i].choices.size();
    if (n > 1) f[i] = static_cast<double>(code[i]) / static_cast<double>(n - 1);
  }
  return f;
}

EncodingVec Space::from_flat(std::int64_t flat) const {
  EncodingVec code(axes.size(), 0);
  for (std::size_t i = axes.size(); i-- > 0;) {
    const std::int64_t n = static_cast<std::int64_t>(axes[i].choices.size());
    code[i] = static_cast<int>(flat % n);
    flat /= n;
  }
  return code;
}

int Space::value(const EncodingVec& code, std::size_t a) const {
  return axes[a].choices[static_cast<std::size_t>(code[a])];
}

}  // namespace snnskip::tune
