// snnskip-tune: measure this machine's best kernel schedule and write a
// tuning profile consumable via SNNSKIP_TUNE_PROFILE.
//
//   snnskip-tune --out tune_profile.json
//   snnskip-tune --families gemm,transpose --budget 12 --min-ms 50
//   snnskip-tune --journal runs/tune --out tune_profile.json   # resumable
//
// Flags:
//   --out PATH       profile output path (default tune_profile.json)
//   --id NAME        profile id recorded in the file (default "tuned")
//   --families CSV   subset + order override (default: all, tuning order)
//   --budget N       max measured points per family (default 24)
//   --min-ms F       per-measurement wall-clock floor (default 20)
//   --journal PREFIX journal measurements to PREFIX_<family>.jsonl; rerun
//                    with the same prefix to resume after a kill
//   --smoke 1        tiny workloads (CI only — not a real tuning run)

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "tensor/cpu_features.h"
#include "tune/tune.h"
#include "util/cli.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string code_str(const snnskip::tune::Family& fam,
                     const snnskip::EncodingVec& code) {
  std::string s;
  for (std::size_t a = 0; a < fam.space.axes.size(); ++a) {
    if (a) s += " ";
    s += fam.space.axes[a].name + "=" +
         std::to_string(fam.space.value(code, a));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snnskip;
  using namespace snnskip::tune;

  CliArgs args(argc, argv);
  TuneOptions opts;
  opts.budget = args.get_int("budget", 24);
  opts.min_ms = args.get_double("min-ms", 20.0);
  opts.journal_prefix = args.get("journal", "");
  opts.smoke = args.get_int("smoke", 0) != 0;
  const std::string out_path = args.get("out", "tune_profile.json");
  const std::string id = args.get("id", "tuned");

  std::printf("snnskip-tune: cpu=%s simd=%s%s\n", cpu_signature().c_str(),
              to_string(max_simd_level()), opts.smoke ? " (smoke)" : "");

  std::vector<Family> fams = build_families(opts);
  const std::vector<std::string> want = split_csv(args.get("families", ""));
  if (!want.empty()) {
    std::vector<Family> picked;
    for (const std::string& name : want) {
      bool found = false;
      for (Family& f : fams) {
        if (f.name == name) {
          picked.push_back(std::move(f));
          found = true;
          break;
        }
      }
      if (!found) {
        std::fprintf(stderr, "snnskip-tune: unknown family '%s'\n",
                     name.c_str());
        return 1;
      }
    }
    fams = std::move(picked);
  }

  std::vector<FamilyResult> results;
  for (Family& fam : fams) {
    FamilyResult r = tune_family(fam, opts);
    const double def_ms = r.default_seconds * 1e3;
    const double best_ms = r.best_seconds * 1e3;
    const double speedup = best_ms > 0.0 ? def_ms / best_ms : 1.0;
    std::printf(
        "  %-10s default %8.3f ms -> best %8.3f ms (%.2fx)  [%s]"
        "  measured=%d replayed=%d\n",
        fam.name.c_str(), def_ms, best_ms, speedup,
        code_str(fam, r.best_code).c_str(), r.evaluated, r.replayed);
    results.push_back(std::move(r));
  }

  const TuningProfile profile = assemble_profile(fams, results, id);
  std::string err;
  if (!write_profile(profile, out_path, &err)) {
    std::fprintf(stderr, "snnskip-tune: failed to write %s: %s\n",
                 out_path.c_str(), err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("activate with: export SNNSKIP_TUNE_PROFILE=%s\n",
              out_path.c_str());
  return 0;
}
