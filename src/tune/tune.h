#pragma once
// GP-driven kernel autotuner (ISSUE 9).
//
// The runtime kernels expose a handful of discrete schedule constants —
// SIMD level, GEMM register tile and K-panel, transpose tile edge, the
// sparse and inference dispatch thresholds, the data-parallel shard count
// (tensor/kernel_config.h). Their best values are machine properties, not
// code properties, so snnskip-tune measures them HERE and persists a
// per-machine TuningProfile keyed to cpu_signature().
//
// Search: the same Gaussian-process + expected-improvement machinery the
// architecture search uses (src/opt), applied per kernel family over a
// tiny discrete space. Each family evaluates its DEFAULT point first and
// keeps the argmin over everything measured, so a committed profile can
// never be slower than the defaults on the workloads it was tuned on
// (never-slower by construction; scripts/check_bench_regression.py
// enforces it end-to-end on the committed benchmarks). Families are tuned
// in sequence and each winner is installed before the next family runs —
// greedy coordinate descent over the joint space.
//
// Every completed measurement is journaled with opt/journal.h exactly like
// a BO run: a killed snnskip-tune resumes from the journal, replaying
// measured points instead of re-timing them.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "opt/encoding.h"
#include "tensor/kernel_config.h"

namespace snnskip::tune {

/// One discrete knob: a named list of integer-coded choices (a tile index,
/// a K-panel length, a threshold in percent, ...).
struct Axis {
  std::string name;
  std::vector<int> choices;
};

/// The cartesian product of a family's axes. A code holds one choice index
/// (not raw value) per axis, in axis order.
struct Space {
  std::vector<Axis> axes;

  std::int64_t size() const;
  bool valid(const EncodingVec& code) const;
  /// Per-axis position normalized to [0, 1] — the GP feature vector.
  std::vector<double> features(const EncodingVec& code) const;
  /// Decode a flat enumeration index (row-major over axes) into a code.
  EncodingVec from_flat(std::int64_t flat) const;
  /// Raw choice value of axis `a` under `code`.
  int value(const EncodingVec& code, std::size_t a) const;
};

/// A measurable kernel family.
struct Family {
  std::string name;
  Space space;
  EncodingVec default_code;
  /// Install the candidate's schedule constants process-wide (kernel
  /// config + SIMD level) so `measure` times them.
  std::function<void(const EncodingVec&)> apply;
  /// Seconds per workload repetition under the installed candidate
  /// (smaller = better). Measured through telemetry span timers.
  std::function<double()> measure;
  /// Write this family's winning choices into the profile under assembly.
  std::function<void(const EncodingVec&, TuningProfile*)> commit;
};

struct TuneOptions {
  int budget = 24;               ///< max measured points per family
  double min_ms = 20.0;          ///< per-measurement wall-clock floor
  std::uint64_t seed = 1;        ///< reserved for randomized workloads
  std::string journal_prefix;    ///< "<prefix>_<family>.jsonl"; "" = off
  bool smoke = false;            ///< tiny workloads (CI smoke)
};

struct FamilyResult {
  std::string family;
  EncodingVec best_code;
  double best_seconds = 0.0;
  double default_seconds = 0.0;
  int evaluated = 0;   ///< measured live this run
  int replayed = 0;    ///< replayed from the journal
};

/// Tune one family: default point first, then GP+EI over the remaining
/// space until `budget` points are measured or the space is exhausted.
/// Leaves the family's best point applied.
FamilyResult tune_family(Family& fam, const TuneOptions& opts);

/// The standard families in tuning order: "simd" (composite workload),
/// "gemm" (tile x K-panel), "transpose" (tile edge), "sparse" (dispatch
/// threshold vs a density sweep), "infer" (engine dispatch threshold),
/// "shards" (data-parallel shard count).
std::vector<Family> build_families(const TuneOptions& opts);

/// Telemetry-span-timed measurement: repeats `body` until `min_ms` of
/// wall clock, recording one "tune"/`key` span per rep, and returns mean
/// seconds per rep from the span aggregate. Requires telemetry enabled
/// (tune_family enables it).
double measure_span_seconds(const char* key, double min_ms,
                            const std::function<void()>& body);

/// Fold each family's winning choices into one profile (id + this
/// machine's cpu_signature(), then every commit() in order).
TuningProfile assemble_profile(const std::vector<Family>& fams,
                               const std::vector<FamilyResult>& results,
                               const std::string& id);

/// Serialize + CRC the profile, write it to `path` via a temp file and
/// atomic rename, then re-read and re-parse the final bytes (a profile
/// that would be rejected at load time must never be committed).
bool write_profile(const TuningProfile& p, const std::string& path,
                   std::string* err);

}  // namespace snnskip::tune
