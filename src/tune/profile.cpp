#include <cstdio>
#include <fstream>
#include <sstream>

#include "tensor/cpu_features.h"
#include "tune/tune.h"

namespace snnskip::tune {

TuningProfile assemble_profile(const std::vector<Family>& fams,
                               const std::vector<FamilyResult>& results,
                               const std::string& id) {
  TuningProfile p;
  p.id = id;
  p.cpu_signature = cpu_signature();
  // Start from whatever is currently installed (the greedy pass left every
  // winner applied), then let each family write its own fields explicitly.
  p.config = kernel_config();
  for (std::size_t i = 0; i < fams.size() && i < results.size(); ++i) {
    fams[i].commit(results[i].best_code, &p);
  }
  return p;
}

bool write_profile(const TuningProfile& p, const std::string& path,
                   std::string* err) {
  const std::string text = serialize_tuning_profile(p);

  // A profile that the loader would reject must never reach disk under the
  // final name: validate the exact bytes we are about to commit.
  {
    TuningProfile check;
    std::string perr;
    if (!parse_tuning_profile(text, &check, &perr)) {
      if (err) *err = "self-check failed before write: " + perr;
      return false;
    }
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (err) *err = "cannot open " + tmp + " for writing";
      return false;
    }
    out << text;
    out.flush();
    if (!out) {
      if (err) *err = "short write to " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }

  // Re-read the committed file and re-parse: catches torn writes and any
  // serialize/parse drift at the point of creation rather than at load.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  TuningProfile check;
  std::string perr;
  if (!in || !parse_tuning_profile(buf.str(), &check, &perr)) {
    if (err) *err = "post-write validation of " + path + " failed: " + perr;
    return false;
  }
  return true;
}

}  // namespace snnskip::tune
