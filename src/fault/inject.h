#pragma once
// Deterministic fault-injection points (ISSUE 3).
//
// Robustness code is only trustworthy if every recovery path is exercised,
// and real faults (NaN divergence, torn checkpoint writes, failed I/O) are
// hard to trigger on demand. This registry lets tests arm named injection
// sites that production code consults through SNNSKIP_FAULT(site):
//
//   fault::arm("train.nan", {.fire_at = 2});   // 3rd occurrence fires
//   ... run the trainer ...
//   fault::reset();
//
// Sites are identified by string literals and count their occurrences, so
// a fault can be placed at an exact (site, occurrence) pair — "NaN at
// fine-tune batch 2", "truncate the 1st checkpoint write" — which keeps
// the failing runs reproducible.
//
// Cost model: like telemetry, the disarmed fast path is one relaxed
// atomic load and a branch, so the sites stay in release builds. Building
// with -DSNNSKIP_FAULT_POINTS=OFF compiles every SNNSKIP_FAULT() to a
// literal `false` and the whole registry becomes dead code.

#include <atomic>
#include <cstdint>
#include <string>

#ifndef SNNSKIP_FAULT_INJECTION
#define SNNSKIP_FAULT_INJECTION 1
#endif

namespace snnskip::fault {

/// What an armed site does. Occurrences are counted from arming (and from
/// the last reset()); occurrence indices are 0-based.
struct Spec {
  std::int64_t fire_at = 0;  ///< first occurrence index that fires
  std::int64_t count = 1;    ///< consecutive firing occurrences; -1 = all
  double payload = 0.0;      ///< site-specific argument (e.g. bytes to cut)
};

namespace detail {
extern std::atomic<int> armed_sites;  // fast-path gate; see any_armed()
}

/// True while at least one site is armed (single relaxed load).
inline bool any_armed() {
  return detail::armed_sites.load(std::memory_order_relaxed) > 0;
}

/// Arm `site`; re-arming replaces the spec and restarts its hit counter.
void arm(const std::string& site, const Spec& spec = {});
/// Disarm one site (its hit counter is kept for inspection).
void disarm(const std::string& site);
/// Disarm everything and forget all hit counters.
void reset();

/// Occurrence check for an armed site; increments its hit counter and
/// returns whether this occurrence fires. Unarmed sites return false and
/// count nothing. Call through SNNSKIP_FAULT(), not directly.
bool should_fire(const char* site);

/// Payload of the armed spec for `site` (0.0 when not armed).
double payload(const char* site);

/// Occurrences seen at `site` since arming (tests: prove a site was hit).
std::int64_t hits(const char* site);

}  // namespace snnskip::fault

#if SNNSKIP_FAULT_INJECTION
#define SNNSKIP_FAULT(site) \
  (::snnskip::fault::any_armed() && ::snnskip::fault::should_fire(site))
#else
#define SNNSKIP_FAULT(site) false
#endif
