#include "fault/inject.h"

#include <mutex>
#include <unordered_map>

namespace snnskip::fault {

namespace detail {
std::atomic<int> armed_sites{0};
}

namespace {

struct SiteState {
  Spec spec;
  bool armed = false;
  std::int64_t hits = 0;
};

std::mutex& mu() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, SiteState>& sites() {
  static std::unordered_map<std::string, SiteState> s;
  return s;
}

}  // namespace

void arm(const std::string& site, const Spec& spec) {
  std::lock_guard<std::mutex> lock(mu());
  SiteState& st = sites()[site];
  if (!st.armed) detail::armed_sites.fetch_add(1, std::memory_order_relaxed);
  st.spec = spec;
  st.armed = true;
  st.hits = 0;
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu());
  auto it = sites().find(site);
  if (it == sites().end() || !it->second.armed) return;
  it->second.armed = false;
  detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void reset() {
  std::lock_guard<std::mutex> lock(mu());
  for (auto& [name, st] : sites()) {
    if (st.armed) detail::armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
  sites().clear();
}

bool should_fire(const char* site) {
  std::lock_guard<std::mutex> lock(mu());
  auto it = sites().find(site);
  if (it == sites().end() || !it->second.armed) return false;
  SiteState& st = it->second;
  const std::int64_t occurrence = st.hits++;
  if (occurrence < st.spec.fire_at) return false;
  if (st.spec.count < 0) return true;
  return occurrence < st.spec.fire_at + st.spec.count;
}

double payload(const char* site) {
  std::lock_guard<std::mutex> lock(mu());
  auto it = sites().find(site);
  if (it == sites().end() || !it->second.armed) return 0.0;
  return it->second.spec.payload;
}

std::int64_t hits(const char* site) {
  std::lock_guard<std::mutex> lock(mu());
  auto it = sites().find(site);
  if (it == sites().end()) return 0;
  return it->second.hits;
}

}  // namespace snnskip::fault
