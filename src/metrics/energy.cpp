#include "metrics/energy.h"

namespace snnskip {

double EnergyModel::ann_energy_pj(std::int64_t macs) const {
  return mac_pj * static_cast<double>(macs);
}

double EnergyModel::snn_energy_pj(std::int64_t macs_per_step,
                                  double firing_rate,
                                  std::int64_t timesteps) const {
  return ac_pj * static_cast<double>(macs_per_step) * firing_rate *
         static_cast<double>(timesteps);
}

}  // namespace snnskip
