#pragma once
// Energy proxy model.
//
// Standard accounting used across the SNN literature (45 nm CMOS numbers,
// Horowitz ISSCC'14): a 32-bit MAC costs ~4.6 pJ, a 32-bit accumulate
// ~0.9 pJ. An ANN spends one MAC per weight per inference; an SNN spends
// one ACCUMULATE per weight per *incoming spike*, so its cost scales with
// firing rate x timesteps. This quantifies the paper's efficiency argument
// (DSC adds MACs; ASC raises firing rates).

#include <cstdint>

namespace snnskip {

struct EnergyModel {
  double mac_pj = 4.6;  ///< energy per multiply-accumulate (ANN)
  double ac_pj = 0.9;   ///< energy per accumulate (SNN, spike-driven)

  /// ANN inference energy (picojoules) for `macs` multiply-accumulates.
  double ann_energy_pj(std::int64_t macs) const;

  /// SNN inference energy: macs/step * rate * T accumulates.
  /// `firing_rate` is nonzeros / elements — the same sparsity definition
  /// FiringRateRecorder and SparseExec report, so measured densities can
  /// be plugged in directly.
  double snn_energy_pj(std::int64_t macs_per_step, double firing_rate,
                       std::int64_t timesteps) const;
};

}  // namespace snnskip
