#include "metrics/metrics.h"

#include <cmath>
#include <cstdio>

namespace snnskip {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stddev_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean_of(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

std::string pct_with_std(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f (+/- %.2f)", mean * 100.0,
                stddev * 100.0);
  return buf;
}

std::string pct(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", value * 100.0);
  return buf;
}

}  // namespace snnskip
