#pragma once
// Plain-text table rendering for the bench binaries (the rows the paper's
// tables/figures report, printed to stdout alongside the CSV artifacts).

#include <string>
#include <vector>

namespace snnskip {

/// Fixed-width ASCII table. All rows must have header.size() cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace snnskip
