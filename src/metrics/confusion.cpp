#include "metrics/confusion.h"

#include <cassert>
#include <sstream>

namespace snnskip {

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  assert(num_classes > 0);
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t prediction) {
  assert(truth >= 0 && truth < classes_);
  assert(prediction >= 0 && prediction < classes_);
  ++counts_[static_cast<std::size_t>(truth * classes_ + prediction)];
  ++total_;
}

void ConfusionMatrix::add_batch(const std::vector<std::int64_t>& truths,
                                const std::vector<std::int64_t>& predictions) {
  assert(truths.size() == predictions.size());
  for (std::size_t i = 0; i < truths.size(); ++i) {
    add(truths[i], predictions[i]);
  }
}

std::int64_t ConfusionMatrix::count(std::int64_t truth,
                                    std::int64_t prediction) const {
  assert(truth >= 0 && truth < classes_);
  assert(prediction >= 0 && prediction < classes_);
  return counts_[static_cast<std::size_t>(truth * classes_ + prediction)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < classes_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int64_t c) const {
  std::int64_t row = 0;
  for (std::int64_t p = 0; p < classes_; ++p) row += count(c, p);
  return row == 0 ? 0.0
                  : static_cast<double>(count(c, c)) /
                        static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int64_t c) const {
  std::int64_t col = 0;
  for (std::int64_t t = 0; t < classes_; ++t) col += count(t, c);
  return col == 0 ? 0.0
                  : static_cast<double>(count(c, c)) /
                        static_cast<double>(col);
}

double ConfusionMatrix::macro_f1() const {
  double f1_sum = 0.0;
  std::int64_t occurred = 0;
  for (std::int64_t c = 0; c < classes_; ++c) {
    std::int64_t row = 0;
    for (std::int64_t p = 0; p < classes_; ++p) row += count(c, p);
    if (row == 0) continue;
    ++occurred;
    const double pr = precision(c);
    const double rc = recall(c);
    if (pr + rc > 0.0) f1_sum += 2.0 * pr * rc / (pr + rc);
  }
  return occurred == 0 ? 0.0 : f1_sum / static_cast<double>(occurred);
}

std::string ConfusionMatrix::str() const {
  std::ostringstream os;
  os << "truth\\pred";
  for (std::int64_t p = 0; p < classes_; ++p) os << "\t" << p;
  os << "\n";
  for (std::int64_t t = 0; t < classes_; ++t) {
    os << t;
    for (std::int64_t p = 0; p < classes_; ++p) os << "\t" << count(t, p);
    os << "\n";
  }
  return os.str();
}

}  // namespace snnskip
