#pragma once
// Confusion matrix and per-class metrics for classification reports.

#include <cstdint>
#include <string>
#include <vector>

namespace snnskip {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  /// Record one (true label, prediction) pair.
  void add(std::int64_t truth, std::int64_t prediction);
  void add_batch(const std::vector<std::int64_t>& truths,
                 const std::vector<std::int64_t>& predictions);

  std::int64_t num_classes() const { return classes_; }
  std::int64_t count(std::int64_t truth, std::int64_t prediction) const;
  std::int64_t total() const { return total_; }

  double accuracy() const;
  /// Recall of class c (0 when the class never occurred).
  double recall(std::int64_t c) const;
  /// Precision of class c (0 when the class was never predicted).
  double precision(std::int64_t c) const;
  /// Macro-averaged F1 over classes that occurred.
  double macro_f1() const;

  /// Compact text rendering (rows = truth, cols = prediction).
  std::string str() const;

 private:
  std::int64_t classes_;
  std::vector<std::int64_t> counts_;  // classes_ x classes_
  std::int64_t total_ = 0;
};

}  // namespace snnskip
