#pragma once
// Statistical aggregation helpers for experiment reporting (mean ± std over
// repeated runs, the format of the paper's Table I and Fig. 3 bands).

#include <cstddef>
#include <string>
#include <vector>

namespace snnskip {

/// Online mean/variance (Welford).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample standard deviation (0 for n < 2).
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

double mean_of(const std::vector<double>& v);
double stddev_of(const std::vector<double>& v);

/// "90.34 (+/- 0.20)" formatting, values given in [0,1] rendered as %.
std::string pct_with_std(double mean, double stddev);
/// "15.6%" formatting.
std::string pct(double value);

}  // namespace snnskip
