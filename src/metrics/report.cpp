#include "metrics/report.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace snnskip {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  auto rule = [&]() {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

}  // namespace snnskip
