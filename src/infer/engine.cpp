#include "infer/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/epilogue.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/kernel_config.h"
#include "tensor/quant_kernels.h"
#include "tensor/spike_kernels.h"
#include "tensor/spike_packed.h"
#include "tensor/workspace.h"
#include "telemetry/telemetry.h"
#include "util/runtime_env.h"

namespace snnskip::infer {

namespace {

// Process-wide DEFAULTS only (ISSUE 7): seeded from the environment once,
// adjusted by the deprecated InferExec shims, snapshotted by each Engine
// at construction. Atomics because the shims may race with concurrent
// Engine construction on other threads.
struct DefaultCfg {
  std::atomic<bool> packed;
  std::atomic<float> threshold;
  // The density threshold resolves through the kernel config so the tuning
  // profile can move it; SNNSKIP_INFER_THRESHOLD is folded in there (the
  // env var always beats the profile).
  DefaultCfg()
      : packed(env::get_bool("SNNSKIP_INFER_PACKED", true)),
        threshold(kernel_config().infer_threshold) {}
};

DefaultCfg& default_cfg() {
  static DefaultCfg c;
  return c;
}

}  // namespace

ExecOptions ExecOptions::defaults() {
  ExecOptions o;
  o.packed = default_cfg().packed.load(std::memory_order_relaxed);
  o.threshold = default_cfg().threshold.load(std::memory_order_relaxed);
  return o;
}

bool InferExec::packed_enabled() {
  return default_cfg().packed.load(std::memory_order_relaxed);
}
float InferExec::threshold() {
  return default_cfg().threshold.load(std::memory_order_relaxed);
}
void InferExec::set_packed_enabled(bool on) {
  default_cfg().packed.store(on, std::memory_order_relaxed);
}
void InferExec::set_threshold(float t) {
  default_cfg().threshold.store(t, std::memory_order_relaxed);
}

Engine::Engine(PlanPtr plan, const ExecOptions& opts)
    : plan_(std::move(plan)), opts_(opts) {
  const std::string m =
      plan_->model_name.empty() ? "model" : plan_->model_name;
  ctr_steps_ = "infer.steps." + m;
  ctr_spikes_ = "infer.spikes_popcount." + m;
  ctr_synops_ = "infer.synops." + m;
  ctr_packed_ = "infer.packed_layers." + m;
  ctr_csr_ = "infer.csr_layers." + m;
  ctr_dense_ = "infer.dense_layers." + m;
  farena_.assign(static_cast<std::size_t>(plan_->float_arena), 0.f);
  warena_.assign(static_cast<std::size_t>(plan_->word_arena), 0u);
  sarena_.assign(static_cast<std::size_t>(plan_->state_arena), 0.f);
  scratch_.assign(static_cast<std::size_t>(plan_->scratch_floats), 0.f);
  popcnt_.assign(plan_->values.size(), 0);
  pvalid_.assign(plan_->values.size(), 0);
}

Engine::Engine(PlanPtr plan) : Engine(std::move(plan), ExecOptions::defaults()) {}

float* Engine::dense(int v) {
  return farena_.data() + val(v).dense_off;
}

std::uint64_t* Engine::words(int v) {
  return warena_.data() + val(v).packed_off;
}

void Engine::reset() {
  std::fill(sarena_.begin(), sarena_.end(), 0.f);
  t_ = 0;
}

Tensor Engine::step(const Tensor& x) {
  Tensor out(plan_->output_shape);
  step(x, &out);
  return out;
}

void Engine::step(const Tensor& x, Tensor* out) {
  SNNSKIP_SPAN("infer.step", plan_->model_name);
  if (x.shape() != plan_->input_shape) {
    throw std::invalid_argument(
        "infer::Engine::step: input shape does not match the compiled plan");
  }
  const std::int64_t spikes0 = stats_.spikes;
  const std::int64_t synops0 = stats_.synops;

  write_input(x);
  for (std::size_t i = 0; i < plan_->ops.size(); ++i) {
    cur_op_ = i;  // calibration-sink slot for this op
    exec_op(plan_->ops[i]);
  }

  const ValuePlan& ov = val(plan_->output_value);
  if (out->shape() != ov.shape) *out = Tensor(ov.shape);
  std::memcpy(out->data(), dense(plan_->output_value),
              static_cast<std::size_t>(ov.floats) * sizeof(float));

  ++t_;
  ++stats_.steps;
  Telemetry::count("infer.steps");
  Telemetry::count(ctr_steps_.c_str());
  Telemetry::count("infer.spikes_popcount",
                   static_cast<double>(stats_.spikes - spikes0));
  Telemetry::count(ctr_spikes_.c_str(),
                   static_cast<double>(stats_.spikes - spikes0));
  Telemetry::count("infer.synops",
                   static_cast<double>(stats_.synops - synops0));
  Telemetry::count(ctr_synops_.c_str(),
                   static_cast<double>(stats_.synops - synops0));
}

void Engine::write_input(const Tensor& x) {
  const int iv = plan_->input_value;
  const ValuePlan& v = val(iv);
  std::memcpy(dense(iv), x.data(),
              static_cast<std::size_t>(v.floats) * sizeof(float));
  const std::int64_t n = v.shape[0];
  const std::int64_t img_f = v.floats / n;
  const std::int64_t img_w = v.words / n;
  std::int64_t total = 0;
  bool binary = true;
  for (std::int64_t img = 0; img < n && binary; ++img) {
    const std::int64_t r =
        spike_pack(x.data() + img * img_f, img_f, words(iv) + img * img_w);
    if (r < 0) {
      binary = false;
    } else {
      total += r;
    }
  }
  if (binary) {
    pvalid_[static_cast<std::size_t>(iv)] = 1;
    popcnt_[static_cast<std::size_t>(iv)] = total;
  } else {
    if (plan_->precision == Precision::Int8) {
      // Int8 plans fix the stem's quantization step at exactly 1.0 on
      // the promise that the network input is a binary spike train (the
      // repo's encoders all emit one). Quantizing an analog frame with
      // step 1.0 would round it to small integers — reject loudly
      // instead of silently destroying the input.
      throw std::invalid_argument(
          "infer::Engine::step: int8 plans require binary (0/1) spike "
          "inputs; encode analog frames before stepping");
    }
    // Non-binary input (e.g. raw analog frames): dense mirror only; the
    // nonzero count still feeds the CSR-vs-dense density gate.
    pvalid_[static_cast<std::size_t>(iv)] = 0;
    popcnt_[static_cast<std::size_t>(iv)] =
        count_nonzero(x.data(), x.numel());
  }
}

void Engine::record_amax(const float* x, std::int64_t n) {
  if (calib_ == nullptr) return;
  float m = (*calib_)[cur_op_];
  for (std::int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  (*calib_)[cur_op_] = m;
}

void Engine::exec_op(const OpPlan& op) {
  SNNSKIP_SPAN_AGG("infer.op", op.name);
  const bool i8 = plan_->precision == Precision::Int8;
  switch (op.kind) {
    case OpKind::Conv: i8 ? exec_conv_i8(op) : exec_conv(op); break;
    case OpKind::DwConv: i8 ? exec_dwconv_i8(op) : exec_dwconv(op); break;
    case OpKind::Linear: i8 ? exec_linear_i8(op) : exec_linear(op); break;
    case OpKind::DscGather: exec_dsc_gather(op); break;
    case OpKind::AvgPool: exec_avgpool(op); break;
    case OpKind::GlobalAvgPool: exec_gap(op); break;
    case OpKind::Neuron:
    case OpKind::Relu: exec_neuron(op); break;
    case OpKind::Copy: exec_copy(op); break;
  }
}

namespace {

/// Term-input density decision shared by Conv and DwConv dispatch.
struct Dispatch {
  bool all_spiking = true;  ///< every term produces binary spikes
  bool all_packed = true;   ///< ...and its packed mask is valid
  double density = 1.0;
};

}  // namespace

// Measures the op's input density from the terms' exact popcounts and
// classifies the step's dispatch mode.
static Dispatch classify(const Plan& plan, const OpPlan& op,
                         const std::vector<std::int64_t>& popcnt,
                         const std::vector<char>& pvalid) {
  Dispatch d;
  std::int64_t nnz = 0, elems = 0;
  for (const TermPlan& t : op.terms) {
    const std::size_t v = static_cast<std::size_t>(t.value);
    d.all_spiking = d.all_spiking && t.spiking;
    d.all_packed = d.all_packed && t.spiking && pvalid[v] != 0;
    nnz += popcnt[v];
    elems += plan.values[v].floats;
  }
  if (d.all_spiking && elems > 0) {
    d.density = static_cast<double>(nnz) / static_cast<double>(elems);
  }
  return d;
}

void Engine::assemble_image(const OpPlan& op, std::int64_t img, float* dst) {
  const std::int64_t hw = op.geom.in_h * op.geom.in_w;
  for (const TermPlan& t : op.terms) {
    if (t.sunk) continue;  // own geometry; added after the main compute
    const ValuePlan& sv = val(t.value);
    const std::int64_t src_img_f = sv.floats / sv.shape[0];
    const float* src = dense(t.value) + img * src_img_f;
    float* d = dst + t.offset * hw;
    if (t.add_join) {
      const std::int64_t n = t.channels * hw;
      for (std::int64_t i = 0; i < n; ++i) d[i] += src[i];
    } else if (!t.gather.empty()) {
      for (std::size_t k = 0; k < t.gather.size(); ++k) {
        std::memcpy(d + static_cast<std::int64_t>(k) * hw,
                    src + t.gather[k] * hw,
                    static_cast<std::size_t>(hw) * sizeof(float));
      }
    } else {
      std::memcpy(d, src,
                  static_cast<std::size_t>(t.channels * hw) * sizeof(float));
    }
  }
}

void Engine::add_sunk_terms(const OpPlan& op, std::int64_t img,
                            std::size_t wi, float* rows, float* outr) {
  const std::int64_t p = op.geom.out_h() * op.geom.out_w();
  for (const TermPlan& t : op.terms) {
    if (!t.sunk) continue;
    const ValuePlan& sv = val(t.value);
    const float* src = dense(t.value) + img * (sv.floats / sv.shape[0]);
    const std::size_t twi = t.wd.size() <= 1 ? 0 : wi;
    const std::int64_t tckk = t.geom.col_rows();
    if (p < 16) {
      im2row(t.geom, src, rows);
      gemm_nt(op.out_c, p, tckk, 1.f, t.wd[twi].data(), rows, 1.f, outr);
    } else {
      im2col(t.geom, src, rows);
      gemm(op.out_c, p, tckk, 1.f, t.wd[twi].data(), rows, 1.f, outr);
    }
    stats_.dense_macs += t.macs;
  }
}

void Engine::exec_conv(const OpPlan& op) {
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = ov.shape[0];
  const std::int64_t p = op.geom.out_h() * op.geom.out_w();
  const std::int64_t o_c = op.out_c;
  const std::int64_t in_img = op.geom.in_c * op.geom.in_h * op.geom.in_w;
  const std::int64_t ckk = op.geom.col_rows();
  const std::size_t wi =
      op.wt.size() <= 1 ? 0 : static_cast<std::size_t>(op.copy_index(t_));
  const float* wt = op.wt[wi].data();

  const Dispatch d = classify(*plan_, op, popcnt_, pvalid_);
  const bool sparse_ok =
      d.all_spiking && d.density < static_cast<double>(opts_.threshold);

  if (opts_.packed && d.all_packed && sparse_ok) {
    ++stats_.packed_dispatches;
    Telemetry::count("infer.packed_layers");
    Telemetry::count(ctr_packed_.c_str());
    float* panel = scratch_.data();  // (P, O) transposed accumulator
    for (std::int64_t img = 0; img < n; ++img) {
      std::memset(panel, 0, static_cast<std::size_t>(p * o_c) * sizeof(float));
      for (const TermPlan& t : op.terms) {
        const ValuePlan& sv = val(t.value);
        const std::int64_t src_c = sv.shape[1];
        const std::uint64_t* w =
            words(t.value) + img * (sv.words / sv.shape[0]);
        if (t.sunk) {
          // Sunk projection: composite kernel over the original spiking
          // source, same output grid, accumulated into the same panel.
          const std::size_t twi =
              t.wt.size() <= 1 ? 0 : static_cast<std::size_t>(wi);
          stats_.synops += spike_packed_conv2d_term(
              t.geom, src_c, w, nullptr, t.wt[twi].data(), o_c, panel);
        } else {
          stats_.synops += spike_packed_conv2d_term(
              op.geom, src_c, w, t.chrow.empty() ? nullptr : t.chrow.data(),
              wt, o_c, panel);
        }
      }
      epilogue(op, img, panel, /*so=*/1, /*sp=*/o_c);
    }
    return;
  }

  if (sparse_ok) {
    // CSR fallback: the training graph's event kernel on a per-image
    // assembled input (the packed path's correctness baseline).
    ++stats_.csr_dispatches;
    Telemetry::count("infer.csr_layers");
    Telemetry::count(ctr_csr_.c_str());
    float* w_oihw = scratch_.data();
    float* assembled = w_oihw + ckk * o_c;
    float* outr = assembled + in_img;
    const float* wptr;
    if (!op.wd.empty()) {
      wptr = op.wd[op.wd.size() <= 1 ? 0 : wi].data();
    } else {
      // Folded mode keeps only the transposed panel; rebuild OIHW here
      // (non-default path — the packed kernels consume wt directly).
      for (std::int64_t o = 0; o < o_c; ++o) {
        for (std::int64_t r = 0; r < ckk; ++r) {
          w_oihw[o * ckk + r] = wt[r * o_c + o];
        }
      }
      wptr = w_oihw;
    }
    std::int64_t nnz = 0;
    for (std::int64_t img = 0; img < n; ++img) {
      assemble_image(op, img, assembled);
      csr_.build(assembled, 1, in_img);
      nnz += csr_.nnz();
      spike_conv2d_forward(op.geom, csr_, wptr, nullptr, o_c, outr,
                           Workspace::tls());
      add_sunk_terms(op, img, wi, outr + o_c * p, outr);
      epilogue(op, img, outr, /*so=*/p, /*sp=*/1);
    }
    stats_.synops += static_cast<std::int64_t>(std::llround(
        static_cast<double>(op.macs) * static_cast<double>(nnz) /
        static_cast<double>(n * in_img)));
    return;
  }

  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  float* assembled = scratch_.data();
  float* cols = assembled + in_img;
  // The cols region doubles as the sunk projections' 1x1 patch matrix
  // (op_scratch sizes it to the max of both uses).
  std::int64_t cols_f = ckk * p;
  for (const TermPlan& t : op.terms) {
    if (!t.sunk) continue;
    cols_f = std::max(cols_f,
                      t.pgeom.col_rows() * t.pgeom.out_h() * t.pgeom.out_w());
  }
  float* outr = cols + cols_f;
  for (std::int64_t img = 0; img < n; ++img) {
    assemble_image(op, img, assembled);
    // Dense dispatch undoes the sinking: the composite kernel's zero
    // rows are free on the event path but real GEMM work here, so run
    // the raw 1x1 projection and ADD it into the assembled input — the
    // training graph's exact compute shape (one GEMM over the sum).
    for (const TermPlan& t : op.terms) {
      if (!t.sunk) continue;
      const ValuePlan& sv = val(t.value);
      const float* src = dense(t.value) + img * (sv.floats / sv.shape[0]);
      const std::int64_t pp = t.pgeom.out_h() * t.pgeom.out_w();
      im2col(t.pgeom, src, cols);
      gemm(t.proj_c, pp, t.pgeom.in_c, 1.f, t.pw.data(), cols, 1.f,
           assembled + t.offset * pp);
      stats_.dense_macs += t.proj_c * t.pgeom.in_c * pp;
    }
    // Post-assembly, post-projection: exactly what the int8 dense path
    // will quantize — the range the calibration sweep needs.
    record_amax(assembled, in_img);
    if (!op.wd.empty() && p < 16) {
      // Few-pixel outputs (deep stages): gemm's 16-column microkernel
      // degrades to scalar edge loops, so lower to weight rows x
      // contiguous patch rows instead. Per-element summation stays in
      // ascending-k order either way, so the no-fold plan remains
      // bitwise equal to the training eval forward.
      im2row(op.geom, assembled, cols);
      gemm_nt(o_c, p, ckk, 1.f, op.wd[op.wd.size() <= 1 ? 0 : wi].data(),
              cols, 0.f, outr);
    } else if (!op.wd.empty()) {
      // The exact im2col + GEMM the training graph runs.
      im2col(op.geom, assembled, cols);
      gemm(o_c, p, ckk, 1.f, op.wd[op.wd.size() <= 1 ? 0 : wi].data(), cols,
           0.f, outr);
    } else {
      im2col(op.geom, assembled, cols);
      gemm_tn(o_c, p, ckk, 1.f, wt, cols, 0.f, outr);
    }
    epilogue(op, img, outr, /*so=*/p, /*sp=*/1);
  }
}

void Engine::exec_dwconv(const OpPlan& op) {
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = ov.shape[0];
  const std::int64_t p = op.geom.out_h() * op.geom.out_w();
  const std::int64_t c = op.geom.in_c;
  const std::int64_t k = op.geom.kernel;
  const std::int64_t in_img = c * op.geom.in_h * op.geom.in_w;
  const std::size_t wi =
      op.wt.size() <= 1 ? 0 : static_cast<std::size_t>(op.copy_index(t_));
  const float* w = op.wt[wi].data();  // (C, K, K) bank, folded or raw

  const Dispatch d = classify(*plan_, op, popcnt_, pvalid_);
  const bool sparse_ok =
      d.all_spiking && d.density < static_cast<double>(opts_.threshold);

  if (opts_.packed && d.all_packed && sparse_ok) {
    ++stats_.packed_dispatches;
    Telemetry::count("infer.packed_layers");
    Telemetry::count(ctr_packed_.c_str());
    float* acc = scratch_.data();  // (C, Ho, Wo)
    for (std::int64_t img = 0; img < n; ++img) {
      std::memset(acc, 0, static_cast<std::size_t>(c * p) * sizeof(float));
      for (const TermPlan& t : op.terms) {
        const ValuePlan& sv = val(t.value);
        const std::uint64_t* wsrc =
            words(t.value) + img * (sv.words / sv.shape[0]);
        stats_.synops += spike_packed_depthwise_term(
            op.geom, sv.shape[1], wsrc,
            t.chrow.empty() ? nullptr : t.chrow.data(), w, acc);
      }
      epilogue(op, img, acc, /*so=*/p, /*sp=*/1);
    }
    return;
  }

  if (sparse_ok) {
    ++stats_.csr_dispatches;
    Telemetry::count("infer.csr_layers");
    Telemetry::count(ctr_csr_.c_str());
    float* assembled = scratch_.data();
    float* outr = assembled + in_img;
    std::int64_t nnz = 0;
    for (std::int64_t img = 0; img < n; ++img) {
      assemble_image(op, img, assembled);
      csr_.build(assembled, 1, in_img);
      nnz += csr_.nnz();
      spike_depthwise_forward(op.geom, csr_, w, nullptr, outr);
      epilogue(op, img, outr, /*so=*/p, /*sp=*/1);
    }
    stats_.synops += static_cast<std::int64_t>(std::llround(
        static_cast<double>(op.macs) * static_cast<double>(nnz) /
        static_cast<double>(n * in_img)));
    return;
  }

  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  float* assembled = scratch_.data();
  float* outr = assembled + in_img;
  const std::int64_t h = op.geom.in_h, wd = op.geom.in_w;
  const std::int64_t ho = op.geom.out_h(), wo = op.geom.out_w();
  const std::int64_t stride = op.geom.stride, pad = op.geom.pad;
  for (std::int64_t img = 0; img < n; ++img) {
    assemble_image(op, img, assembled);
    record_amax(assembled, in_img);
    // Same per-tap loop as DepthwiseConv2d's dense forward (bias and BN
    // live in the epilogue).
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = assembled + ch * h * wd;
      const float* ker = w + ch * k * k;
      float* optr = outr + ch * p;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          float acc = 0.f;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= wd) continue;
              acc += ker[ky * k + kx] * plane[iy * wd + ix];
            }
          }
          optr[oy * wo + ox] = acc;
        }
      }
    }
    epilogue(op, img, outr, /*so=*/p, /*sp=*/1);
  }
}

void Engine::exec_linear(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& iv = val(t.value);
  const std::int64_t n = iv.shape[0];
  const std::int64_t in_f = t.channels;
  const std::int64_t o_f = op.out_c;
  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  record_amax(dense(t.value), n * in_f);
  float* outr = scratch_.data();  // (N, O)
  // out(N, O) = x(N, I) * W(O, I)^T — Linear::forward's dense GEMM; the
  // bias moves to the epilogue.
  gemm_nt(n, o_f, in_f, 1.f, dense(t.value), op.wt[0].data(), 0.f, outr);
  for (std::int64_t img = 0; img < n; ++img) {
    epilogue(op, img, outr + img * o_f, /*so=*/1, /*sp=*/1);
  }
}

// ---- int8 execution (ISSUE 10) --------------------------------------------
//
// Two dispatch modes (no CSR — the CSR kernels are fp32-only and exist as
// the packed path's correctness baseline, which the int8 plan doesn't
// need): the packed mode accumulates binary events into an int32 panel
// with the int8 event kernels — pure integer adds, exact, and the
// epilogue's per-channel scale (S[o] * bn_scale_t[o]) dequantizes in one
// multiply. The dense mode assembles the fp32 input exactly like the
// fp32 engine (including sunk-projection rematerialization through the
// raw 1x1 weights), quantizes it with the op's compile-time step, runs
// the int8 GEMM into int32, widens in place, and hands the epilogue
// ascale = in_scale. When every input term is binary (in_scale == 1.0)
// the quantization is lossless and both modes are bitwise-equal.

void Engine::exec_conv_i8(const OpPlan& op) {
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = ov.shape[0];
  const std::int64_t p = op.geom.out_h() * op.geom.out_w();
  const std::int64_t o_c = op.out_c;
  const std::int64_t in_img = op.geom.in_c * op.geom.in_h * op.geom.in_w;
  const std::int64_t ckk = op.geom.col_rows();

  const Dispatch d = classify(*plan_, op, popcnt_, pvalid_);
  const bool sparse_ok =
      d.all_spiking && d.density < static_cast<double>(opts_.threshold);

  if (opts_.packed && d.all_packed && sparse_ok) {
    ++stats_.packed_dispatches;
    Telemetry::count("infer.packed_layers");
    Telemetry::count(ctr_packed_.c_str());
    // (P, O) int32 panel carved from the float scratch (same element
    // count); widened to float in place before the shared epilogue.
    std::int32_t* panel = reinterpret_cast<std::int32_t*>(scratch_.data());
    for (std::int64_t img = 0; img < n; ++img) {
      std::memset(panel, 0,
                  static_cast<std::size_t>(p * o_c) * sizeof(std::int32_t));
      for (const TermPlan& t : op.terms) {
        const ValuePlan& sv = val(t.value);
        const std::int64_t src_c = sv.shape[1];
        const std::uint64_t* w =
            words(t.value) + img * (sv.words / sv.shape[0]);
        if (t.sunk) {
          stats_.synops += spike_packed_conv2d_term_i8(
              t.geom, src_c, w, nullptr, t.wq8.data(), o_c, panel);
        } else {
          stats_.synops += spike_packed_conv2d_term_i8(
              op.geom, src_c, w, t.chrow.empty() ? nullptr : t.chrow.data(),
              op.wq8t.data(), o_c, panel);
        }
      }
      convert_i32_to_f32(p * o_c, panel, scratch_.data());
      epilogue(op, img, scratch_.data(), /*so=*/1, /*sp=*/o_c);
    }
    return;
  }

  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  float* assembled = scratch_.data();
  float* cols = assembled + in_img;
  std::int64_t cols_f = ckk * p;
  for (const TermPlan& t : op.terms) {
    if (!t.sunk) continue;
    cols_f = std::max(cols_f,
                      t.pgeom.col_rows() * t.pgeom.out_h() * t.pgeom.out_w());
  }
  std::int8_t* q8 = reinterpret_cast<std::int8_t*>(cols + cols_f);
  const std::int64_t qf = (ckk * p + 3) / 4;  // int8 codes, float slots
  std::int32_t* ipanel =
      reinterpret_cast<std::int32_t*>(cols + cols_f + qf);
  float* fpanel = cols + cols_f + qf;
  const float inv = 1.f / op.in_scale;
  for (std::int64_t img = 0; img < n; ++img) {
    assemble_image(op, img, assembled);
    // Sunk projections rematerialize through the raw fp32 1x1 weights,
    // exactly like the fp32 dense path (the composite kernel's zero rows
    // are free for event kernels but real work for a GEMM).
    for (const TermPlan& t : op.terms) {
      if (!t.sunk) continue;
      const ValuePlan& sv = val(t.value);
      const float* src = dense(t.value) + img * (sv.floats / sv.shape[0]);
      const std::int64_t pp = t.pgeom.out_h() * t.pgeom.out_w();
      im2col(t.pgeom, src, cols);
      gemm(t.proj_c, pp, t.pgeom.in_c, 1.f, t.pw.data(), cols, 1.f,
           assembled + t.offset * pp);
      stats_.dense_macs += t.proj_c * t.pgeom.in_c * pp;
    }
    im2row(op.geom, assembled, cols);
    quantize_int8(ckk * p, cols, inv, q8);
    gemm_s8s32_nt(o_c, p, ckk, op.wq8d.data(), q8, ipanel);
    convert_i32_to_f32(o_c * p, ipanel, fpanel);
    epilogue(op, img, fpanel, /*so=*/p, /*sp=*/1, op.in_scale);
  }
}

void Engine::exec_dwconv_i8(const OpPlan& op) {
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = ov.shape[0];
  const std::int64_t p = op.geom.out_h() * op.geom.out_w();
  const std::int64_t c = op.geom.in_c;
  const std::int64_t k = op.geom.kernel;
  const std::int64_t in_img = c * op.geom.in_h * op.geom.in_w;
  const std::int8_t* bank = op.wq8t.data();  // (C, K, K) int8 bank

  const Dispatch d = classify(*plan_, op, popcnt_, pvalid_);
  const bool sparse_ok =
      d.all_spiking && d.density < static_cast<double>(opts_.threshold);

  if (opts_.packed && d.all_packed && sparse_ok) {
    ++stats_.packed_dispatches;
    Telemetry::count("infer.packed_layers");
    Telemetry::count(ctr_packed_.c_str());
    std::int32_t* acc = reinterpret_cast<std::int32_t*>(scratch_.data());
    for (std::int64_t img = 0; img < n; ++img) {
      std::memset(acc, 0,
                  static_cast<std::size_t>(c * p) * sizeof(std::int32_t));
      for (const TermPlan& t : op.terms) {
        const ValuePlan& sv = val(t.value);
        const std::uint64_t* wsrc =
            words(t.value) + img * (sv.words / sv.shape[0]);
        stats_.synops += spike_packed_depthwise_term_i8(
            op.geom, sv.shape[1], wsrc,
            t.chrow.empty() ? nullptr : t.chrow.data(), bank, acc);
      }
      convert_i32_to_f32(c * p, acc, scratch_.data());
      epilogue(op, img, scratch_.data(), /*so=*/p, /*sp=*/1);
    }
    return;
  }

  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  float* assembled = scratch_.data();
  std::int8_t* q8 = reinterpret_cast<std::int8_t*>(assembled + in_img);
  const std::int64_t qf = (in_img + 3) / 4;
  std::int32_t* iacc =
      reinterpret_cast<std::int32_t*>(assembled + in_img + qf);
  float* facc = assembled + in_img + qf;
  const std::int64_t h = op.geom.in_h, wd = op.geom.in_w;
  const std::int64_t ho = op.geom.out_h(), wo = op.geom.out_w();
  const std::int64_t stride = op.geom.stride, pad = op.geom.pad;
  const float inv = 1.f / op.in_scale;
  for (std::int64_t img = 0; img < n; ++img) {
    assemble_image(op, img, assembled);
    quantize_int8(in_img, assembled, inv, q8);
    // The fp32 per-tap loop with int8 operands and an int32 accumulator.
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const std::int8_t* plane = q8 + ch * h * wd;
      const std::int8_t* ker = bank + ch * k * k;
      std::int32_t* optr = iacc + ch * p;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          std::int32_t acc = 0;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= wd) continue;
              acc += static_cast<std::int32_t>(ker[ky * k + kx]) *
                     static_cast<std::int32_t>(plane[iy * wd + ix]);
            }
          }
          optr[oy * wo + ox] = acc;
        }
      }
    }
    convert_i32_to_f32(c * p, iacc, facc);
    epilogue(op, img, facc, /*so=*/p, /*sp=*/1, op.in_scale);
  }
}

void Engine::exec_linear_i8(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& iv = val(t.value);
  const std::int64_t n = iv.shape[0];
  const std::int64_t in_f = t.channels;
  const std::int64_t o_f = op.out_c;
  ++stats_.dense_dispatches;
  Telemetry::count("infer.dense_layers");
  Telemetry::count(ctr_dense_.c_str());
  stats_.dense_macs += op.macs;
  std::int8_t* q8 = reinterpret_cast<std::int8_t*>(scratch_.data());
  const std::int64_t qf = (n * in_f + 3) / 4;
  std::int32_t* iout =
      reinterpret_cast<std::int32_t*>(scratch_.data() + qf);
  float* fout = scratch_.data() + qf;
  quantize_int8(n * in_f, dense(t.value), 1.f / op.in_scale, q8);
  // out(N, O) = qx(N, I) * Wq(O, I)^T in int32; dequant in the epilogue.
  gemm_s8s32_nt(n, o_f, in_f, q8, op.wq8d.data(), iout);
  convert_i32_to_f32(n * o_f, iout, fout);
  for (std::int64_t img = 0; img < n; ++img) {
    epilogue(op, img, fout + img * o_f, /*so=*/1, /*sp=*/1, op.in_scale);
  }
}

void Engine::exec_dsc_gather(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& sv = val(t.value);
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = sv.shape[0];
  const std::int64_t h = sv.shape[2], w = sv.shape[3];
  const std::int64_t len = t.channels;
  const std::int64_t ho = ov.shape[2], wo = ov.shape[3];
  const std::int64_t src_img_f = sv.floats / n;
  float* g = scratch_.data();  // (len, H, W) gathered image
  for (std::int64_t img = 0; img < n; ++img) {
    const float* src = dense(t.value) + img * src_img_f;
    for (std::size_t kk = 0; kk < t.gather.size(); ++kk) {
      std::memcpy(g + static_cast<std::int64_t>(kk) * h * w,
                  src + t.gather[kk] * h * w,
                  static_cast<std::size_t>(h * w) * sizeof(float));
    }
    // AvgPool2d::forward's partial-window averaging (ceil-mode output
    // size was fixed at compile time).
    float* optr = dense(op.out) + img * len * ho * wo;
    for (std::int64_t ch = 0; ch < len; ++ch) {
      const float* plane = g + ch * h * w;
      float* od = optr + ch * ho * wo;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        const std::int64_t y_end =
            std::min(h, oy * op.pool_stride + op.pool_kernel);
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          const std::int64_t x_end =
              std::min(w, ox * op.pool_stride + op.pool_kernel);
          float acc = 0.f;
          std::int64_t count = 0;
          for (std::int64_t y = oy * op.pool_stride; y < y_end; ++y) {
            for (std::int64_t xx = ox * op.pool_stride; xx < x_end; ++xx) {
              acc += plane[y * w + xx];
              ++count;
            }
          }
          od[oy * wo + ox] = count ? acc / static_cast<float>(count) : 0.f;
        }
      }
    }
  }
}

void Engine::exec_avgpool(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& sv = val(t.value);
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = sv.shape[0], c = sv.shape[1];
  const std::int64_t h = sv.shape[2], w = sv.shape[3];
  const std::int64_t ho = ov.shape[2], wo = ov.shape[3];
  const float* src = dense(t.value);
  float* dst = dense(op.out);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* plane = src + i * h * w;
    float* optr = dst + i * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      const std::int64_t y_end =
          std::min(h, oy * op.pool_stride + op.pool_kernel);
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const std::int64_t x_end =
            std::min(w, ox * op.pool_stride + op.pool_kernel);
        float acc = 0.f;
        std::int64_t count = 0;
        for (std::int64_t y = oy * op.pool_stride; y < y_end; ++y) {
          for (std::int64_t xx = ox * op.pool_stride; xx < x_end; ++xx) {
            acc += plane[y * w + xx];
            ++count;
          }
        }
        optr[oy * wo + ox] = count ? acc / static_cast<float>(count) : 0.f;
      }
    }
  }
}

void Engine::exec_gap(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& sv = val(t.value);
  const std::int64_t n = sv.shape[0], c = sv.shape[1];
  const std::int64_t plane = sv.shape[2] * sv.shape[3];
  const float* src = dense(t.value);
  float* dst = dense(op.out);
  const float inv = 1.f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* pl = src + i * plane;
    float acc = 0.f;
    for (std::int64_t j = 0; j < plane; ++j) acc += pl[j];
    dst[i] = acc * inv;
  }
}

void Engine::exec_neuron(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& sv = val(t.value);
  const std::int64_t n = sv.shape[0];
  const std::int64_t img_f = sv.floats / n;
  for (std::int64_t img = 0; img < n; ++img) {
    epilogue(op, img, dense(t.value) + img * img_f, /*so=*/1, /*sp=*/1);
  }
}

void Engine::exec_copy(const OpPlan& op) {
  const TermPlan& t = op.terms.front();
  const ValuePlan& sv = val(t.value);
  std::memcpy(dense(op.out), dense(t.value),
              static_cast<std::size_t>(sv.floats) * sizeof(float));
  const ValuePlan& ov = val(op.out);
  if (ov.spiking && sv.spiking) {
    std::memcpy(words(op.out), words(t.value),
                static_cast<std::size_t>(sv.words) * sizeof(std::uint64_t));
    pvalid_[static_cast<std::size_t>(op.out)] =
        pvalid_[static_cast<std::size_t>(t.value)];
    popcnt_[static_cast<std::size_t>(op.out)] =
        popcnt_[static_cast<std::size_t>(t.value)];
  }
}

void Engine::epilogue(const OpPlan& op, std::int64_t img, const float* acc,
                      std::int64_t so, std::int64_t sp, float ascale) {
  const ValuePlan& ov = val(op.out);
  const std::int64_t n = ov.shape[0];
  const std::int64_t img_f = ov.floats / n;
  const std::int64_t o_c = op.out_c;
  const std::int64_t p = img_f / o_c;
  float* dst = dense(op.out) + img * img_f;
  const std::size_t bi = static_cast<std::size_t>(op.copy_index(t_));
  const float* bias = op.bias[bi].data();
  const float* sc = op.scale.empty() ? nullptr : op.scale[bi].data();

  std::uint64_t* wbits = nullptr;
  if (ov.spiking) {
    const std::int64_t img_w = ov.words / n;
    wbits = words(op.out) + img * img_w;
    std::memset(wbits, 0,
                static_cast<std::size_t>(img_w) * sizeof(std::uint64_t));
  }

  if (op.epi == Epi::Lif) {
    float* m = sarena_.data() + op.state_off + img * img_f;
    float* rc = op.refrac_off >= 0
                    ? sarena_.data() + op.refrac_off + img * img_f
                    : nullptr;
    std::int64_t spk = 0;
    if (sp == 1 && rc == nullptr) {
      // Contiguous accumulator rows and no refractory gate: the fused
      // SIMD-dispatched row (bit-identical to the loop below at the
      // Scalar/Avx2 levels) handles integrate + threshold + soft reset +
      // spike-bit packing in one pass.
      for (std::int64_t o = 0; o < o_c; ++o) {
        spk += lif_epilogue_row(p, acc + o * so, sc != nullptr ? 1 : 0,
                                sc != nullptr ? ascale * sc[o] : 0.f, bias[o],
                                op.beta, op.theta, m + o * p, dst + o * p,
                                wbits, /*bit0=*/o * p);
      }
    } else {
      for (std::int64_t o = 0; o < o_c; ++o) {
        const float* ab = acc + o * so;
        const float b = bias[o];
        for (std::int64_t j = 0; j < p; ++j) {
          const std::int64_t idx = o * p + j;
          const float a = ab[j * sp];
          const float in = (sc != nullptr ? (ascale * sc[o]) * a : a) + b;
          // Lif::forward's exact update: leaky integrate, refractory gate,
          // threshold compare, soft reset.
          const float vt = op.beta * m[idx] + in;
          const float dist = vt - op.theta;
          bool live = true;
          if (rc != nullptr && rc[idx] > 0.f) {
            live = false;
            rc[idx] -= 1.f;
          }
          if (live && dist >= 0.f) {
            dst[idx] = 1.f;
            m[idx] = vt - op.theta;
            if (rc != nullptr) rc[idx] = static_cast<float>(op.refractory);
            wbits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
            ++spk;
          } else {
            dst[idx] = 0.f;
            m[idx] = vt;
          }
        }
      }
    }
    if (img == 0) popcnt_[static_cast<std::size_t>(op.out)] = 0;
    popcnt_[static_cast<std::size_t>(op.out)] += spk;
    pvalid_[static_cast<std::size_t>(op.out)] = 1;
    stats_.spikes += spk;
    return;
  }

  if (sp == 1) {
    for (std::int64_t o = 0; o < o_c; ++o) {
      affine_epilogue_row(p, acc + o * so, sc != nullptr ? 1 : 0,
                          sc != nullptr ? ascale * sc[o] : 0.f, bias[o],
                          op.epi == Epi::Relu ? 1 : 0, dst + o * p);
    }
    return;
  }
  for (std::int64_t o = 0; o < o_c; ++o) {
    const float* ab = acc + o * so;
    const float b = bias[o];
    for (std::int64_t j = 0; j < p; ++j) {
      const std::int64_t idx = o * p + j;
      const float a = ab[j * sp];
      const float in = (sc != nullptr ? (ascale * sc[o]) * a : a) + b;
      dst[idx] = op.epi == Epi::Relu ? (in > 0.f ? in : 0.f) : in;
    }
  }
}

}  // namespace snnskip::infer
