#include "infer/compile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "graph/block.h"
#include "infer/quant.h"
#include "nn/activations.h"
#include "nn/batchnorm_tt.h"
#include "nn/conv2d.h"
#include "nn/depthwise_conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "snn/lif.h"
#include "snn/plif.h"
#include "telemetry/telemetry.h"
#include "tensor/spike_packed.h"

namespace snnskip::infer {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("infer::compile: " + what);
}

/// Per-channel eval-mode BN fold — the EXACT expressions BatchNormTT's
/// eval path uses, so the no-fold epilogue reproduces it bit-for-bit.
struct BnFold {
  std::vector<float> scale, shift;
};

BnFold bn_fold(const BatchNormTT& bn, std::int64_t t) {
  const std::int64_t c = bn.channels();
  BnFold f;
  f.scale.resize(static_cast<std::size_t>(c));
  f.shift.resize(static_cast<std::size_t>(c));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const std::size_t ci = static_cast<std::size_t>(ch);
    const float mean = bn.running_mean(t)[ci];
    const float inv_std = 1.f / std::sqrt(bn.running_var(t)[ci] + bn.eps());
    const float g = bn.gamma(t)[ci];
    f.scale[ci] = g * inv_std;
    f.shift[ci] = bn.shift_beta(t)[ci] - g * mean * inv_std;
  }
  return f;
}

/// (O, CKK) row-major -> ((c,ky,kx), o) transposed panel.
std::vector<float> transpose_rows(const float* w, std::int64_t o_c,
                                  std::int64_t ckk) {
  std::vector<float> wt(static_cast<std::size_t>(o_c * ckk));
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t r = 0; r < ckk; ++r) {
      wt[static_cast<std::size_t>(r * o_c + o)] =
          w[static_cast<std::size_t>(o * ckk + r)];
    }
  }
  return wt;
}

// ---- int8 weight quantization (ISSUE 10) ----------------------------------

/// The kernels' exact rounding (quant_kernels_impl.h): round-half-up via
/// floor, clamped to the symmetric range. Plans quantize with this scalar
/// sequence directly so the compiled weights never depend on SNNSKIP_SIMD.
std::int8_t quantize_one_i8(float x, float inv) {
  std::int32_t q = static_cast<std::int32_t>(std::floor(x * inv + 0.5f));
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<std::int8_t>(q);
}

/// Quantize (rows, cols) row-major with per-row scales S (row o divided
/// by S[o]).
std::vector<std::int8_t> quantize_rows_i8(const float* w, std::int64_t rows,
                                          std::int64_t cols,
                                          const std::vector<float>& S) {
  std::vector<std::int8_t> q(static_cast<std::size_t>(rows * cols));
  for (std::int64_t o = 0; o < rows; ++o) {
    const float inv = 1.f / S[static_cast<std::size_t>(o)];
    const float* src = w + o * cols;
    std::int8_t* dst = q.data() + o * cols;
    for (std::int64_t r = 0; r < cols; ++r) dst[r] = quantize_one_i8(src[r], inv);
  }
  return q;
}

/// (O, CKK) int8 rows -> ((c,ky,kx), o) transposed panel.
std::vector<std::int8_t> transpose_rows_i8(const std::int8_t* w,
                                           std::int64_t o_c,
                                           std::int64_t ckk) {
  std::vector<std::int8_t> wt(static_cast<std::size_t>(o_c * ckk));
  for (std::int64_t o = 0; o < o_c; ++o) {
    for (std::int64_t r = 0; r < ckk; ++r) {
      wt[static_cast<std::size_t>(r * o_c + o)] =
          w[static_cast<std::size_t>(o * ckk + r)];
    }
  }
  return wt;
}

float row_absmax(const float* row, std::int64_t n) {
  float m = 0.f;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(row[i]));
  return m;
}

/// Builds op weight copies. `bn == nullptr` means nothing to fold (proj
/// convs, the head linear): one copy, bias = the layer's own bias.
struct WeightBuild {
  const float* w = nullptr;       ///< (O, CKK) for conv; (C, KK) depthwise;
                                  ///< (O, I) linear
  const float* layer_bias = nullptr;  ///< may be null
  std::int64_t rows = 0;          ///< O (conv/linear) or C (depthwise)
  std::int64_t cols = 0;          ///< CKK / KK / I
  bool transpose = false;         ///< emit ((c,..), o) panels (conv only)
  bool keep_dense = false;        ///< also keep the raw layout in wd
};

void build_weights(OpPlan& op, const WeightBuild& b, const BatchNormTT* bn,
                   bool fold_bn) {
  const std::int64_t copies = (bn != nullptr) ? bn->max_timesteps() : 1;
  const std::size_t n = static_cast<std::size_t>(b.rows * b.cols);

  auto raw = std::vector<float>(b.w, b.w + n);
  auto raw_bias = std::vector<float>(static_cast<std::size_t>(b.rows), 0.f);
  if (b.layer_bias != nullptr) {
    raw_bias.assign(b.layer_bias, b.layer_bias + b.rows);
  }

  if (bn == nullptr || !fold_bn) {
    // Single weight copy. With a BN present, scale/shift go to the
    // epilogue (one (scale, bias) pair per timestep); the layer's own
    // bias, if any, is pre-scaled into the shift (conv bias never
    // coexists with BN in this repo's models).
    op.wt.push_back(b.transpose ? transpose_rows(raw.data(), b.rows, b.cols)
                                : raw);
    if (b.keep_dense) op.wd.push_back(raw);
    if (bn == nullptr) {
      op.bias.push_back(raw_bias);
    } else {
      for (std::int64_t t = 0; t < copies; ++t) {
        BnFold f = bn_fold(*bn, t);
        std::vector<float> bias(f.shift);
        for (std::int64_t o = 0; o < b.rows; ++o) {
          bias[static_cast<std::size_t>(o)] +=
              f.scale[static_cast<std::size_t>(o)] *
              raw_bias[static_cast<std::size_t>(o)];
        }
        op.bias.push_back(std::move(bias));
        op.scale.push_back(std::move(f.scale));
      }
    }
    return;
  }

  // Folded mode: scale each output row of the weights, one copy per
  // timestep. The transposed panel feeds the event kernels; convs also
  // keep the folded (O, CKK) layout so the dense and CSR dispatches run
  // the exact row-major GEMM / event kernel the training graph runs
  // (gemm_tn on the transposed panel is several times slower at the
  // small spatial sizes where dense dispatch actually happens).
  for (std::int64_t t = 0; t < copies; ++t) {
    BnFold f = bn_fold(*bn, t);
    std::vector<float> wf(n);
    for (std::int64_t o = 0; o < b.rows; ++o) {
      const float sc = f.scale[static_cast<std::size_t>(o)];
      const float* src = raw.data() + o * b.cols;
      float* dst = wf.data() + o * b.cols;
      for (std::int64_t r = 0; r < b.cols; ++r) dst[r] = sc * src[r];
    }
    if (b.keep_dense && b.transpose) op.wd.push_back(wf);
    op.wt.push_back(b.transpose ? transpose_rows(wf.data(), b.rows, b.cols)
                                : std::move(wf));
    std::vector<float> bias(f.shift);
    for (std::int64_t o = 0; o < b.rows; ++o) {
      bias[static_cast<std::size_t>(o)] +=
          f.scale[static_cast<std::size_t>(o)] *
          raw_bias[static_cast<std::size_t>(o)];
    }
    op.bias.push_back(std::move(bias));
  }
}

/// Int8 weight build: quantize the RAW weights once (per-output-channel
/// symmetric, S[o] = absmax / 127) and absorb the BNTT fold into the
/// epilogue's per-timestep dequant scale (scale_t[o] = S[o] *
/// bn_scale_t[o]; bias_t identical to the no-fold builder). The scale
/// panel is SHARED with every sunk ASC term's composite rows — both
/// accumulate into the same int32 panel on the packed path, so one
/// uniform per-channel dequant must cover them; S[o] therefore takes the
/// absmax over the op's own row o AND each sunk term's composite row o.
/// Terms' raw composite bases (stashed in t.wd[0] by build_sunk_term's
/// int8 mode) are consumed here and replaced by the quantized transposed
/// panel in t.wq8.
void build_weights_i8(OpPlan& op, const WeightBuild& b,
                      const BatchNormTT* bn) {
  const std::int64_t copies = (bn != nullptr) ? bn->max_timesteps() : 1;
  const std::size_t n = static_cast<std::size_t>(b.rows * b.cols);

  auto raw = std::vector<float>(b.w, b.w + n);
  auto raw_bias = std::vector<float>(static_cast<std::size_t>(b.rows), 0.f);
  if (b.layer_bias != nullptr) {
    raw_bias.assign(b.layer_bias, b.layer_bias + b.rows);
  }

  std::vector<float> S(static_cast<std::size_t>(b.rows), 1.f);
  for (std::int64_t o = 0; o < b.rows; ++o) {
    float amax = row_absmax(raw.data() + o * b.cols, b.cols);
    for (const TermPlan& t : op.terms) {
      if (!t.sunk) continue;
      const std::int64_t tckk = t.geom.col_rows();
      amax = std::max(amax, row_absmax(t.wd[0].data() + o * tckk, tckk));
    }
    if (amax > 0.f) S[static_cast<std::size_t>(o)] = amax / 127.f;
  }

  auto q = quantize_rows_i8(raw.data(), b.rows, b.cols, S);
  if (b.transpose) {
    // Conv: transposed panel for the packed event kernel, rows for the
    // dense int8 GEMM.
    op.wq8t = transpose_rows_i8(q.data(), b.rows, b.cols);
    op.wq8d = std::move(q);
  } else if (op.kind == OpKind::DwConv) {
    op.wq8t = std::move(q);  // (C, K, K) bank, both dispatch modes
  } else {
    op.wq8d = std::move(q);  // Linear (O, I) rows
  }

  for (std::int64_t t = 0; t < copies; ++t) {
    std::vector<float> sc(S);
    std::vector<float> bias(raw_bias);
    if (bn != nullptr) {
      BnFold f = bn_fold(*bn, t);
      for (std::int64_t o = 0; o < b.rows; ++o) {
        const std::size_t oi = static_cast<std::size_t>(o);
        sc[oi] = f.scale[oi] * S[oi];
        bias[oi] = f.shift[oi] + f.scale[oi] * raw_bias[oi];
      }
    }
    op.scale.push_back(std::move(sc));
    op.bias.push_back(std::move(bias));
  }

  for (TermPlan& t : op.terms) {
    if (!t.sunk) continue;
    const std::int64_t tckk = t.geom.col_rows();
    auto tq = quantize_rows_i8(t.wd[0].data(), b.rows, tckk, S);
    t.wq8 = transpose_rows_i8(tq.data(), b.rows, tckk);
    t.wd.clear();  // dense dispatch rematerializes via t.pw; no CSR mode
    t.wd.shrink_to_fit();
  }
}

/// Neuron layer -> fused epilogue parameters. Returns Epi::None for
/// Identity, Epi::Relu for ReLU; fills beta/theta/refractory for LIF/PLIF.
Epi classify_neuron(Layer* neuron, OpPlan& op) {
  if (neuron == nullptr || dynamic_cast<Identity*>(neuron) != nullptr) {
    return Epi::None;
  }
  if (dynamic_cast<ReLU*>(neuron) != nullptr) return Epi::Relu;
  if (auto* lif = dynamic_cast<Lif*>(neuron)) {
    op.beta = lif->config().beta;
    op.theta = lif->config().threshold;
    op.refractory = lif->config().refractory;
    return Epi::Lif;
  }
  if (auto* plif = dynamic_cast<Plif*>(neuron)) {
    op.beta = plif->beta();  // frozen sigmoid(w) at compile time
    op.theta = plif->config().threshold;
    op.refractory = plif->config().refractory;
    return Epi::Lif;
  }
  fail("unsupported neuron layer '" + neuron->name() + "'");
}

class Compiler {
 public:
  Compiler(Network& net, const Shape& input_shape, const CompileOptions& opts)
      : net_(net), opts_(opts) {
    if (input_shape.ndim() != 4) fail("input shape must be (N, C, H, W)");
    if (opts.precision == Precision::Int8 && !opts.fold_bn) {
      fail("int8 precision requires fold_bn (the no-fold bitwise mode is "
           "fp32-only)");
    }
    plan_.input_shape = input_shape;
    plan_.bn_folded = opts.fold_bn;
    plan_.precision = opts.precision;
  }

  Plan run() {
    SNNSKIP_SPAN("infer.compile", "plan");
    // The network input is value 0; whether it actually carries binary
    // spikes is detected when Engine::step packs it.
    plan_.input_value =
        new_value(plan_.input_shape, /*spiking=*/true);
    int cur = plan_.input_value;

    const auto& stages = net_.stages();
    for (std::size_t i = 0; i < stages.size(); ++i) {
      Layer* layer = stages[i].get();
      if (auto* blk = dynamic_cast<Block*>(layer)) {
        cur = lower_block(*blk, cur);
      } else if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
        auto* bn = peek<BatchNormTT>(stages, i + 1);
        Layer* neuron = bn != nullptr ? peek_neuron(stages, i + 2)
                                      : peek_neuron(stages, i + 1);
        cur = lower_conv(*conv, bn, neuron, cur, conv->name());
        i += (bn != nullptr ? 1 : 0) + (neuron != nullptr ? 1 : 0);
      } else if (auto* lin = dynamic_cast<Linear*>(layer)) {
        Layer* neuron = peek_neuron(stages, i + 1);
        cur = lower_linear(*lin, neuron, cur);
        i += neuron != nullptr ? 1 : 0;
      } else if (auto* gap = dynamic_cast<GlobalAvgPool2d*>(layer)) {
        cur = lower_simple(OpKind::GlobalAvgPool, gap->name(),
                           gap->output_shape(shape(cur)), cur);
      } else if (auto* pool = dynamic_cast<AvgPool2d*>(layer)) {
        OpPlan op;
        op.pool_kernel = pool->kernel();
        op.pool_stride = pool->stride();
        op.pool_ceil = pool->ceil_mode();
        cur = push_simple(std::move(op), OpKind::AvgPool, pool->name(),
                          pool->output_shape(shape(cur)), cur);
      } else if (dynamic_cast<Lif*>(layer) != nullptr ||
                 dynamic_cast<Plif*>(layer) != nullptr) {
        cur = lower_neuron(layer, cur);
      } else if (dynamic_cast<Identity*>(layer) != nullptr) {
        continue;
      } else {
        fail("unsupported stage '" + layer->name() +
             "' (no inference lowering)");
      }
    }

    plan_.output_value = cur;
    plan_.output_shape = shape(cur);
    finalize();
    return std::move(plan_);
  }

 private:
  template <typename T>
  static T* peek(const std::vector<LayerPtr>& stages, std::size_t i) {
    return i < stages.size() ? dynamic_cast<T*>(stages[i].get()) : nullptr;
  }

  static Layer* peek_neuron(const std::vector<LayerPtr>& stages,
                            std::size_t i) {
    if (i >= stages.size()) return nullptr;
    Layer* l = stages[i].get();
    if (dynamic_cast<Lif*>(l) != nullptr || dynamic_cast<Plif*>(l) != nullptr ||
        dynamic_cast<ReLU*>(l) != nullptr ||
        dynamic_cast<Identity*>(l) != nullptr) {
      return l;
    }
    return nullptr;
  }

  const Shape& shape(int v) const {
    return plan_.values[static_cast<std::size_t>(v)].shape;
  }

  int new_value(const Shape& s, bool spiking) {
    ValuePlan v;
    v.shape = s;
    v.floats = s.numel();
    v.spiking = spiking;
    if (spiking) {
      const std::int64_t per_img = s.numel() / s[0];
      v.words = s[0] * packed_words(per_img);
    }
    plan_.values.push_back(std::move(v));
    return static_cast<int>(plan_.values.size()) - 1;
  }

  void use(int v) {
    auto& val = plan_.values[static_cast<std::size_t>(v)];
    val.last_use = std::max(val.last_use,
                            static_cast<int>(plan_.ops.size()));
  }

  int emit(OpPlan op, const Shape& out_shape, bool out_spiking) {
    for (const TermPlan& t : op.terms) use(t.value);
    const int out = new_value(out_shape, out_spiking);
    op.out = out;
    plan_.values[static_cast<std::size_t>(out)].def =
        static_cast<int>(plan_.ops.size());
    if (op.epi == Epi::Lif) {
      op.state_off = state_floats_;
      state_floats_ += out_shape.numel();
      if (op.refractory > 0) {
        op.refrac_off = state_floats_;
        state_floats_ += out_shape.numel();
      }
    }
    plan_.ops.push_back(std::move(op));
    return out;
  }

  int lower_simple(OpKind kind, const std::string& name,
                   const Shape& out_shape, int in) {
    return push_simple(OpPlan{}, kind, name, out_shape, in);
  }

  int push_simple(OpPlan op, OpKind kind, const std::string& name,
                  const Shape& out_shape, int in) {
    op.kind = kind;
    op.name = name;
    TermPlan t;
    t.value = in;
    t.channels = shape(in).ndim() >= 2 ? shape(in)[1] : 0;
    op.terms.push_back(std::move(t));
    return emit(std::move(op), out_shape, /*out_spiking=*/false);
  }

  bool int8() const { return opts_.precision == Precision::Int8; }

  /// Weight build dispatch on the plan precision. Int8 additionally
  /// fixes the op's input quantization step: exactly 1.0 when every term
  /// is binary spikes and none is sunk (assembled values are small
  /// integers — quantization is lossless and the dense int8 dispatch is
  /// bitwise-equal to the packed one), else the calibrated absmax / 127
  /// (sunk terms rematerialize an analog projection on dense dispatch).
  /// Must run after op.terms is complete.
  void build_op_weights(OpPlan& op, const WeightBuild& b,
                        const BatchNormTT* bn) {
    if (!int8()) {
      build_weights(op, b, bn, opts_.fold_bn);
      return;
    }
    build_weights_i8(op, b, bn);
    bool exact = true;
    for (const TermPlan& t : op.terms) {
      if (!t.spiking || t.sunk) exact = false;
    }
    if (exact) {
      op.in_scale = 1.f;
      return;
    }
    float amax =
        opts_.quant != nullptr ? opts_.quant->amax_for(op.name, 1.f) : 1.f;
    if (!(amax > 0.f)) amax = 1.f;
    op.in_scale = amax / 127.f;
  }

  /// Top-level conv (+BN +neuron) — also used for skip projections
  /// (bn == nullptr, neuron == nullptr).
  int lower_conv(Conv2d& conv, BatchNormTT* bn, Layer* neuron, int in,
                 const std::string& name) {
    OpPlan op;
    op.kind = OpKind::Conv;
    op.name = name;
    op.epi = classify_neuron(neuron, op);
    const Shape s = shape(in);  // copy: emit() reallocates the value table
    op.geom = ConvGeometry{conv.in_channels(), s[2], s[3], conv.kernel(),
                           conv.stride(), conv.pad()};
    op.out_c = conv.out_channels();
    op.macs = conv.macs(s);
    TermPlan t;
    t.value = in;
    t.channels = conv.in_channels();
    t.spiking = plan_.values[static_cast<std::size_t>(in)].spiking;
    op.terms.push_back(std::move(t));
    WeightBuild b;
    b.w = conv.weight().value.data();
    b.layer_bias = conv.has_bias() ? conv.bias().value.data() : nullptr;
    b.rows = conv.out_channels();
    b.cols = conv.in_channels() * conv.kernel() * conv.kernel();
    b.transpose = true;
    b.keep_dense = true;  // dense/CSR dispatch wants the (O, CKK) layout
    build_op_weights(op, b, bn);
    const bool spiking_out = op.epi == Epi::Lif;
    const Shape out_shape = conv.output_shape(s);
    return emit(std::move(op), out_shape, spiking_out);
  }

  int lower_linear(Linear& lin, Layer* neuron, int in) {
    OpPlan op;
    op.kind = OpKind::Linear;
    op.name = lin.name();
    op.epi = classify_neuron(neuron, op);
    const Shape s = shape(in);
    if (s.ndim() != 2) fail("linear stage expects a 2-D (N, F) input");
    op.out_c = lin.out_features();
    op.macs = lin.macs(s);
    TermPlan t;
    t.value = in;
    t.channels = lin.in_features();
    op.terms.push_back(std::move(t));
    WeightBuild b;
    b.w = lin.weight().value.data();
    b.layer_bias = lin.has_bias() ? lin.bias().value.data() : nullptr;
    b.rows = lin.out_features();
    b.cols = lin.in_features();
    build_op_weights(op, b, nullptr);
    const bool spiking_out = op.epi == Epi::Lif;
    const Shape out_shape = lin.output_shape(s);
    return emit(std::move(op), out_shape, spiking_out);
  }

  int lower_neuron(Layer* neuron, int in) {
    OpPlan op;
    op.kind = OpKind::Neuron;
    op.name = neuron->name();
    op.epi = classify_neuron(neuron, op);
    const Shape s = shape(in);
    op.out_c = s.numel() / s[0];
    op.bias.emplace_back(static_cast<std::size_t>(op.out_c), 0.f);
    TermPlan t;
    t.value = in;
    t.channels = s.ndim() >= 2 ? s[1] : 0;
    op.terms.push_back(std::move(t));
    const bool spiking_out = op.epi == Epi::Lif;
    return emit(std::move(op), s, spiking_out);
  }

  /// Compose a 1x1 no-bias ASC projection with the consumer conv's
  /// main-segment weights into one convolution over the projection's
  /// spiking input (cons(proj(s)) == comp(s) — both maps are linear and
  /// the tap arithmetic composes exactly, including zero padding: a
  /// consumer tap past the projection's output grid reads position
  /// r * s1 >= src_h, outside the source too). Taps land on a grid
  /// dilated by the projection stride s1; stored as an enlarged
  /// (k2-1)*s1+1 kernel with zeros off-grid since the kernels have no
  /// dilation support. BN folding scales composite rows per timestep
  /// exactly like the op's own weights.
  void build_sunk_term(TermPlan& t, Conv2d& proj, Conv2d& cons,
                       const BatchNormTT* bn, const Shape& src_s) {
    const std::int64_t s1 = proj.stride();
    const std::int64_t k2 = cons.kernel();
    const std::int64_t kc = (k2 - 1) * s1 + 1;
    const std::int64_t src_c = proj.in_channels();
    const std::int64_t mid_c = proj.out_channels();
    const std::int64_t o_c = cons.out_channels();
    const std::int64_t in_c2 = cons.in_channels();
    t.sunk = true;
    t.channels = src_c;
    t.geom = ConvGeometry{src_c, src_s[2], src_s[3], kc,
                          s1 * cons.stride(), cons.pad() * s1};
    t.macs = o_c * t.geom.out_h() * t.geom.out_w() * src_c * k2 * k2;
    t.pgeom = ConvGeometry{src_c, src_s[2], src_s[3], 1, s1, 0};
    t.proj_c = mid_c;
    t.pw.assign(proj.weight().value.data(),
                proj.weight().value.data() + mid_c * src_c);

    const float* w1 = proj.weight().value.data();  // (mid_c, src_c)
    const float* w2 = cons.weight().value.data();  // (o_c, in_c2, k2, k2)
    const std::int64_t ckk = src_c * kc * kc;
    std::vector<float> base(static_cast<std::size_t>(o_c * ckk), 0.f);
    for (std::int64_t o = 0; o < o_c; ++o) {
      for (std::int64_t dy = 0; dy < k2; ++dy) {
        for (std::int64_t dx = 0; dx < k2; ++dx) {
          for (std::int64_t c = 0; c < src_c; ++c) {
            float acc = 0.f;
            for (std::int64_t m = 0; m < mid_c; ++m) {
              acc += w2[((o * in_c2 + m) * k2 + dy) * k2 + dx] *
                     w1[m * src_c + c];
            }
            base[static_cast<std::size_t>(
                ((o * src_c + c) * kc + dy * s1) * kc + dx * s1)] = acc;
          }
        }
      }
    }
    if (int8()) {
      // Stash the single RAW composite base; build_weights_i8 quantizes
      // it with the consumer's shared per-channel scales (the BN fold
      // lives in the epilogue scale, so no per-timestep copies exist).
      t.wd.push_back(std::move(base));
      return;
    }
    const std::int64_t copies = bn != nullptr ? bn->max_timesteps() : 1;
    for (std::int64_t tt = 0; tt < copies; ++tt) {
      std::vector<float> wf(base);
      if (bn != nullptr) {
        BnFold f = bn_fold(*bn, tt);
        for (std::int64_t o = 0; o < o_c; ++o) {
          const float sc = f.scale[static_cast<std::size_t>(o)];
          float* row = wf.data() + o * ckk;
          for (std::int64_t r = 0; r < ckk; ++r) row[r] *= sc;
        }
      }
      t.wd.push_back(wf);
      t.wt.push_back(transpose_rows(wf.data(), o_c, ckk));
    }
  }

  int lower_block(Block& blk, int block_in) {
    if (!blk.recurrent_edges().empty()) {
      fail("block '" + blk.name() +
           "' has recurrent (one-step-delayed) edges; those are a "
           "training-graph extension — compile feed-forward adjacencies "
           "only");
    }
    const int d = blk.spec().depth();
    std::vector<int> node_vals(static_cast<std::size_t>(d) + 1, -1);
    node_vals[0] = block_in;

    for (int i = 1; i <= d; ++i) {
      Block::Node& node = blk.nodes()[static_cast<std::size_t>(i - 1)];
      // Copy: emitting proj/gather ops below reallocates the value table.
      const Shape in_s = shape(node_vals[static_cast<std::size_t>(i - 1)]);
      auto* bn = dynamic_cast<BatchNormTT*>(node.bn.get());
      if (bn == nullptr) fail("block node has no BatchNormTT");

      OpPlan op;
      op.name = node.op->name();
      op.epi = classify_neuron(node.neuron.get(), op);
      op.out_c = node.plan.out_channels;

      // Main term: the sequential predecessor.
      {
        TermPlan t;
        t.value = node_vals[static_cast<std::size_t>(i - 1)];
        t.channels = node.main_in_c;
        t.spiking =
            plan_.values[static_cast<std::size_t>(t.value)].spiking;
        op.terms.push_back(std::move(t));
      }

      // ASC edges add onto the main channel range (conv linearity turns
      // the join into extra accumulation terms). In fold mode a 1x1
      // no-bias projection into a Conv2d consumer is SUNK: composed into
      // the consumer's main-segment weights so the term convolves the
      // original spiking source directly (see TermPlan::sunk). Otherwise
      // the projection becomes its own Conv op producing a dense term —
      // exactly the 1x1 conv the training graph runs inside
      // assemble_input (and what the no-fold bitwise mode must match).
      for (auto& edge : blk.skip_edges()) {
        if (edge.dst != i || edge.type != SkipType::ASC) continue;
        const int src_val = node_vals[static_cast<std::size_t>(edge.src)];
        TermPlan t;
        t.add_join = true;
        t.channels = node.main_in_c;
        if (edge.proj != nullptr) {
          auto* proj = dynamic_cast<Conv2d*>(edge.proj.get());
          if (proj == nullptr) fail("ASC projection is not a Conv2d");
          auto* cons = dynamic_cast<Conv2d*>(node.op.get());
          const bool src_spiking =
              plan_.values[static_cast<std::size_t>(src_val)].spiking;
          if (opts_.fold_bn && cons != nullptr && src_spiking &&
              proj->kernel() == 1 && !proj->has_bias() &&
              proj->out_channels() == node.main_in_c) {
            const Shape ss = shape(src_val);
            build_sunk_term(t, *proj, *cons, bn, ss);
            t.value = src_val;
            t.spiking = true;
          } else {
            t.value = lower_conv(*proj, nullptr, nullptr, src_val,
                                 proj->name());
          }
        } else {
          t.value = src_val;
          t.spiking =
              plan_.values[static_cast<std::size_t>(t.value)].spiking;
        }
        op.terms.push_back(std::move(t));
      }

      // DSC edges concatenate channel subsets after the main range, in
      // (dst, src) edge order — the used_weight_channels layout.
      std::int64_t off = node.main_in_c;
      for (auto& edge : blk.skip_edges()) {
        if (edge.dst != i || edge.type != SkipType::DSC) continue;
        const int src_val = node_vals[static_cast<std::size_t>(edge.src)];
        const std::int64_t len =
            static_cast<std::int64_t>(edge.channels.size());
        TermPlan t;
        t.offset = off;
        t.channels = len;
        if (edge.pool != nullptr) {
          auto* pool = dynamic_cast<AvgPool2d*>(edge.pool.get());
          if (pool == nullptr) fail("DSC pool is not an AvgPool2d");
          // Gather + ceil-mode pool runs as its own op; the conv then
          // consumes its dense output as a plain concat term.
          OpPlan gop;
          gop.kind = OpKind::DscGather;
          gop.name = blk.name() + ".e" + std::to_string(edge.src) + "_" +
                     std::to_string(edge.dst) + ".pool";
          gop.pool_kernel = pool->kernel();
          gop.pool_stride = pool->stride();
          gop.pool_ceil = pool->ceil_mode();
          TermPlan gt;
          gt.value = src_val;
          gt.channels = len;
          gt.gather = edge.channels;
          gop.terms.push_back(std::move(gt));
          const Shape ss = shape(src_val);
          const Shape pooled = pool->output_shape(
              Shape{ss[0], len, ss[2], ss[3]});
          t.value = emit(std::move(gop), pooled, /*out_spiking=*/false);
        } else {
          t.value = src_val;
          t.spiking =
              plan_.values[static_cast<std::size_t>(t.value)].spiking;
          t.gather = edge.channels;
          const std::int64_t src_c = shape(src_val)[1];
          t.chrow.assign(static_cast<std::size_t>(src_c), -1);
          for (std::int64_t k = 0; k < len; ++k) {
            t.chrow[static_cast<std::size_t>(
                edge.channels[static_cast<std::size_t>(k)])] =
                static_cast<std::int32_t>(off + k);
          }
        }
        off += len;
        op.terms.push_back(std::move(t));
      }

      // The node op itself.
      Shape out_shape;
      const Shape op_in{in_s[0], node.used_in_c, in_s[2], in_s[3]};
      if (auto* conv = dynamic_cast<Conv2d*>(node.op.get())) {
        op.kind = OpKind::Conv;
        op.geom = ConvGeometry{conv->in_channels(), in_s[2], in_s[3],
                               conv->kernel(), conv->stride(), conv->pad()};
        op.macs = conv->macs(op_in);
        WeightBuild b;
        b.w = conv->weight().value.data();
        b.layer_bias =
            conv->has_bias() ? conv->bias().value.data() : nullptr;
        b.rows = conv->out_channels();
        b.cols = conv->in_channels() * conv->kernel() * conv->kernel();
        b.transpose = true;
        b.keep_dense = true;
        build_op_weights(op, b, bn);
        out_shape = conv->output_shape(op_in);
      } else if (auto* dw = dynamic_cast<DepthwiseConv2d*>(node.op.get())) {
        op.kind = OpKind::DwConv;
        op.geom = ConvGeometry{dw->channels(), in_s[2], in_s[3],
                               dw->kernel(), dw->stride(), dw->pad()};
        op.macs = dw->macs(op_in);
        WeightBuild b;
        b.w = dw->weight().value.data();
        b.layer_bias = dw->has_bias() ? dw->bias().value.data() : nullptr;
        b.rows = dw->channels();
        b.cols = dw->kernel() * dw->kernel();
        build_op_weights(op, b, bn);
        out_shape = dw->output_shape(op_in);
      } else {
        fail("unsupported block node op '" + node.op->name() + "'");
      }

      const bool spiking_out = op.epi == Epi::Lif;
      node_vals[static_cast<std::size_t>(i)] =
          emit(std::move(op), out_shape, spiking_out);
    }
    return node_vals[static_cast<std::size_t>(d)];
  }

  // ---- buffer planning ----------------------------------------------------

  struct Interval {
    std::int64_t off = 0, size = 0;
    int def = 0, last = 0;
  };

  static bool time_overlap(const Interval& a, int def, int last) {
    return !(a.last < def || last < a.def);
  }

  /// First-fit offset for [def, last] x size against already-placed
  /// intervals: lowest offset whose space is free for the whole lifetime.
  static std::int64_t place(std::vector<Interval>& placed, std::int64_t size,
                            int def, int last) {
    std::vector<const Interval*> clash;
    for (const Interval& p : placed) {
      if (time_overlap(p, def, last)) clash.push_back(&p);
    }
    std::sort(clash.begin(), clash.end(),
              [](const Interval* a, const Interval* b) {
                return a->off < b->off;
              });
    std::int64_t off = 0;
    for (const Interval* p : clash) {
      if (off + size <= p->off) break;
      off = std::max(off, p->off + p->size);
    }
    placed.push_back(Interval{off, size, def, last});
    return off;
  }

  void finalize() {
    const int nops = static_cast<int>(plan_.ops.size());
    // The output must survive the whole step (it is read back after the
    // op loop); the input is written before op 0 runs.
    plan_.values[static_cast<std::size_t>(plan_.output_value)].last_use =
        nops;
    auto& in_v =
        plan_.values[static_cast<std::size_t>(plan_.input_value)];
    in_v.last_use = std::max(in_v.last_use, 0);

    std::vector<Interval> fplaced, wplaced;
    std::int64_t fhigh = 0, whigh = 0;
    for (auto& v : plan_.values) {
      const int def = v.def;  // -1 for the input: live from step start
      const int last = std::max(v.last_use, v.def);
      v.dense_off = place(fplaced, v.floats, def, last);
      fhigh = std::max(fhigh, v.dense_off + v.floats);
      if (v.words > 0) {
        v.packed_off = place(wplaced, v.words, def, last);
        whigh = std::max(whigh, v.packed_off + v.words);
      }
    }
    plan_.float_arena = fhigh;
    plan_.word_arena = whigh;
    plan_.state_arena = state_floats_;

    // Scratch high-water: the worst case over every op x dispatch mode,
    // so runtime dispatch can never outgrow the preallocated block.
    std::int64_t scratch = 0;
    for (const OpPlan& op : plan_.ops) {
      scratch = std::max(scratch, op_scratch(op));
    }
    plan_.scratch_floats = scratch;
  }

  std::int64_t op_scratch(const OpPlan& op) const {
    switch (op.kind) {
      case OpKind::Conv: {
        const std::int64_t p = op.geom.out_h() * op.geom.out_w();
        const std::int64_t ckk = op.geom.col_rows();
        const std::int64_t in_img =
            op.geom.in_c * op.geom.in_h * op.geom.in_w;
        // Sunk terms: the CSR path lowers each to its own composite
        // patch matrix in a dedicated region after the output; the dense
        // path instead materializes the raw 1x1 projection through the
        // cols slot (before the main im2col overwrites it).
        std::int64_t srows = 0, psub = 0;
        for (const TermPlan& t : op.terms) {
          if (!t.sunk) continue;
          srows = std::max(srows, t.geom.col_rows() * p);
          psub = std::max(psub, t.pgeom.col_rows() * t.pgeom.out_h() *
                                    t.pgeom.out_w());
        }
        const std::int64_t event = p * op.out_c;
        const std::int64_t dense =
            in_img + std::max(ckk * p, psub) + op.out_c * p;
        const std::int64_t csr =
            in_img + ckk * op.out_c + op.out_c * p + srows;
        if (int8()) {
          // Int8 dispatch is packed (int32 panel, same float count as
          // `event`) or dense: assembled + cols + quantized patch rows
          // (ckk*p int8 codes packed into float-sized slots) + the int32
          // panel converted in place.
          const std::int64_t dense_i8 = in_img + std::max(ckk * p, psub) +
                                        (ckk * p + 3) / 4 + op.out_c * p;
          return std::max({event, dense, csr, dense_i8});
        }
        return std::max({event, dense, csr});
      }
      case OpKind::DwConv: {
        const std::int64_t p = op.geom.out_h() * op.geom.out_w();
        const std::int64_t in_img =
            op.geom.in_c * op.geom.in_h * op.geom.in_w;
        if (int8()) {
          // Dense int8: assembled + its quantized image + int32 acc.
          return in_img + (in_img + 3) / 4 + op.geom.in_c * p;
        }
        return in_img + op.geom.in_c * p;
      }
      case OpKind::Linear: {
        const Shape& s =
            plan_.values[static_cast<std::size_t>(op.out)].shape;
        if (int8()) {
          const std::int64_t n = s[0];
          const std::int64_t in_f = op.terms.front().channels;
          return (n * in_f + 3) / 4 + s.numel();
        }
        return s.numel();
      }
      case OpKind::DscGather: {
        const auto& t = op.terms.front();
        const Shape& s =
            plan_.values[static_cast<std::size_t>(t.value)].shape;
        return t.channels * s[2] * s[3];
      }
      default:
        return 0;
    }
  }

  Network& net_;
  CompileOptions opts_;
  Plan plan_;
  std::int64_t state_floats_ = 0;
};

}  // namespace

Plan compile_plan(Network& net, const Shape& input_shape,
                  const CompileOptions& opts) {
  Compiler c(net, input_shape, opts);
  return c.run();
}

PlanPtr compile(Network& net, const Shape& input_shape,
                const CompileOptions& opts) {
  return std::make_shared<const Plan>(compile_plan(net, input_shape, opts));
}

}  // namespace snnskip::infer
