#include "infer/quant.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "infer/engine.h"
#include "util/crc32.h"

namespace snnskip::infer {

namespace {

bool is_weight_op(OpKind k) {
  return k == OpKind::Conv || k == OpKind::DwConv || k == OpKind::Linear;
}

/// Hexfloat: exact binary round-trip through strtof, locale-independent.
std::string format_amax(float v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  return buf;
}

}  // namespace

float QuantProfile::amax_for(const std::string& name, float fallback) const {
  for (const auto& [n, v] : op_amax) {
    if (n == name) return v;
  }
  return fallback;
}

QuantProfile calibrate_quant(
    const PlanPtr& fp32_plan,
    const std::vector<std::vector<Tensor>>& sequences) {
  if (fp32_plan->precision != Precision::Fp32) {
    throw std::invalid_argument(
        "infer::calibrate_quant: calibration sweeps run on the FP32 plan "
        "(the int8 plan is compiled FROM the resulting profile)");
  }
  // Force dense dispatch everywhere: packed off and a zero density
  // threshold mean every conv assembles its input (and rematerializes
  // sunk projections) each step — the exact tensors the int8 dense path
  // will quantize.
  ExecOptions o;
  o.packed = false;
  o.threshold = 0.f;
  Engine eng(fp32_plan, o);
  std::vector<float> amax(fp32_plan->ops.size(), 0.f);
  eng.set_calibration_sink(&amax);
  for (const auto& seq : sequences) {
    eng.reset();
    for (const Tensor& x : seq) (void)eng.step(x);
  }

  QuantProfile p;
  p.model = fp32_plan->model_name;
  for (std::size_t i = 0; i < fp32_plan->ops.size(); ++i) {
    const OpPlan& op = fp32_plan->ops[i];
    if (!is_weight_op(op.kind)) continue;
    bool merged = false;
    for (auto& [n, v] : p.op_amax) {
      if (n == op.name) {
        v = std::max(v, amax[i]);
        merged = true;
        break;
      }
    }
    if (!merged) p.op_amax.emplace_back(op.name, amax[i]);
  }
  return p;
}

std::string serialize_quant_profile(const QuantProfile& p) {
  std::string body = "snnskip-quant-profile-v1\n";
  body += "model " + p.model + "\n";
  for (const auto& [name, v] : p.op_amax) {
    body += "op " + format_amax(v) + " " + name + "\n";
  }
  const std::uint32_t crc = crc32(body.data(), body.size());
  return body + "crc32 " + std::to_string(crc) + "\n";
}

bool parse_quant_profile(const std::string& text, QuantProfile* out,
                         std::string* err) {
  auto bad = [err](const std::string& what) {
    if (err != nullptr) *err = "quant profile: " + what;
    return false;
  };

  // The seal covers everything before the final "crc32 <n>" line.
  const std::size_t crc_pos = text.rfind("crc32 ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return bad("missing crc32 line");
  }
  const std::string crc_line = text.substr(crc_pos);
  char* end = nullptr;
  const unsigned long long stored =
      std::strtoull(crc_line.c_str() + 6, &end, 10);
  if (end == crc_line.c_str() + 6 ||
      (end != nullptr && *end != '\n' && *end != '\0')) {
    return bad("malformed crc32 line");
  }
  const std::string body = text.substr(0, crc_pos);
  if (crc32(body.data(), body.size()) !=
      static_cast<std::uint32_t>(stored)) {
    return bad("checksum mismatch (corrupt or hand-edited profile)");
  }

  QuantProfile p;
  bool saw_magic = false, saw_model = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t nl = body.find('\n', pos);
    if (nl == std::string::npos) nl = body.size();
    const std::string line = body.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != "snnskip-quant-profile-v1") return bad("bad magic line");
      saw_magic = true;
    } else if (line.rfind("model ", 0) == 0) {
      p.model = line.substr(6);
      saw_model = true;
    } else if (line.rfind("op ", 0) == 0) {
      const std::size_t sp = line.find(' ', 3);
      if (sp == std::string::npos) return bad("malformed op line");
      char* vend = nullptr;
      const std::string vtxt = line.substr(3, sp - 3);
      const float v = std::strtof(vtxt.c_str(), &vend);
      if (vend == vtxt.c_str() || *vend != '\0') {
        return bad("malformed op amax value");
      }
      const std::string name = line.substr(sp + 1);
      if (name.empty()) return bad("op line missing name");
      p.op_amax.emplace_back(name, v);
    } else {
      return bad("unknown line '" + line + "'");
    }
  }
  if (!saw_magic) return bad("empty profile");
  if (!saw_model) return bad("missing model line");
  *out = std::move(p);
  return true;
}

}  // namespace snnskip::infer
