#pragma once
// Network -> Plan compiler for the inference engine (ISSUE 6).
//
// compile() freezes a Network (stages + per-block adjacency wiring) into a
// flat infer::Plan at a FIXED input shape. Three passes, all ahead of
// execution:
//
//   1. BN folding — each BatchNormTT's eval-mode scale/shift is folded
//      into the preceding conv/linear weights and bias. BNTT has
//      per-timestep parameters, so folding produces one weight copy per
//      timestep (engine steps past t_max reuse the last copy, mirroring
//      BNTT's wrap). `fold_bn = false` keeps a single weight copy and
//      applies scale/shift in the epilogue instead — numerically
//      identical to the training graph's eval BN (same expressions), at
//      the cost of one extra multiply per output element; the folded mode
//      distributes the scale into the weights, which reassociates the
//      products and bounds the membrane difference by ~1e-6 relative
//      (documented in DESIGN.md §5g, asserted at 1e-5 in infer_test).
//   2. LIF/PLIF fusion — threshold-compare, soft reset, and refractory
//      gating become the op's epilogue, executed in the same pass that
//      writes the output's packed mask and dense mirror.
//   3. Buffer planning — shape inference sizes every intermediate value;
//      liveness intervals drive a first-fit interval allocation over one
//      float arena and one packed-word arena (Workspace-style high-water
//      accounting, but computed statically), and per-op scratch needs are
//      folded into a single shared scratch high-water. execute() then
//      performs zero heap allocations.
//
// Recurrent (one-step-delayed) adjacency edges are a training-graph
// extension; compile() rejects them with an explanatory error.

#include "graph/network.h"
#include "infer/plan.h"

namespace snnskip::infer {

struct QuantProfile;  // infer/quant.h — calibrated activation ranges

struct CompileOptions {
  /// Fold BN into weights (one copy per BNTT timestep). false: single
  /// weight copy, scale/shift applied in the epilogue (bit-identical to
  /// the training eval forward; used by the equivalence tests).
  bool fold_bn = true;
  /// Weight format (ISSUE 10). Int8 quantizes the RAW weights once
  /// (per-output-channel symmetric) and moves the BNTT fold into the
  /// epilogue's per-timestep dequant scale — one int8 copy instead of T
  /// fp32 copies. Requires fold_bn (the int8 plan relies on ASC-sinking
  /// for its packed path; the no-fold bitwise mode is fp32-only).
  Precision precision = Precision::Fp32;
  /// Optional calibrated activation ranges for int8 plans. Ops whose
  /// inputs are all binary spikes quantize exactly (step 1.0) and ignore
  /// this; analog-input ops (post-GAP linear, DSC-pooled convs, sunk
  /// rematerializations) use the profiled absmax, falling back to a
  /// conservative amax of 1.0 when null.
  const QuantProfile* quant = nullptr;
};

/// Freeze `net` at `input_shape` (N, C, H, W). Throws std::invalid_argument
/// on unsupported stages or recurrent adjacency edges.
Plan compile_plan(Network& net, const Shape& input_shape,
                  const CompileOptions& opts = {});

/// Shared-ownership convenience wrapper (multiple Engines, one Plan).
PlanPtr compile(Network& net, const Shape& input_shape,
                const CompileOptions& opts = {});

}  // namespace snnskip::infer
