#pragma once
// Interpreter for frozen execution plans (ISSUE 6).
//
// Engine executes an infer::Plan one timestep at a time. All buffers —
// the dense-mirror float arena, the packed-word arena, persistent neuron
// state, and a shared per-op scratch block — are allocated once in the
// constructor from the plan's precomputed high-water sizes, so step()
// performs zero heap allocations on the default (packed) path
// (tests/infer_test.cpp pins this with Workspace heap-alloc counters).
//
// Per conv/depthwise op, dispatch picks one of three modes each step from
// the measured input density (exact, via the packed masks' popcounts):
//
//   Packed  bit-packed event kernels (tensor/spike_packed.h). Requires
//           every input term to carry a valid packed mask, the packed
//           path to be enabled, and density < threshold. Skip joins run
//           directly on the source masks — ADD joins accumulate each
//           term into the same output panel (conv is linear), concat
//           joins select weight rows through the term's chrow map — so
//           no assembled input is ever materialized.
//   CSR     the training graph's event kernels (spike_conv2d_forward et
//           al.) on a per-image assembled input. Taken when the packed
//           path is disabled (SNNSKIP_INFER_PACKED=0) but the density
//           gate still passes — this is the apples-to-apples baseline
//           the packed path is benchmarked against.
//   Dense   assembled input + im2col + GEMM, for dense inputs (analog
//           values, projection outputs) or high firing rates.
//
// Every mode feeds the same fused epilogue: BN scale/shift (folded into
// the weights, or applied here in no-fold mode), bias, and the LIF/PLIF
// threshold-compare / soft-reset / refractory update, which writes the
// output's dense mirror, its packed mask, and the exact spike popcount in
// one pass.
//
// Runtime configuration (ISSUE 7): dispatch switches are PER ENGINE.
// Each Engine snapshots an ExecOptions at construction and never consults
// process-global state afterwards, so concurrent engines with different
// options (multi-tenant serving: one model latency-tuned packed, another
// forced to the CSR baseline) cannot perturb each other. The environment
// only seeds the process-wide *defaults*, read once through
// util/runtime_env:
//   SNNSKIP_INFER_PACKED=0          default packed off (CSR baseline)
//   SNNSKIP_INFER_THRESHOLD=<frac>  default density cutoff for the event
//                                   paths (0.25, valid range [0, 1])

#include <cstdint>
#include <string>
#include <vector>

#include "infer/plan.h"
#include "metrics/energy.h"
#include "tensor/spike_csr.h"
#include "tensor/tensor.h"

namespace snnskip::infer {

/// Per-engine dispatch configuration. `ExecOptions{}` gives the compiled-in
/// defaults; `ExecOptions::defaults()` gives the process-wide defaults
/// (environment-seeded once, adjustable via the deprecated InferExec
/// shims), which is what `Engine(plan)` uses.
struct ExecOptions {
  /// Bit-packed event kernels when density permits (false: CSR baseline).
  bool packed = true;
  /// Input density below which an event path is taken, in [0, 1].
  float threshold = 0.25f;

  static ExecOptions defaults();
};

/// DEPRECATED process-global switches, kept as shims for existing callers:
/// the setters adjust the process-wide *defaults* consumed by engines
/// constructed afterwards — they no longer affect live engines. New code
/// should pass ExecOptions to the Engine constructor instead.
class InferExec {
 public:
  static bool packed_enabled();
  static float threshold();
  static void set_packed_enabled(bool on);
  static void set_threshold(float t);
};

/// Per-engine execution statistics (reset with Engine::reset_stats).
struct ExecStats {
  std::int64_t steps = 0;
  std::int64_t packed_dispatches = 0;  ///< ops run on the packed kernels
  std::int64_t csr_dispatches = 0;     ///< ops run on the CSR fallback
  std::int64_t dense_dispatches = 0;   ///< ops run dense (GEMM / loops)
  std::int64_t spikes = 0;   ///< exact spike count (packed popcounts)
  std::int64_t synops = 0;   ///< accumulates on event paths (exact for
                             ///< packed; density * MACs estimate for CSR)
  std::int64_t dense_macs = 0;  ///< MACs charged to dense-dispatched ops

  /// Energy proxy: ac_pj per event-path accumulate, mac_pj per dense MAC
  /// (same 45 nm constants as metrics/energy.h).
  double energy_pj(const EnergyModel& m = {}) const {
    return m.ac_pj * static_cast<double>(synops) +
           m.mac_pj * static_cast<double>(dense_macs);
  }
};

class Engine {
 public:
  /// Preallocates every arena from the plan's high-water sizes and
  /// snapshots `opts` — later changes to the process-wide defaults never
  /// reach a constructed engine.
  Engine(PlanPtr plan, const ExecOptions& opts);
  /// Convenience: construct with the process-wide default options.
  explicit Engine(PlanPtr plan);

  const Plan& plan() const { return *plan_; }
  const ExecOptions& options() const { return opts_; }

  /// Zero all persistent neuron state and rewind the timestep counter
  /// (sequence boundary — the analogue of Network::reset_state()).
  void reset();

  /// Run one timestep. `x` must match the plan's frozen input shape;
  /// `out` is resized only if its shape mismatches the plan's output
  /// shape, so a correctly-sized tensor makes this call allocation-free
  /// on the packed path.
  void step(const Tensor& x, Tensor* out);

  /// Convenience wrapper that allocates the output tensor.
  Tensor step(const Tensor& x);

  const ExecStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ExecStats{}; }

  /// Calibration sink (infer/quant.h): when set on an FP32 engine,
  /// records each weight op's per-input absmax into `amax` (one slot per
  /// plan op, max-merged across images/steps) every time the op runs a
  /// dense dispatch — which is every step when the engine is built with
  /// {packed = false, threshold = 0}. The vector must outlive the engine
  /// or be cleared with nullptr; it must be sized to plan().ops.size().
  void set_calibration_sink(std::vector<float>* amax) { calib_ = amax; }

 private:
  float* dense(int v);
  std::uint64_t* words(int v);
  const ValuePlan& val(int v) const {
    return plan_->values[static_cast<std::size_t>(v)];
  }

  void write_input(const Tensor& x);
  void exec_op(const OpPlan& op);
  void exec_conv(const OpPlan& op);
  void exec_dwconv(const OpPlan& op);
  void exec_linear(const OpPlan& op);
  // Int8-plan twins (ISSUE 10): packed int8 event kernels (int32 panel)
  // or dense int8 GEMM (quantize assembled input, int8xint8->int32,
  // dequant in the epilogue). There is no CSR mode for int8 plans.
  void exec_conv_i8(const OpPlan& op);
  void exec_dwconv_i8(const OpPlan& op);
  void exec_linear_i8(const OpPlan& op);
  void exec_dsc_gather(const OpPlan& op);
  void exec_avgpool(const OpPlan& op);
  void exec_gap(const OpPlan& op);
  void exec_neuron(const OpPlan& op);
  void exec_copy(const OpPlan& op);

  /// Dense-assemble one image's op input (main copy, ADD-join axpys,
  /// concat gathers — the training graph's assemble_input, bitwise).
  /// Sunk projection terms are excluded (own geometry; see below).
  void assemble_image(const OpPlan& op, std::int64_t img, float* dst);

  /// Accumulate every sunk projection term (composite conv over its own
  /// source) into the dense (O, P) accumulator `outr`, lowering each via
  /// a patch matrix built in `rows`. CSR dispatch only: the packed mode
  /// accumulates sunk events into the panel directly, and the dense mode
  /// re-materializes the raw 1x1 projection into the assembled input
  /// instead (the composite kernel's zero rows are free for event
  /// kernels but real GEMM work).
  void add_sunk_terms(const OpPlan& op, std::int64_t img, std::size_t wi,
                      float* rows, float* outr);

  /// Fused epilogue: scale/bias (+LIF or ReLU) over the accumulator of
  /// one image, writing the output's dense mirror, packed mask bits, and
  /// popcount. `so`/`sp` are the accumulator's channel/spatial strides
  /// (packed panels are (P, O): so=1, sp=O; dense outputs are (O, P):
  /// so=P, sp=1). `ascale` is the int8 dense path's input quantization
  /// step, folded into the per-channel scale (eff[o] = ascale * sc[o]);
  /// 1.0 everywhere else (exact — multiplying a float by 1.0 is the
  /// identity, so fp32 plans are untouched).
  void epilogue(const OpPlan& op, std::int64_t img, const float* acc,
                std::int64_t so, std::int64_t sp, float ascale = 1.f);

  /// Calibration: max-merge |x| over `n` floats into the current op's
  /// sink slot (no-op without a sink).
  void record_amax(const float* x, std::int64_t n);

  PlanPtr plan_;
  ExecOptions opts_;                   // snapshot; engine-local dispatch
  // Telemetry counter keys, prefixed with the plan's model name so
  // concurrent engines serving different models never bleed into one
  // aggregate (the unprefixed infer.* keys keep the process-wide totals).
  std::string ctr_steps_, ctr_spikes_, ctr_synops_;
  std::string ctr_packed_, ctr_csr_, ctr_dense_;
  std::vector<float> farena_;          // shared value dense mirrors
  std::vector<std::uint64_t> warena_;  // shared packed masks
  std::vector<float> sarena_;          // persistent neuron state
  std::vector<float> scratch_;         // per-op scratch high-water block
  std::vector<std::int64_t> popcnt_;   // per value: exact nonzero count
  std::vector<char> pvalid_;           // per value: packed mask is valid
  SpikeCsr csr_;                       // CSR fallback (capacity reused)
  std::int64_t t_ = 0;                 // timestep (BNTT copy selection)
  ExecStats stats_;
  std::vector<float>* calib_ = nullptr;  // per-op input absmax sink
  std::size_t cur_op_ = 0;               // op index for the sink slot

};

}  // namespace snnskip::infer
