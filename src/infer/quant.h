#pragma once
// Int8 calibration: activation-range profiles + the calibration pass
// (ISSUE 10).
//
// The int8 plan quantizes each weight op's ASSEMBLED input with one
// scalar step. Ops fed purely by binary spikes need no calibration (the
// step is exactly 1.0); the handful of analog-input ops (the post-GAP
// head linear, convs consuming DSC-pooled averages, ops whose ASC
// projection is rematerialized on dense dispatch) need the input's
// dynamic range. calibrate_quant() measures it: it runs the FP32 plan
// over a sample batch with dense dispatch forced (packed off, threshold
// 0) so every op's assembled input — including sunk-projection
// materializations — is actually formed and observable, and records the
// per-op absmax via the engine's calibration sink.
//
// Profiles serialize to a CRC-sealed text format (same discipline as
// tensor/kernel_config.h's tuning profiles): a canonical body plus a
// trailing crc32 line; parse recomputes the CRC and rejects corrupt or
// hand-edited files. Float values are hexfloat so round-trips are exact.

#include <string>
#include <utility>
#include <vector>

#include "infer/plan.h"
#include "tensor/tensor.h"

namespace snnskip::infer {

/// Calibrated per-op input ranges. Entries cover the plan's weight ops
/// (Conv / DwConv / Linear) in op order, keyed by the op's layer name
/// (names repeat across models but are unique within one plan; repeated
/// names within a plan merge by max).
struct QuantProfile {
  std::string model;  ///< plan model_name the sweep ran on (informational)
  std::vector<std::pair<std::string, float>> op_amax;

  /// Absmax for `name`, or `fallback` when the op was not profiled.
  float amax_for(const std::string& name, float fallback) const;
};

/// Run `fp32_plan` (precision must be Fp32; throws otherwise) over the
/// calibration `sequences` — each a [T] list of input tensors at the
/// plan's frozen shape, engine reset between sequences — and return the
/// per-op input absmax profile. Deterministic: same plan + same
/// sequences gives an identical profile on every SIMD level (the fp32
/// dense path is bit-stable across levels by the simd_ops contract).
QuantProfile calibrate_quant(const PlanPtr& fp32_plan,
                             const std::vector<std::vector<Tensor>>& sequences);

/// CRC-sealed canonical text form (ends with a "crc32 <n>" line).
std::string serialize_quant_profile(const QuantProfile& p);

/// Parse + CRC-verify. Returns false (with a reason in *err) on format
/// or checksum mismatch; *out is untouched on failure.
bool parse_quant_profile(const std::string& text, QuantProfile* out,
                         std::string* err);

}  // namespace snnskip::infer
