#pragma once
// Frozen execution plan for compiled inference (ISSUE 6).
//
// compile() (infer/compile.h) walks a trained Network once and lowers it
// into this flat program: a value table (every intermediate tensor, with
// its liveness interval and preassigned arena offset) and an op list
// (every layer, with BatchNormTT already folded and the LIF/PLIF update
// fused into the op's epilogue). The split mirrors hannk's
// graph-construction / execute() separation: all shape inference, weight
// re-layout, and buffer planning happens here, so the Engine's per-step
// loop is a dumb interpreter that never allocates.
//
// Value representation at runtime: every value owns a slice of one shared
// float arena (the dense mirror); spiking values additionally own a slice
// of a word arena holding the bit-packed spike mask (64 spikes/word, NCHW
// flat order — tensor/spike_packed.h). Skip joins never materialize an
// assembled input on the event path: each source is a TermPlan of the
// consuming op, and conv linearity (conv(a + b) == conv(a) + conv(b))
// turns an ADD join into "accumulate both terms' events into one panel"
// and a concat join into a chrow-mapped weight-row selection.
//
// Liveness intervals [def, last_use] drive a first-fit interval
// allocation over both arenas; overlapping lifetimes get disjoint slices
// (asserted by tests/infer_test.cpp's aliasing check). Persistent neuron
// state (membranes, refractory counters) lives in a separate state arena
// that is never reused within a step and is zeroed at sequence
// boundaries.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/im2col.h"
#include "tensor/shape.h"

namespace snnskip::infer {

/// Weight numeric format of a compiled plan (ISSUE 10). Int8 stores ONE
/// per-output-channel symmetric int8 weight copy per op and absorbs the
/// per-timestep BNTT fold into the epilogue's requantization scale
/// (scale_t[o] = S[o] * bn_scale_t[o]) — versus one fp32 copy per
/// timestep in folded fp32 mode, the ~4x-per-copy x T-copies memory win
/// that motivated the format (DESIGN.md §5k).
enum class Precision : std::uint8_t { Fp32, Int8 };

inline const char* precision_name(Precision p) {
  return p == Precision::Int8 ? "int8" : "fp32";
}

inline bool parse_precision(const std::string& s, Precision* out) {
  if (s == "fp32") { *out = Precision::Fp32; return true; }
  if (s == "int8") { *out = Precision::Int8; return true; }
  return false;
}

enum class OpKind : std::uint8_t {
  Conv,       ///< conv2d over 1+ terms (main / ADD-skip / concat-skip)
  DwConv,     ///< depthwise conv over 1+ ADD terms
  Linear,     ///< fully connected on the dense mirror
  DscGather,  ///< gather a DSC channel subset (+ ceil-mode avgpool)
  AvgPool,
  GlobalAvgPool,
  Neuron,     ///< standalone LIF/PLIF on a dense value
  Relu,       ///< standalone ReLU (analog twins)
  Copy,       ///< identity / reshape
};

/// Fused epilogue applied to the op's accumulator in the same pass that
/// writes the output value (BN scale/shift folded in either way).
enum class Epi : std::uint8_t { None, Lif, Relu };

/// One input source of a Conv/DwConv op.
struct TermPlan {
  int value = -1;  ///< producing value id
  /// Source-channel -> consumer-input-channel map for the packed kernels;
  /// empty means identity (source channels == rows [0, channels)).
  std::vector<std::int32_t> chrow;
  /// Consumer input channels [offset, offset + channels) this term feeds
  /// (dense assembly destination; ADD terms share offset 0).
  std::int64_t offset = 0;
  std::int64_t channels = 0;
  /// DSC only: source channels gathered during dense assembly (chrow's
  /// inverse, kept so assembly is a straight gather loop).
  std::vector<std::int64_t> gather;
  /// True when the term adds onto channels also fed by another term (ADD
  /// join) rather than owning its channel range (concat join / main path).
  bool add_join = false;
  /// Producer emits a packed spike mask (event path eligible).
  bool spiking = false;

  // ASC-projection sinking (fold mode). conv(proj(s)) with a 1x1 no-bias
  // projection is itself a convolution over the original SPIKING source
  // s, so the compiler composes the projection into the consumer's
  // main-segment weights: taps land on a grid dilated by the projection
  // stride, emulated as an enlarged (k-1)*s+1 kernel whose off-grid rows
  // are zero (the event kernels have no dilation support; zero rows only
  // cost event-proportional accumulates). Without sinking the
  // projection's analog output would force the consumer dense every
  // step — the single biggest cost on ResNet-shaped stacks at low
  // density. A sunk term carries its own geometry and per-timestep
  // weight copies; `value` is the projection's input.
  bool sunk = false;
  ConvGeometry geom{};                 ///< composite geometry over source
  std::vector<std::vector<float>> wt;  ///< per-t ((c,ky,kx), o) panels
  std::vector<std::vector<float>> wd;  ///< per-t (o, ckk) rows (CSR path)
  std::int64_t macs = 0;  ///< true-tap dense-equivalent MACs (accounting)
  // Dense-dispatch route: the composite kernel's zero rows are free on
  // the event path but real GEMM work when dense, so at dense dispatch
  // the engine instead materializes the projection into the assembled
  // input with the RAW 1x1 weights — exactly the training graph's
  // compute (one GEMM over the summed input).
  std::vector<float> pw;   ///< raw (proj_c, src_c) 1x1 projection weights
  ConvGeometry pgeom{};    ///< 1x1 stride-s1 geometry over the source
  std::int64_t proj_c = 0; ///< projection output channels (== main in_c)

  /// Int8 plans: the composite kernel quantized with the CONSUMER's
  /// per-output-channel scales (shared S[o] over own + sunk rows, so one
  /// int32 panel dequantizes uniformly), transposed ((c,ky,kx), o) for
  /// the packed event kernel. `wt`/`wd` stay empty — the int8 engine has
  /// no CSR mode, and dense dispatch re-materializes the raw fp32 1x1
  /// projection (`pw`) exactly like the fp32 engine.
  std::vector<std::int8_t> wq8;
};

struct ValuePlan {
  Shape shape;
  std::int64_t floats = 0;      ///< dense numel (whole batch)
  std::int64_t words = 0;       ///< packed words (0: dense-only value)
  std::int64_t dense_off = -1;  ///< float-arena offset
  std::int64_t packed_off = -1; ///< word-arena offset
  int def = -1;                 ///< producing op index (-1: network input)
  int last_use = -1;            ///< last consuming op index
  bool spiking = false;         ///< carries a packed mask
};

struct OpPlan {
  OpKind kind = OpKind::Copy;
  Epi epi = Epi::None;
  std::string name;  ///< layer name (telemetry span label)
  int out = -1;      ///< output value id
  std::vector<TermPlan> terms;

  // Geometry. For Conv/DwConv, `geom.in_c` is the op's TOTAL input
  // channels (main + active concat segments). For pools, kernel/stride/
  // ceil_mode below apply.
  ConvGeometry geom{};
  std::int64_t out_c = 0;
  std::int64_t pool_kernel = 0, pool_stride = 0;
  bool pool_ceil = false;

  // Weights. `wt[i]` is the transposed ((c,ky,kx), o) panel the event
  // kernels consume; DwConv stores its (C, K, K) bank here unchanged;
  // Linear stores (O, I) row-major. With BN folding there is one copy per
  // BNTT timestep (weights differ per t); without, a single copy plus
  // per-timestep epilogue scale. For convs `wd` additionally keeps the
  // (O, C*K*K) row-major layout (folded per-timestep, or the single raw
  // copy in no-fold mode) so the dense and CSR dispatches run the exact
  // GEMM / event kernel the training graph runs.
  std::vector<std::vector<float>> wt;
  std::vector<std::vector<float>> wd;
  std::vector<std::vector<float>> bias;   ///< folded bias/shift per copy
  std::vector<std::vector<float>> scale;  ///< no-fold mode: BN scale per t

  // Int8 plans (Plan::precision == Precision::Int8): ONE quantized weight
  // copy (per-output-channel symmetric, S[o] = row absmax / 127, shared
  // with every sunk term's composite rows). `wq8t` is the transposed
  // ((c,ky,kx), o) panel for the packed event kernel (DwConv: the
  // (C, K, K) bank); `wq8d` keeps the (O, CKK) rows for the dense int8
  // GEMM (Linear: the (O, I) rows). `scale` then holds the DEQUANT
  // scales per timestep (S[o] * bn_scale_t[o]) and `bias` the per-t
  // shifts — the same epilogue mechanism as fp32 no-fold mode, which is
  // what keeps one int8 copy sufficient across all BNTT timesteps.
  std::vector<std::int8_t> wq8t;
  std::vector<std::int8_t> wq8d;
  /// Int8 dense dispatch: the input quantization STEP (dequant
  /// multiplier `a`; codes are clamp(floor(x / a + 0.5))). Exactly 1.0
  /// when every input term is binary spikes and none is sunk — assembled
  /// values are then small integers and quantization is exact, making
  /// dense and packed int8 dispatch bitwise-equal. Otherwise calibrated
  /// from a QuantProfile (amax / 127; default amax 1.0).
  float in_scale = 1.f;

  // Fused neuron parameters (epi == Lif).
  float beta = 0.9f;
  float theta = 1.f;
  std::int64_t refractory = 0;
  std::int64_t state_off = -1;   ///< membrane offset in the state arena
  std::int64_t refrac_off = -1;  ///< refractory counters (refractory > 0)

  std::int64_t macs = 0;  ///< dense MACs per step (energy accounting)

  /// Weight/bias copy for engine timestep `t` (BNTT wrap semantics).
  std::int64_t copy_index(std::int64_t t) const {
    const auto n = static_cast<std::int64_t>(bias.size());
    return n <= 1 ? 0 : (t < n ? t : n - 1);
  }
};

struct Plan {
  std::string model_name;  ///< telemetry label
  Shape input_shape;       ///< (N, C, H, W) frozen at compile time
  Shape output_shape;
  int input_value = 0;
  int output_value = -1;
  bool bn_folded = true;
  Precision precision = Precision::Fp32;

  std::vector<ValuePlan> values;
  std::vector<OpPlan> ops;

  std::int64_t float_arena = 0;    ///< floats, shared/reused across values
  std::int64_t word_arena = 0;     ///< words, shared/reused across values
  std::int64_t state_arena = 0;    ///< floats, persistent neuron state
  std::int64_t scratch_floats = 0; ///< per-op scratch high-water

  /// Total bytes of weight payload (all copies, fp32 and int8, including
  /// sunk-term composites, biases, and scales) — the memory-footprint
  /// accounting behind the int8 acceptance gate (engine weight memory
  /// <= 0.30x of the fp32 plan on ResNet-18S).
  std::int64_t weight_bytes() const {
    std::int64_t b = 0;
    auto fv = [&b](const std::vector<std::vector<float>>& vv) {
      for (const auto& v : vv) b += static_cast<std::int64_t>(v.size()) * 4;
    };
    for (const OpPlan& op : ops) {
      fv(op.wt);
      fv(op.wd);
      fv(op.bias);
      fv(op.scale);
      b += static_cast<std::int64_t>(op.wq8t.size());
      b += static_cast<std::int64_t>(op.wq8d.size());
      for (const TermPlan& t : op.terms) {
        fv(t.wt);
        fv(t.wd);
        b += static_cast<std::int64_t>(t.pw.size()) * 4;
        b += static_cast<std::int64_t>(t.wq8.size());
      }
    }
    return b;
  }
};

using PlanPtr = std::shared_ptr<const Plan>;

}  // namespace snnskip::infer
