#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

#include "util/runtime_env.h"

namespace snnskip {

namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    const std::optional<std::string> v = env::raw("SNNSKIP_LOG_LEVEL");
    if (v.has_value()) return parse_log_level(*v);
    return LogLevel::Info;
  }();
  return level;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string t;
  t.reserve(s.size());
  for (char c : s) t.push_back(static_cast<char>(std::tolower(c)));
  if (t == "trace") return LogLevel::Trace;
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn" || t == "warning") return LogLevel::Warn;
  if (t == "error") return LogLevel::Error;
  return LogLevel::Info;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename so log lines are stable across build trees.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_name(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << stream_.str() << "\n";
}

}  // namespace detail

}  // namespace snnskip
