#pragma once
// CRC-32 (IEEE 802.3, the zlib polynomial) over raw bytes.
//
// Used by the v2 checkpoint format (train/checkpoint.h) to give every
// tensor payload an integrity checksum, so a flipped byte on disk is
// rejected at load time instead of silently corrupting a restore. The
// incremental form (pass the previous value as `seed`) lets callers
// checksum streamed writes without buffering.

#include <cstddef>
#include <cstdint>

namespace snnskip {

/// CRC-32 of `n` bytes at `data`; chain calls by passing the previous
/// result as `seed` (start from the default 0).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace snnskip
