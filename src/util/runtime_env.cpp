#include "util/runtime_env.h"

#include <cctype>
#include <cstdlib>

namespace snnskip::env {

std::optional<std::string> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

bool get_bool(const char* name, bool def) {
  const std::optional<std::string> v = raw(name);
  if (!v.has_value() || v->empty()) return def;
  std::string t;
  t.reserve(v->size());
  for (char c : *v) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "0" || t == "false" || t == "off" || t == "no") return false;
  return true;
}

std::string get_string(const char* name, const std::string& def) {
  return raw(name).value_or(def);
}

double get_double(const char* name, double def) {
  const std::optional<std::string> v = raw(name);
  if (!v.has_value()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str()) return def;
  return parsed;
}

double get_double(const char* name, double def, double lo, double hi) {
  const double v = get_double(name, def);
  if (v < lo || v > hi) return def;
  return v;
}

std::int64_t get_int(const char* name, std::int64_t def) {
  const std::optional<std::string> v = raw(name);
  if (!v.has_value()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str()) return def;
  return static_cast<std::int64_t>(parsed);
}

std::int64_t workers(std::int64_t def) {
  const std::int64_t v = get_int("SNNSKIP_WORKERS", 0);
  return v > 0 ? v : def;
}

}  // namespace snnskip::env
