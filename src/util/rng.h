#pragma once
// Deterministic, splittable random number generation.
//
// Every stochastic component in the library takes an explicit seed so that
// experiments, tests and benchmarks are reproducible. The generator is
// xoshiro256**, seeded through splitmix64 so that nearby integer seeds
// produce decorrelated streams. `Rng::split` derives an independent child
// stream, which is how per-thread / per-candidate randomness is handed out
// without sharing mutable state across tasks.

#include <cstdint>
#include <vector>

namespace snnskip {

/// Counter-based seed scrambler; also usable standalone for hashing ids.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with explicit-seed construction.
///
/// Satisfies the UniformRandomBitGenerator requirements, so it can be used
/// with <random> distributions, but the common draws (uniform, normal,
/// bernoulli, integer range) are provided as members to keep call sites
/// terse and to guarantee identical sequences across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// True with probability p.
  bool bernoulli(double p);
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Derive an independent child stream; deterministic in (parent state, i).
  Rng split(std::uint64_t i) const;

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace snnskip
