#include "util/cli.h"

#include <cstdlib>

#include "util/logging.h"

namespace snnskip {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "1";  // bare flag => boolean true
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int CliArgs::get_int(const std::string& name, int def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atoi(it->second.c_str());
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

std::uint64_t CliArgs::get_u64(const std::string& name,
                               std::uint64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def
                             : std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace snnskip
