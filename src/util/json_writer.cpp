#include "util/json_writer.h"

namespace snnskip {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonArrayWriter::JsonArrayWriter(const std::string& path)
    : f_(std::fopen(path.c_str(), "w")) {
  if (f_ != nullptr) std::fputs("[\n", f_);
}

JsonArrayWriter::~JsonArrayWriter() {
  if (f_ != nullptr) {
    std::fputs("\n]\n", f_);
    std::fclose(f_);
  }
}

void JsonArrayWriter::begin_row() {
  if (f_ == nullptr) return;
  if (!first_row_) std::fputs(",\n", f_);
  first_row_ = false;
  first_field_ = true;
  std::fputs("  {", f_);
}

void JsonArrayWriter::end_row() {
  if (f_ != nullptr) std::fputs("}", f_);
}

void JsonArrayWriter::field(const char* key, double v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": %.6g", key, v);
}

void JsonArrayWriter::field_fixed(const char* key, double v, int decimals) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": %.*f", key, decimals, v);
}

void JsonArrayWriter::field(const char* key, std::int64_t v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": %lld", key, static_cast<long long>(v));
}

void JsonArrayWriter::field(const char* key, const std::string& v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": \"%s\"", key, json_escape(v).c_str());
}

void JsonArrayWriter::field(const char* key, const char* v) {
  field(key, std::string(v));
}

void JsonArrayWriter::sep() {
  if (!first_field_) std::fputs(", ", f_);
  first_field_ = false;
}

JsonLinesWriter::JsonLinesWriter(const std::string& path)
    : f_(path.empty() ? nullptr : std::fopen(path.c_str(), "a")) {}

JsonLinesWriter::~JsonLinesWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonLinesWriter::begin_row() {
  if (f_ == nullptr) return;
  first_field_ = true;
  std::fputs("{", f_);
}

void JsonLinesWriter::end_row() {
  if (f_ == nullptr) return;
  std::fputs("}\n", f_);
  std::fflush(f_);
}

void JsonLinesWriter::field(const char* key, double v) {
  if (f_ == nullptr) return;
  sep();
  // %.17g round-trips doubles exactly; the journal must replay the very
  // objective values the GP saw, not 6-digit approximations.
  std::fprintf(f_, "\"%s\": %.17g", key, v);
}

void JsonLinesWriter::field(const char* key, std::int64_t v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": %lld", key, static_cast<long long>(v));
}

void JsonLinesWriter::field(const char* key, const std::string& v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": \"%s\"", key, json_escape(v).c_str());
}

void JsonLinesWriter::field(const char* key, const std::vector<int>& v) {
  if (f_ == nullptr) return;
  sep();
  std::fprintf(f_, "\"%s\": [", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::fprintf(f_, i == 0 ? "%d" : ", %d", v[i]);
  }
  std::fputs("]", f_);
}

void JsonLinesWriter::sep() {
  if (!first_field_) std::fputs(", ", f_);
  first_field_ = false;
}

}  // namespace snnskip
