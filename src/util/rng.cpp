#include "util/rng.h"

#include <cmath>

namespace snnskip {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly positive to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = 0;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

Rng Rng::split(std::uint64_t i) const {
  // Mix the parent's full state with the child index through splitmix64.
  std::uint64_t h = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 27) ^ rotl(s_[3], 41);
  h ^= 0x6a09e667f3bcc909ULL + i;
  std::uint64_t sm = h;
  return Rng(splitmix64(sm));
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  if (v.size() < 2) return;
  for (std::size_t i = v.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(i + 1));
    std::swap(v[i], v[j]);
  }
}

}  // namespace snnskip
