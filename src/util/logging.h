#pragma once
// Minimal leveled logger writing to stderr.
//
// The library is a research harness: logs must be greppable, deterministic
// in content (no timestamps by default so diffing runs is easy), and cheap
// when disabled. Usage:
//
//   SNNSKIP_LOG(Info) << "epoch " << e << " acc=" << acc;
//
// The global level defaults to Info and can be set programmatically or via
// the SNNSKIP_LOG_LEVEL environment variable (trace/debug/info/warn/error).

#include <sstream>
#include <string>

namespace snnskip {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);
/// Parse "trace".."error" (case-insensitive); returns Info on garbage.
LogLevel parse_log_level(const std::string& s);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace snnskip

#define SNNSKIP_LOG(severity)                                       \
  if (::snnskip::LogLevel::severity < ::snnskip::log_level()) {     \
  } else                                                            \
    ::snnskip::detail::LogMessage(::snnskip::LogLevel::severity,    \
                                  __FILE__, __LINE__)               \
        .stream()
