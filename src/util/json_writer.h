#pragma once
// Streaming writer for JSON arrays of flat objects.
//
// Promoted out of bench/bench_common.h so the benchmark artifacts
// (BENCH_*.json) and the telemetry Chrome-trace exporter share one JSON
// emission (and, crucially, one string-escaping) implementation. The
// format stays deliberately small: an array of objects whose values are
// numbers or strings — exactly what both consumers need. Usage:
//
//   JsonArrayWriter json("BENCH_foo.json");
//   json.begin_row();
//   json.field("channels", 128.0);
//   json.field("mode", "sparse");
//   json.end_row();
//   // destructor closes the array and the file

#include <cstdint>
#include <cstdio>
#include <string>

namespace snnskip {

/// Escape a string for embedding inside JSON double quotes (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

class JsonArrayWriter {
 public:
  explicit JsonArrayWriter(const std::string& path);
  ~JsonArrayWriter();
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  /// False when the output file could not be opened (all writes no-op).
  bool ok() const { return f_ != nullptr; }

  void begin_row();
  void end_row();

  /// Shortest-round-trip float formatting (%.6g) — benchmark metrics.
  void field(const char* key, double v);
  /// Fixed-point with `decimals` fraction digits — timestamps, where %.6g
  /// would truncate large microsecond values.
  void field_fixed(const char* key, double v, int decimals);
  void field(const char* key, std::int64_t v);
  void field(const char* key, const std::string& v);
  void field(const char* key, const char* v);

 private:
  void sep();

  std::FILE* f_ = nullptr;
  bool first_row_ = true;
  bool first_field_ = true;
};

}  // namespace snnskip
