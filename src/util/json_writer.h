#pragma once
// Streaming writer for JSON arrays of flat objects.
//
// Promoted out of bench/bench_common.h so the benchmark artifacts
// (BENCH_*.json) and the telemetry Chrome-trace exporter share one JSON
// emission (and, crucially, one string-escaping) implementation. The
// format stays deliberately small: an array of objects whose values are
// numbers or strings — exactly what both consumers need. Usage:
//
//   JsonArrayWriter json("BENCH_foo.json");
//   json.begin_row();
//   json.field("channels", 128.0);
//   json.field("mode", "sparse");
//   json.end_row();
//   // destructor closes the array and the file

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace snnskip {

/// Escape a string for embedding inside JSON double quotes (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

class JsonArrayWriter {
 public:
  explicit JsonArrayWriter(const std::string& path);
  ~JsonArrayWriter();
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  /// False when the output file could not be opened (all writes no-op).
  bool ok() const { return f_ != nullptr; }

  void begin_row();
  void end_row();

  /// Shortest-round-trip float formatting (%.6g) — benchmark metrics.
  void field(const char* key, double v);
  /// Fixed-point with `decimals` fraction digits — timestamps, where %.6g
  /// would truncate large microsecond values.
  void field_fixed(const char* key, double v, int decimals);
  void field(const char* key, std::int64_t v);
  void field(const char* key, const std::string& v);
  void field(const char* key, const char* v);

 private:
  void sep();

  std::FILE* f_ = nullptr;
  bool first_row_ = true;
  bool first_field_ = true;
};

/// Streaming writer for JSON Lines (one flat object per line). Opens in
/// append mode and flushes after every row, which is what an append-only
/// crash-safe journal needs: a restarted process continues the same file,
/// and a kill mid-write loses at most the final (partial, hence
/// unparsable and ignored) line. Shares json_escape with JsonArrayWriter.
class JsonLinesWriter {
 public:
  /// Empty path constructs a disabled writer (all calls no-op).
  explicit JsonLinesWriter(const std::string& path);
  ~JsonLinesWriter();
  JsonLinesWriter(const JsonLinesWriter&) = delete;
  JsonLinesWriter& operator=(const JsonLinesWriter&) = delete;

  /// False when disabled or the file could not be opened.
  bool ok() const { return f_ != nullptr; }

  void begin_row();
  /// Closes the object, writes the newline, and flushes to the OS.
  void end_row();

  void field(const char* key, double v);
  void field(const char* key, std::int64_t v);
  void field(const char* key, const std::string& v);
  /// Integer array value, e.g. "code": [0, 2, 1].
  void field(const char* key, const std::vector<int>& v);

 private:
  void sep();

  std::FILE* f_ = nullptr;
  bool first_field_ = true;
};

}  // namespace snnskip
