#include "util/csv.h"

#include <cassert>
#include <cstdio>

#include "util/logging.h"

namespace snnskip {

namespace {
std::string escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) {
    SNNSKIP_LOG(Warn) << "CsvWriter: cannot open " << path;
    return;
  }
  row(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<std::string>& fields) {
  assert(fields.size() == columns_);
  if (!out_) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::num(std::size_t v) { return std::to_string(v); }

}  // namespace snnskip
