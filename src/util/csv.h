#pragma once
// CSV emission for experiment results.
//
// Every bench binary writes both a human-readable table to stdout and a
// machine-readable CSV next to it, so figures can be regenerated from the
// CSV without re-running the experiment.

#include <fstream>
#include <string>
#include <vector>

namespace snnskip {

/// Streams rows to a CSV file. Quotes fields that need it (commas, quotes,
/// newlines); numbers are written with enough precision to round-trip.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// True if the file opened successfully.
  bool ok() const { return out_.good(); }

  /// Append one row; size must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with %.6g.
  static std::string num(double v);
  static std::string num(std::size_t v);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace snnskip
