#include "util/crc32.h"

namespace snnskip {

namespace {

struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table& table() {
  static const Crc32Table t;
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Crc32Table& tab = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = tab.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace snnskip
