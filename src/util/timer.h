#pragma once
// Wall-clock timing helpers for experiment reporting.

#include <chrono>
#include <string>

namespace snnskip {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// "1.23 s" / "45.6 ms" style formatting for reports.
std::string format_duration(double seconds);

}  // namespace snnskip
