#pragma once
// Single entry point for SNNSKIP_* environment variables.
//
// Runtime toggles used to be scattered getenv calls (logging, sparse
// dispatch, ...), each with its own ad-hoc parsing. All reads now go
// through these typed getters so the set of recognized variables lives in
// one place (documented in README "Runtime environment variables") and
// tests can rely on uniform parsing:
//
//   bools   "0" / "false" / "off" / "no" (case-insensitive) -> false,
//           any other non-empty value -> true
//   numbers strtod/strtoll; unparsable or out-of-range -> default
//
// This header is the ONLY place allowed to call std::getenv (enforced by
// the telemetry PR's acceptance check: no getenv outside runtime_env.cpp).

#include <cstdint>
#include <optional>
#include <string>

namespace snnskip::env {

/// Raw variable lookup; nullopt when unset.
std::optional<std::string> raw(const char* name);

bool get_bool(const char* name, bool def);
std::string get_string(const char* name, const std::string& def);

/// Numeric getters fall back to `def` on unset or unparsable values; when
/// [lo, hi] is given, out-of-range values also fall back (never clamp —
/// a typo'd threshold should not silently become a different policy).
double get_double(const char* name, double def);
double get_double(const char* name, double def, double lo, double hi);
std::int64_t get_int(const char* name, std::int64_t def);

/// SNNSKIP_WORKERS: data-parallel worker count for the training engine and
/// the parallel candidate evaluator. Unset / 0 / negative falls back to
/// `def` (callers pass 1 for "serial unless asked"). The worker count only
/// changes how many shard/candidate tasks run concurrently — never the
/// numeric result (DESIGN.md §5f).
std::int64_t workers(std::int64_t def);

}  // namespace snnskip::env
