#pragma once
// Tiny command-line flag parser for bench/example binaries.
//
// Supports `--name value` and `--name=value`; unknown flags are reported
// and ignored so that harness-level flags (e.g. benchmark filters) pass
// through harmlessly. Experiment binaries use this for `--scale`,
// `--epochs`, `--seeds` overrides documented in DESIGN.md §7.

#include <cstdint>
#include <map>
#include <string>

namespace snnskip {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace snnskip
