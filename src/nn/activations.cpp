#include "nn/activations.h"

namespace snnskip {

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor out = x;
  Tensor mask(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (x[static_cast<std::size_t>(i)] > 0.f) {
      mask[static_cast<std::size_t>(i)] = 1.f;
    } else {
      out[static_cast<std::size_t>(i)] = 0.f;
    }
  }
  if (train) saved_masks_.push_back(std::move(mask));
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  assert(!saved_masks_.empty());
  Tensor mask = std::move(saved_masks_.back());
  saved_masks_.pop_back();
  Tensor grad_in = grad_out;
  grad_in.hadamard_(mask);
  return grad_in;
}

Tensor Identity::forward(const Tensor& x, bool train) {
  (void)train;
  return x;
}

Tensor Identity::backward(const Tensor& grad_out) { return grad_out; }

}  // namespace snnskip
