#pragma once
// Non-spiking activations for the ANN twin networks, plus Identity.

#include "nn/layer.h"

namespace snnskip {

class ReLU final : public Layer {
 public:
  ReLU() = default;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_masks_.clear(); }
  std::string name() const override { return "relu"; }
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  std::vector<Tensor> saved_masks_;  // 1 where x > 0
};

/// Pass-through, used where a node has no nonlinearity (e.g. MobileNetV2's
/// linear bottleneck projection).
class Identity final : public Layer {
 public:
  Identity() = default;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "identity"; }
  Shape output_shape(const Shape& in) const override { return in; }
};

}  // namespace snnskip
