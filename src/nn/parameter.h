#pragma once
// Trainable parameter: value + gradient accumulator.

#include <string>

#include "tensor/tensor.h"

namespace snnskip {

struct Parameter {
  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::string name;
  Tensor value;
  Tensor grad;

  void zero_grad() { grad.fill(0.f); }
  std::int64_t numel() const { return value.numel(); }
};

}  // namespace snnskip
