#pragma once
// Depthwise 2-D convolution (groups == channels), the middle operation of
// MobileNetV2's inverted-residual block. Implemented with direct loops —
// the per-channel kernels are tiny, so im2col overhead isn't worth it.
// Sparse spike inputs below the SparseExec density threshold take an
// event-driven scatter path (K*K taps per active spike).
//
// Weight layout: (channels, 1, kernel, kernel).

#include "nn/layer.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad, bool bias, Rng& rng,
                  std::string layer_name = "dwconv2d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  Parameter& weight() { return weight_; }

 private:
  std::int64_t c_, kernel_, stride_, pad_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Tensor> saved_inputs_;
  SpikeCsr csr_;  // event-list scratch, capacity reused across timesteps
};

}  // namespace snnskip
