#pragma once
// Depthwise 2-D convolution (groups == channels), the middle operation of
// MobileNetV2's inverted-residual block. Implemented with direct loops —
// the per-channel kernels are tiny, so im2col overhead isn't worth it.
// Sparse spike inputs below the SparseExec density threshold take an
// event-driven scatter path (K*K taps per active spike). Sparse forward
// contexts keep the SpikeCsr instead of the dense input (ISSUE 4): dW is
// driven by the packed events, while dX and the bias gradient come from a
// grad_out-driven loop identical to the dense one — the dense backward
// already skips zero output gradients, so it needs no separate dispatch.
//
// Weight layout: (channels, 1, kernel, kernel).

#include "nn/layer.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class DepthwiseConv2d final : public Layer {
 public:
  DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                  std::int64_t stride, std::int64_t pad, bool bias, Rng& rng,
                  std::string layer_name = "dwconv2d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }
  std::int64_t channels() const { return c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  void save_ctx(const Tensor& x, bool sparse);

  struct Ctx {
    Tensor input;        // dense fallback; empty when `sparse`
    SpikeCsr input_csr;  // forward event packing when `sparse`
    Shape in_shape;
    bool sparse = false;
    std::int64_t bytes = 0;  // retained-activation accounting
  };

  std::int64_t c_, kernel_, stride_, pad_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Ctx> saved_;
  SpikeCsr csr_;  // forward event-list scratch (moved into Ctx when the
                  // sparse path fires in train mode)
};

}  // namespace snnskip
