#pragma once
// The Layer interface: explicit forward/backward over unrolled time.
//
// SNN training uses backpropagation-through-time. Rather than a tape
// autograd, every layer keeps a LIFO stack of saved forward contexts: the
// driver calls forward() once per timestep t = 0..T-1, then backward() in
// reverse, and each backward() pops the matching context. Stateful layers
// (LIF membrane, per-timestep batch-norm) additionally carry state across
// forward calls; reset_state() clears both the state and any leftover
// contexts at sequence boundaries.
//
// Contract:
//  * forward(x, train=true) must push exactly one context;
//    forward(x, train=false) must push none (inference is stateless apart
//    from temporal state) — backward() without matching forward is a bug.
//  * backward(grad_out) returns grad wrt the layer input and ACCUMULATES
//    into Parameter::grad (callers zero grads per step/batch).
//  * macs(in) reports multiply-accumulates for one forward pass at input
//    shape `in` (batch included) — the paper's efficiency metric.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace snnskip {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Clear temporal state and saved contexts (start of a new sequence).
  virtual void reset_state() {}

  /// Trainable parameters (may be empty). Pointers remain valid for the
  /// lifetime of the layer.
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Named non-trainable state that checkpoints must carry (batch-norm
  /// running statistics). Pointers remain valid for the layer's lifetime.
  virtual std::vector<std::pair<std::string, Tensor*>> buffers() {
    return {};
  }

  /// Human-readable layer kind for logging / weight-store keys.
  virtual std::string name() const = 0;

  /// Multiply-accumulate count for one forward at batch input shape `in`.
  virtual std::int64_t macs(const Shape& in) const {
    (void)in;
    return 0;
  }

  /// Output shape for a given batch input shape.
  virtual Shape output_shape(const Shape& in) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace snnskip
