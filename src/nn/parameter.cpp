#include "nn/parameter.h"

// Parameter is header-only; this TU anchors the library target.
