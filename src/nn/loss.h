#pragma once
// Classification loss on rate-decoded logits.
//
// The SNN runner accumulates head logits over timesteps and trains with
// cross-entropy on the time-averaged logits (rate decoding), the setup used
// by snnTorch-style surrogate-gradient training in the paper.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace snnskip {

struct LossResult {
  double loss = 0.0;       ///< mean cross-entropy over the batch
  Tensor grad_logits;      ///< dL/dlogits, shape (N, C)
  std::size_t correct = 0; ///< argmax matches
};

/// Softmax cross-entropy with mean reduction. `targets[i]` in [0, C).
LossResult cross_entropy(const Tensor& logits,
                         const std::vector<std::int64_t>& targets);

/// Spike-count MSE (snnTorch's mse_count_loss): for networks with a
/// SPIKING head, `counts` (N, C) holds output spikes summed over T steps.
/// The correct class is pushed toward firing on `correct_rate` of the
/// steps, wrong classes toward `incorrect_rate` — a rate-coded regression
/// target. grad_logits is dL/dcounts (to be backpropagated with weight 1
/// at every unrolled step, since dcount/dout_t = 1).
LossResult mse_count_loss(const Tensor& counts,
                          const std::vector<std::int64_t>& targets,
                          std::int64_t timesteps, float correct_rate = 0.9f,
                          float incorrect_rate = 0.1f);

/// Accuracy of argmax predictions (no gradient).
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& targets);

}  // namespace snnskip
