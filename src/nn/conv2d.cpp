#include "nn/conv2d.h"

#include <cassert>
#include <cmath>

#include "parallel/parallel_for.h"
#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/gemm.h"
#include "tensor/spike_kernels.h"
#include "tensor/workspace.h"

namespace snnskip {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng, std::string layer_name)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  // Kaiming-normal for (leaky-)ReLU-like nonlinearities; surrogate-gradient
  // LIF layers behave similarly at initialization.
  const float fan_in = static_cast<float>(in_c_ * kernel_ * kernel_);
  const float stddev = std::sqrt(2.f / fan_in);
  weight_ = Parameter(
      name_ + ".weight",
      Tensor::randn(Shape{out_c_, in_c_, kernel_, kernel_}, rng, 0.f, stddev));
  bias_ = Parameter(name_ + ".bias", Tensor(Shape{out_c_}));
}

Shape Conv2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4 && in[1] == in_c_);
  const ConvGeometry g{in[1], in[2], in[3], kernel_, stride_, pad_};
  return Shape{in[0], out_c_, g.out_h(), g.out_w()};
}

std::int64_t Conv2d::macs(const Shape& in) const {
  const ConvGeometry g{in[1], in[2], in[3], kernel_, stride_, pad_};
  return in[0] * out_c_ * g.col_rows() * g.col_cols();
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  assert(s[1] == in_c_ && "Conv2d: input channel mismatch");
  const std::int64_t n = s[0];
  const ConvGeometry g{s[1], s[2], s[3], kernel_, stride_, pad_};
  const std::int64_t cr = g.col_rows(), cc = g.col_cols();

  Tensor out(Shape{n, out_c_, g.out_h(), g.out_w()});

  const std::int64_t row_len = in_c_ * s[2] * s[3];
  bool sparse = false;
  if (SparseExec::enabled()) {
    const std::int64_t nnz = count_nonzero(x.data(), x.numel());
    sparse = static_cast<double>(nnz) <
             static_cast<double>(SparseExec::threshold()) *
                 static_cast<double>(x.numel());
    SparseExec::note(static_cast<double>(nnz),
                     static_cast<double>(x.numel()), sparse);
  }

  SNNSKIP_SPAN(sparse ? "conv.fwd.sparse" : "conv.fwd.dense", name_);
  if (sparse) {
    csr_.build(x.data(), n, row_len);
    spike_conv2d_forward(g, csr_, weight_.value.data(),
                         has_bias_ ? bias_.value.data() : nullptr, out_c_,
                         out.data(), Workspace::tls());
  } else {
    auto scope = Workspace::tls().scope();
    float* col_ptr = scope.floats(static_cast<std::size_t>(cr * cc));
    for (std::int64_t img = 0; img < n; ++img) {
      im2col(g, x.data() + img * row_len, col_ptr);
      // out_img(O, HoWo) = W(O, CKK) * cols(CKK, HoWo)
      gemm(out_c_, cc, cr, 1.f, weight_.value.data(), col_ptr, 0.f,
           out.data() + img * out_c_ * cc);
      if (has_bias_) {
        float* o = out.data() + img * out_c_ * cc;
        for (std::int64_t ch = 0; ch < out_c_; ++ch) {
          const float b = bias_.value[static_cast<std::size_t>(ch)];
          for (std::int64_t p = 0; p < cc; ++p) o[ch * cc + p] += b;
        }
      }
    }
  }
  if (train) {
    Ctx ctx;
    ctx.in_shape = s;
    // Keep the packed events instead of the dense input whenever the
    // sparse forward ran them (and the backward gate allows using them) —
    // the event-driven dW is bit-identical to gemm_nt, and the retained
    // footprint drops from N*C*H*W floats to the event list.
    ctx.sparse = sparse && SparseExec::bwd_enabled();
    if (ctx.sparse) {
      ctx.input_csr = std::move(csr_);
      ctx.bytes = ctx.input_csr.retained_bytes();
    } else {
      ctx.input = x;
      ctx.bytes = x.numel() * static_cast<std::int64_t>(sizeof(float));
    }
    RetainedActivations::add(ctx.bytes);
    saved_.push_back(std::move(ctx));
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  assert(!saved_.empty() && "Conv2d::backward without matching forward");
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();
  RetainedActivations::sub(ctx.bytes);

  const Shape& in_s = ctx.in_shape;
  const std::int64_t n = in_s[0];
  const ConvGeometry g{in_s[1], in_s[2], in_s[3], kernel_, stride_, pad_};
  const std::int64_t cr = g.col_rows(), cc = g.col_cols();
  assert(grad_out.shape()[0] == n && grad_out.shape()[1] == out_c_);

  // dX dispatch on the gradient's density — the surrogate active set. The
  // LIF/PLIF layer above publishes its exact nonzero count; a mismatched
  // or missing hint falls back to one streaming scan.
  bool sparse_dx = false;
  if (input_grad_needed_ && SparseExec::bwd_enabled()) {
    std::int64_t gnnz =
        GradDensityHint::take(grad_out.data(), grad_out.numel());
    if (gnnz < 0) gnnz = count_nonzero(grad_out.data(), grad_out.numel());
    sparse_dx = static_cast<double>(gnnz) <
                static_cast<double>(SparseExec::threshold()) *
                    static_cast<double>(grad_out.numel());
    SparseExec::note_bwd(static_cast<double>(gnnz),
                         static_cast<double>(grad_out.numel()), sparse_dx);
  }

  SNNSKIP_SPAN(ctx.sparse || sparse_dx ? "conv.bwd.sparse" : "conv.bwd.dense",
               name_);
  Workspace& ws = Workspace::tls();

  if (ctx.sparse) {
    // dW straight from the forward events (bit-identical to the gemm_nt
    // accumulation, see spike_kernels.h).
    spike_conv2d_backward_weight(g, ctx.input_csr, grad_out.data(), out_c_,
                                 weight_.grad.data(), ws);
  } else {
    auto scope = ws.scope();
    float* col_ptr = scope.floats(static_cast<std::size_t>(cr * cc));
    for (std::int64_t img = 0; img < n; ++img) {
      const float* go = grad_out.data() + img * out_c_ * cc;
      // Recompute this image's columns from the saved input — im2col is a
      // pure gather, so the values match the forward pass bit-for-bit.
      im2col(g, ctx.input.data() + img * in_s[1] * in_s[2] * in_s[3],
             col_ptr);
      // dW(O, CKK) += gO(O, HoWo) * cols(CKK, HoWo)^T
      gemm_nt(out_c_, cr, cc, 1.f, go, col_ptr, 1.f, weight_.grad.data());
    }
  }

  if (has_bias_) {
    // Per-channel reduction over (N, HoWo), channels partitioned across
    // the pool. Each channel keeps the old image-major scalar accumulation
    // order, so the hoisted pass is bitwise-identical to the per-image
    // loop it replaces.
    const float* gall = grad_out.data();
    float* bgrad = bias_.grad.data();
    parallel_for_range(
        0, static_cast<std::size_t>(out_c_),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t ch = b; ch < e; ++ch) {
            for (std::int64_t img = 0; img < n; ++img) {
              const float* go =
                  gall + (img * out_c_ + static_cast<std::int64_t>(ch)) * cc;
              float acc = 0.f;
              for (std::int64_t p = 0; p < cc; ++p) acc += go[p];
              bgrad[ch] += acc;
            }
          }
        });
  }

  Tensor grad_in(in_s);
  if (input_grad_needed_) {
    if (sparse_dx) {
      grad_csr_.build(grad_out.data(), n, out_c_ * cc);
      spike_conv2d_backward_input(g, grad_csr_, weight_.value.data(), out_c_,
                                  grad_in.data(), ws);
    } else {
      auto scope = ws.scope();
      float* grad_cols = scope.floats(static_cast<std::size_t>(cr * cc));
      for (std::int64_t img = 0; img < n; ++img) {
        const float* go = grad_out.data() + img * out_c_ * cc;
        // dcols(CKK, HoWo) = W(O, CKK)^T * gO(O, HoWo)
        gemm_tn(cr, cc, out_c_, 1.f, weight_.value.data(), go, 0.f,
                grad_cols);
        col2im(g, grad_cols,
               grad_in.data() + img * in_s[1] * in_s[2] * in_s[3]);
      }
    }
  }
  return grad_in;
}

void Conv2d::reset_state() {
  for (const Ctx& c : saved_) RetainedActivations::sub(c.bytes);
  saved_.clear();
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace snnskip
