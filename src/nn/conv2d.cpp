#include "nn/conv2d.h"

#include <cassert>
#include <cmath>

#include "telemetry/telemetry.h"
#include "tensor/gemm.h"
#include "tensor/spike_kernels.h"
#include "tensor/workspace.h"

namespace snnskip {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng, std::string layer_name)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  // Kaiming-normal for (leaky-)ReLU-like nonlinearities; surrogate-gradient
  // LIF layers behave similarly at initialization.
  const float fan_in = static_cast<float>(in_c_ * kernel_ * kernel_);
  const float stddev = std::sqrt(2.f / fan_in);
  weight_ = Parameter(
      name_ + ".weight",
      Tensor::randn(Shape{out_c_, in_c_, kernel_, kernel_}, rng, 0.f, stddev));
  bias_ = Parameter(name_ + ".bias", Tensor(Shape{out_c_}));
}

Shape Conv2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4 && in[1] == in_c_);
  const ConvGeometry g{in[1], in[2], in[3], kernel_, stride_, pad_};
  return Shape{in[0], out_c_, g.out_h(), g.out_w()};
}

std::int64_t Conv2d::macs(const Shape& in) const {
  const ConvGeometry g{in[1], in[2], in[3], kernel_, stride_, pad_};
  return in[0] * out_c_ * g.col_rows() * g.col_cols();
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  assert(s[1] == in_c_ && "Conv2d: input channel mismatch");
  const std::int64_t n = s[0];
  const ConvGeometry g{s[1], s[2], s[3], kernel_, stride_, pad_};
  const std::int64_t cr = g.col_rows(), cc = g.col_cols();

  Tensor out(Shape{n, out_c_, g.out_h(), g.out_w()});

  const std::int64_t row_len = in_c_ * s[2] * s[3];
  bool sparse = false;
  if (SparseExec::enabled()) {
    const std::int64_t nnz = count_nonzero(x.data(), x.numel());
    sparse = static_cast<double>(nnz) <
             static_cast<double>(SparseExec::threshold()) *
                 static_cast<double>(x.numel());
    SparseExec::note(static_cast<double>(nnz),
                     static_cast<double>(x.numel()), sparse);
  }

  SNNSKIP_SPAN(sparse ? "conv.fwd.sparse" : "conv.fwd.dense", name_);
  if (sparse) {
    csr_.build(x.data(), n, row_len);
    spike_conv2d_forward(g, csr_, weight_.value.data(),
                         has_bias_ ? bias_.value.data() : nullptr, out_c_,
                         out.data(), Workspace::tls());
  } else {
    auto scope = Workspace::tls().scope();
    float* col_ptr = scope.floats(static_cast<std::size_t>(cr * cc));
    for (std::int64_t img = 0; img < n; ++img) {
      im2col(g, x.data() + img * row_len, col_ptr);
      // out_img(O, HoWo) = W(O, CKK) * cols(CKK, HoWo)
      gemm(out_c_, cc, cr, 1.f, weight_.value.data(), col_ptr, 0.f,
           out.data() + img * out_c_ * cc);
      if (has_bias_) {
        float* o = out.data() + img * out_c_ * cc;
        for (std::int64_t ch = 0; ch < out_c_; ++ch) {
          const float b = bias_.value[static_cast<std::size_t>(ch)];
          for (std::int64_t p = 0; p < cc; ++p) o[ch * cc + p] += b;
        }
      }
    }
  }
  if (train) {
    saved_.push_back(Ctx{x});
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("conv.bwd", name_);
  assert(!saved_.empty() && "Conv2d::backward without matching forward");
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();

  const Shape& in_s = ctx.input.shape();
  const std::int64_t n = in_s[0];
  const ConvGeometry g{in_s[1], in_s[2], in_s[3], kernel_, stride_, pad_};
  const std::int64_t cr = g.col_rows(), cc = g.col_cols();
  assert(grad_out.shape()[0] == n && grad_out.shape()[1] == out_c_);

  Tensor grad_in(in_s);
  auto scope = Workspace::tls().scope();
  float* col_ptr = scope.floats(static_cast<std::size_t>(cr * cc));
  float* grad_cols = scope.floats(static_cast<std::size_t>(cr * cc));

  for (std::int64_t img = 0; img < n; ++img) {
    const float* go = grad_out.data() + img * out_c_ * cc;
    // Recompute this image's columns from the saved input — im2col is a
    // pure gather, so the values match the forward pass bit-for-bit.
    im2col(g, ctx.input.data() + img * in_s[1] * in_s[2] * in_s[3], col_ptr);
    // dW(O, CKK) += gO(O, HoWo) * cols(CKK, HoWo)^T
    gemm_nt(out_c_, cr, cc, 1.f, go, col_ptr, 1.f, weight_.grad.data());
    if (has_bias_) {
      for (std::int64_t ch = 0; ch < out_c_; ++ch) {
        float acc = 0.f;
        for (std::int64_t p = 0; p < cc; ++p) acc += go[ch * cc + p];
        bias_.grad[static_cast<std::size_t>(ch)] += acc;
      }
    }
    // dcols(CKK, HoWo) = W(O, CKK)^T * gO(O, HoWo)
    gemm_tn(cr, cc, out_c_, 1.f, weight_.value.data(), go, 0.f, grad_cols);
    col2im(g, grad_cols,
           grad_in.data() + img * in_s[1] * in_s[2] * in_s[3]);
  }
  return grad_in;
}

void Conv2d::reset_state() { saved_.clear(); }

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace snnskip
