#pragma once
// 2-D convolution via im2col + GEMM.
//
// Weight layout OIHW: (out_channels, in_channels, kernel, kernel).
// Forward saves the unrolled column matrix per image so the backward pass
// is two GEMMs (weight grad, input grad) plus a col2im scatter.

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "util/rng.h"

namespace snnskip {

class Conv2d final : public Layer {
 public:
  /// Kaiming-normal initialized convolution.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool bias, Rng& rng, std::string layer_name = "conv2d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  struct Ctx {
    Tensor cols;  // (N, C*K*K, Ho*Wo)
    Shape in_shape;
  };

  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Ctx> saved_;
};

}  // namespace snnskip
