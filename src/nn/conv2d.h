#pragma once
// 2-D convolution via im2col + GEMM, with an event-driven sparse path.
//
// Weight layout OIHW: (out_channels, in_channels, kernel, kernel).
// Forward scans the input's density: binary/sparse spike tensors below the
// SparseExec threshold skip im2col entirely and scatter weight rows per
// active spike (tensor/spike_kernels.h); denser inputs take the im2col +
// GEMM path with the column buffer carved from the Workspace arena, so the
// per-timestep loop never touches the heap in steady state. Forward saves
// only the input; backward recomputes the column matrix into the arena
// (K*K times less retained memory than saving the columns across T steps).

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class Conv2d final : public Layer {
 public:
  /// Kaiming-normal initialized convolution.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool bias, Rng& rng, std::string layer_name = "conv2d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  struct Ctx {
    Tensor input;  // (N, C, H, W); columns are recomputed in backward
  };

  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Ctx> saved_;
  SpikeCsr csr_;  // event-list scratch, capacity reused across timesteps
};

}  // namespace snnskip
