#pragma once
// 2-D convolution via im2col + GEMM, with event-driven sparse paths in
// both directions.
//
// Weight layout OIHW: (out_channels, in_channels, kernel, kernel).
// Forward scans the input's density: binary/sparse spike tensors below the
// SparseExec threshold skip im2col entirely and scatter weight rows per
// active spike (tensor/spike_kernels.h); denser inputs take the im2col +
// GEMM path with the column buffer carved from the Workspace arena, so the
// per-timestep loop never touches the heap in steady state.
//
// Backward (ISSUE 4): when the sparse forward fired (and SNNSKIP_SPARSE_BWD
// allows), the Ctx keeps the forward SpikeCsr instead of the dense input —
// dW comes straight from the packed events (work ∝ nnz·K²·O) and the
// retained-activation footprint drops from N·C·H·W floats to the event
// list. Dense contexts keep the input and recompute im2col into the arena
// (K*K less retained memory than saving columns). dX dispatches on the
// density of grad_out — the surrogate active set published by the LIF
// layer above — choosing an event-driven scatter or gemm_tn + col2im.
// Both sparse paths reproduce the dense accumulation order bit-for-bit.

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class Conv2d final : public Layer {
 public:
  /// Kaiming-normal initialized convolution.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         bool bias, Rng& rng, std::string layer_name = "conv2d");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

  /// First-layer optimization: when the layer's input gradient is known to
  /// be discarded (the network's stem conv — nothing is below it),
  /// backward skips the whole dX computation and returns zeros.
  void set_input_grad_needed(bool needed) { input_grad_needed_ = needed; }
  bool input_grad_needed() const { return input_grad_needed_; }

 private:
  struct Ctx {
    Tensor input;        // dense fallback; empty when `sparse`
    SpikeCsr input_csr;  // forward event packing when `sparse`
    Shape in_shape;
    bool sparse = false;
    std::int64_t bytes = 0;  // retained-activation accounting
  };

  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool has_bias_;
  bool input_grad_needed_ = true;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Ctx> saved_;
  SpikeCsr csr_;       // forward event-list scratch (moved into Ctx when
                       // the sparse path fires in train mode)
  SpikeCsr grad_csr_;  // backward event-list scratch, capacity reused
};

}  // namespace snnskip
