#pragma once
// Spatial pooling layers.
//
// SNN feature maps are pooled with average pooling (spike averages keep
// the rate code meaningful); max pooling is provided for the ANN twins.
// GlobalAvgPool2d collapses each channel plane to a scalar for the head.

#include "nn/layer.h"

namespace snnskip {

class AvgPool2d final : public Layer {
 public:
  /// `ceil_mode` rounds the output size up and averages partial edge
  /// windows over their valid elements only. Skip paths that parallel
  /// stride-2 convolutions need ceil semantics: a 3x3/s2/p1 conv maps
  /// H -> ceil(H/2), and nested ceils compose (ceil(ceil(H/a)/b) ==
  /// ceil(H/(ab))), so a ceil-mode pool with kernel == stride == ratio
  /// lands on exactly the conv path's spatial size for any H.
  AvgPool2d(std::int64_t kernel, std::int64_t stride, bool ceil_mode = false);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_shapes_.clear(); }
  std::string name() const override { return "avgpool2d"; }
  Shape output_shape(const Shape& in) const override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  bool ceil_mode() const { return ceil_mode_; }

 private:
  std::int64_t kernel_, stride_;
  bool ceil_mode_;
  std::vector<Shape> saved_shapes_;
};

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_.clear(); }
  std::string name() const override { return "maxpool2d"; }
  Shape output_shape(const Shape& in) const override;

 private:
  struct Ctx {
    Shape in_shape;
    std::vector<std::int64_t> argmax;  // flat input index per output element
  };
  std::int64_t kernel_, stride_;
  std::vector<Ctx> saved_;
};

class GlobalAvgPool2d final : public Layer {
 public:
  GlobalAvgPool2d() = default;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_shapes_.clear(); }
  std::string name() const override { return "gap2d"; }
  Shape output_shape(const Shape& in) const override;

 private:
  std::vector<Shape> saved_shapes_;
};

}  // namespace snnskip
