#pragma once
// First-order optimizers over a flat parameter list.
//
// The paper trains with SGD + momentum 0.9 (CIFAR-10 / CIFAR-10-DVS) and
// Adam (DVS128 Gesture); both are implemented with optional weight decay.
// State (momentum / moment buffers) is keyed by position in the parameter
// list, so the list must be stable across steps.

#include <vector>

#include "nn/parameter.h"

namespace snnskip {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }
  virtual void step() = 0;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<Parameter*> params_;
  float lr_ = 0.01f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace snnskip
