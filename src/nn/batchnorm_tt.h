#pragma once
// Batch Normalization Through Time (BNTT).
//
// Kim & Panda (2021) showed that giving every unrolled timestep its own
// batch-norm statistics and affine parameters stabilizes deep-SNN training
// (the paper's §II cites this as an enabling ingredient). This layer keeps
// per-timestep (gamma_t, beta_t) and per-timestep running statistics; an
// internal timestep counter advances on every forward and is rewound by
// reset_state(). With max_timesteps == 1 it degenerates to standard
// BatchNorm2d, which is what the ANN twins use.

#include "nn/layer.h"

namespace snnskip {

class BatchNormTT final : public Layer {
 public:
  BatchNormTT(std::int64_t channels, std::int64_t max_timesteps,
              float momentum = 0.1f, float eps = 1e-5f,
              std::string layer_name = "bntt");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::vector<std::pair<std::string, Tensor*>> buffers() override;
  std::string name() const override { return name_; }
  Shape output_shape(const Shape& in) const override { return in; }

  std::int64_t channels() const { return c_; }
  std::int64_t max_timesteps() const { return t_max_; }

  // Foldable parameters (ISSUE 6): the inference compiler reads one
  // timestep's (gamma, beta, running stats, eps) to fold the eval-mode
  // scale/shift into the preceding layer's weights and bias.
  float eps() const { return eps_; }
  const Tensor& gamma(std::int64_t t) const {
    return gamma_[static_cast<std::size_t>(t)].value;
  }
  const Tensor& shift_beta(std::int64_t t) const {
    return beta_[static_cast<std::size_t>(t)].value;
  }
  const Tensor& running_mean(std::int64_t t) const {
    return running_mean_[static_cast<std::size_t>(t)];
  }
  const Tensor& running_var(std::int64_t t) const {
    return running_var_[static_cast<std::size_t>(t)];
  }

 private:
  struct Ctx {
    Tensor xhat;                 // normalized input
    std::vector<float> inv_std;  // per channel
    std::int64_t t;              // which timestep's params were used
    std::int64_t count;          // N*H*W per channel
  };

  std::int64_t c_, t_max_;
  float momentum_, eps_;
  std::string name_;
  std::vector<Parameter> gamma_;  // one per timestep
  std::vector<Parameter> beta_;
  std::vector<Tensor> running_mean_;  // per timestep, shape (C)
  std::vector<Tensor> running_var_;
  std::int64_t t_ = 0;  // current timestep (advances each forward)
  std::vector<Ctx> saved_;
};

}  // namespace snnskip
