#include "nn/depthwise_conv2d.h"

#include <cassert>
#include <cmath>

#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/spike_kernels.h"

namespace snnskip {

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad,
                                 bool bias, Rng& rng, std::string layer_name)
    : c_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  const float fan_in = static_cast<float>(kernel_ * kernel_);
  const float stddev = std::sqrt(2.f / fan_in);
  weight_ = Parameter(name_ + ".weight",
                      Tensor::randn(Shape{c_, 1, kernel_, kernel_}, rng, 0.f,
                                    stddev));
  bias_ = Parameter(name_ + ".bias", Tensor(Shape{c_}));
}

Shape DepthwiseConv2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4 && in[1] == c_);
  const std::int64_t ho = (in[2] + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int64_t wo = (in[3] + 2 * pad_ - kernel_) / stride_ + 1;
  return Shape{in[0], c_, ho, wo};
}

std::int64_t DepthwiseConv2d::macs(const Shape& in) const {
  const Shape out = output_shape(in);
  return in[0] * c_ * kernel_ * kernel_ * out[2] * out[3];
}

Tensor DepthwiseConv2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4 && s[1] == c_);
  const std::int64_t n = s[0], h = s[2], w = s[3];
  const Shape os = output_shape(s);
  const std::int64_t ho = os[2], wo = os[3];
  Tensor out(os);

  bool sparse = false;
  if (SparseExec::enabled()) {
    const std::int64_t nnz = count_nonzero(x.data(), x.numel());
    sparse = static_cast<double>(nnz) <
             static_cast<double>(SparseExec::threshold()) *
                 static_cast<double>(x.numel());
    SparseExec::note(static_cast<double>(nnz),
                     static_cast<double>(x.numel()), sparse);
  }
  SNNSKIP_SPAN(sparse ? "dwconv.fwd.sparse" : "dwconv.fwd.dense", name_);
  if (sparse) {
    const ConvGeometry g{c_, h, w, kernel_, stride_, pad_};
    csr_.build(x.data(), n, c_ * h * w);
    spike_depthwise_forward(g, csr_, weight_.value.data(),
                            has_bias_ ? bias_.value.data() : nullptr,
                            out.data());
    if (train) save_ctx(x, /*sparse=*/true);
    return out;
  }

  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float* plane = x.data() + (img * c_ + ch) * h * w;
      const float* ker = weight_.value.data() + ch * kernel_ * kernel_;
      float* optr = out.data() + (img * c_ + ch) * ho * wo;
      const float b = has_bias_ ? bias_.value[static_cast<std::size_t>(ch)] : 0.f;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          float acc = b;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= w) continue;
              acc += ker[ky * kernel_ + kx] * plane[iy * w + ix];
            }
          }
          optr[oy * wo + ox] = acc;
        }
      }
    }
  }
  if (train) save_ctx(x, /*sparse=*/false);
  return out;
}

void DepthwiseConv2d::save_ctx(const Tensor& x, bool sparse) {
  Ctx ctx;
  ctx.in_shape = x.shape();
  ctx.sparse = sparse && SparseExec::bwd_enabled();
  if (ctx.sparse) {
    ctx.input_csr = std::move(csr_);
    ctx.bytes = ctx.input_csr.retained_bytes();
  } else {
    ctx.input = x;
    ctx.bytes = x.numel() * static_cast<std::int64_t>(sizeof(float));
  }
  RetainedActivations::add(ctx.bytes);
  saved_.push_back(std::move(ctx));
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  assert(!saved_.empty());
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();
  RetainedActivations::sub(ctx.bytes);

  const Shape& s = ctx.in_shape;
  const std::int64_t n = s[0], h = s[2], w = s[3];
  const Shape os = grad_out.shape();
  const std::int64_t ho = os[2], wo = os[3];
  SNNSKIP_SPAN(ctx.sparse ? "dwconv.bwd.sparse" : "dwconv.bwd.dense", name_);

  Tensor grad_in(s);
  if (ctx.sparse) {
    // dW from the forward events (bit-identical: for each weight tap the
    // dense loop visits the same nonzero (input, grad) products in the
    // same (image, output-position) order).
    const ConvGeometry g{c_, h, w, kernel_, stride_, pad_};
    spike_depthwise_backward_weight(g, ctx.input_csr, grad_out.data(),
                                    weight_.grad.data());
    // dX and bias need only grad_out: same loop as the dense path below
    // minus the dW line, so gi/gb accumulate in the identical order.
    for (std::int64_t img = 0; img < n; ++img) {
      for (std::int64_t ch = 0; ch < c_; ++ch) {
        const float* go = grad_out.data() + (img * c_ + ch) * ho * wo;
        const float* ker = weight_.value.data() + ch * kernel_ * kernel_;
        float* gi = grad_in.data() + (img * c_ + ch) * h * w;
        float gb = 0.f;
        for (std::int64_t oy = 0; oy < ho; ++oy) {
          for (std::int64_t ox = 0; ox < wo; ++ox) {
            const float g = go[oy * wo + ox];
            if (g == 0.f) continue;
            gb += g;
            for (std::int64_t ky = 0; ky < kernel_; ++ky) {
              const std::int64_t iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                const std::int64_t ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                gi[iy * w + ix] += g * ker[ky * kernel_ + kx];
              }
            }
          }
        }
        if (has_bias_) bias_.grad[static_cast<std::size_t>(ch)] += gb;
      }
    }
    return grad_in;
  }

  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const float* plane = ctx.input.data() + (img * c_ + ch) * h * w;
      const float* go = grad_out.data() + (img * c_ + ch) * ho * wo;
      const float* ker = weight_.value.data() + ch * kernel_ * kernel_;
      float* gw = weight_.grad.data() + ch * kernel_ * kernel_;
      float* gi = grad_in.data() + (img * c_ + ch) * h * w;
      float gb = 0.f;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          const float g = go[oy * wo + ox];
          if (g == 0.f) continue;
          gb += g;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            const std::int64_t iy = oy * stride_ - pad_ + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t ix = ox * stride_ - pad_ + kx;
              if (ix < 0 || ix >= w) continue;
              gw[ky * kernel_ + kx] += g * plane[iy * w + ix];
              gi[iy * w + ix] += g * ker[ky * kernel_ + kx];
            }
          }
        }
      }
      if (has_bias_) bias_.grad[static_cast<std::size_t>(ch)] += gb;
    }
  }
  return grad_in;
}

void DepthwiseConv2d::reset_state() {
  for (const Ctx& c : saved_) RetainedActivations::sub(c.bytes);
  saved_.clear();
}

std::vector<Parameter*> DepthwiseConv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace snnskip
