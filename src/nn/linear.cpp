#include "nn/linear.h"

#include <cassert>
#include <cmath>

#include "telemetry/retained.h"
#include "telemetry/telemetry.h"
#include "tensor/gemm.h"
#include "tensor/spike_kernels.h"
#include "tensor/workspace.h"

namespace snnskip {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               Rng& rng, std::string layer_name)
    : in_f_(in_features),
      out_f_(out_features),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  const float stddev = std::sqrt(2.f / static_cast<float>(in_f_));
  weight_ = Parameter(name_ + ".weight",
                      Tensor::randn(Shape{out_f_, in_f_}, rng, 0.f, stddev));
  bias_ = Parameter(name_ + ".bias", Tensor(Shape{out_f_}));
}

Shape Linear::output_shape(const Shape& in) const {
  assert(in.ndim() == 2 && in[1] == in_f_);
  return Shape{in[0], out_f_};
}

std::int64_t Linear::macs(const Shape& in) const {
  return in[0] * in_f_ * out_f_;
}

Tensor Linear::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() == 2 && s[1] == in_f_);
  const std::int64_t n = s[0];
  Tensor out(Shape{n, out_f_});

  bool sparse = false;
  if (SparseExec::enabled()) {
    const std::int64_t nnz = count_nonzero(x.data(), x.numel());
    sparse = static_cast<double>(nnz) <
             static_cast<double>(SparseExec::threshold()) *
                 static_cast<double>(x.numel());
    SparseExec::note(static_cast<double>(nnz),
                     static_cast<double>(x.numel()), sparse);
  }

  SNNSKIP_SPAN(sparse ? "linear.fwd.sparse" : "linear.fwd.dense", name_);
  if (sparse) {
    // Event-driven path: per active input feature, one axpy of the
    // corresponding (transposed) weight column.
    csr_.build(x.data(), n, in_f_);
    spike_linear_forward(csr_, weight_.value.data(),
                         has_bias_ ? bias_.value.data() : nullptr, out_f_,
                         out.data(), Workspace::tls());
  } else {
    // out(N, O) = x(N, I) * W(O, I)^T
    gemm_nt(n, out_f_, in_f_, 1.f, x.data(), weight_.value.data(), 0.f,
            out.data());
    if (has_bias_) {
      for (std::int64_t i = 0; i < n; ++i) {
        float* row = out.data() + i * out_f_;
        for (std::int64_t j = 0; j < out_f_; ++j) {
          row[j] += bias_.value[static_cast<std::size_t>(j)];
        }
      }
    }
  }
  if (train) {
    Ctx ctx;
    ctx.n = n;
    ctx.sparse = sparse && SparseExec::bwd_enabled();
    if (ctx.sparse) {
      ctx.input_csr = std::move(csr_);
      ctx.bytes = ctx.input_csr.retained_bytes();
    } else {
      ctx.input = x;
      ctx.bytes = x.numel() * static_cast<std::int64_t>(sizeof(float));
    }
    RetainedActivations::add(ctx.bytes);
    saved_.push_back(std::move(ctx));
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  assert(!saved_.empty());
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();
  RetainedActivations::sub(ctx.bytes);

  const std::int64_t n = ctx.n;
  assert(grad_out.shape()[0] == n && grad_out.shape()[1] == out_f_);

  bool sparse_dx = false;
  if (SparseExec::bwd_enabled()) {
    std::int64_t gnnz =
        GradDensityHint::take(grad_out.data(), grad_out.numel());
    if (gnnz < 0) gnnz = count_nonzero(grad_out.data(), grad_out.numel());
    sparse_dx = static_cast<double>(gnnz) <
                static_cast<double>(SparseExec::threshold()) *
                    static_cast<double>(grad_out.numel());
    SparseExec::note_bwd(static_cast<double>(gnnz),
                         static_cast<double>(grad_out.numel()), sparse_dx);
  }

  SNNSKIP_SPAN(
      ctx.sparse || sparse_dx ? "linear.bwd.sparse" : "linear.bwd.dense",
      name_);

  if (ctx.sparse) {
    spike_linear_backward_weight(ctx.input_csr, grad_out.data(), out_f_,
                                 weight_.grad.data(), Workspace::tls());
  } else {
    // dW(O, I) += gO(N, O)^T * x(N, I)
    gemm_tn(out_f_, in_f_, n, 1.f, grad_out.data(), ctx.input.data(), 1.f,
            weight_.grad.data());
  }
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_f_;
      for (std::int64_t j = 0; j < out_f_; ++j) {
        bias_.grad[static_cast<std::size_t>(j)] += row[j];
      }
    }
  }
  Tensor grad_in(Shape{n, in_f_});
  if (sparse_dx) {
    grad_csr_.build(grad_out.data(), n, out_f_);
    spike_linear_backward_input(grad_csr_, weight_.value.data(), in_f_,
                                grad_in.data());
  } else {
    // dX(N, I) = gO(N, O) * W(O, I)
    gemm(n, in_f_, out_f_, 1.f, grad_out.data(), weight_.value.data(), 0.f,
         grad_in.data());
  }
  return grad_in;
}

void Linear::reset_state() {
  for (const Ctx& c : saved_) RetainedActivations::sub(c.bytes);
  saved_.clear();
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Flatten::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() >= 2);
  if (train) saved_shapes_.push_back(s);
  return x.reshape(output_shape(s));
}

Tensor Flatten::backward(const Tensor& grad_out) {
  assert(!saved_shapes_.empty());
  Shape s = std::move(saved_shapes_.back());
  saved_shapes_.pop_back();
  return grad_out.reshape(std::move(s));
}

Shape Flatten::output_shape(const Shape& in) const {
  std::int64_t rest = 1;
  for (std::size_t i = 1; i < in.ndim(); ++i) rest *= in[i];
  return Shape{in[0], rest};
}

}  // namespace snnskip
