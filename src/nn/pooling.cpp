#include "nn/pooling.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace snnskip {

AvgPool2d::AvgPool2d(std::int64_t kernel, std::int64_t stride, bool ceil_mode)
    : kernel_(kernel), stride_(stride), ceil_mode_(ceil_mode) {}

Shape AvgPool2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4);
  const std::int64_t num_h = in[2] - kernel_;
  const std::int64_t num_w = in[3] - kernel_;
  if (ceil_mode_) {
    return Shape{in[0], in[1], (num_h + stride_ - 1) / stride_ + 1,
                 (num_w + stride_ - 1) / stride_ + 1};
  }
  return Shape{in[0], in[1], num_h / stride_ + 1, num_w / stride_ + 1};
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  const Shape os = output_shape(s);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t ho = os[2], wo = os[3];
  Tensor out(os);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* plane = x.data() + i * h * w;
    float* optr = out.data() + i * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      const std::int64_t y_end = std::min(h, oy * stride_ + kernel_);
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const std::int64_t x_end = std::min(w, ox * stride_ + kernel_);
        float acc = 0.f;
        std::int64_t count = 0;
        for (std::int64_t y = oy * stride_; y < y_end; ++y) {
          for (std::int64_t xx = ox * stride_; xx < x_end; ++xx) {
            acc += plane[y * w + xx];
            ++count;
          }
        }
        optr[oy * wo + ox] = count ? acc / static_cast<float>(count) : 0.f;
      }
    }
  }
  if (train) saved_shapes_.push_back(s);
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  assert(!saved_shapes_.empty());
  Shape s = std::move(saved_shapes_.back());
  saved_shapes_.pop_back();
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const Shape os = grad_out.shape();
  const std::int64_t ho = os[2], wo = os[3];
  Tensor grad_in(s);
  for (std::int64_t i = 0; i < n * c; ++i) {
    float* gi = grad_in.data() + i * h * w;
    const float* go = grad_out.data() + i * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      const std::int64_t y_end = std::min(h, oy * stride_ + kernel_);
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        const std::int64_t x_end = std::min(w, ox * stride_ + kernel_);
        const std::int64_t count =
            (y_end - oy * stride_) * (x_end - ox * stride_);
        if (count <= 0) continue;
        const float g = go[oy * wo + ox] / static_cast<float>(count);
        for (std::int64_t y = oy * stride_; y < y_end; ++y) {
          for (std::int64_t xx = ox * stride_; xx < x_end; ++xx) {
            gi[y * w + xx] += g;
          }
        }
      }
    }
  }
  return grad_in;
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {}

Shape MaxPool2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4);
  return Shape{in[0], in[1], (in[2] - kernel_) / stride_ + 1,
               (in[3] - kernel_) / stride_ + 1};
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  const Shape os = output_shape(s);
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t ho = os[2], wo = os[3];
  Tensor out(os);
  if (!train) {
    // Eval path: no argmax bookkeeping — the index buffer only exists to
    // route gradients, so skipping it keeps the timestep loop heap-free.
    for (std::int64_t i = 0; i < n * c; ++i) {
      const float* plane = x.data() + i * h * w;
      float* optr = out.data() + i * ho * wo;
      for (std::int64_t oy = 0; oy < ho; ++oy) {
        for (std::int64_t ox = 0; ox < wo; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              best = std::max(best,
                              plane[(oy * stride_ + ky) * w + ox * stride_ +
                                    kx]);
            }
          }
          optr[oy * wo + ox] = best;
        }
      }
    }
    return out;
  }
  Ctx ctx;
  ctx.in_shape = s;
  ctx.argmax.resize(static_cast<std::size_t>(os.numel()));
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* plane = x.data() + i * h * w;
    float* optr = out.data() + i * ho * wo;
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = 0;
        for (std::int64_t ky = 0; ky < kernel_; ++ky) {
          for (std::int64_t kx = 0; kx < kernel_; ++kx) {
            const std::int64_t idx =
                (oy * stride_ + ky) * w + ox * stride_ + kx;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        }
        optr[oy * wo + ox] = best;
        ctx.argmax[static_cast<std::size_t>(i * ho * wo + oy * wo + ox)] =
            i * h * w + best_idx;
      }
    }
  }
  saved_.push_back(std::move(ctx));
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  assert(!saved_.empty());
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();
  Tensor grad_in(ctx.in_shape);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[static_cast<std::size_t>(
        ctx.argmax[static_cast<std::size_t>(i)])] +=
        grad_out[static_cast<std::size_t>(i)];
  }
  return grad_in;
}

Tensor GlobalAvgPool2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  assert(s.ndim() == 4);
  const std::int64_t n = s[0], c = s[1], plane = s[2] * s[3];
  Tensor out(Shape{n, c});
  const float inv = 1.f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float* p = x.data() + i * plane;
    float acc = 0.f;
    for (std::int64_t j = 0; j < plane; ++j) acc += p[j];
    out[static_cast<std::size_t>(i)] = acc * inv;
  }
  if (train) saved_shapes_.push_back(s);
  return out;
}

Tensor GlobalAvgPool2d::backward(const Tensor& grad_out) {
  assert(!saved_shapes_.empty());
  Shape s = std::move(saved_shapes_.back());
  saved_shapes_.pop_back();
  const std::int64_t n = s[0], c = s[1], plane = s[2] * s[3];
  Tensor grad_in(s);
  const float inv = 1.f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n * c; ++i) {
    const float g = grad_out[static_cast<std::size_t>(i)] * inv;
    float* p = grad_in.data() + i * plane;
    for (std::int64_t j = 0; j < plane; ++j) p[j] = g;
  }
  return grad_in;
}

Shape GlobalAvgPool2d::output_shape(const Shape& in) const {
  assert(in.ndim() == 4);
  return Shape{in[0], in[1]};
}

}  // namespace snnskip
