#pragma once
// Fully connected layer. Input (N, in_features), weight (out, in).
// Sparse spike inputs below the SparseExec density threshold take an
// event-driven path (one weight-column axpy per active feature) instead of
// the dense GEMM. Backward mirrors it (ISSUE 4): sparse forward contexts
// keep the SpikeCsr instead of the dense input and drive dW from events;
// dX dispatches on grad_out's density (the surrogate active set) between
// an event scatter and the dense GEMM — both bit-identical to dense.

#include "nn/layer.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
         Rng& rng, std::string layer_name = "linear");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }
  bool has_bias() const { return has_bias_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  struct Ctx {
    Tensor input;        // dense fallback; empty when `sparse`
    SpikeCsr input_csr;  // forward event packing when `sparse`
    std::int64_t n = 0;  // batch rows
    bool sparse = false;
    std::int64_t bytes = 0;  // retained-activation accounting
  };

  std::int64_t in_f_, out_f_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Ctx> saved_;
  SpikeCsr csr_;       // forward event-list scratch (moved into Ctx when
                       // the sparse path fires in train mode)
  SpikeCsr grad_csr_;  // backward event-list scratch, capacity reused
};

/// Collapse (N, C, H, W) to (N, C*H*W); pure reshape with exact backward.
class Flatten final : public Layer {
 public:
  Flatten() = default;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_shapes_.clear(); }
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& in) const override;

 private:
  std::vector<Shape> saved_shapes_;
};

}  // namespace snnskip
