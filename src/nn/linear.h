#pragma once
// Fully connected layer. Input (N, in_features), weight (out, in).
// Sparse spike inputs below the SparseExec density threshold take an
// event-driven path (one weight-column axpy per active feature) instead of
// the dense GEMM.

#include "nn/layer.h"
#include "tensor/spike_csr.h"
#include "util/rng.h"

namespace snnskip {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
         Rng& rng, std::string layer_name = "linear");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }
  std::int64_t macs(const Shape& in) const override;
  Shape output_shape(const Shape& in) const override;

  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::int64_t in_f_, out_f_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;
  Parameter bias_;
  std::vector<Tensor> saved_inputs_;
  SpikeCsr csr_;  // event-list scratch, capacity reused across timesteps
};

/// Collapse (N, C, H, W) to (N, C*H*W); pure reshape with exact backward.
class Flatten final : public Layer {
 public:
  Flatten() = default;
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void reset_state() override { saved_shapes_.clear(); }
  std::string name() const override { return "flatten"; }
  Shape output_shape(const Shape& in) const override;

 private:
  std::vector<Shape> saved_shapes_;
};

}  // namespace snnskip
