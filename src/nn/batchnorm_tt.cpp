#include "nn/batchnorm_tt.h"

#include <cassert>
#include <cmath>

#include "telemetry/telemetry.h"
#include "tensor/workspace.h"

namespace snnskip {

BatchNormTT::BatchNormTT(std::int64_t channels, std::int64_t max_timesteps,
                         float momentum, float eps, std::string layer_name)
    : c_(channels),
      t_max_(max_timesteps),
      momentum_(momentum),
      eps_(eps),
      name_(std::move(layer_name)) {
  assert(t_max_ >= 1);
  gamma_.reserve(static_cast<std::size_t>(t_max_));
  beta_.reserve(static_cast<std::size_t>(t_max_));
  for (std::int64_t t = 0; t < t_max_; ++t) {
    gamma_.emplace_back(name_ + ".gamma" + std::to_string(t),
                        Tensor::full(Shape{c_}, 1.f));
    beta_.emplace_back(name_ + ".beta" + std::to_string(t), Tensor(Shape{c_}));
    running_mean_.emplace_back(Shape{c_});
    running_var_.push_back(Tensor::full(Shape{c_}, 1.f));
  }
}

Tensor BatchNormTT::forward(const Tensor& x, bool train) {
  SNNSKIP_SPAN("bn.fwd", name_);
  const Shape& s = x.shape();
  assert(s.ndim() == 4 && s[1] == c_);
  const std::int64_t n = s[0], h = s[2], w = s[3];
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  // Wrap rather than crash if the caller runs more timesteps than t_max:
  // late steps reuse the last slot's statistics.
  const std::int64_t t = std::min(t_, t_max_ - 1);
  ++t_;

  Tensor out(s);
  Ctx ctx;
  ctx.t = t;
  ctx.count = count;
  const std::size_t ti = static_cast<std::size_t>(t);

  if (!train) {
    // Eval hot path: fold (mean, var, gamma, beta) into per-channel scale
    // and shift once, then run a single fused pass. The fold lives in the
    // workspace arena, so the timestep loop stays allocation-free.
    auto scope = Workspace::tls().scope();
    float* scale = scope.floats(static_cast<std::size_t>(c_));
    float* shift = scope.floats(static_cast<std::size_t>(c_));
    for (std::int64_t ch = 0; ch < c_; ++ch) {
      const std::size_t ci = static_cast<std::size_t>(ch);
      const float mean = running_mean_[ti][ci];
      const float inv_std = 1.f / std::sqrt(running_var_[ti][ci] + eps_);
      const float g = gamma_[ti].value[ci];
      scale[ch] = g * inv_std;
      shift[ch] = beta_[ti].value[ci] - g * mean * inv_std;
    }
    for (std::int64_t img = 0; img < n; ++img) {
      for (std::int64_t ch = 0; ch < c_; ++ch) {
        const float* p = x.data() + (img * c_ + ch) * plane;
        float* o = out.data() + (img * c_ + ch) * plane;
        const float sc = scale[ch], sh = shift[ch];
        for (std::int64_t j = 0; j < plane; ++j) o[j] = sc * p[j] + sh;
      }
    }
    return out;
  }

  ctx.xhat = Tensor(s);
  ctx.inv_std.resize(static_cast<std::size_t>(c_));

  for (std::int64_t ch = 0; ch < c_; ++ch) {
    double acc = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* p = x.data() + (img * c_ + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) acc += p[j];
    }
    const float mean = static_cast<float>(acc / count);
    double vacc = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* p = x.data() + (img * c_ + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        const double d = p[j] - mean;
        vacc += d * d;
      }
    }
    const float var = static_cast<float>(vacc / count);
    auto& rm = running_mean_[ti][static_cast<std::size_t>(ch)];
    auto& rv = running_var_[ti][static_cast<std::size_t>(ch)];
    rm = (1.f - momentum_) * rm + momentum_ * mean;
    rv = (1.f - momentum_) * rv + momentum_ * var;
    const float inv_std = 1.f / std::sqrt(var + eps_);
    const float g = gamma_[ti].value[static_cast<std::size_t>(ch)];
    const float b = beta_[ti].value[static_cast<std::size_t>(ch)];
    for (std::int64_t img = 0; img < n; ++img) {
      const float* p = x.data() + (img * c_ + ch) * plane;
      float* o = out.data() + (img * c_ + ch) * plane;
      float* xh = ctx.xhat.data() + (img * c_ + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        const float xhat = (p[j] - mean) * inv_std;
        xh[j] = xhat;
        o[j] = g * xhat + b;
      }
    }
    ctx.inv_std[static_cast<std::size_t>(ch)] = inv_std;
  }

  saved_.push_back(std::move(ctx));
  return out;
}

Tensor BatchNormTT::backward(const Tensor& grad_out) {
  SNNSKIP_SPAN("bn.bwd", name_);
  assert(!saved_.empty());
  Ctx ctx = std::move(saved_.back());
  saved_.pop_back();

  const Shape& s = grad_out.shape();
  const std::int64_t n = s[0], plane = s[2] * s[3];
  const std::size_t ti = static_cast<std::size_t>(ctx.t);
  const float inv_count = 1.f / static_cast<float>(ctx.count);

  Tensor grad_in(s);
  for (std::int64_t ch = 0; ch < c_; ++ch) {
    // Standard batch-norm backward:
    // dxhat = dy * gamma
    // dx = inv_std/count * (count*dxhat - sum(dxhat) - xhat*sum(dxhat*xhat))
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* gy = grad_out.data() + (img * c_ + ch) * plane;
      const float* xh = ctx.xhat.data() + (img * c_ + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_dy += gy[j];
        sum_dy_xhat += gy[j] * xh[j];
      }
    }
    gamma_[ti].grad[static_cast<std::size_t>(ch)] +=
        static_cast<float>(sum_dy_xhat);
    beta_[ti].grad[static_cast<std::size_t>(ch)] += static_cast<float>(sum_dy);

    const float g = gamma_[ti].value[static_cast<std::size_t>(ch)];
    const float inv_std = ctx.inv_std[static_cast<std::size_t>(ch)];
    const float k = g * inv_std;
    const float mean_dy = static_cast<float>(sum_dy) * inv_count;
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat) * inv_count;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* gy = grad_out.data() + (img * c_ + ch) * plane;
      const float* xh = ctx.xhat.data() + (img * c_ + ch) * plane;
      float* gi = grad_in.data() + (img * c_ + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        gi[j] = k * (gy[j] - mean_dy - xh[j] * mean_dy_xhat);
      }
    }
  }
  return grad_in;
}

void BatchNormTT::reset_state() {
  t_ = 0;
  saved_.clear();
}

std::vector<std::pair<std::string, Tensor*>> BatchNormTT::buffers() {
  std::vector<std::pair<std::string, Tensor*>> out;
  out.reserve(static_cast<std::size_t>(2 * t_max_));
  for (std::int64_t t = 0; t < t_max_; ++t) {
    out.emplace_back(name_ + ".running_mean" + std::to_string(t),
                     &running_mean_[static_cast<std::size_t>(t)]);
    out.emplace_back(name_ + ".running_var" + std::to_string(t),
                     &running_var_[static_cast<std::size_t>(t)]);
  }
  return out;
}

std::vector<Parameter*> BatchNormTT::parameters() {
  std::vector<Parameter*> out;
  out.reserve(static_cast<std::size_t>(2 * t_max_));
  for (auto& g : gamma_) out.push_back(&g);
  for (auto& b : beta_) out.push_back(&b);
  return out;
}

}  // namespace snnskip
