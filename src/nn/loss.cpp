#include "nn/loss.h"

#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace snnskip {

LossResult cross_entropy(const Tensor& logits,
                         const std::vector<std::int64_t>& targets) {
  const Shape& s = logits.shape();
  assert(s.ndim() == 2);
  const std::int64_t n = s[0], c = s[1];
  assert(static_cast<std::int64_t>(targets.size()) == n);

  LossResult res;
  res.grad_logits = softmax(logits);
  double loss_acc = 0.0;
  const float inv_n = 1.f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = targets[static_cast<std::size_t>(i)];
    assert(y >= 0 && y < c);
    float* row = res.grad_logits.data() + i * c;
    // p_y clamped to avoid log(0) when the network is confidently wrong.
    const float p = std::max(row[y], 1e-12f);
    loss_acc += -std::log(p);
    // dL/dlogits = (softmax - onehot) / N
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == y) ++res.correct;
    row[y] -= 1.f;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  res.loss = loss_acc / static_cast<double>(n);
  return res;
}

LossResult mse_count_loss(const Tensor& counts,
                          const std::vector<std::int64_t>& targets,
                          std::int64_t timesteps, float correct_rate,
                          float incorrect_rate) {
  const Shape& s = counts.shape();
  assert(s.ndim() == 2);
  const std::int64_t n = s[0], c = s[1];
  assert(static_cast<std::int64_t>(targets.size()) == n);

  LossResult res;
  res.grad_logits = Tensor(s);
  const float t_correct = correct_rate * static_cast<float>(timesteps);
  const float t_wrong = incorrect_rate * static_cast<float>(timesteps);
  double loss_acc = 0.0;
  const float inv = 1.f / static_cast<float>(n * c);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y = targets[static_cast<std::size_t>(i)];
    assert(y >= 0 && y < c);
    const float* row = counts.data() + i * c;
    float* grow = res.grad_logits.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 0; j < c; ++j) {
      const float target = (j == y) ? t_correct : t_wrong;
      const float diff = row[j] - target;
      loss_acc += 0.5 * static_cast<double>(diff) * diff;
      grow[j] = diff * inv;
      if (row[j] > row[best]) best = j;
    }
    if (best == y) ++res.correct;
  }
  res.loss = loss_acc / static_cast<double>(n * c);
  return res;
}

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& targets) {
  const auto preds = argmax_rows(logits);
  assert(preds.size() == targets.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == targets[i]) ++correct;
  }
  return preds.empty() ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(preds.size());
}

}  // namespace snnskip
