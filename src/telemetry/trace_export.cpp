#include "telemetry/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "metrics/report.h"
#include "telemetry/telemetry.h"
#include "util/json_writer.h"

namespace snnskip {

bool write_chrome_trace(const std::string& path) {
  const telemetry::Snapshot snap = telemetry::snapshot();
  JsonArrayWriter json(path);
  if (!json.ok()) return false;
  for (const telemetry::TraceEvent& ev : snap.events) {
    json.begin_row();
    json.field("name", ev.name);
    json.field("cat", ev.cat);
    json.field("ph", ev.phase == 'i' ? "i" : "X");
    json.field_fixed("ts", static_cast<double>(ev.ts_ns) / 1e3, 3);
    if (ev.phase == 'i') {
      json.field("s", "t");  // instant-event scope: thread
    } else {
      json.field_fixed("dur", static_cast<double>(ev.dur_ns) / 1e3, 3);
    }
    json.field("pid", static_cast<std::int64_t>(0));
    json.field("tid", static_cast<std::int64_t>(ev.tid));
    json.end_row();
  }
  return true;
}

std::string telemetry_summary(double wall_s) {
  const telemetry::Snapshot snap = telemetry::snapshot();
  if (wall_s <= 0.0 && !snap.events.empty()) {
    std::uint64_t lo = snap.events.front().ts_ns, hi = 0;
    for (const telemetry::TraceEvent& ev : snap.events) {
      lo = std::min(lo, ev.ts_ns);
      hi = std::max(hi, ev.ts_ns + ev.dur_ns);
    }
    wall_s = static_cast<double>(hi - lo) / 1e9;
  }

  std::ostringstream out;
  TextTable spans({"category", "name", "calls", "total_ms", "mean_us",
                   "%wall"});
  char buf[64];
  for (const telemetry::SpanStat& s : snap.spans) {
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double mean_us =
        s.count ? static_cast<double>(s.total_ns) / 1e3 /
                      static_cast<double>(s.count)
                : 0.0;
    std::vector<std::string> row{s.cat, s.name, std::to_string(s.count)};
    std::snprintf(buf, sizeof(buf), "%.3f", total_ms);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", mean_us);
    row.push_back(buf);
    if (wall_s > 0.0) {
      std::snprintf(buf, sizeof(buf), "%.1f",
                    100.0 * static_cast<double>(s.total_ns) / 1e9 / wall_s);
    } else {
      std::snprintf(buf, sizeof(buf), "-");
    }
    row.push_back(buf);
    spans.add_row(std::move(row));
  }
  out << "telemetry spans (aggregate):\n" << spans.str();

  if (!snap.counters.empty()) {
    TextTable counters({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      std::snprintf(buf, sizeof(buf), "%.0f", value);
      counters.add_row({name, buf});
    }
    out << "telemetry counters:\n" << counters.str();
  }
  if (snap.dropped_events > 0) {
    out << "note: " << snap.dropped_events
        << " trace events dropped (per-thread cap); aggregates are "
           "complete\n";
  }
  return out.str();
}

// --- minimal JSON reader for validation ------------------------------------

namespace {

// Enough JSON to read back what we (and Chrome) accept: objects, arrays,
// strings with escapes, numbers, true/false/null. Parsed into a tiny
// variant; only the shapes the validator inspects are retained.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;                        // Array
  std::vector<std::pair<std::string, JsonValue>> kv;   // Object

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  JsonReader(const char* p, const char* end) : p_(p), end_(end) {}

  bool parse(JsonValue& out, std::string& err) {
    if (!value(out, err)) return false;
    skip_ws();
    if (p_ != end_) {
      err = "trailing data after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (p_ != end_ &&
           std::isspace(static_cast<unsigned char>(*p_)) != 0) {
      ++p_;
    }
  }

  bool fail(std::string& err, const std::string& what) {
    err = what + " at byte " + std::to_string(p_ - begin_);
    return false;
  }

  bool value(JsonValue& out, std::string& err) {
    skip_ws();
    if (p_ == end_) return fail(err, "unexpected end of input");
    switch (*p_) {
      case '{': return object(out, err);
      case '[': return array(out, err);
      case '"':
        out.kind = JsonValue::Kind::String;
        return string(out.str, err);
      case 't':
      case 'f': return boolean(out, err);
      case 'n': return null(out, err);
      default: return number(out, err);
    }
  }

  bool object(JsonValue& out, std::string& err) {
    out.kind = JsonValue::Kind::Object;
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"') return fail(err, "expected object key");
      std::string key;
      if (!string(key, err)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail(err, "expected ':'");
      ++p_;
      JsonValue v;
      if (!value(v, err)) return false;
      out.kv.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p_ == end_) return fail(err, "unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail(err, "expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, std::string& err) {
    out.kind = JsonValue::Kind::Array;
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v, err)) return false;
      out.items.push_back(std::move(v));
      skip_ws();
      if (p_ == end_) return fail(err, "unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail(err, "expected ',' or ']'");
    }
  }

  bool string(std::string& out, std::string& err) {
    ++p_;  // opening quote
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return fail(err, "unterminated escape");
        switch (*p_) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (end_ - p_ < 5) return fail(err, "truncated \\u escape");
            for (int i = 1; i <= 4; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(p_[i])) == 0) {
                return fail(err, "bad \\u escape");
              }
            }
            // Validation only: keep the escape verbatim.
            out.append(p_, p_ + 5);
            p_ += 4;
            break;
          }
          default: return fail(err, "unknown escape");
        }
        ++p_;
      } else if (static_cast<unsigned char>(*p_) < 0x20) {
        return fail(err, "raw control character in string");
      } else {
        out.push_back(*p_);
        ++p_;
      }
    }
    if (p_ == end_) return fail(err, "unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool number(JsonValue& out, std::string& err) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false, dot = false, exp = false;
    while (p_ != end_) {
      const char c = *p_;
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        digits = true;
        ++p_;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
        ++p_;
      } else if ((c == 'e' || c == 'E') && digits && !exp) {
        exp = true;
        ++p_;
        if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
      } else {
        break;
      }
    }
    if (!digits) return fail(err, "malformed number");
    out.kind = JsonValue::Kind::Number;
    out.num = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool boolean(JsonValue& out, std::string& err) {
    out.kind = JsonValue::Kind::Bool;
    if (end_ - p_ >= 4 && std::string(p_, p_ + 4) == "true") {
      out.num = 1.0;
      p_ += 4;
      return true;
    }
    if (end_ - p_ >= 5 && std::string(p_, p_ + 5) == "false") {
      p_ += 5;
      return true;
    }
    return fail(err, "malformed literal");
  }

  bool null(JsonValue& out, std::string& err) {
    out.kind = JsonValue::Kind::Null;
    if (end_ - p_ >= 4 && std::string(p_, p_ + 4) == "null") {
      p_ += 4;
      return true;
    }
    return fail(err, "malformed literal");
  }

  const char* p_;
  const char* end_;
  const char* begin_ = p_;
};

bool set_error(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

}  // namespace

bool validate_chrome_trace(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error(error, "cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  JsonValue root;
  std::string err;
  JsonReader reader(text.data(), text.data() + text.size());
  if (!reader.parse(root, err)) return set_error(error, "parse error: " + err);
  if (root.kind != JsonValue::Kind::Array) {
    return set_error(error, "top-level value is not an array");
  }
  if (root.items.empty()) {
    return set_error(error, "trace contains no events");
  }
  for (std::size_t i = 0; i < root.items.size(); ++i) {
    const JsonValue& ev = root.items[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (ev.kind != JsonValue::Kind::Object) {
      return set_error(error, at + "not an object");
    }
    const JsonValue* name = ev.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String ||
        name->str.empty()) {
      return set_error(error, at + "missing/empty string \"name\"");
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::String) {
      return set_error(error, at + "missing string \"ph\"");
    }
    const JsonValue* ts = ev.find("ts");
    if (ts == nullptr || ts->kind != JsonValue::Kind::Number ||
        ts->num < 0.0) {
      return set_error(error, at + "missing non-negative number \"ts\"");
    }
    if (ph->str == "X") {
      const JsonValue* dur = ev.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::Number ||
          dur->num < 0.0) {
        return set_error(error,
                         at + "complete event missing non-negative \"dur\"");
      }
    }
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = ev.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::Number) {
        return set_error(error,
                         at + "missing number \"" + std::string(key) + "\"");
      }
    }
  }
  return true;
}

}  // namespace snnskip
