#pragma once
// Consumers of the telemetry snapshot: Chrome trace_event JSON and the
// aggregate summary table.
//
// The trace file is a bare JSON array of trace_event objects — directly
// loadable in chrome://tracing and Perfetto. Complete spans use ph="X"
// with microsecond ts/dur; epoch boundaries and similar markers are
// instant events (ph="i"). Emission reuses util/json_writer.h, the same
// writer (and string escaping) the bench binaries use for BENCH_*.json.
//
// validate_chrome_trace parses the file back with a small self-contained
// JSON reader and checks the trace_event invariants; the telemetry tests
// and the ctest telemetry smoke share it so "well-formed" means the same
// thing everywhere.

#include <string>

namespace snnskip {

/// Write all recorded trace events to `path`. Returns false when the file
/// cannot be opened. Telemetry keeps recording afterwards.
bool write_chrome_trace(const std::string& path);

/// Render the aggregate span table (per (category, name): calls, total
/// ms, mean us, share of `wall_s`) followed by the monotonic counters.
/// `wall_s` <= 0 uses the observed event span of the trace instead.
std::string telemetry_summary(double wall_s = 0.0);

/// Parse `path` as JSON and verify it is a non-empty array of trace_event
/// objects (required keys with correctly-typed values, non-negative
/// timestamps). On failure returns false and, when `error` is non-null,
/// stores a one-line reason.
bool validate_chrome_trace(const std::string& path, std::string* error);

}  // namespace snnskip
