#include "telemetry/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/runtime_env.h"

namespace snnskip {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point epoch_start() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::atomic<bool> g_enabled{[] {
  (void)epoch_start();  // pin the epoch before any span can run
  return env::get_bool("SNNSKIP_TELEMETRY", false);
}()};

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

// Per-thread recording buffer. Owned jointly by the recording thread (via
// thread_local shared_ptr) and the global registry, so events survive
// thread exit until the next Telemetry::reset().
struct ThreadBuf {
  std::mutex m;  // writer vs. snapshot; uncontended in steady state
  std::uint32_t tid = 0;
  std::vector<telemetry::TraceEvent> events;
  // key: "<cat>\x1f<name>"
  std::unordered_map<std::string, SpanAgg> agg;
  std::uint64_t dropped = 0;
};

struct Registry {
  std::mutex m;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::uint32_t next_tid = 1;
  std::map<std::string, double> counters;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

ThreadBuf& thread_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    b->tid = r.next_tid++;
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

std::string agg_key(const char* cat, std::string_view name) {
  std::string key(cat);
  key.push_back('\x1f');
  key.append(name);
  return key;
}

}  // namespace

bool Telemetry::enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Telemetry::set_enabled(bool on) {
  (void)epoch_start();
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t Telemetry::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch_start())
          .count());
}

void Telemetry::count(const char* name, double delta) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  r.counters[name] += delta;
}

void Telemetry::count_max(const char* name, double value) {
  if (!enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  double& cur = r.counters[name];
  cur = std::max(cur, value);
}

std::map<std::string, double> Telemetry::counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  return r.counters;
}

void Telemetry::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  for (auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->m);
    buf->events.clear();
    buf->agg.clear();
    buf->dropped = 0;
  }
  r.counters.clear();
}

namespace telemetry {

void ScopedSpan::begin(const char* cat, std::string_view name,
                       bool emit_trace) {
  active_ = true;
  emit_trace_ = emit_trace;
  cat_ = cat;
  name_ = name;
  start_ns_ = Telemetry::now_ns();
}

void ScopedSpan::end() {
  const std::uint64_t now = Telemetry::now_ns();
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lock(buf.m);
  SpanAgg& agg = buf.agg[agg_key(cat_, name_)];
  ++agg.count;
  agg.total_ns += now - start_ns_;
  if (!emit_trace_) return;
  if (buf.events.size() >= kMaxTraceEventsPerThread) {
    ++buf.dropped;
    return;
  }
  TraceEvent ev;
  ev.name.assign(name_);
  ev.cat = cat_;
  ev.ts_ns = start_ns_;
  ev.dur_ns = now - start_ns_;
  ev.tid = buf.tid;
  ev.phase = 'X';
  buf.events.push_back(std::move(ev));
}

void record_span(const char* cat, std::string_view name,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 bool emit_trace) {
  if (!Telemetry::enabled()) return;
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lock(buf.m);
  SpanAgg& agg = buf.agg[agg_key(cat, name)];
  ++agg.count;
  agg.total_ns += dur_ns;
  if (!emit_trace) return;
  if (buf.events.size() >= kMaxTraceEventsPerThread) {
    ++buf.dropped;
    return;
  }
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat = cat;
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = buf.tid;
  ev.phase = 'X';
  buf.events.push_back(std::move(ev));
}

void instant(const char* cat, std::string_view name) {
  if (!Telemetry::enabled()) return;
  ThreadBuf& buf = thread_buf();
  std::lock_guard<std::mutex> lock(buf.m);
  if (buf.events.size() >= kMaxTraceEventsPerThread) {
    ++buf.dropped;
    return;
  }
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat = cat;
  ev.ts_ns = Telemetry::now_ns();
  ev.tid = buf.tid;
  ev.phase = 'i';
  buf.events.push_back(std::move(ev));
}

Snapshot snapshot() {
  Snapshot snap;
  Registry& r = registry();
  // Copy the buffer list under the registry lock, then drain each buffer
  // under its own lock (a recording thread only ever touches its own).
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(r.m);
    bufs = r.bufs;
    snap.counters = r.counters;
  }
  std::unordered_map<std::string, SpanAgg> merged;
  for (auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->m);
    snap.events.insert(snap.events.end(), buf->events.begin(),
                       buf->events.end());
    snap.dropped_events += buf->dropped;
    for (const auto& [key, agg] : buf->agg) {
      SpanAgg& m = merged[key];
      m.count += agg.count;
      m.total_ns += agg.total_ns;
    }
  }
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  snap.spans.reserve(merged.size());
  for (auto& [key, agg] : merged) {
    SpanStat stat;
    const std::size_t sep = key.find('\x1f');
    stat.cat = key.substr(0, sep);
    stat.name = key.substr(sep + 1);
    stat.count = agg.count;
    stat.total_ns = agg.total_ns;
    snap.spans.push_back(std::move(stat));
  }
  std::sort(snap.spans.begin(), snap.spans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_ns > b.total_ns;
            });
  return snap;
}

}  // namespace telemetry
}  // namespace snnskip
