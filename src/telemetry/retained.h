#pragma once
// Process-wide accounting of bytes retained by BPTT saved contexts.
//
// The timestep loop pushes one context per layer per forward step and
// pops them in reverse during backward, so the retained footprint ramps
// up across the T forward calls and back down across the T backward
// calls. ISSUE 4 replaces the dense retained conv/linear inputs with the
// forward pass's SpikeCsr packing; this counter is how that memory win is
// observed. The event-path layers (Conv2d, Linear, DepthwiseConv2d, Lif,
// Plif) add their context's byte size on push and subtract it on pop /
// reset_state; TelemetryObserver mirrors the high-water mark into the
// "bptt.retained_bytes.high_water" telemetry counter at epoch end (the
// same pattern as the arena high-water counter), keeping the per-push
// cost to two relaxed atomics.
//
// Accounting covers the spike-path layers above, not every layer with
// state (batch-norm's per-timestep statistics are outside this PR's
// scope), so treat the numbers as the spike-activation share of BPTT
// memory, not total process RSS.

#include <cstdint>

namespace snnskip {

class RetainedActivations {
 public:
  /// A layer pushed a saved context of `bytes` bytes.
  static void add(std::int64_t bytes);
  /// The matching pop (backward or reset_state).
  static void sub(std::int64_t bytes);

  /// Bytes currently retained across all live contexts.
  static std::int64_t current();
  /// Peak of current() since process start / last reset.
  static std::int64_t high_water();
  /// Tests only: forget the peak (current accounting is unaffected).
  static void reset_high_water();
};

}  // namespace snnskip
