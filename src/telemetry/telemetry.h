#pragma once
// Low-overhead profiling spans and monotonic counters (ISSUE 2).
//
// The BO pipeline ranks topologies by accuracy, firing rate, and MACs, but
// the trainer was a black box: nothing reported where a timestep's
// wall-clock goes (dense vs. sparse dispatch, gemm vs. im2col, forward vs.
// BPTT backward). This subsystem instruments the hot paths with RAII
// scoped spans keyed by (category, name) and monotonic counters, feeding
// two consumers (telemetry/trace_export.h):
//   * a Chrome trace_event JSON file (load in chrome://tracing / Perfetto)
//   * an aggregate per-(category, name) summary table.
//
// Cost model: telemetry is OFF by default. A disabled span is ONE relaxed
// atomic load and a branch — no clock read, no allocation, no locking —
// so instrumenting per-timestep layer calls stays under the 2% overhead
// budget (DESIGN.md §5c). Enabled spans take two steady_clock reads and
// append to a per-thread buffer (amortized pointer bump; the buffer is
// registered once per thread and survives thread exit so snapshots never
// lose data). Aggregation is deferred to snapshot time.
//
// Usage:
//   SNNSKIP_SPAN("conv.fwd.dense", name_);        // span + trace event
//   SNNSKIP_SPAN_AGG("gemm", "gemm_nt");          // aggregate only (no
//                                                 // trace event; for
//                                                 // per-image-granularity
//                                                 // calls that would bloat
//                                                 // the trace)
//   Telemetry::count("dispatch.sparse");          // monotonic counter
//   Telemetry::count_max("arena.hw", hw);         // monotonic maximum
//
// Enablement: SNNSKIP_TELEMETRY=1 at startup, or Telemetry::set_enabled()
// (what `--trace-out` does in the examples).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace snnskip {

class Telemetry {
 public:
  /// Master switch; every instrumentation site checks exactly this once.
  static bool enabled();
  static void set_enabled(bool on);

  /// Add `delta` to the named monotonic counter. No-op while disabled.
  static void count(const char* name, double delta = 1.0);
  /// Raise the named counter to at least `value` (high-water tracking).
  static void count_max(const char* name, double value);

  /// Snapshot of all counters (copied under the lock).
  static std::map<std::string, double> counters();

  /// Drop all recorded spans, trace events, and counters (tests; between
  /// runs sharing a process).
  static void reset();

  /// Nanoseconds since the process-wide telemetry epoch (first use).
  static std::uint64_t now_ns();
};

namespace telemetry {

/// One completed span occurrence destined for the Chrome trace.
struct TraceEvent {
  std::string name;
  const char* cat = "";       // category string literals live forever
  std::uint64_t ts_ns = 0;    // start, relative to the telemetry epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  char phase = 'X';           // 'X' complete span, 'i' instant event
};

/// Aggregate across all occurrences of one (category, name) span key.
struct SpanStat {
  std::string cat;
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

struct Snapshot {
  std::vector<TraceEvent> events;  // merged across threads, sorted by ts
  std::vector<SpanStat> spans;     // includes aggregate-only spans
  std::map<std::string, double> counters;
  std::uint64_t dropped_events = 0;  // trace-buffer cap overflows
};

/// Merge every thread's buffers. Safe to call while other threads are
/// still recording (their in-flight spans simply miss the snapshot).
Snapshot snapshot();

/// Emit an instant event (a vertical marker in the trace, e.g. epoch
/// boundaries). No-op while disabled.
void instant(const char* cat, std::string_view name);

/// Record a completed span with explicit timestamps (both relative to the
/// telemetry epoch, i.e. Telemetry::now_ns values). For intervals that
/// cannot be a ScopedSpan because they start and end on different threads
/// — e.g. a serving request's queue wait, which begins on the client
/// thread and ends when the dispatcher cuts the batch. Aggregates like a
/// normal span and (when `emit_trace`) appends one trace event attributed
/// to the calling thread. No-op while disabled.
void record_span(const char* cat, std::string_view name,
                 std::uint64_t start_ns, std::uint64_t dur_ns,
                 bool emit_trace = true);

/// Per-thread trace-event cap; beyond it spans still aggregate but stop
/// emitting trace events (counted in Snapshot::dropped_events).
constexpr std::size_t kMaxTraceEventsPerThread = 1u << 21;  // ~2M

/// RAII span. Construct via the SNNSKIP_SPAN* macros.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, std::string_view name, bool emit_trace) {
    if (!Telemetry::enabled()) return;
    begin(cat, name, emit_trace);
  }
  ~ScopedSpan() {
    if (active_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* cat, std::string_view name, bool emit_trace);
  void end();

  bool active_ = false;
  bool emit_trace_ = true;
  const char* cat_ = "";
  std::string_view name_;  // must outlive the span (layer names do)
  std::uint64_t start_ns_ = 0;
};

}  // namespace telemetry
}  // namespace snnskip

#define SNNSKIP_SPAN_CONCAT_IMPL(a, b) a##b
#define SNNSKIP_SPAN_CONCAT(a, b) SNNSKIP_SPAN_CONCAT_IMPL(a, b)

/// Time this scope and emit one Chrome trace event per occurrence.
#define SNNSKIP_SPAN(cat, name)                          \
  ::snnskip::telemetry::ScopedSpan SNNSKIP_SPAN_CONCAT(  \
      snnskip_span_, __LINE__)(cat, name, /*emit_trace=*/true)

/// Time this scope into the aggregate table only (no trace event) — for
/// sites called at per-image granularity inside the timestep loop.
#define SNNSKIP_SPAN_AGG(cat, name)                      \
  ::snnskip::telemetry::ScopedSpan SNNSKIP_SPAN_CONCAT(  \
      snnskip_span_, __LINE__)(cat, name, /*emit_trace=*/false)
