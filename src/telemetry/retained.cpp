#include "telemetry/retained.h"

#include <atomic>

namespace snnskip {

namespace {
std::atomic<std::int64_t> g_current{0};
std::atomic<std::int64_t> g_high_water{0};
}  // namespace

void RetainedActivations::add(std::int64_t bytes) {
  const std::int64_t now =
      g_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::int64_t hw = g_high_water.load(std::memory_order_relaxed);
  while (now > hw && !g_high_water.compare_exchange_weak(
                         hw, now, std::memory_order_relaxed)) {
  }
}

void RetainedActivations::sub(std::int64_t bytes) {
  g_current.fetch_sub(bytes, std::memory_order_relaxed);
}

std::int64_t RetainedActivations::current() {
  return g_current.load(std::memory_order_relaxed);
}

std::int64_t RetainedActivations::high_water() {
  return g_high_water.load(std::memory_order_relaxed);
}

void RetainedActivations::reset_high_water() {
  g_high_water.store(g_current.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

}  // namespace snnskip
