#pragma once
// Supernet weight store — the paper's weight-sharing trick (§III-B):
// "Because we optimize the skip connections, we can use previously trained
// weights and share them among all possible topologies... We only fine-tune
// the networks for n epochs."
//
// The store holds one tensor per stable parameter key. For block-node conv
// weights the stored tensor has the SUPERNET input width (main channels +
// every potential DSC segment, Block's canonical layout); a candidate's
// narrower weight is the gather of its active input-channel indices, and
// fine-tuned weights are scattered back. All other parameters (stem, head,
// projections, depthwise convs, batch-norm affines) are stored at their
// natural shape and copied whole.

#include <string>
#include <unordered_map>

#include "graph/network.h"
#include "tensor/tensor.h"

namespace snnskip {

class WeightStore {
 public:
  explicit WeightStore(std::uint64_t seed) : seed_(seed) {}

  bool contains(const std::string& key) const {
    return store_.count(key) != 0;
  }
  std::size_t size() const { return store_.size(); }

  /// Fetch the stored tensor for `key`, creating it with a deterministic
  /// Kaiming-style init (seeded by hash(key) ^ seed) if absent.
  Tensor& get_or_init(const std::string& key, const Shape& shape);

  /// Copy store -> network (gathering supernet conv slices per block node).
  void load_into(Network& net);
  /// Copy network -> store (scattering conv slices back).
  void store_from(Network& net);

  /// Deep copy of the stored tensors. The candidate evaluator snapshots
  /// the store before each shared-weights fine-tune and restores it when
  /// the candidate diverges, so one bad candidate can never contaminate
  /// the weights every later candidate starts from (ISSUE 3).
  using Snapshot = std::unordered_map<std::string, Tensor>;
  Snapshot snapshot() const { return store_; }
  void restore(Snapshot snap) { store_ = std::move(snap); }

  /// Bitwise equality with another store (same keys, same bytes) — the
  /// fault tests' "failed candidates left no trace" assertion.
  bool identical_to(const WeightStore& other) const;

  // Dim-1 gather/scatter on OIHW weights (exposed for tests).
  static Tensor gather_in_dim1(const Tensor& full,
                               const std::vector<std::int64_t>& idx);
  static void scatter_in_dim1(Tensor& full, const Tensor& sub,
                              const std::vector<std::int64_t>& idx);

 private:
  enum class Dir { Load, Store };
  void sync(Network& net, Dir dir);

  std::uint64_t seed_;
  std::unordered_map<std::string, Tensor> store_;
};

}  // namespace snnskip
