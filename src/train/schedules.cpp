#include "train/schedules.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace snnskip {

float cosine_lr(float lr0, std::int64_t epoch, std::int64_t total,
                float floor_frac) {
  if (total <= 1) return lr0;
  const float t = static_cast<float>(epoch) / static_cast<float>(total - 1);
  const float cosine = 0.5f * (1.f + std::cos(static_cast<float>(M_PI) * t));
  return lr0 * (floor_frac + (1.f - floor_frac) * cosine);
}

float step_lr(float lr0, std::int64_t epoch, std::int64_t step, float gamma) {
  return lr0 * std::pow(gamma, static_cast<float>(epoch / step));
}

TrainConfig paper_recipe(const std::string& dataset, double epoch_scale) {
  TrainConfig cfg;
  auto scaled = [epoch_scale](std::int64_t base) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(base * epoch_scale)));
  };
  if (dataset == "cifar10") {
    // Paper: SGD, lr 0.01, momentum 0.9, 25 steps, 200 epochs.
    cfg.opt = OptKind::SgdMomentum;
    cfg.lr = 0.01f;
    cfg.momentum = 0.9f;
    cfg.timesteps = 25;
    cfg.epochs = scaled(8);
  } else if (dataset == "cifar10-dvs") {
    // Paper: SGD, lr 0.025, momentum 0.9, 100 epochs.
    cfg.opt = OptKind::SgdMomentum;
    cfg.lr = 0.025f;
    cfg.momentum = 0.9f;
    cfg.epochs = scaled(6);
  } else if (dataset == "dvs128-gesture") {
    // Paper: Adam, lr 0.01, 200 epochs.
    cfg.opt = OptKind::Adam;
    cfg.lr = 0.01f;
    cfg.epochs = scaled(6);
  } else {
    throw std::invalid_argument("paper_recipe: unknown dataset " + dataset);
  }
  return cfg;
}

}  // namespace snnskip
