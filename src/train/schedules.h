#pragma once
// Learning-rate schedules and the per-dataset training recipes from the
// paper's §IV (translated to the synthetic datasets' CPU-scale budgets).

#include <cstdint>
#include <string>

#include "train/trainer.h"

namespace snnskip {

/// Cosine annealing from lr0 to lr0*floor over `total` epochs.
float cosine_lr(float lr0, std::int64_t epoch, std::int64_t total,
                float floor_frac = 0.05f);

/// Step decay: lr0 * gamma^(epoch / step).
float step_lr(float lr0, std::int64_t epoch, std::int64_t step, float gamma);

/// The paper's per-dataset recipe (§IV): optimizer family, base LR and
/// momentum. Epoch counts are scaled by `epoch_scale` (1.0 = the library's
/// CPU defaults, not the paper's GPU budgets).
TrainConfig paper_recipe(const std::string& dataset, double epoch_scale = 1.0);

}  // namespace snnskip
