#pragma once
// Numeric health guards for surrogate-gradient training (ISSUE 3).
//
// SNN training is notoriously divergence-prone: a bad candidate topology
// or an LR spike can blow the loss up or write NaN/Inf into the weights,
// and inside the BO loop that single candidate used to poison the shared
// WeightStore or kill the whole search. The HealthMonitor makes fit()
// self-healing:
//
//   * each batch it checks the loss, the (pre-clip) gradient norm, and —
//     on a configurable interval — every parameter for NaN/Inf, plus a
//     loss-explosion heuristic against a running loss average;
//   * on divergence, fit() rolls the network back to the last known-good
//     in-memory snapshot (refreshed per healthy epoch), halves the
//     learning rate, resets optimizer state, and redoes the epoch;
//   * after `max_retries` rollbacks the fit is declared failed
//     (FitResult::diverged) instead of looping forever — the candidate
//     evaluator then discards it without touching shared weights.
//
// The monitor is opt-in via TrainConfig::health; the candidate evaluator
// enables it by default with the retry budget from SNNSKIP_MAX_RETRIES.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.h"

namespace snnskip {

struct HealthConfig {
  bool enabled = false;
  /// Rollback budget per fit(); exceeding it marks the fit diverged.
  int max_retries = 2;
  /// Divergence when loss exceeds this factor times the running average
  /// (checked after `warmup_batches` finite losses have been seen).
  double loss_explode_factor = 1e3;
  /// Divergence when loss exceeds this absolute bound, warmup or not.
  double abs_loss_limit = 1e6;
  /// Scan all parameters for NaN/Inf every N batches (1 = every batch;
  /// <= 0 disables the parameter scan, loss/grad checks remain).
  std::int64_t param_scan_interval = 1;
  /// Batches of loss averaging before the explosion heuristic engages.
  int warmup_batches = 3;
};

/// HealthConfig with the retry budget taken from SNNSKIP_MAX_RETRIES
/// (util/runtime_env). `enabled` is left false; callers opt in.
HealthConfig default_health_config();

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg) : cfg_(std::move(cfg)) {}

  /// Refresh the last-good snapshot (parameters + buffers) from `net`.
  /// Call once before training and after every healthy epoch.
  void capture(Network& net);

  /// Per-batch health check; false means the training state is diverged
  /// (reason available via last_reason()).
  bool check(Network& net, double loss, double grad_norm);

  /// Roll `net` back to the last-good snapshot and halve the LR scale.
  /// Returns false when the retry budget is exhausted (fit must stop).
  bool recover(Network& net);

  int retries() const { return retries_; }
  /// Cumulative LR multiplier (0.5^retries); fit() applies it on top of
  /// the schedule so the halving survives per-epoch LR updates.
  double lr_scale() const { return lr_scale_; }
  const std::string& last_reason() const { return reason_; }

 private:
  HealthConfig cfg_;
  std::vector<Tensor> param_snapshot_;
  std::vector<Tensor> buffer_snapshot_;
  int retries_ = 0;
  double lr_scale_ = 1.0;
  double loss_avg_ = 0.0;
  int finite_losses_ = 0;
  std::int64_t batches_seen_ = 0;
  std::string reason_;
};

}  // namespace snnskip
